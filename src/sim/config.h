#ifndef PULLMON_SIM_CONFIG_H_
#define PULLMON_SIM_CONFIG_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/chronon.h"
#include "core/online_executor.h"
#include "feeds/fault_injection.h"
#include "sim/churn.h"
#include "trace/auction_generator.h"
#include "trace/feed_workload.h"
#include "trace/trace_store.h"
#include "trace/update_model.h"

namespace pullmon {

/// Which update-event dataset drives an experiment (Section 5.1).
enum class DatasetKind {
  /// Synthetic Poisson(lambda) update model.
  kPoisson,
  /// Synthetic eBay-style auction trace (stand-in for the paper's
  /// real-world trace; see DESIGN.md).
  kAuction,
  /// Web-feed workload per the measurement study the paper cites as
  /// [10]: 55% near-hourly periodic feeds, Zipf-skewed activity.
  kFeedWorkload,
};

const char* DatasetKindToString(DatasetKind kind);

/// Where the online policies' execution intervals come from.
enum class KnowledgeModel {
  /// FPN(1): oracle EIs derived from the full update trace up front —
  /// the paper's evaluation setting and the byte-identical default.
  kOracle,
  /// Closed-loop: predicted EIs regenerated on a rolling horizon from
  /// an EstimationSession fed by the proxy's own (schedule-censored)
  /// probe observations, with epsilon explore probes to cold resources
  /// charged to the chronon budget (DESIGN.md section 17).
  kEstimated,
};

const char* KnowledgeModelToString(KnowledgeModel model);

/// The controlled parameters of Table 1 with their baseline settings.
/// Every benchmark harness starts from BaselineConfig() and overrides
/// the independent variables of its figure.
struct SimulationConfig {
  DatasetKind dataset = DatasetKind::kPoisson;
  /// n: number of monitored resources.
  int num_resources = 400;
  /// K: epoch length in chronons.
  Chronon epoch_length = 1000;
  /// m: number of client profiles.
  int num_profiles = 500;
  /// k: rank(P) — maximal t-interval complexity (AuctionWatch(k)).
  int max_rank = 3;
  /// lambda: average updates per resource over the epoch (Poisson data).
  double lambda = 20.0;
  /// alpha: inter-user resource-popularity skew (0 = uniform;
  /// 1.37 matches Web-feed popularity per [10]).
  double alpha = 0.0;
  /// beta: intra-user preference toward low-rank profiles (0 = uniform).
  double beta = 0.0;
  /// EI length restriction: overwrite or window(W).
  LengthRestriction restriction = LengthRestriction::kWindow;
  /// W for the window restriction; W = 0 produces P^[1] instances.
  Chronon window = 20;
  /// C: uniform per-chronon probe budget.
  int budget = 1;
  /// Caps t-intervals per profile (0 = derive all update rounds).
  int max_t_intervals_per_profile = 0;
  /// Auction-process knobs, used when dataset == kAuction (its
  /// num_auctions / epoch_length fields are overridden from the above).
  AuctionTraceOptions auction;
  /// Feed-workload knobs, used when dataset == kFeedWorkload (its
  /// num_feeds / epoch_length fields are overridden from the above).
  FeedWorkloadOptions feed_workload;
  /// Fault rates of the physical probe path (proxy experiments only;
  /// the logical executor path never sees them). All-zero by default.
  FaultOptions faults;
  /// Base seed of the fault layer; mixed with the repetition seed so
  /// repetitions draw independent fault sequences.
  uint64_t fault_seed = 0x5EED;
  /// Same-chronon retry/backoff policy of the proxy's probe path.
  RetryPolicy retry;
  /// Circuit-breaker behavior of the executor's resource-health
  /// tracking (core/resource_health.h); disabled by default.
  BreakerOptions breaker;
  /// Which online-executor implementation runs (core/online_executor.h):
  /// the incremental candidate index (default) or the scan-based
  /// reference oracle. Both are decision-identical; the switch exists
  /// for differential testing and perf regression baselines.
  ExecutorBackend executor_backend = ExecutorBackend::kIndexed;
  /// Worker threads of the kParallel backend's execute phase; ignored
  /// by the serial backends. Results are bit-identical at every thread
  /// count (the thread-invariance suite enforces it).
  int threads = 1;
  /// Per-server feed buffer capacity of the simulated network (proxy
  /// experiments): small buffers make feeds volatile.
  int feed_buffer_capacity = 8;
  /// ETag/content-keyed parse cache on the proxy's probe path
  /// (sim/proxy.h). Off by default; results are byte-identical either
  /// way apart from the cache's own counters.
  bool parse_cache = false;
  /// Mid-epoch profile churn (sim/churn.h): cancel/edit/unregister
  /// streams with Zipf-skewed client activity, driven through
  /// DynamicMonitor by RunChurnOnce. Disabled by default.
  ChurnOptions churn;
  /// Trace representation the proxy paths generate and replay
  /// (trace/trace_store.h): the in-memory UpdateTrace oracle (default)
  /// or the paged compressed TraceStore. Decision-identical; the paged
  /// backend adds its own telemetry to ProxyRunReport.
  TraceBackend trace_backend = TraceBackend::kInMemory;
  /// Page size and cache budget of the paged backend.
  TraceStoreOptions trace_store;
  /// Durability layer (src/recovery/): directory snapshots and WALs are
  /// written to. Empty (the default) runs fully volatile. The
  /// durability knobs below are process configuration, not simulation
  /// parameters — none of them enter RunFingerprint, so a recovered run
  /// may legally differ from the crashed one in all of them.
  std::string checkpoint_dir;
  /// Snapshot every N chronon boundaries (0 = only the initial snapshot
  /// plus WAL-size-triggered ones). Requires checkpoint_dir.
  Chronon checkpoint_every = 0;
  /// Crash-injection point of the recovery harness: kill the run at the
  /// first durable write at or after this chronon (-1 disarms).
  /// Requires checkpoint_dir.
  Chronon crash_at_chronon = -1;
  /// Bytes of durable writes the armed crash plan still admits before
  /// the kill fires (the exhausting write is torn).
  std::size_t crash_at_offset = 0;
  /// Resume from the newest valid checkpoint in checkpoint_dir instead
  /// of starting fresh. Requires checkpoint_dir.
  bool recover = false;
  /// Knowledge model of the proxy's online policies: FPN(1) oracle EIs
  /// (default, byte-identical to the pre-estimation behavior) or
  /// closed-loop predicted EIs (RunAdaptiveOnce). Proxy runs only.
  KnowledgeModel knowledge = KnowledgeModel::kOracle;
  /// Half-life (chronons) of the estimator's per-resource decaying rate
  /// tracker. Estimated-knowledge runs only.
  double estimator_half_life = 32.0;
  /// Fraction of chronons that divert one budget unit into an explore
  /// probe of the coldest resource (0 disables exploration).
  double explore_eps = 0.05;
  /// Rolling horizon (chronons) on which predicted EIs are regenerated.
  Chronon forecast_horizon = 50;

  /// Human-readable (parameter, value) rows — the Table 1 rendering.
  std::vector<std::pair<std::string, std::string>> ToRows() const;

  /// Range-checks the sub-option blocks a run would otherwise reject
  /// mid-flight (fault rates, retry/backoff, breaker) — the CLI calls
  /// this up front so bad flags fail with a clean InvalidArgument.
  Status Validate() const;
};

/// The paper's baseline parameter settings (Table 1).
SimulationConfig BaselineConfig();

}  // namespace pullmon

#endif  // PULLMON_SIM_CONFIG_H_
