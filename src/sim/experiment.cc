#include "sim/experiment.h"

#include <algorithm>
#include <thread>

#include "policies/policy_factory.h"
#include "profilegen/profile_generator.h"
#include "trace/poisson_generator.h"
#include "util/random.h"
#include "util/string_util.h"

namespace pullmon {

std::string PolicySpec::Label() const {
  return StringFormat("%s(%s)", policy.c_str(),
                      ExecutionModeToString(mode));
}

std::vector<PolicySpec> StandardPolicySpecs() {
  return {
      {"S-EDF", ExecutionMode::kNonPreemptive},
      {"S-EDF", ExecutionMode::kPreemptive},
      {"M-EDF", ExecutionMode::kPreemptive},
      {"MRSF", ExecutionMode::kPreemptive},
  };
}

namespace {

/// Generates the update trace into whichever representation the config
/// selects and derives the profiles from it. Both branches consume
/// `rng` identically (the store-direct generators mirror the
/// UpdateTrace ones draw for draw), so for one seed the backends build
/// the same problem from the same events.
Result<std::vector<Profile>> GenerateTraceAndProfiles(
    const SimulationConfig& config, Rng* rng,
    const ProfileGeneratorOptions& pg, UpdateTrace* trace_out,
    std::optional<TraceStore>* store_out) {
  const bool paged = config.trace_backend == TraceBackend::kPaged;
  if (paged) {
    std::optional<TraceStore> store;
    switch (config.dataset) {
      case DatasetKind::kPoisson: {
        PoissonTraceOptions options;
        options.num_resources = config.num_resources;
        options.epoch_length = config.epoch_length;
        options.lambda = config.lambda;
        PULLMON_ASSIGN_OR_RETURN(
            TraceStore generated,
            GeneratePoissonTraceStore(options, rng, config.trace_store));
        store.emplace(std::move(generated));
        break;
      }
      case DatasetKind::kAuction: {
        AuctionTraceOptions options = config.auction;
        options.num_auctions = config.num_resources;
        options.epoch_length = config.epoch_length;
        PULLMON_ASSIGN_OR_RETURN(AuctionTrace auctions,
                                 GenerateAuctionTrace(options, rng));
        PULLMON_ASSIGN_OR_RETURN(
            TraceStore generated,
            auctions.ToTraceStore(config.trace_store));
        store.emplace(std::move(generated));
        break;
      }
      case DatasetKind::kFeedWorkload: {
        FeedWorkloadOptions options = config.feed_workload;
        options.num_feeds = config.num_resources;
        options.epoch_length = config.epoch_length;
        PULLMON_ASSIGN_OR_RETURN(
            TraceStore generated,
            GenerateFeedWorkloadStore(options, rng, config.trace_store));
        store.emplace(std::move(generated));
        break;
      }
    }
    PULLMON_ASSIGN_OR_RETURN(std::vector<Profile> profiles,
                             GenerateProfiles(*store, pg, rng));
    if (store_out != nullptr) *store_out = std::move(store);
    return profiles;
  }

  UpdateTrace trace(0, 0);
  switch (config.dataset) {
    case DatasetKind::kPoisson: {
      PoissonTraceOptions options;
      options.num_resources = config.num_resources;
      options.epoch_length = config.epoch_length;
      options.lambda = config.lambda;
      PULLMON_ASSIGN_OR_RETURN(trace, GeneratePoissonTrace(options, rng));
      break;
    }
    case DatasetKind::kAuction: {
      AuctionTraceOptions options = config.auction;
      options.num_auctions = config.num_resources;
      options.epoch_length = config.epoch_length;
      PULLMON_ASSIGN_OR_RETURN(AuctionTrace auctions,
                               GenerateAuctionTrace(options, rng));
      PULLMON_ASSIGN_OR_RETURN(trace, auctions.ToUpdateTrace());
      break;
    }
    case DatasetKind::kFeedWorkload: {
      FeedWorkloadOptions options = config.feed_workload;
      options.num_feeds = config.num_resources;
      options.epoch_length = config.epoch_length;
      PULLMON_ASSIGN_OR_RETURN(trace,
                               GenerateFeedWorkload(options, rng));
      break;
    }
  }
  PULLMON_ASSIGN_OR_RETURN(std::vector<Profile> profiles,
                           GenerateProfiles(trace, pg, rng));
  if (trace_out != nullptr) *trace_out = std::move(trace);
  return profiles;
}

}  // namespace

Result<MonitoringProblem> BuildProblem(
    const SimulationConfig& config, uint64_t seed, UpdateTrace* trace_out,
    std::optional<TraceStore>* store_out) {
  Rng rng(seed);

  ProfileGeneratorOptions pg;
  pg.num_profiles = config.num_profiles;
  pg.max_rank = config.max_rank;
  pg.alpha = config.alpha;
  pg.beta = config.beta;
  pg.ei_options.restriction = config.restriction;
  pg.ei_options.window = config.window;
  pg.max_t_intervals_per_profile = config.max_t_intervals_per_profile;
  PULLMON_ASSIGN_OR_RETURN(
      std::vector<Profile> profiles,
      GenerateTraceAndProfiles(config, &rng, pg, trace_out, store_out));

  MonitoringProblem problem;
  problem.num_resources = config.num_resources;
  problem.epoch.length = config.epoch_length;
  problem.profiles = std::move(profiles);
  problem.budget = BudgetVector::Uniform(config.budget,
                                         config.epoch_length);
  return problem;
}

Result<ProxyRunReport> RunProxyOnce(const SimulationConfig& config,
                                    const PolicySpec& spec, uint64_t seed) {
  if (config.knowledge == KnowledgeModel::kEstimated) {
    return RunAdaptiveOnce(config, spec, seed);
  }
  UpdateTrace trace(0, 0);
  std::optional<TraceStore> store;
  PULLMON_ASSIGN_OR_RETURN(MonitoringProblem problem,
                           BuildProblem(config, seed, &trace, &store));
  const auto buffer_capacity = static_cast<std::size_t>(
      config.feed_buffer_capacity < 1 ? 1 : config.feed_buffer_capacity);
  std::optional<FeedNetwork> network;
  if (store.has_value()) {
    network.emplace(&*store, buffer_capacity);
  } else {
    network.emplace(&trace, buffer_capacity);
  }
  PolicyOptions po;
  po.random_seed = seed ^ 0x5bf03635ULL;
  po.num_resources = problem.num_resources;
  PULLMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                           MakePolicy(spec.policy, po));
  ProxyOptions options;
  options.faults = config.faults;
  options.fault_seed = config.fault_seed ^ (seed * 0x9E3779B97F4A7C15ULL);
  options.retry = config.retry;
  options.breaker = config.breaker;
  options.backend = config.executor_backend;
  options.parse_cache = config.parse_cache;
  options.trace_backend = config.trace_backend;
  options.threads = config.threads;
  MonitoringProxy proxy(&problem, &*network, policy.get(), spec.mode,
                        options);
  return proxy.Run();
}

Status ExperimentRunner::RunRepetition(
    const SimulationConfig& config, const std::vector<PolicySpec>& specs,
    bool include_offline, const LocalRatioOptions& offline_options,
    int rep, RepetitionRecord* out) {
  uint64_t seed = base_seed_ + static_cast<uint64_t>(rep) * 7919;
  PULLMON_ASSIGN_OR_RETURN(MonitoringProblem problem,
                           BuildProblem(config, seed));
  out->t_intervals = static_cast<double>(problem.TotalTIntervalCount());
  out->eis = static_cast<double>(problem.TotalEiCount());
  out->policies.resize(specs.size());

  for (std::size_t s = 0; s < specs.size(); ++s) {
    PolicyOptions po;
    po.random_seed = seed ^ 0x5bf03635ULL;
    po.num_resources = problem.num_resources;
    PULLMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                             MakePolicy(specs[s].policy, po));
    OnlineExecutor executor(&problem, policy.get(), specs[s].mode);
    executor.set_backend(config.executor_backend);
    executor.set_breaker_options(config.breaker);
    executor.set_threads(config.threads);
    PULLMON_ASSIGN_OR_RETURN(OnlineRunResult run, executor.Run());
    out->policies[s].gc = run.completeness.GainedCompleteness();
    out->policies[s].runtime_seconds = run.elapsed_seconds;
    out->policies[s].probes_used = static_cast<double>(run.probes_used);
  }

  if (include_offline) {
    LocalRatioScheduler scheduler(&problem, offline_options);
    PULLMON_ASSIGN_OR_RETURN(OfflineSolution offline, scheduler.Solve());
    out->offline_gc = offline.gained_completeness;
    out->offline_runtime_seconds = offline.elapsed_seconds;
    out->offline_guaranteed_factor = scheduler.GuaranteedFactor();
  }
  return Status::OK();
}

Result<ComparisonResult> ExperimentRunner::Run(
    const SimulationConfig& config, const std::vector<PolicySpec>& specs,
    bool include_offline, const LocalRatioOptions& offline_options) {
  // Every repetition computes a plain record into its own slot;
  // aggregation then folds the records in repetition order on one
  // thread. The fold — not just the per-repetition values — is
  // therefore independent of the thread count, which makes the
  // header's thread-invariance promise hold bitwise (floating-point
  // accumulation order never varies).
  std::vector<RepetitionRecord> records(
      static_cast<std::size_t>(repetitions_ < 0 ? 0 : repetitions_));
  int threads = std::min(threads_, repetitions_);
  if (threads <= 1) {
    for (int rep = 0; rep < repetitions_; ++rep) {
      PULLMON_RETURN_NOT_OK(
          RunRepetition(config, specs, include_offline, offline_options,
                        rep, &records[static_cast<std::size_t>(rep)]));
    }
  } else {
    std::vector<Status> failures(static_cast<std::size_t>(threads));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        for (int rep = w; rep < repetitions_; rep += threads) {
          Status st = RunRepetition(
              config, specs, include_offline, offline_options, rep,
              &records[static_cast<std::size_t>(rep)]);
          if (!st.ok()) {
            failures[static_cast<std::size_t>(w)] = st;
            return;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto& failure : failures) {
      if (!failure.ok()) return failure;
    }
  }

  ComparisonResult result;
  result.policies.resize(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    result.policies[s].spec = specs[s];
  }
  if (include_offline) result.offline = OfflineOutcome{};
  for (const RepetitionRecord& record : records) {
    result.t_intervals.Add(record.t_intervals);
    result.eis.Add(record.eis);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      result.policies[s].gc.Add(record.policies[s].gc);
      result.policies[s].runtime_seconds.Add(
          record.policies[s].runtime_seconds);
      result.policies[s].probes_used.Add(record.policies[s].probes_used);
    }
    if (include_offline) {
      result.offline->gc.Add(record.offline_gc);
      result.offline->runtime_seconds.Add(record.offline_runtime_seconds);
      result.offline->guaranteed_factor = record.offline_guaranteed_factor;
    }
  }
  return result;
}

}  // namespace pullmon
