#ifndef PULLMON_SIM_CHURN_H_
#define PULLMON_SIM_CHURN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/chronon.h"
#include "core/dynamic_monitor.h"
#include "core/t_interval.h"
#include "sim/proxy.h"
#include "util/status.h"

namespace pullmon {

/// Knobs of the mid-epoch profile-churn workload (ISSUE: "Profile churn
/// at client scale"). Churn models a volatile client population: while
/// the epoch runs, clients cancel pending submissions, edit their
/// deadlines/weights, and occasionally unregister outright — on top of
/// the t-interval arrivals the online setting already has. Client
/// activity is Zipf-skewed (a few heavy clients drive most churn), as in
/// the paper's eBay workload skew.
struct ChurnOptions {
  /// Master switch; when off the run path is churn-free.
  bool enabled = false;
  /// Mean churn operations per chronon (Poisson-distributed count).
  double ops_per_chronon = 0.0;
  /// Operation mix; the three fractions must sum to 1.
  double cancel_fraction = 0.60;
  double edit_fraction = 0.35;
  double unregister_fraction = 0.05;
  /// Zipf skew of the per-client activity (0 = uniform; 1.37 matches
  /// the Web-feed popularity skew of [10]).
  double zipf_theta = 1.37;
  /// Base seed of the churn stream; mixed with the repetition seed so
  /// churn never consumes randomness shared with trace, profile, fault
  /// or policy streams.
  uint64_t seed = 0xC4A2;

  /// Range-checks the knobs (rates non-negative, fractions summing to
  /// 1); the CLI surfaces violations as clean InvalidArgument.
  Status Validate() const;
};

/// One pre-drawn churn operation. Events carry raw random material
/// (`pick`) instead of resolved submission ids: which submissions exist
/// at replay time depends on the run, so the runner resolves the target
/// deterministically against the state then current.
struct ChurnEvent {
  enum class Kind { kCancel, kEdit, kUnregister };

  Chronon chronon = 0;
  Kind kind = Kind::kCancel;
  /// Zipf-selected client driving the operation.
  int profile = 0;
  /// Uniform 64-bit draw; the runner maps it onto the profile's
  /// submissions (pick % count).
  uint64_t pick = 0;
  /// Edit mutation: chronons added to every remaining EI deadline
  /// (clamped to the epoch) ...
  Chronon deadline_delta = 0;
  /// ... and the factor applied to the t-interval's weight.
  double weight_factor = 1.0;
};

const char* ChurnEventKindToString(ChurnEvent::Kind kind);

/// A full epoch's churn stream, sorted by chronon (events within one
/// chronon apply in generation order, before that chronon executes).
struct ChurnWorkload {
  std::vector<ChurnEvent> events;
  std::size_t cancels = 0;
  std::size_t edits = 0;
  std::size_t unregisters = 0;
};

/// Draws the churn stream for one run: per chronon a Poisson(ops)
/// event count, per event a kind (categorical over the mix), a client
/// (Zipf over profiles), and the mutation material. Deterministic in
/// (options, num_profiles, epoch_length, seed); `options` must already
/// validate.
ChurnWorkload GenerateChurnWorkload(const ChurnOptions& options,
                                    int num_profiles, Chronon epoch_length,
                                    uint64_t seed);

/// Builds an Edit replacement from the submission's current definition:
/// the EIs whose window has not yet opened survive, with their deadlines
/// pushed out by `delta` (clamped to the epoch) and the weight rescaled.
/// When every EI has already opened the replacement comes back empty and
/// the monitor rejects the edit — the deliberate edit-to-past-deadline
/// error path. Shared by RunChurnOnce and the durable runner
/// (src/recovery/durable_runner.cc) so both resolve churn identically.
TInterval BuildEditReplacement(const TInterval& current, Chronon now,
                               Chronon epoch_length, Chronon delta,
                               double weight_factor);

/// Mirrors the scheduling/fault/health/churn telemetry of a finished
/// DynamicMonitor run into `report` the way MonitoringProxy::Run does
/// (including session->FinishReport()), so churn, durable, and proxy
/// reports compare field-for-field. Checks the monitor's capture
/// accounting against the schedule-based evaluation.
void FinalizeChurnReport(const DynamicMonitor& monitor, bool breaker_enabled,
                         FeedPullSession* session, ProxyRunReport* report);

}  // namespace pullmon

#endif  // PULLMON_SIM_CHURN_H_
