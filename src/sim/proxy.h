#ifndef PULLMON_SIM_PROXY_H_
#define PULLMON_SIM_PROXY_H_

#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "core/online_executor.h"
#include "core/problem.h"
#include "feeds/fault_injection.h"
#include "feeds/feed_item.h"
#include "feeds/feed_server.h"
#include "feeds/parse_cache.h"
#include "util/arena.h"
#include "util/status.h"

namespace pullmon {

/// A notification pushed to a client when one of its t-intervals is
/// fully captured (Section 3's hybrid model: pull from servers, push to
/// clients).
struct ProxyNotification {
  ProfileId profile = 0;
  /// Index of the captured t-interval within the profile.
  std::size_t t_interval_index = 0;
  Chronon chronon = 0;
  /// Feed items retrieved by the probes of the capture chronon
  /// (best-effort payload for the client).
  std::vector<FeedItem> items;
};

struct ProxyRunReport {
  OnlineRunResult run;
  std::size_t feeds_fetched = 0;
  /// Conditional fetches the servers answered 304-style (no body).
  std::size_t not_modified = 0;
  std::size_t feed_bytes = 0;
  std::size_t items_parsed = 0;
  std::size_t parse_failures = 0;
  std::size_t notifications_delivered = 0;
  // --- Fault-layer telemetry (all zero without injected faults). ------
  /// Probe attempts that delivered no usable document: timeouts, server
  /// errors, and unparsable bodies (mirrors run.probes_failed).
  std::size_t probes_failed = 0;
  /// Retry attempts issued after failed probes (mirrors run).
  std::size_t retries_issued = 0;
  /// Probe-budget units consumed by retries (mirrors run).
  std::size_t retry_probes_spent = 0;
  /// Bodies that arrived truncated or garbled.
  std::size_t corrupt_bodies = 0;
  /// Probes that timed out before any response.
  std::size_t timeouts = 0;
  /// Probes answered with a transient server error.
  std::size_t server_errors = 0;
  /// Conditional fetches forced to full bodies by ETag storms.
  std::size_t etag_invalidations = 0;
  /// Probes swallowed because their resource was dark (Gilbert-Elliott
  /// outage; mirrors fault_stats.outage_probes).
  std::size_t outage_probes = 0;
  /// Total simulated response latency, in fractional chronons.
  double latency_chronons = 0.0;
  /// Fraction of all t-intervals that failed after a fault hit one of
  /// their live candidate EIs — GC the faults (at most) cost this run,
  /// on the same scale as CompletenessReport::GainedCompleteness().
  double gc_lost_to_faults = 0.0;
  /// Counters of the fault layer itself (empty without one).
  FaultStats fault_stats;
  // --- Resource-health telemetry (all zero with the breaker disabled;
  // --- mirrors OnlineRunResult, see core/resource_health.h). ----------
  std::size_t circuits_opened = 0;
  std::size_t circuits_reopened = 0;
  std::size_t probation_probes = 0;
  std::size_t probation_successes = 0;
  std::size_t probes_suppressed = 0;
  std::size_t budget_reclaimed = 0;
  std::size_t open_chronons_total = 0;
  /// Chronons each resource spent circuit-open (indexed by ResourceId);
  /// empty when the breaker is disabled.
  std::vector<std::size_t> open_chronons_by_resource;
  // --- Parse-cache telemetry (all zero with the cache disabled; every
  // --- other report field is byte-identical cache on or off). ---------
  std::size_t parse_cache_hits = 0;
  std::size_t parse_cache_misses = 0;
  std::size_t parse_cache_invalidations = 0;
  /// Body bytes whose parse a cache hit skipped.
  std::size_t parse_cache_bytes_saved = 0;
  // --- Churn telemetry (all zero in churn-free runs; mirrors
  // --- MonitorStats, see core/dynamic_monitor.h). ---------------------
  /// Accepted Submit() operations.
  std::size_t churn_submitted = 0;
  /// Accepted Cancel() operations (including Unregister fan-out).
  std::size_t churn_cancelled = 0;
  /// Accepted Edit() operations.
  std::size_t churn_edited = 0;
  /// Accepted Unregister() operations.
  std::size_t churn_unregistered_profiles = 0;
  /// Churn operations the monitor rejected (cancel of a completed
  /// submission, duplicate unregister, ...) — expected under racy
  /// workloads and deterministic under seed.
  std::size_t churn_rejected_ops = 0;
  /// Probe work orphaned by churn: EI captures whose parent was
  /// cancelled or edited away before completing.
  std::size_t orphaned_probes = 0;
  // --- Trace-store telemetry (all zero on the in-memory backend; every
  // --- other report field is identical across trace backends). --------
  /// Compressed pages the paged backend wrote at generation time.
  std::size_t trace_pages_written = 0;
  /// Encoded bytes (plus page index) holding the trace.
  std::size_t trace_bytes_stored = 0;
  /// What the same trace costs in UpdateTrace form (modeled).
  std::size_t trace_in_memory_bytes = 0;
  /// Page-cache traffic of the per-resource read path (profile
  /// generation and EI derivation read through the LRU cache).
  std::size_t trace_cache_hits = 0;
  std::size_t trace_cache_misses = 0;
  std::size_t trace_cache_evictions = 0;
  // --- Recovery telemetry (all zero without a checkpoint directory;
  // --- src/recovery/. These are the ONLY fields allowed to differ
  // --- between an uninterrupted run and a crash-recovered one — the
  // --- recovery differential suite asserts everything above is equal).
  /// Snapshots the durable runner persisted this run.
  std::size_t recovery_snapshots_written = 0;
  /// Snapshots loaded to seed this run (1 on a recovered run).
  std::size_t recovery_snapshots_loaded = 0;
  /// Snapshots rejected at load time (checksum/decode failure — torn or
  /// bit-flipped files that were detected, never silently replayed).
  std::size_t recovery_snapshots_rejected = 0;
  /// WAL records group-flushed at chronon boundaries this run.
  std::size_t recovery_wal_records_logged = 0;
  /// WAL records verified against re-execution during recovery.
  std::size_t recovery_wal_records_replayed = 0;
  /// WAL records discarded by the torn-tail rule (bytes after the last
  /// intact chronon commit, or after the first corrupt record).
  std::size_t recovery_torn_tail_truncated = 0;
  // --- Shard telemetry (zero/empty on the serial backends; mirrors
  // --- ShardRunStats of the kParallel pipeline. A function of the
  // --- shard map and the workload only — bit-identical across thread
  // --- counts, so thread-invariance suites compare it in full; only
  // --- serial-vs-parallel comparisons skip it). -----------------------
  std::size_t shard_count = 0;
  /// Candidate EIs scored per shard, summed over chronons.
  std::vector<std::size_t> shard_candidates_scored;
  /// Probe attempts whose resource belonged to the shard.
  std::vector<std::size_t> shard_probes_executed;
  /// Total entries through the two-phase selection merge.
  std::size_t shard_merge_entries = 0;
  // --- Estimation telemetry (all zero under the oracle knowledge
  // --- model; mirrors EstimationStats plus the adaptive runner's own
  // --- counters, see estimation/estimation_session.h and DESIGN.md
  // --- section 17). ---------------------------------------------------
  /// Probe outcomes the estimation session ingested.
  std::size_t estimation_probes_observed = 0;
  /// Distinct update events learned from item diffs.
  std::size_t estimation_update_events = 0;
  /// 304-not-modified responses the estimator saw (censored negatives).
  std::size_t estimation_not_modified = 0;
  /// Item timestamps dropped as already-known (buffer overlap).
  std::size_t estimation_duplicate_events = 0;
  /// Resources carrying a detected periodic pattern at epoch end.
  std::size_t estimation_periodic_resources = 0;
  /// Rolling-horizon forecast refreshes performed.
  std::size_t estimation_forecast_refreshes = 0;
  /// Predicted t-intervals submitted to the monitor.
  std::size_t estimation_predicted_t_intervals = 0;
  /// Predicted EIs inside those t-intervals.
  std::size_t estimation_predicted_eis = 0;
  /// Epsilon explore probes issued to cold resources (budget-charged).
  std::size_t estimation_explore_probes = 0;
};

/// Behavioral knobs of the proxy's physical probe path. The defaults
/// (no faults, no retries) reproduce the pre-fault-layer proxy exactly.
struct ProxyOptions {
  /// Fault rates injected between proxy and feed network. AllZero()
  /// bypasses the layer entirely.
  FaultOptions faults;
  /// Seed of the fault layer's per-resource streams.
  uint64_t fault_seed = 0x5EED;
  /// Same-chronon retry/backoff policy for failed probes; retries are
  /// charged against the chronon budget C_j.
  RetryPolicy retry;
  /// Circuit-breaker behavior of the executor's resource-health
  /// tracking; disabled by default (byte-identical to no breaker).
  BreakerOptions breaker;
  /// Scheduling implementation driving the probe path; both backends
  /// issue identical probe sequences (differentially tested), so this
  /// only affects scheduling cost.
  ExecutorBackend backend = ExecutorBackend::kIndexed;
  /// ETag/content-keyed parse cache in front of the feed layer: a probe
  /// whose response matches the cached entry replays the cached
  /// document instead of reparsing. Off by default; the report is
  /// byte-identical either way apart from the parse_cache_* counters.
  bool parse_cache = false;
  /// Which trace representation the network replays. kPaged requires a
  /// store-backed FeedNetwork (Run() rejects the mismatch); the report
  /// is identical either way apart from the trace_* counters.
  TraceBackend trace_backend = TraceBackend::kInMemory;
  /// Worker threads of the kParallel backend's execute phase; ignored
  /// by the serial backends. The report is bit-identical at every
  /// thread count (the thread-invariance suite enforces it).
  int threads = 1;
};

/// Resumable state of one FeedPullSession at a chronon boundary: the
/// per-resource validators plus the images of the optional fault plan
/// and parse cache. The report counters the session fills live in the
/// ProxyRunReport and are checkpointed by the recovery layer alongside.
struct PullSessionImage {
  std::vector<std::string> etags;
  std::optional<FaultPlanImage> fault_plan;
  std::optional<ParseCacheImage> parse_cache;
};

/// The physical pull leg shared by MonitoringProxy (executor-driven) and
/// the churn experiment runner (DynamicMonitor-driven): conditional
/// fetches through an optional deterministic fault plan, arena-backed
/// parsing, and the optional ETag/content parse cache — one Probe() call
/// per scheduled probe, filling the transport counters of a
/// ProxyRunReport. Extracting it keeps churn runs byte-comparable to
/// proxy runs on every feeds/fault/cache counter.
class FeedPullSession {
 public:
  /// `network` and `report` must outlive the session; `options` must
  /// already be validated.
  FeedPullSession(FeedNetwork* network, int num_resources,
                  const ProxyOptions& options, ProxyRunReport* report);

  /// Executes the pull leg of one probe of `resource` at chronon `now`:
  /// returns false when a fault or parse failure delivered no usable
  /// document (the EI stays a candidate), true otherwise.
  bool Probe(ResourceId resource, Chronon now);

  // --- Three-phase probe pipeline (ExecutorBackend::kParallel;
  // --- ParallelProbeHooks in core/parallel_executor.h, DESIGN.md
  // --- section 16). Splits Probe() so the data-plane work runs
  // --- concurrently while every order-sensitive effect stays serial.
  // --- The committed counters, validators, cache state, and item
  // --- buffer are bit-identical to the serial Probe() sequence. -------

  /// Serial, before the first decide of a chronon: clears the attempt
  /// records and sizes one parse arena per worker lane.
  void BeginParallelChronon(int num_workers);

  /// Serial, in canonical attempt order. Advances the network/fault
  /// clock, snapshots the resource's validator, draws the attempt's
  /// fate from the fault stream, and returns the success the serial
  /// Probe() would report. Fault-free pristine fetches defer their
  /// fetch/parse/cache work to ExecuteAttempt; faulted or mangled
  /// attempts (whose success depends on the parse outcome) resolve
  /// inline here — both rare by construction. `token` must be dense
  /// and increasing per chronon.
  bool DecideAttempt(ResourceId resource, Chronon now, int token);

  /// Parallel: performs the deferred fetch + parse + cache work of one
  /// attempt on the given worker lane. Safe concurrently across lanes
  /// because the executor routes all attempts of one resource shard to
  /// one lane: per-resource server buffers, validators, and cache
  /// entries are touched by exactly one thread, and cache stats go to
  /// a per-attempt delta merged at commit.
  void ExecuteAttempt(int token, int worker);

  /// Serial, in canonical order: applies the attempt's report counters,
  /// validator update, cache-stat delta, and item delivery — the exact
  /// effect sequence of the serial Probe().
  void CommitAttempt(int token);

  /// Chronon of the most recent successful fetch batch.
  Chronon fetch_chronon() const { return fetch_chronon_; }
  /// Items pulled during the current chronon (notification payload).
  const std::vector<FeedItem>& current_items() const {
    return current_items_;
  }

  /// Copies the fault-plan and parse-cache counters into the report;
  /// call once after the run.
  void FinishReport();

  /// Checkpoint support: Capture() at a chronon boundary freezes the
  /// validators and the fault/cache layers; Restore() resumes them on a
  /// session built from the same options. InvalidArgument when the
  /// image disagrees with the session's layers or resource count. The
  /// current-chronon item buffer is intentionally not captured: it is
  /// rebuilt by the first probe of the next chronon.
  PullSessionImage Capture() const;
  Status Restore(const PullSessionImage& image);

 private:
  /// Everything one decided probe attempt carries between the three
  /// phases. Filled by DecideAttempt/ExecuteAttempt, consumed by
  /// CommitAttempt.
  struct AttemptRecord {
    ResourceId resource = -1;
    /// Validator snapshot at decide time (failed attempts never update
    /// validators, so within-chronon retries see the same snapshot the
    /// serial path would).
    std::string if_none_match;
    std::optional<FaultPlan::ProbeDecision> decision;
    /// The plan/network refused the probe outright (counts as a parse
    /// failure, like the serial path).
    bool decide_error = false;
    /// Fully resolved at decide time; ExecuteAttempt skips it.
    bool done = false;
    bool mangled = false;
    bool not_modified = false;
    bool cache_hit = false;
    bool parse_failed = false;
    std::string served_etag;
    std::size_t body_size = 0;
    /// Materialized items of this attempt (cache replay or parse).
    std::vector<FeedItem> items;
    /// Cache-stat mutations of this attempt, merged serially at commit.
    ParseCacheStats cache_delta;
  };

  /// Consumes a fault-free fetched response into `rec` (cache lookup,
  /// parse into `arena`, item materialization) — everything except the
  /// report counters, which CommitAttempt applies in canonical order.
  /// Returns the success the serial Probe() would report.
  bool ResolveBody(AttemptRecord* rec, bool not_modified,
                   std::string_view body, std::string_view served_etag,
                   Arena* arena);

  FeedNetwork* network_;
  ProxyRunReport* report_;
  std::optional<FaultPlan> plan_;
  Chronon fetch_chronon_ = -1;
  std::vector<FeedItem> current_items_;
  /// Per-resource validators for conditional fetches (HTTP
  /// If-None-Match semantics).
  std::vector<std::string> etags_;
  /// The probe hot path parses into one arena, Reset() per document.
  Arena arena_;
  std::optional<ParseCache> cache_;
  /// Attempt records of the current chronon, indexed by token.
  std::vector<AttemptRecord> attempts_;
  /// One parse arena per worker lane (deque: Arena is pinned in place).
  std::deque<Arena> lane_arenas_;
};

/// The monitoring proxy: drives the online executor over an epoch while
/// performing the *physical* data path — every scheduled probe pulls the
/// resource's feed document from the FeedNetwork (optionally through a
/// deterministic fault-injection layer), parses it, and captured
/// t-intervals are pushed to clients as notifications. This is the
/// end-to-end integration of scheduler and feed substrate used by the
/// examples and integration tests.
class MonitoringProxy {
 public:
  /// All pointers must outlive the proxy; no ownership taken. The
  /// network's resources must cover the problem's.
  MonitoringProxy(const MonitoringProblem* problem, FeedNetwork* network,
                  Policy* policy, ExecutionMode mode,
                  ProxyOptions options = ProxyOptions{});

  Result<ProxyRunReport> Run();

  /// Notifications delivered during the last Run(), in delivery order.
  const std::vector<ProxyNotification>& notifications() const {
    return notifications_;
  }

 private:
  const MonitoringProblem* problem_;
  FeedNetwork* network_;
  Policy* policy_;
  ExecutionMode mode_;
  ProxyOptions options_;
  std::vector<ProxyNotification> notifications_;
};

}  // namespace pullmon

#endif  // PULLMON_SIM_PROXY_H_
