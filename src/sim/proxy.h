#ifndef PULLMON_SIM_PROXY_H_
#define PULLMON_SIM_PROXY_H_

#include <vector>

#include "core/online_executor.h"
#include "core/problem.h"
#include "feeds/feed_item.h"
#include "feeds/feed_server.h"
#include "util/status.h"

namespace pullmon {

/// A notification pushed to a client when one of its t-intervals is
/// fully captured (Section 3's hybrid model: pull from servers, push to
/// clients).
struct ProxyNotification {
  ProfileId profile = 0;
  /// Index of the captured t-interval within the profile.
  std::size_t t_interval_index = 0;
  Chronon chronon = 0;
  /// Feed items retrieved by the probes of the capture chronon
  /// (best-effort payload for the client).
  std::vector<FeedItem> items;
};

struct ProxyRunReport {
  OnlineRunResult run;
  std::size_t feeds_fetched = 0;
  /// Conditional fetches the servers answered 304-style (no body).
  std::size_t not_modified = 0;
  std::size_t feed_bytes = 0;
  std::size_t items_parsed = 0;
  std::size_t parse_failures = 0;
  std::size_t notifications_delivered = 0;
};

/// The monitoring proxy: drives the online executor over an epoch while
/// performing the *physical* data path — every scheduled probe pulls the
/// resource's feed document from the FeedNetwork, parses it, and
/// captured t-intervals are pushed to clients as notifications. This is
/// the end-to-end integration of scheduler and feed substrate used by
/// the examples and integration tests.
class MonitoringProxy {
 public:
  /// All pointers must outlive the proxy; no ownership taken. The
  /// network's resources must cover the problem's.
  MonitoringProxy(const MonitoringProblem* problem, FeedNetwork* network,
                  Policy* policy, ExecutionMode mode);

  Result<ProxyRunReport> Run();

  /// Notifications delivered during the last Run(), in delivery order.
  const std::vector<ProxyNotification>& notifications() const {
    return notifications_;
  }

 private:
  const MonitoringProblem* problem_;
  FeedNetwork* network_;
  Policy* policy_;
  ExecutionMode mode_;
  std::vector<ProxyNotification> notifications_;
};

}  // namespace pullmon

#endif  // PULLMON_SIM_PROXY_H_
