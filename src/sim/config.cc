#include "sim/config.h"

#include "util/string_util.h"

namespace pullmon {

const char* DatasetKindToString(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kPoisson:
      return "poisson";
    case DatasetKind::kAuction:
      return "auction";
    case DatasetKind::kFeedWorkload:
      return "feed-workload";
  }
  return "?";
}

const char* KnowledgeModelToString(KnowledgeModel model) {
  switch (model) {
    case KnowledgeModel::kOracle:
      return "oracle";
    case KnowledgeModel::kEstimated:
      return "estimated";
  }
  return "?";
}

SimulationConfig BaselineConfig() { return SimulationConfig{}; }

Status SimulationConfig::Validate() const {
  PULLMON_RETURN_NOT_OK(faults.Validate());
  PULLMON_RETURN_NOT_OK(retry.Validate());
  PULLMON_RETURN_NOT_OK(breaker.Validate());
  PULLMON_RETURN_NOT_OK(churn.Validate());
  PULLMON_RETURN_NOT_OK(trace_store.Validate());
  if (checkpoint_every < 0) {
    return Status::InvalidArgument(
        "checkpoint-every must be >= 0 chronons");
  }
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (executor_backend == ExecutorBackend::kParallel &&
      !checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "the parallel executor does not offer checkpoint/restore; use "
        "the indexed backend for durable runs");
  }
  if (checkpoint_dir.empty()) {
    if (checkpoint_every > 0) {
      return Status::InvalidArgument(
          "--checkpoint-every requires --checkpoint-dir");
    }
    if (crash_at_chronon >= 0) {
      return Status::InvalidArgument(
          "--crash-at requires --checkpoint-dir (there is nothing "
          "durable to crash)");
    }
    if (recover) {
      return Status::InvalidArgument(
          "--recover requires --checkpoint-dir (nowhere to recover "
          "from)");
    }
  }
  if (estimator_half_life <= 0.0) {
    return Status::InvalidArgument(
        "--estimator-half-life must be > 0 chronons");
  }
  if (explore_eps < 0.0 || explore_eps > 1.0) {
    return Status::InvalidArgument("--explore-eps must be in [0, 1]");
  }
  if (forecast_horizon < 1) {
    return Status::InvalidArgument(
        "--forecast-horizon must be >= 1 chronons");
  }
  if (knowledge == KnowledgeModel::kEstimated) {
    if (churn.enabled) {
      return Status::InvalidArgument(
          "--knowledge=estimated does not combine with --churn (the "
          "adaptive runner generates its own predicted submissions)");
    }
    if (!checkpoint_dir.empty() || recover) {
      return Status::InvalidArgument(
          "--knowledge=estimated does not offer checkpoint/recovery "
          "yet; run it volatile");
    }
  }
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> SimulationConfig::ToRows()
    const {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("dataset", DatasetKindToString(dataset));
  rows.emplace_back("n (resources)", StringFormat("%d", num_resources));
  rows.emplace_back("K (chronons)", StringFormat("%d", epoch_length));
  rows.emplace_back("m (profiles)", StringFormat("%d", num_profiles));
  rows.emplace_back("k = rank(P)", StringFormat("%d", max_rank));
  if (dataset == DatasetKind::kPoisson) {
    rows.emplace_back("lambda (updates/resource)",
                      StringFormat("%.1f", lambda));
  }
  rows.emplace_back("alpha (inter-user)", StringFormat("%.2f", alpha));
  rows.emplace_back("beta (intra-user)", StringFormat("%.2f", beta));
  rows.emplace_back("restriction",
                    LengthRestrictionToString(restriction));
  if (restriction == LengthRestriction::kWindow) {
    rows.emplace_back("W (window)", StringFormat("%d", window));
  }
  rows.emplace_back("C (budget/chronon)", StringFormat("%d", budget));
  if (!faults.AllZero()) {
    rows.emplace_back(
        "faults (to/err/trunc/corr/storm)",
        StringFormat("%.2f/%.2f/%.2f/%.2f/%.2f", faults.timeout_rate,
                     faults.server_error_rate, faults.truncation_rate,
                     faults.corruption_rate, faults.etag_storm_rate));
    if (faults.latency_mean > 0.0) {
      rows.emplace_back("latency mean (chronons)",
                        StringFormat("%.3f", faults.latency_mean));
    }
  }
  if (faults.outage_enter_rate > 0.0) {
    rows.emplace_back("outage (enter/exit)",
                      StringFormat("%.3f/%.3f", faults.outage_enter_rate,
                                   faults.outage_exit_rate));
  }
  if (breaker.enabled) {
    rows.emplace_back(
        "circuit breaker",
        StringFormat("thresh %d, cooldown %d x%.1f cap %d",
                     breaker.failure_threshold, breaker.cooldown_base,
                     breaker.cooldown_multiplier, breaker.max_cooldown));
  }
  if (retry.max_retries > 0) {
    rows.emplace_back("probe retries",
                      StringFormat("%d (backoff %.3f x%.1f)",
                                   retry.max_retries, retry.backoff_base,
                                   retry.backoff_multiplier));
  }
  if (executor_backend != ExecutorBackend::kIndexed) {
    rows.emplace_back("executor",
                      ExecutorBackendToString(executor_backend));
  }
  if (threads > 1) {
    rows.emplace_back("threads", StringFormat("%d", threads));
  }
  if (parse_cache) rows.emplace_back("parse cache", "on");
  if (trace_backend != TraceBackend::kInMemory) {
    rows.emplace_back("trace backend",
                      TraceBackendToString(trace_backend));
    rows.emplace_back(
        "trace store (page/cache)",
        StringFormat("%zu B / %zu pages", trace_store.page_size,
                     trace_store.cache_pages));
  }
  if (churn.enabled) {
    rows.emplace_back(
        "churn (ops/chronon)",
        StringFormat("%.2f (cancel %.2f / edit %.2f / unreg %.2f)",
                     churn.ops_per_chronon, churn.cancel_fraction,
                     churn.edit_fraction, churn.unregister_fraction));
    rows.emplace_back("churn zipf theta",
                      StringFormat("%.2f", churn.zipf_theta));
  }
  if (!checkpoint_dir.empty()) {
    rows.emplace_back("checkpoint dir", checkpoint_dir);
    rows.emplace_back("checkpoint every",
                      checkpoint_every > 0
                          ? StringFormat("%d chronons", checkpoint_every)
                          : std::string("WAL-size only"));
    if (crash_at_chronon >= 0) {
      rows.emplace_back("crash at",
                        StringFormat("chronon %d + %zu B",
                                     crash_at_chronon, crash_at_offset));
    }
    if (recover) rows.emplace_back("recover", "yes");
  }
  if (knowledge != KnowledgeModel::kOracle) {
    rows.emplace_back("knowledge", KnowledgeModelToString(knowledge));
    rows.emplace_back("estimator half-life",
                      StringFormat("%.1f", estimator_half_life));
    rows.emplace_back("explore eps", StringFormat("%.3f", explore_eps));
    rows.emplace_back("forecast horizon",
                      StringFormat("%d", forecast_horizon));
  }
  return rows;
}

}  // namespace pullmon
