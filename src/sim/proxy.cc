#include "sim/proxy.h"

#include "feeds/atom.h"

namespace pullmon {

FeedPullSession::FeedPullSession(FeedNetwork* network, int num_resources,
                                 const ProxyOptions& options,
                                 ProxyRunReport* report)
    : network_(network),
      report_(report),
      etags_(static_cast<std::size_t>(num_resources)) {
  // The fault layer sits between session and network only when some rate
  // is non-zero; a fresh plan per session makes repeated runs replay the
  // identical fault sequence.
  if (!options.faults.AllZero()) {
    plan_.emplace(network_, options.fault_seed, options.faults);
  }
  if (options.parse_cache) {
    cache_.emplace(static_cast<std::size_t>(num_resources));
  }
}

bool FeedPullSession::Probe(ResourceId resource, Chronon now) {
  // The pull leg: catch the network up to "now" and fetch the feed.
  // Clock advancement goes through the fault plan when one exists, so
  // its per-resource outage chains see the current chronon.
  if (plan_.has_value()) {
    plan_->AdvanceTo(now);
  } else {
    network_->AdvanceTo(now);
  }
  if (now != fetch_chronon_) {
    current_items_.clear();
    fetch_chronon_ = now;
  }
  std::string& etag = etags_[static_cast<std::size_t>(resource)];
  // The response, unified across both paths as views: into the server's
  // reused buffers on the direct path, or into `faulted` (alive for the
  // rest of the probe) on the fault-plan path.
  bool not_modified = false;
  std::string_view body;
  std::string_view served_etag;
  bool mangled = false;
  FaultPlan::FaultedFetch faulted;
  if (plan_.has_value()) {
    auto outcome = plan_->ProbeConditional(resource, etag);
    if (!outcome.ok()) {
      ++report_->parse_failures;
      return false;
    }
    switch (outcome->fault) {
      case FaultPlan::FaultKind::kTimeout:
        ++report_->timeouts;
        return false;
      case FaultPlan::FaultKind::kServerError:
        ++report_->server_errors;
        return false;
      case FaultPlan::FaultKind::kOutage:
        ++report_->outage_probes;
        return false;
      case FaultPlan::FaultKind::kNone:
        break;
    }
    if (outcome->truncated || outcome->corrupted) ++report_->corrupt_bodies;
    faulted = std::move(*outcome);
    mangled = faulted.truncated || faulted.corrupted;
    not_modified = faulted.fetch.not_modified;
    body = faulted.fetch.body;
    served_etag = faulted.fetch.etag;
  } else {
    auto direct = network_->ProbeConditionalView(resource, etag);
    if (!direct.ok()) {
      ++report_->parse_failures;
      return false;
    }
    not_modified = direct->not_modified;
    body = direct->body;
    served_etag = direct->etag;
  }
  ++report_->feeds_fetched;
  if (not_modified) {
    ++report_->not_modified;
    etag.assign(served_etag);
    return true;  // nothing new to parse or deliver
  }
  report_->feed_bytes += body.size();
  if (cache_.has_value()) {
    const FeedDocument* replay =
        cache_->Lookup(resource, served_etag, body, mangled);
    if (replay != nullptr) {
      etag.assign(served_etag);
      report_->items_parsed += replay->items.size();
      current_items_.insert(current_items_.end(), replay->items.begin(),
                            replay->items.end());
      return true;
    }
  }
  arena_.Reset();
  auto parsed = ParseFeed(body, &arena_);
  if (!parsed.ok()) {
    ++report_->parse_failures;
    // An unparsable response proves nothing about the feed state: keep
    // the previous validator so a retry refetches the full body, drop
    // any cached document (it can no longer be trusted as current), and
    // report failure so the EI stays a candidate.
    if (cache_.has_value()) cache_->Invalidate(resource);
    return false;
  }
  const FeedDocumentView& view = **parsed;
  etag.assign(served_etag);
  report_->items_parsed += view.num_items;
  if (cache_.has_value()) {
    const FeedDocument& stored =
        cache_->Store(resource, served_etag, body, view.Materialize());
    current_items_.insert(current_items_.end(), stored.items.begin(),
                          stored.items.end());
  } else {
    for (const FeedItemView* item = view.first_item; item != nullptr;
         item = item->next) {
      FeedItem copy;
      copy.guid = std::string(item->guid);
      copy.title = std::string(item->title);
      copy.link = std::string(item->link);
      copy.description = std::string(item->description);
      copy.published = item->published;
      current_items_.push_back(std::move(copy));
    }
  }
  return true;
}

void FeedPullSession::FinishReport() {
  if (plan_.has_value()) {
    report_->fault_stats = plan_->stats();
    report_->latency_chronons = report_->fault_stats.latency_total;
  }
  if (cache_.has_value()) {
    report_->parse_cache_hits = cache_->stats().hits;
    report_->parse_cache_misses = cache_->stats().misses;
    report_->parse_cache_invalidations = cache_->stats().invalidations;
    report_->parse_cache_bytes_saved = cache_->stats().bytes_saved;
  }
  if (const TraceStore* store = network_->trace_store();
      store != nullptr) {
    const TraceStoreStats& stats = store->stats();
    report_->trace_pages_written = stats.pages_written;
    report_->trace_bytes_stored = stats.bytes_stored;
    report_->trace_in_memory_bytes = stats.in_memory_bytes;
    report_->trace_cache_hits = stats.cache_hits;
    report_->trace_cache_misses = stats.cache_misses;
    report_->trace_cache_evictions = stats.cache_evictions;
  }
}

PullSessionImage FeedPullSession::Capture() const {
  PullSessionImage image;
  image.etags = etags_;
  if (plan_.has_value()) image.fault_plan = plan_->Capture();
  if (cache_.has_value()) image.parse_cache = cache_->Capture();
  return image;
}

Status FeedPullSession::Restore(const PullSessionImage& image) {
  if (image.etags.size() != etags_.size()) {
    return Status::InvalidArgument(
        "session image resource count does not match the session");
  }
  if (image.fault_plan.has_value() != plan_.has_value()) {
    return Status::InvalidArgument(
        "session image and session disagree on the fault layer");
  }
  if (image.parse_cache.has_value() != cache_.has_value()) {
    return Status::InvalidArgument(
        "session image and session disagree on the parse cache");
  }
  etags_ = image.etags;
  if (plan_.has_value()) {
    PULLMON_RETURN_NOT_OK(plan_->Restore(*image.fault_plan));
  }
  if (cache_.has_value()) {
    PULLMON_RETURN_NOT_OK(cache_->Restore(*image.parse_cache));
  }
  return Status::OK();
}

MonitoringProxy::MonitoringProxy(const MonitoringProblem* problem,
                                 FeedNetwork* network, Policy* policy,
                                 ExecutionMode mode, ProxyOptions options)
    : problem_(problem),
      network_(network),
      policy_(policy),
      mode_(mode),
      options_(options) {}

Result<ProxyRunReport> MonitoringProxy::Run() {
  PULLMON_RETURN_NOT_OK(options_.faults.Validate());
  PULLMON_RETURN_NOT_OK(options_.retry.Validate());
  PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
  if (options_.trace_backend == TraceBackend::kPaged &&
      network_->trace_store() == nullptr) {
    return Status::InvalidArgument(
        "trace_backend is paged but the feed network replays an "
        "in-memory trace");
  }
  notifications_.clear();
  ProxyRunReport report;

  OnlineExecutor executor(problem_, policy_, mode_);
  executor.set_retry_policy(options_.retry);
  executor.set_breaker_options(options_.breaker);
  executor.set_backend(options_.backend);

  FeedPullSession session(network_, problem_->num_resources, options_,
                          &report);

  executor.set_probe_callback([&](ResourceId resource, Chronon now) {
    return session.Probe(resource, now);
  });

  executor.set_capture_callback([&](ProfileId profile,
                                    std::size_t t_interval_index,
                                    Chronon now) {
    // The push leg: deliver the captured t-interval to its client.
    ProxyNotification notification;
    notification.profile = profile;
    notification.t_interval_index = t_interval_index;
    notification.chronon = now;
    if (now == session.fetch_chronon()) {
      notification.items = session.current_items();
    }
    notifications_.push_back(std::move(notification));
    ++report.notifications_delivered;
  });

  PULLMON_ASSIGN_OR_RETURN(report.run, executor.Run());
  report.probes_failed = report.run.probes_failed;
  report.retries_issued = report.run.retries_issued;
  report.retry_probes_spent = report.run.retry_probes_spent;
  report.circuits_opened = report.run.circuits_opened;
  report.circuits_reopened = report.run.circuits_reopened;
  report.probation_probes = report.run.probation_probes;
  report.probation_successes = report.run.probation_successes;
  report.probes_suppressed = report.run.probes_suppressed;
  report.budget_reclaimed = report.run.budget_reclaimed;
  report.open_chronons_total = report.run.open_chronons_total;
  report.open_chronons_by_resource = report.run.open_chronons_by_resource;
  std::size_t total = problem_->TotalTIntervalCount();
  report.gc_lost_to_faults =
      total == 0 ? 0.0
                 : static_cast<double>(report.run.t_intervals_lost_to_faults) /
                       static_cast<double>(total);
  session.FinishReport();
  return report;
}

}  // namespace pullmon
