#include "sim/proxy.h"

#include "feeds/atom.h"

namespace pullmon {

MonitoringProxy::MonitoringProxy(const MonitoringProblem* problem,
                                 FeedNetwork* network, Policy* policy,
                                 ExecutionMode mode)
    : problem_(problem), network_(network), policy_(policy), mode_(mode) {}

Result<ProxyRunReport> MonitoringProxy::Run() {
  notifications_.clear();
  ProxyRunReport report;

  OnlineExecutor executor(problem_, policy_, mode_);

  // Items pulled during the current chronon, attached to notifications
  // delivered at that chronon.
  Chronon fetch_chronon = -1;
  std::vector<FeedItem> current_items;

  // Per-resource validators for conditional fetches: repeated probes of
  // an unchanged feed cost no bandwidth (HTTP If-None-Match semantics).
  std::vector<std::string> etags(
      static_cast<std::size_t>(problem_->num_resources));

  executor.set_probe_callback([&](ResourceId resource, Chronon now) {
    // The pull leg: catch the network up to "now" and fetch the feed.
    network_->AdvanceTo(now);
    if (now != fetch_chronon) {
      current_items.clear();
      fetch_chronon = now;
    }
    auto fetched = network_->ProbeConditional(
        resource, etags[static_cast<std::size_t>(resource)]);
    if (!fetched.ok()) {
      ++report.parse_failures;
      return;
    }
    ++report.feeds_fetched;
    etags[static_cast<std::size_t>(resource)] = fetched->etag;
    if (fetched->not_modified) {
      ++report.not_modified;
      return;  // nothing new to parse or deliver
    }
    report.feed_bytes += fetched->body.size();
    auto parsed = ParseFeed(fetched->body);
    if (!parsed.ok()) {
      ++report.parse_failures;
      return;
    }
    report.items_parsed += parsed->items.size();
    current_items.insert(current_items.end(), parsed->items.begin(),
                         parsed->items.end());
  });

  executor.set_capture_callback([&](ProfileId profile,
                                    std::size_t t_interval_index,
                                    Chronon now) {
    // The push leg: deliver the captured t-interval to its client.
    ProxyNotification notification;
    notification.profile = profile;
    notification.t_interval_index = t_interval_index;
    notification.chronon = now;
    if (now == fetch_chronon) notification.items = current_items;
    notifications_.push_back(std::move(notification));
    ++report.notifications_delivered;
  });

  PULLMON_ASSIGN_OR_RETURN(report.run, executor.Run());
  return report;
}

}  // namespace pullmon
