#include "sim/proxy.h"

#include "feeds/atom.h"
#include "util/arena.h"

namespace pullmon {

MonitoringProxy::MonitoringProxy(const MonitoringProblem* problem,
                                 FeedNetwork* network, Policy* policy,
                                 ExecutionMode mode, ProxyOptions options)
    : problem_(problem),
      network_(network),
      policy_(policy),
      mode_(mode),
      options_(options) {}

Result<ProxyRunReport> MonitoringProxy::Run() {
  PULLMON_RETURN_NOT_OK(options_.faults.Validate());
  PULLMON_RETURN_NOT_OK(options_.retry.Validate());
  PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
  notifications_.clear();
  ProxyRunReport report;

  OnlineExecutor executor(problem_, policy_, mode_);
  executor.set_retry_policy(options_.retry);
  executor.set_breaker_options(options_.breaker);
  executor.set_backend(options_.backend);

  // The fault layer sits between proxy and network only when some rate
  // is non-zero; a fresh plan per Run() makes repeated runs replay the
  // identical fault sequence.
  std::optional<FaultPlan> plan;
  if (!options_.faults.AllZero()) {
    plan.emplace(network_, options_.fault_seed, options_.faults);
  }

  // Items pulled during the current chronon, attached to notifications
  // delivered at that chronon.
  Chronon fetch_chronon = -1;
  std::vector<FeedItem> current_items;

  // Per-resource validators for conditional fetches: repeated probes of
  // an unchanged feed cost no bandwidth (HTTP If-None-Match semantics).
  std::vector<std::string> etags(
      static_cast<std::size_t>(problem_->num_resources));

  // The probe hot path parses into one arena, Reset() per document;
  // after warm-up a parse performs no heap allocation.
  Arena arena;

  // Optional ETag/content-keyed parse cache; replayed documents are
  // byte-identical to what parsing would have produced, so the run's
  // observable behavior does not depend on the cache being on.
  std::optional<ParseCache> cache;
  if (options_.parse_cache) {
    cache.emplace(static_cast<std::size_t>(problem_->num_resources));
  }

  executor.set_probe_callback([&](ResourceId resource, Chronon now) {
    // The pull leg: catch the network up to "now" and fetch the feed.
    // Clock advancement goes through the fault plan when one exists, so
    // its per-resource outage chains see the current chronon.
    if (plan.has_value()) {
      plan->AdvanceTo(now);
    } else {
      network_->AdvanceTo(now);
    }
    if (now != fetch_chronon) {
      current_items.clear();
      fetch_chronon = now;
    }
    std::string& etag = etags[static_cast<std::size_t>(resource)];
    // The response, unified across both paths as views: into the
    // server's reused buffers on the direct path, or into `faulted`
    // (alive for the rest of the probe) on the fault-plan path.
    bool not_modified = false;
    std::string_view body;
    std::string_view served_etag;
    bool mangled = false;
    FaultPlan::FaultedFetch faulted;
    if (plan.has_value()) {
      auto outcome = plan->ProbeConditional(resource, etag);
      if (!outcome.ok()) {
        ++report.parse_failures;
        return false;
      }
      switch (outcome->fault) {
        case FaultPlan::FaultKind::kTimeout:
          ++report.timeouts;
          return false;
        case FaultPlan::FaultKind::kServerError:
          ++report.server_errors;
          return false;
        case FaultPlan::FaultKind::kOutage:
          ++report.outage_probes;
          return false;
        case FaultPlan::FaultKind::kNone:
          break;
      }
      if (outcome->truncated || outcome->corrupted) ++report.corrupt_bodies;
      faulted = std::move(*outcome);
      mangled = faulted.truncated || faulted.corrupted;
      not_modified = faulted.fetch.not_modified;
      body = faulted.fetch.body;
      served_etag = faulted.fetch.etag;
    } else {
      auto direct = network_->ProbeConditionalView(resource, etag);
      if (!direct.ok()) {
        ++report.parse_failures;
        return false;
      }
      not_modified = direct->not_modified;
      body = direct->body;
      served_etag = direct->etag;
    }
    ++report.feeds_fetched;
    if (not_modified) {
      ++report.not_modified;
      etag.assign(served_etag);
      return true;  // nothing new to parse or deliver
    }
    report.feed_bytes += body.size();
    if (cache.has_value()) {
      const FeedDocument* replay =
          cache->Lookup(resource, served_etag, body, mangled);
      if (replay != nullptr) {
        etag.assign(served_etag);
        report.items_parsed += replay->items.size();
        current_items.insert(current_items.end(), replay->items.begin(),
                             replay->items.end());
        return true;
      }
    }
    arena.Reset();
    auto parsed = ParseFeed(body, &arena);
    if (!parsed.ok()) {
      ++report.parse_failures;
      // An unparsable response proves nothing about the feed state:
      // keep the previous validator so a retry refetches the full body,
      // drop any cached document (it can no longer be trusted as
      // current), and report failure so the EI stays a candidate.
      if (cache.has_value()) cache->Invalidate(resource);
      return false;
    }
    const FeedDocumentView& view = **parsed;
    etag.assign(served_etag);
    report.items_parsed += view.num_items;
    if (cache.has_value()) {
      const FeedDocument& stored =
          cache->Store(resource, served_etag, body, view.Materialize());
      current_items.insert(current_items.end(), stored.items.begin(),
                           stored.items.end());
    } else {
      for (const FeedItemView* item = view.first_item; item != nullptr;
           item = item->next) {
        FeedItem copy;
        copy.guid = std::string(item->guid);
        copy.title = std::string(item->title);
        copy.link = std::string(item->link);
        copy.description = std::string(item->description);
        copy.published = item->published;
        current_items.push_back(std::move(copy));
      }
    }
    return true;
  });

  executor.set_capture_callback([&](ProfileId profile,
                                    std::size_t t_interval_index,
                                    Chronon now) {
    // The push leg: deliver the captured t-interval to its client.
    ProxyNotification notification;
    notification.profile = profile;
    notification.t_interval_index = t_interval_index;
    notification.chronon = now;
    if (now == fetch_chronon) notification.items = current_items;
    notifications_.push_back(std::move(notification));
    ++report.notifications_delivered;
  });

  PULLMON_ASSIGN_OR_RETURN(report.run, executor.Run());
  report.probes_failed = report.run.probes_failed;
  report.retries_issued = report.run.retries_issued;
  report.retry_probes_spent = report.run.retry_probes_spent;
  report.circuits_opened = report.run.circuits_opened;
  report.circuits_reopened = report.run.circuits_reopened;
  report.probation_probes = report.run.probation_probes;
  report.probation_successes = report.run.probation_successes;
  report.probes_suppressed = report.run.probes_suppressed;
  report.budget_reclaimed = report.run.budget_reclaimed;
  report.open_chronons_total = report.run.open_chronons_total;
  report.open_chronons_by_resource = report.run.open_chronons_by_resource;
  std::size_t total = problem_->TotalTIntervalCount();
  report.gc_lost_to_faults =
      total == 0 ? 0.0
                 : static_cast<double>(report.run.t_intervals_lost_to_faults) /
                       static_cast<double>(total);
  if (plan.has_value()) {
    report.fault_stats = plan->stats();
    report.latency_chronons = report.fault_stats.latency_total;
  }
  if (cache.has_value()) {
    report.parse_cache_hits = cache->stats().hits;
    report.parse_cache_misses = cache->stats().misses;
    report.parse_cache_invalidations = cache->stats().invalidations;
    report.parse_cache_bytes_saved = cache->stats().bytes_saved;
  }
  return report;
}

}  // namespace pullmon
