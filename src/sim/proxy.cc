#include "sim/proxy.h"

#include "feeds/atom.h"

namespace pullmon {

MonitoringProxy::MonitoringProxy(const MonitoringProblem* problem,
                                 FeedNetwork* network, Policy* policy,
                                 ExecutionMode mode, ProxyOptions options)
    : problem_(problem),
      network_(network),
      policy_(policy),
      mode_(mode),
      options_(options) {}

Result<ProxyRunReport> MonitoringProxy::Run() {
  PULLMON_RETURN_NOT_OK(options_.faults.Validate());
  PULLMON_RETURN_NOT_OK(options_.retry.Validate());
  PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
  notifications_.clear();
  ProxyRunReport report;

  OnlineExecutor executor(problem_, policy_, mode_);
  executor.set_retry_policy(options_.retry);
  executor.set_breaker_options(options_.breaker);
  executor.set_backend(options_.backend);

  // The fault layer sits between proxy and network only when some rate
  // is non-zero; a fresh plan per Run() makes repeated runs replay the
  // identical fault sequence.
  std::optional<FaultPlan> plan;
  if (!options_.faults.AllZero()) {
    plan.emplace(network_, options_.fault_seed, options_.faults);
  }

  // Items pulled during the current chronon, attached to notifications
  // delivered at that chronon.
  Chronon fetch_chronon = -1;
  std::vector<FeedItem> current_items;

  // Per-resource validators for conditional fetches: repeated probes of
  // an unchanged feed cost no bandwidth (HTTP If-None-Match semantics).
  std::vector<std::string> etags(
      static_cast<std::size_t>(problem_->num_resources));

  executor.set_probe_callback([&](ResourceId resource, Chronon now) {
    // The pull leg: catch the network up to "now" and fetch the feed.
    // Clock advancement goes through the fault plan when one exists, so
    // its per-resource outage chains see the current chronon.
    if (plan.has_value()) {
      plan->AdvanceTo(now);
    } else {
      network_->AdvanceTo(now);
    }
    if (now != fetch_chronon) {
      current_items.clear();
      fetch_chronon = now;
    }
    std::string& etag = etags[static_cast<std::size_t>(resource)];
    FeedServer::ConditionalFetch fetched;
    if (plan.has_value()) {
      auto outcome = plan->ProbeConditional(resource, etag);
      if (!outcome.ok()) {
        ++report.parse_failures;
        return false;
      }
      switch (outcome->fault) {
        case FaultPlan::FaultKind::kTimeout:
          ++report.timeouts;
          return false;
        case FaultPlan::FaultKind::kServerError:
          ++report.server_errors;
          return false;
        case FaultPlan::FaultKind::kOutage:
          ++report.outage_probes;
          return false;
        case FaultPlan::FaultKind::kNone:
          break;
      }
      if (outcome->truncated || outcome->corrupted) ++report.corrupt_bodies;
      fetched = std::move(outcome->fetch);
    } else {
      auto direct = network_->ProbeConditional(resource, etag);
      if (!direct.ok()) {
        ++report.parse_failures;
        return false;
      }
      fetched = std::move(*direct);
    }
    ++report.feeds_fetched;
    if (fetched.not_modified) {
      ++report.not_modified;
      etag = fetched.etag;
      return true;  // nothing new to parse or deliver
    }
    report.feed_bytes += fetched.body.size();
    auto parsed = ParseFeed(fetched.body);
    if (!parsed.ok()) {
      ++report.parse_failures;
      // An unparsable response proves nothing about the feed state:
      // keep the previous validator so a retry refetches the full body,
      // and report failure so the EI stays a candidate.
      return false;
    }
    etag = fetched.etag;
    report.items_parsed += parsed->items.size();
    current_items.insert(current_items.end(), parsed->items.begin(),
                         parsed->items.end());
    return true;
  });

  executor.set_capture_callback([&](ProfileId profile,
                                    std::size_t t_interval_index,
                                    Chronon now) {
    // The push leg: deliver the captured t-interval to its client.
    ProxyNotification notification;
    notification.profile = profile;
    notification.t_interval_index = t_interval_index;
    notification.chronon = now;
    if (now == fetch_chronon) notification.items = current_items;
    notifications_.push_back(std::move(notification));
    ++report.notifications_delivered;
  });

  PULLMON_ASSIGN_OR_RETURN(report.run, executor.Run());
  report.probes_failed = report.run.probes_failed;
  report.retries_issued = report.run.retries_issued;
  report.retry_probes_spent = report.run.retry_probes_spent;
  report.circuits_opened = report.run.circuits_opened;
  report.circuits_reopened = report.run.circuits_reopened;
  report.probation_probes = report.run.probation_probes;
  report.probation_successes = report.run.probation_successes;
  report.probes_suppressed = report.run.probes_suppressed;
  report.budget_reclaimed = report.run.budget_reclaimed;
  report.open_chronons_total = report.run.open_chronons_total;
  report.open_chronons_by_resource = report.run.open_chronons_by_resource;
  std::size_t total = problem_->TotalTIntervalCount();
  report.gc_lost_to_faults =
      total == 0 ? 0.0
                 : static_cast<double>(report.run.t_intervals_lost_to_faults) /
                       static_cast<double>(total);
  if (plan.has_value()) {
    report.fault_stats = plan->stats();
    report.latency_chronons = report.fault_stats.latency_total;
  }
  return report;
}

}  // namespace pullmon
