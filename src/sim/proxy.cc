#include "sim/proxy.h"

#include <iterator>
#include <utility>

#include "core/parallel_executor.h"
#include "feeds/atom.h"
#include "util/logging.h"

namespace pullmon {

FeedPullSession::FeedPullSession(FeedNetwork* network, int num_resources,
                                 const ProxyOptions& options,
                                 ProxyRunReport* report)
    : network_(network),
      report_(report),
      etags_(static_cast<std::size_t>(num_resources)) {
  // The fault layer sits between session and network only when some rate
  // is non-zero; a fresh plan per session makes repeated runs replay the
  // identical fault sequence.
  if (!options.faults.AllZero()) {
    plan_.emplace(network_, options.fault_seed, options.faults);
  }
  if (options.parse_cache) {
    cache_.emplace(static_cast<std::size_t>(num_resources));
  }
}

bool FeedPullSession::Probe(ResourceId resource, Chronon now) {
  // The pull leg: catch the network up to "now" and fetch the feed.
  // Clock advancement goes through the fault plan when one exists, so
  // its per-resource outage chains see the current chronon.
  if (plan_.has_value()) {
    plan_->AdvanceTo(now);
  } else {
    network_->AdvanceTo(now);
  }
  if (now != fetch_chronon_) {
    current_items_.clear();
    fetch_chronon_ = now;
  }
  std::string& etag = etags_[static_cast<std::size_t>(resource)];
  // The response, unified across both paths as views: into the server's
  // reused buffers on the direct path, or into `faulted` (alive for the
  // rest of the probe) on the fault-plan path.
  bool not_modified = false;
  std::string_view body;
  std::string_view served_etag;
  bool mangled = false;
  FaultPlan::FaultedFetch faulted;
  if (plan_.has_value()) {
    auto outcome = plan_->ProbeConditional(resource, etag);
    if (!outcome.ok()) {
      ++report_->parse_failures;
      return false;
    }
    switch (outcome->fault) {
      case FaultPlan::FaultKind::kTimeout:
        ++report_->timeouts;
        return false;
      case FaultPlan::FaultKind::kServerError:
        ++report_->server_errors;
        return false;
      case FaultPlan::FaultKind::kOutage:
        ++report_->outage_probes;
        return false;
      case FaultPlan::FaultKind::kNone:
        break;
    }
    if (outcome->truncated || outcome->corrupted) ++report_->corrupt_bodies;
    faulted = std::move(*outcome);
    mangled = faulted.truncated || faulted.corrupted;
    not_modified = faulted.fetch.not_modified;
    body = faulted.fetch.body;
    served_etag = faulted.fetch.etag;
  } else {
    auto direct = network_->ProbeConditionalView(resource, etag);
    if (!direct.ok()) {
      ++report_->parse_failures;
      return false;
    }
    not_modified = direct->not_modified;
    body = direct->body;
    served_etag = direct->etag;
  }
  ++report_->feeds_fetched;
  if (not_modified) {
    ++report_->not_modified;
    etag.assign(served_etag);
    return true;  // nothing new to parse or deliver
  }
  report_->feed_bytes += body.size();
  if (cache_.has_value()) {
    const FeedDocument* replay =
        cache_->Lookup(resource, served_etag, body, mangled);
    if (replay != nullptr) {
      etag.assign(served_etag);
      report_->items_parsed += replay->items.size();
      current_items_.insert(current_items_.end(), replay->items.begin(),
                            replay->items.end());
      return true;
    }
  }
  arena_.Reset();
  auto parsed = ParseFeed(body, &arena_);
  if (!parsed.ok()) {
    ++report_->parse_failures;
    // An unparsable response proves nothing about the feed state: keep
    // the previous validator so a retry refetches the full body, drop
    // any cached document (it can no longer be trusted as current), and
    // report failure so the EI stays a candidate.
    if (cache_.has_value()) cache_->Invalidate(resource);
    return false;
  }
  const FeedDocumentView& view = **parsed;
  etag.assign(served_etag);
  report_->items_parsed += view.num_items;
  if (cache_.has_value()) {
    const FeedDocument& stored =
        cache_->Store(resource, served_etag, body, view.Materialize());
    current_items_.insert(current_items_.end(), stored.items.begin(),
                          stored.items.end());
  } else {
    for (const FeedItemView* item = view.first_item; item != nullptr;
         item = item->next) {
      FeedItem copy;
      copy.guid = std::string(item->guid);
      copy.title = std::string(item->title);
      copy.link = std::string(item->link);
      copy.description = std::string(item->description);
      copy.published = item->published;
      current_items_.push_back(std::move(copy));
    }
  }
  return true;
}

void FeedPullSession::BeginParallelChronon(int num_workers) {
  attempts_.clear();
  while (lane_arenas_.size() < static_cast<std::size_t>(num_workers)) {
    lane_arenas_.emplace_back();
  }
}

bool FeedPullSession::DecideAttempt(ResourceId resource, Chronon now,
                                    int token) {
  // Identical clock/buffer maintenance to the serial Probe(): the clock
  // advances (once per chronon in practice) and the notification item
  // buffer resets on the first attempt of a new chronon.
  if (plan_.has_value()) {
    plan_->AdvanceTo(now);
  } else {
    network_->AdvanceTo(now);
  }
  if (now != fetch_chronon_) {
    current_items_.clear();
    fetch_chronon_ = now;
  }
  PULLMON_CHECK(static_cast<std::size_t>(token) == attempts_.size());
  attempts_.emplace_back();
  AttemptRecord& rec = attempts_.back();
  rec.resource = resource;
  rec.if_none_match = etags_[static_cast<std::size_t>(resource)];
  if (!plan_.has_value()) {
    // Fault-free fetch of a pristine WriteFeed body: it always parses,
    // so success is known now and the fetch/parse/cache work defers to
    // the execute phase.
    return true;
  }
  auto decision = plan_->DecideProbe(resource, rec.if_none_match);
  if (!decision.ok()) {
    rec.decide_error = true;
    rec.done = true;
    return false;
  }
  rec.decision = *decision;
  if (rec.decision->fault != FaultPlan::FaultKind::kNone) {
    // Swallowed by the fault: nothing to fetch, the commit phase applies
    // the counter.
    rec.done = true;
    return false;
  }
  rec.mangled = rec.decision->truncated || rec.decision->corrupted;
  if (rec.mangled) {
    // The only attempts whose success depends on the parse outcome:
    // resolve inline on the serial arena (rare by construction — the
    // mangling rates are fault knobs).
    auto outcome =
        plan_->ExecuteDecision(resource, rec.if_none_match, *rec.decision);
    PULLMON_CHECK(outcome.ok());
    rec.done = true;
    return ResolveBody(&rec, outcome->fetch.not_modified,
                       outcome->fetch.body, outcome->fetch.etag, &arena_);
  }
  // Clean fetch: not_modified is predicted exactly by the decision, and
  // a modified body is pristine, so the attempt succeeds either way.
  return true;
}

void FeedPullSession::ExecuteAttempt(int token, int worker) {
  AttemptRecord& rec = attempts_[static_cast<std::size_t>(token)];
  if (rec.done) return;
  Arena* arena = &lane_arenas_[static_cast<std::size_t>(worker)];
  bool ok = false;
  if (plan_.has_value()) {
    auto outcome = plan_->ExecuteDecision(rec.resource, rec.if_none_match,
                                          *rec.decision);
    PULLMON_CHECK(outcome.ok());
    ok = ResolveBody(&rec, outcome->fetch.not_modified, outcome->fetch.body,
                     outcome->fetch.etag, arena);
  } else {
    auto direct =
        network_->ProbeConditionalView(rec.resource, rec.if_none_match);
    PULLMON_CHECK(direct.ok());
    ok = ResolveBody(&rec, direct->not_modified, direct->body, direct->etag,
                     arena);
  }
  // Deferred attempts were predicted successful at decide time; the
  // control pass (retries, breaker, captures) already ran on that
  // prediction, so a pristine body failing to parse here would be a
  // divergence bug, not a recoverable fault.
  PULLMON_CHECK(ok);
  rec.done = true;
}

bool FeedPullSession::ResolveBody(AttemptRecord* rec, bool not_modified,
                                  std::string_view body,
                                  std::string_view served_etag,
                                  Arena* arena) {
  rec->not_modified = not_modified;
  rec->served_etag.assign(served_etag);
  if (not_modified) return true;
  rec->body_size = body.size();
  if (cache_.has_value()) {
    const FeedDocument* replay = cache_->Lookup(
        rec->resource, served_etag, body, rec->mangled, &rec->cache_delta);
    if (replay != nullptr) {
      rec->cache_hit = true;
      rec->items = replay->items;
      return true;
    }
  }
  arena->Reset();
  auto parsed = ParseFeed(body, arena);
  if (!parsed.ok()) {
    rec->parse_failed = true;
    if (cache_.has_value()) {
      cache_->Invalidate(rec->resource, &rec->cache_delta);
    }
    return false;
  }
  const FeedDocumentView& view = **parsed;
  if (cache_.has_value()) {
    const FeedDocument& stored =
        cache_->Store(rec->resource, served_etag, body, view.Materialize());
    rec->items = stored.items;
  } else {
    rec->items.reserve(view.num_items);
    for (const FeedItemView* item = view.first_item; item != nullptr;
         item = item->next) {
      FeedItem copy;
      copy.guid = std::string(item->guid);
      copy.title = std::string(item->title);
      copy.link = std::string(item->link);
      copy.description = std::string(item->description);
      copy.published = item->published;
      rec->items.push_back(std::move(copy));
    }
  }
  return true;
}

void FeedPullSession::CommitAttempt(int token) {
  AttemptRecord& rec = attempts_[static_cast<std::size_t>(token)];
  PULLMON_CHECK(rec.done);
  if (rec.decide_error) {
    ++report_->parse_failures;
    return;
  }
  if (rec.decision.has_value()) {
    switch (rec.decision->fault) {
      case FaultPlan::FaultKind::kTimeout:
        ++report_->timeouts;
        return;
      case FaultPlan::FaultKind::kServerError:
        ++report_->server_errors;
        return;
      case FaultPlan::FaultKind::kOutage:
        ++report_->outage_probes;
        return;
      case FaultPlan::FaultKind::kNone:
        break;
    }
    if (rec.mangled) ++report_->corrupt_bodies;
  }
  ++report_->feeds_fetched;
  std::string& etag = etags_[static_cast<std::size_t>(rec.resource)];
  if (rec.not_modified) {
    ++report_->not_modified;
    etag.assign(rec.served_etag);
    return;
  }
  report_->feed_bytes += rec.body_size;
  // The cache-stat totals are sums of per-attempt deltas either way, so
  // merging here (in canonical attempt order) reproduces the serial
  // counters exactly.
  if (cache_.has_value()) cache_->MergeStats(rec.cache_delta);
  if (rec.parse_failed) {
    ++report_->parse_failures;
    return;
  }
  etag.assign(rec.served_etag);
  report_->items_parsed += rec.items.size();
  current_items_.insert(current_items_.end(),
                        std::make_move_iterator(rec.items.begin()),
                        std::make_move_iterator(rec.items.end()));
}

void FeedPullSession::FinishReport() {
  if (plan_.has_value()) {
    report_->fault_stats = plan_->stats();
    report_->latency_chronons = report_->fault_stats.latency_total;
  }
  if (cache_.has_value()) {
    report_->parse_cache_hits = cache_->stats().hits;
    report_->parse_cache_misses = cache_->stats().misses;
    report_->parse_cache_invalidations = cache_->stats().invalidations;
    report_->parse_cache_bytes_saved = cache_->stats().bytes_saved;
  }
  if (const TraceStore* store = network_->trace_store();
      store != nullptr) {
    const TraceStoreStats& stats = store->stats();
    report_->trace_pages_written = stats.pages_written;
    report_->trace_bytes_stored = stats.bytes_stored;
    report_->trace_in_memory_bytes = stats.in_memory_bytes;
    report_->trace_cache_hits = stats.cache_hits;
    report_->trace_cache_misses = stats.cache_misses;
    report_->trace_cache_evictions = stats.cache_evictions;
  }
}

PullSessionImage FeedPullSession::Capture() const {
  PullSessionImage image;
  image.etags = etags_;
  if (plan_.has_value()) image.fault_plan = plan_->Capture();
  if (cache_.has_value()) image.parse_cache = cache_->Capture();
  return image;
}

Status FeedPullSession::Restore(const PullSessionImage& image) {
  if (image.etags.size() != etags_.size()) {
    return Status::InvalidArgument(
        "session image resource count does not match the session");
  }
  if (image.fault_plan.has_value() != plan_.has_value()) {
    return Status::InvalidArgument(
        "session image and session disagree on the fault layer");
  }
  if (image.parse_cache.has_value() != cache_.has_value()) {
    return Status::InvalidArgument(
        "session image and session disagree on the parse cache");
  }
  etags_ = image.etags;
  if (plan_.has_value()) {
    PULLMON_RETURN_NOT_OK(plan_->Restore(*image.fault_plan));
  }
  if (cache_.has_value()) {
    PULLMON_RETURN_NOT_OK(cache_->Restore(*image.parse_cache));
  }
  return Status::OK();
}

MonitoringProxy::MonitoringProxy(const MonitoringProblem* problem,
                                 FeedNetwork* network, Policy* policy,
                                 ExecutionMode mode, ProxyOptions options)
    : problem_(problem),
      network_(network),
      policy_(policy),
      mode_(mode),
      options_(options) {}

Result<ProxyRunReport> MonitoringProxy::Run() {
  PULLMON_RETURN_NOT_OK(options_.faults.Validate());
  PULLMON_RETURN_NOT_OK(options_.retry.Validate());
  PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
  if (options_.trace_backend == TraceBackend::kPaged &&
      network_->trace_store() == nullptr) {
    return Status::InvalidArgument(
        "trace_backend is paged but the feed network replays an "
        "in-memory trace");
  }
  notifications_.clear();
  ProxyRunReport report;

  OnlineExecutor executor(problem_, policy_, mode_);
  executor.set_retry_policy(options_.retry);
  executor.set_breaker_options(options_.breaker);
  executor.set_backend(options_.backend);

  FeedPullSession session(network_, problem_->num_resources, options_,
                          &report);

  executor.set_probe_callback([&](ResourceId resource, Chronon now) {
    return session.Probe(resource, now);
  });

  if (options_.backend == ExecutorBackend::kParallel) {
    executor.set_threads(options_.threads);
    ParallelProbeHooks hooks;
    hooks.begin_chronon = [&session](Chronon, int num_workers) {
      session.BeginParallelChronon(num_workers);
    };
    hooks.decide = [&session](ResourceId resource, Chronon now, int token) {
      return session.DecideAttempt(resource, now, token);
    };
    hooks.execute = [&session](const std::vector<int>& tokens, int worker) {
      for (int token : tokens) session.ExecuteAttempt(token, worker);
    };
    hooks.commit = [&session](int token) { session.CommitAttempt(token); };
    executor.set_parallel_hooks(std::move(hooks));
  }

  executor.set_capture_callback([&](ProfileId profile,
                                    std::size_t t_interval_index,
                                    Chronon now) {
    // The push leg: deliver the captured t-interval to its client.
    ProxyNotification notification;
    notification.profile = profile;
    notification.t_interval_index = t_interval_index;
    notification.chronon = now;
    if (now == session.fetch_chronon()) {
      notification.items = session.current_items();
    }
    notifications_.push_back(std::move(notification));
    ++report.notifications_delivered;
  });

  PULLMON_ASSIGN_OR_RETURN(report.run, executor.Run());
  report.probes_failed = report.run.probes_failed;
  report.retries_issued = report.run.retries_issued;
  report.retry_probes_spent = report.run.retry_probes_spent;
  report.circuits_opened = report.run.circuits_opened;
  report.circuits_reopened = report.run.circuits_reopened;
  report.probation_probes = report.run.probation_probes;
  report.probation_successes = report.run.probation_successes;
  report.probes_suppressed = report.run.probes_suppressed;
  report.budget_reclaimed = report.run.budget_reclaimed;
  report.open_chronons_total = report.run.open_chronons_total;
  report.open_chronons_by_resource = report.run.open_chronons_by_resource;
  report.shard_count = report.run.shard_count;
  report.shard_candidates_scored = report.run.shard_candidates_scored;
  report.shard_probes_executed = report.run.shard_probes_executed;
  report.shard_merge_entries = report.run.shard_merge_entries;
  std::size_t total = problem_->TotalTIntervalCount();
  report.gc_lost_to_faults =
      total == 0 ? 0.0
                 : static_cast<double>(report.run.t_intervals_lost_to_faults) /
                       static_cast<double>(total);
  session.FinishReport();
  return report;
}

}  // namespace pullmon
