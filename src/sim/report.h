#ifndef PULLMON_SIM_REPORT_H_
#define PULLMON_SIM_REPORT_H_

#include <string>
#include <vector>

#include "sim/experiment.h"
#include "util/status.h"

namespace pullmon {

/// Accumulates the rows of a one-parameter sweep (one ComparisonResult
/// per swept value) and renders them as an aligned console table, CSV,
/// or Markdown — the machine-readable complement of the benchmark
/// harnesses' stdout tables.
class SweepReport {
 public:
  /// `parameter` is the swept knob's name (e.g. "budget").
  explicit SweepReport(std::string parameter)
      : parameter_(std::move(parameter)) {}

  /// Appends one sweep point. All points must carry the same policy
  /// line-up in the same order (InvalidArgument otherwise).
  Status Add(std::string value, const ComparisonResult& result);

  std::size_t num_points() const { return rows_.size(); }

  /// Aligned fixed-width text (same layout the benches print).
  std::string ToTable() const;

  /// "param,<policy> gc,<policy> ci95,..." CSV with one row per point.
  std::string ToCsv() const;

  /// GitHub-flavored Markdown table.
  std::string ToMarkdown() const;

  /// Writes ToCsv() to a file.
  Status WriteCsvFile(const std::string& path) const;

 private:
  struct Cell {
    double gc_mean = 0.0;
    double gc_ci95 = 0.0;
    double runtime_ms = 0.0;
  };
  struct Row {
    std::string value;
    std::vector<Cell> cells;
  };

  std::string parameter_;
  std::vector<std::string> policy_labels_;
  std::vector<Row> rows_;
};

}  // namespace pullmon

#endif  // PULLMON_SIM_REPORT_H_
