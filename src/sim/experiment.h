#ifndef PULLMON_SIM_EXPERIMENT_H_
#define PULLMON_SIM_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/online_executor.h"
#include "core/problem.h"
#include "offline/local_ratio.h"
#include "sim/config.h"
#include "sim/proxy.h"
#include "util/stats.h"
#include "util/status.h"

namespace pullmon {

/// A policy under evaluation: heuristic name plus execution mode.
struct PolicySpec {
  std::string policy;  // accepted by MakePolicy
  ExecutionMode mode = ExecutionMode::kPreemptive;

  /// "MRSF(P)" / "S-EDF(NP)" — the paper's labeling convention.
  std::string Label() const;
};

/// The policy line-up used throughout Section 5.
std::vector<PolicySpec> StandardPolicySpecs();

/// Instantiates a problem from a configuration and seed: generates the
/// update trace (Poisson or auction), derives profiles with the
/// three-stage generator, and attaches the uniform budget. When
/// `trace_out` is non-null it receives the generated update trace (the
/// proxy path replays it through a FeedNetwork).
///
/// With config.trace_backend == kPaged the trace is generated straight
/// into a compressed TraceStore (profiles derived through its page
/// cache, so nothing is ever fully resident) and `store_out` — if
/// non-null — receives it; `trace_out` is left untouched. The two
/// backends consume the seed identically, so they build the same
/// problem from the same events.
Result<MonitoringProblem> BuildProblem(
    const SimulationConfig& config, uint64_t seed,
    UpdateTrace* trace_out = nullptr,
    std::optional<TraceStore>* store_out = nullptr);

/// Runs the *physical* proxy path once: generates the instance, replays
/// its trace through a FeedNetwork (buffer capacity, fault rates, and
/// the retry policy all from `config`), and drives MonitoringProxy with
/// the given policy. Deterministic in (config, spec, seed).
Result<ProxyRunReport> RunProxyOnce(const SimulationConfig& config,
                                    const PolicySpec& spec, uint64_t seed);

/// Runs the churn-capable monitoring service once (sim/churn.cc):
/// generates the instance, submits each t-interval the chronon its
/// earliest EI opens, replays the generated churn stream
/// (cancel/edit/unregister with Zipf client activity) against a
/// DynamicMonitor, and pulls every scheduled probe through the same
/// FeedPullSession as the proxy path. `config.executor_backend` selects
/// the monitor's index maintenance (indexed -> incremental delete,
/// reference -> rebuild oracle); both are decision-identical.
/// Deterministic in (config, spec, seed).
Result<ProxyRunReport> RunChurnOnce(const SimulationConfig& config,
                                    const PolicySpec& spec, uint64_t seed);

/// Runs the closed-loop, oracle-free proxy path once (sim/adaptive.cc):
/// the monitor never sees the oracle EIs — an EstimationSession learns
/// per-resource update behavior from the proxy's own probe diffs and
/// 304s, predicted t-intervals are regenerated every
/// config.forecast_horizon chronons, and an epsilon fraction of
/// chronons divert one budget unit into an explore probe of the coldest
/// resource. Completeness is scored against the true profiles over the
/// combined schedule. RunProxyOnce dispatches here when
/// config.knowledge == KnowledgeModel::kEstimated. Deterministic in
/// (config, spec, seed) and bit-identical across executor backends and
/// thread counts.
Result<ProxyRunReport> RunAdaptiveOnce(const SimulationConfig& config,
                                       const PolicySpec& spec,
                                       uint64_t seed);

/// Aggregated outcome of one policy over the experiment repetitions.
struct PolicyOutcome {
  PolicySpec spec;
  RunningStats gc;
  RunningStats runtime_seconds;
  RunningStats probes_used;
};

/// Aggregated outcome of the offline Local-Ratio approximation.
struct OfflineOutcome {
  RunningStats gc;
  RunningStats runtime_seconds;
  double guaranteed_factor = 0.0;
};

struct ComparisonResult {
  std::vector<PolicyOutcome> policies;
  std::optional<OfflineOutcome> offline;
  /// Mean counts of the generated instances (diagnostics).
  RunningStats t_intervals;
  RunningStats eis;
};

/// Repeats (generate instance -> run every policy [-> run offline]) and
/// averages, following the paper's protocol of 10 repetitions per
/// setting (Section 5.1). All policies see identical instances within a
/// repetition. Repetitions are independent and deterministic in their
/// seed, so they can run on several threads; results are bitwise
/// identical regardless of the thread count (each repetition fills its
/// own record slot and the records are folded in repetition order on
/// one thread — see tests/thread_invariance_test.cc).
class ExperimentRunner {
 public:
  explicit ExperimentRunner(int repetitions = 10, uint64_t base_seed = 1234,
                            int threads = 1)
      : repetitions_(repetitions),
        base_seed_(base_seed),
        threads_(threads < 1 ? 1 : threads) {}

  Result<ComparisonResult> Run(const SimulationConfig& config,
                               const std::vector<PolicySpec>& specs,
                               bool include_offline = false,
                               const LocalRatioOptions& offline_options = {});

 private:
  /// The plain per-repetition measurements, one slot per repetition,
  /// so aggregation order is fixed no matter which thread ran it.
  struct RepetitionRecord {
    double t_intervals = 0.0;
    double eis = 0.0;
    struct PolicyRecord {
      double gc = 0.0;
      double runtime_seconds = 0.0;
      double probes_used = 0.0;
    };
    std::vector<PolicyRecord> policies;
    double offline_gc = 0.0;
    double offline_runtime_seconds = 0.0;
    double offline_guaranteed_factor = 0.0;
  };

  /// One repetition into its record slot — factored out so threads can
  /// run disjoint repetition ranges.
  Status RunRepetition(const SimulationConfig& config,
                       const std::vector<PolicySpec>& specs,
                       bool include_offline,
                       const LocalRatioOptions& offline_options, int rep,
                       RepetitionRecord* out);

  int repetitions_;
  uint64_t base_seed_;
  int threads_;
};

}  // namespace pullmon

#endif  // PULLMON_SIM_EXPERIMENT_H_
