#include "sim/churn.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "core/dynamic_monitor.h"
#include "core/parallel_executor.h"
#include "policies/policy_factory.h"
#include "sim/experiment.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace pullmon {

Status ChurnOptions::Validate() const {
  if (ops_per_chronon < 0.0) {
    return Status::InvalidArgument("churn ops_per_chronon must be >= 0");
  }
  if (cancel_fraction < 0.0 || edit_fraction < 0.0 ||
      unregister_fraction < 0.0) {
    return Status::InvalidArgument("churn mix fractions must be >= 0");
  }
  const double sum =
      cancel_fraction + edit_fraction + unregister_fraction;
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(StringFormat(
        "churn mix fractions must sum to 1 (got %.6f)", sum));
  }
  if (zipf_theta < 0.0) {
    return Status::InvalidArgument("churn zipf_theta must be >= 0");
  }
  return Status::OK();
}

const char* ChurnEventKindToString(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::Kind::kCancel:
      return "cancel";
    case ChurnEvent::Kind::kEdit:
      return "edit";
    case ChurnEvent::Kind::kUnregister:
      return "unregister";
  }
  return "?";
}

ChurnWorkload GenerateChurnWorkload(const ChurnOptions& options,
                                    int num_profiles, Chronon epoch_length,
                                    uint64_t seed) {
  ChurnWorkload workload;
  if (!options.enabled || options.ops_per_chronon <= 0.0 ||
      num_profiles <= 0) {
    return workload;
  }
  Rng rng(seed);
  ZipfDistribution activity(options.zipf_theta,
                            static_cast<uint64_t>(num_profiles));
  for (Chronon t = 0; t < epoch_length; ++t) {
    int64_t count = rng.NextPoisson(options.ops_per_chronon);
    for (int64_t i = 0; i < count; ++i) {
      ChurnEvent event;
      event.chronon = t;
      double mix = rng.NextDouble();
      if (mix < options.cancel_fraction) {
        event.kind = ChurnEvent::Kind::kCancel;
        ++workload.cancels;
      } else if (mix < options.cancel_fraction + options.edit_fraction) {
        event.kind = ChurnEvent::Kind::kEdit;
        ++workload.edits;
      } else {
        event.kind = ChurnEvent::Kind::kUnregister;
        ++workload.unregisters;
      }
      event.profile = static_cast<int>(activity.Sample(&rng)) - 1;
      event.pick = rng.Next();
      event.deadline_delta = static_cast<Chronon>(rng.NextInt(1, 12));
      event.weight_factor = 0.5 + rng.NextDouble();
      workload.events.push_back(event);
    }
  }
  return workload;
}

TInterval BuildEditReplacement(const TInterval& current, Chronon now,
                               Chronon epoch_length, Chronon delta,
                               double weight_factor) {
  TInterval replacement;
  for (const ExecutionInterval& ei : current.eis()) {
    if (ei.start < now) continue;
    ExecutionInterval moved = ei;
    moved.finish = std::min<Chronon>(ei.finish + delta, epoch_length - 1);
    replacement.AddEi(moved);
  }
  replacement.set_weight(current.weight() * weight_factor);
  return replacement;
}

namespace {

/// The telemetry mirroring shared by the serial and parallel churn
/// arms: DynamicMonitor and ParallelExecutor expose the identical
/// accessor surface, so one template covers both.
template <typename Monitor>
void FinalizeChurnReportImpl(const Monitor& monitor, bool breaker_enabled,
                             FeedPullSession* session,
                             ProxyRunReport* report) {
  const MonitorStats& ms = monitor.stats();
  report->run.schedule = monitor.schedule();
  report->run.completeness = monitor.Completeness();
  report->run.probes_used = ms.probes_used;
  report->run.t_intervals_completed = monitor.t_intervals_completed();
  report->run.t_intervals_failed = monitor.t_intervals_failed();
  report->run.candidates_scored = ms.candidates_scored;
  report->run.max_concurrent_candidates = ms.max_concurrent_candidates;
  report->run.probes_failed = ms.probes_failed;
  report->run.retries_issued = ms.retries_issued;
  report->run.retry_probes_spent = ms.retry_probes_spent;
  report->run.t_intervals_lost_to_faults = ms.t_intervals_lost_to_faults;
  const HealthStats& hs = monitor.health().stats();
  report->run.circuits_opened = hs.circuits_opened;
  report->run.circuits_reopened = hs.circuits_reopened;
  report->run.probation_probes = hs.probation_probes;
  report->run.probation_successes = hs.probation_successes;
  report->run.probes_suppressed = hs.probes_suppressed;
  report->run.budget_reclaimed = hs.budget_reclaimed;
  report->run.open_chronons_total = hs.open_chronons_total;
  if (breaker_enabled) {
    report->run.open_chronons_by_resource =
        monitor.health().OpenChrononsByResource();
  }
  // The monitor's own capture accounting must agree with the
  // schedule-based evaluation (cancelled submissions excluded).
  PULLMON_CHECK(report->run.completeness.captured_t_intervals ==
                monitor.t_intervals_completed());

  report->probes_failed = ms.probes_failed;
  report->retries_issued = ms.retries_issued;
  report->retry_probes_spent = ms.retry_probes_spent;
  report->circuits_opened = report->run.circuits_opened;
  report->circuits_reopened = report->run.circuits_reopened;
  report->probation_probes = report->run.probation_probes;
  report->probation_successes = report->run.probation_successes;
  report->probes_suppressed = report->run.probes_suppressed;
  report->budget_reclaimed = report->run.budget_reclaimed;
  report->open_chronons_total = report->run.open_chronons_total;
  report->open_chronons_by_resource = report->run.open_chronons_by_resource;
  std::size_t total = report->run.completeness.total_t_intervals;
  report->gc_lost_to_faults =
      total == 0
          ? 0.0
          : static_cast<double>(report->run.t_intervals_lost_to_faults) /
                static_cast<double>(total);
  report->churn_submitted = ms.submitted;
  report->churn_cancelled = ms.cancelled;
  report->churn_edited = ms.edited;
  report->churn_unregistered_profiles = ms.unregistered_profiles;
  report->orphaned_probes = ms.orphaned_probes;
  session->FinishReport();
}

/// Registers every profile, buckets arrivals, generates the churn
/// stream, and drives the monitor chronon by chronon — the epoch loop
/// shared verbatim by both executor backends. Churn operations apply
/// synchronously in both arms: the workload's pick-resolution
/// (`pick % live submission count`) depends on every earlier operation
/// of the same chronon having landed, so the parallel arm calls the
/// executor's churn surface directly rather than through its ingress
/// queue (the queue's drain-at-Step semantics are covered by the
/// dedicated thread-invariance and queue suites).
template <typename Monitor>
Status DriveChurnEpoch(Monitor* monitor, const MonitoringProblem& problem,
                       const SimulationConfig& config, uint64_t seed,
                       ProxyRunReport* report) {
  const Chronon epoch_length = problem.epoch.length;
  std::vector<std::vector<std::pair<ProfileId, const TInterval*>>>
      arrivals(static_cast<std::size_t>(epoch_length));
  std::vector<ProfileId> handle;
  handle.reserve(problem.profiles.size());
  for (const Profile& p : problem.profiles) {
    handle.push_back(monitor->RegisterProfile(p.name()));
    for (const TInterval& eta : p.t_intervals()) {
      if (eta.empty()) continue;
      Chronon at = eta.EarliestStart();
      if (at < 0 || at >= epoch_length) continue;
      arrivals[static_cast<std::size_t>(at)].emplace_back(handle.back(),
                                                          &eta);
    }
  }

  // The churn stream draws from its own generator, so enabling churn
  // perturbs no trace/profile/fault/policy randomness.
  ChurnWorkload workload = GenerateChurnWorkload(
      config.churn, static_cast<int>(problem.profiles.size()),
      epoch_length, config.churn.seed ^ (seed * 0x9E3779B97F4A7C15ULL));

  // Local shadow of each profile's submissions (the definition currently
  // live under each submission id), used to resolve churn targets and to
  // build edit replacements.
  std::vector<std::vector<TInterval>> defs(problem.profiles.size());

  std::size_t next_event = 0;
  for (Chronon now = 0; now < epoch_length; ++now) {
    for (const auto& [pid, eta] : arrivals[static_cast<std::size_t>(now)]) {
      auto submitted = monitor->Submit(pid, *eta);
      if (submitted.ok()) {
        defs[static_cast<std::size_t>(pid)].push_back(*eta);
      } else {
        // Arrivals for unregistered clients bounce — expected churn.
        ++report->churn_rejected_ops;
      }
    }
    while (next_event < workload.events.size() &&
           workload.events[next_event].chronon == now) {
      const ChurnEvent& event = workload.events[next_event++];
      auto pid = static_cast<std::size_t>(event.profile);
      int count = static_cast<int>(defs[pid].size());
      // An inactive client's op targets submission 0 (or a bogus id) on
      // purpose: rejected operations are part of the workload and keep
      // the error paths hot.
      int sub = count > 0
                    ? static_cast<int>(event.pick %
                                       static_cast<uint64_t>(count))
                    : 0;
      switch (event.kind) {
        case ChurnEvent::Kind::kCancel: {
          if (!monitor->Cancel(event.profile, sub).ok()) {
            ++report->churn_rejected_ops;
          }
          break;
        }
        case ChurnEvent::Kind::kEdit: {
          TInterval replacement;
          if (count > 0) {
            replacement = BuildEditReplacement(
                defs[pid][static_cast<std::size_t>(sub)], now,
                epoch_length, event.deadline_delta, event.weight_factor);
          }
          auto edited = monitor->Edit(event.profile, sub, replacement);
          if (edited.ok()) {
            defs[pid].push_back(std::move(replacement));
          } else {
            ++report->churn_rejected_ops;
          }
          break;
        }
        case ChurnEvent::Kind::kUnregister: {
          if (!monitor->Unregister(event.profile).ok()) {
            ++report->churn_rejected_ops;
          }
          break;
        }
      }
    }
    StepResult step;
    PULLMON_ASSIGN_OR_RETURN(step, monitor->Step());
    report->notifications_delivered += step.captured.size();
  }
  return Status::OK();
}

}  // namespace

void FinalizeChurnReport(const DynamicMonitor& monitor, bool breaker_enabled,
                         FeedPullSession* session, ProxyRunReport* report) {
  FinalizeChurnReportImpl(monitor, breaker_enabled, session, report);
}

Result<ProxyRunReport> RunChurnOnce(const SimulationConfig& config,
                                    const PolicySpec& spec, uint64_t seed) {
  PULLMON_RETURN_NOT_OK(config.churn.Validate());
  PULLMON_RETURN_NOT_OK(config.faults.Validate());
  PULLMON_RETURN_NOT_OK(config.retry.Validate());
  PULLMON_RETURN_NOT_OK(config.breaker.Validate());

  UpdateTrace trace(0, 0);
  std::optional<TraceStore> store;
  PULLMON_ASSIGN_OR_RETURN(MonitoringProblem problem,
                           BuildProblem(config, seed, &trace, &store));
  const auto buffer_capacity = static_cast<std::size_t>(
      config.feed_buffer_capacity < 1 ? 1 : config.feed_buffer_capacity);
  std::optional<FeedNetwork> network_holder;
  if (store.has_value()) {
    network_holder.emplace(&*store, buffer_capacity);
  } else {
    network_holder.emplace(&trace, buffer_capacity);
  }
  FeedNetwork& network = *network_holder;
  PolicyOptions po;
  po.random_seed = seed ^ 0x5bf03635ULL;
  po.num_resources = problem.num_resources;
  PULLMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                           MakePolicy(spec.policy, po));

  ProxyRunReport report;
  ProxyOptions popts;
  popts.faults = config.faults;
  popts.fault_seed = config.fault_seed ^ (seed * 0x9E3779B97F4A7C15ULL);
  popts.retry = config.retry;
  popts.breaker = config.breaker;
  popts.parse_cache = config.parse_cache;
  FeedPullSession session(&network, problem.num_resources, popts, &report);

  const auto run_start = std::chrono::steady_clock::now();
  if (config.executor_backend == ExecutorBackend::kParallel) {
    ParallelOptions opts;
    opts.retry = config.retry;
    opts.breaker = config.breaker;
    opts.threads = config.threads;
    ParallelExecutor monitor(problem.num_resources, problem.epoch.length,
                             problem.budget, policy.get(), spec.mode, opts);
    monitor.set_probe_callback([&](ResourceId resource, Chronon now) {
      return session.Probe(resource, now);
    });
    ParallelProbeHooks hooks;
    hooks.begin_chronon = [&session](Chronon, int num_workers) {
      session.BeginParallelChronon(num_workers);
    };
    hooks.decide = [&session](ResourceId resource, Chronon now, int token) {
      return session.DecideAttempt(resource, now, token);
    };
    hooks.execute = [&session](const std::vector<int>& tokens, int worker) {
      for (int token : tokens) session.ExecuteAttempt(token, worker);
    };
    hooks.commit = [&session](int token) { session.CommitAttempt(token); };
    monitor.set_probe_hooks(std::move(hooks));
    PULLMON_RETURN_NOT_OK(
        DriveChurnEpoch(&monitor, problem, config, seed, &report));
    report.run.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    FinalizeChurnReportImpl(monitor, config.breaker.enabled, &session,
                            &report);
    const ShardRunStats& ss = monitor.shard_stats();
    report.run.shard_count = static_cast<std::size_t>(ss.shard_count);
    report.run.shard_candidates_scored = ss.candidates_scored;
    report.run.shard_probes_executed = ss.probes_executed;
    report.run.shard_merge_entries = ss.merge_entries;
    report.shard_count = report.run.shard_count;
    report.shard_candidates_scored = report.run.shard_candidates_scored;
    report.shard_probes_executed = report.run.shard_probes_executed;
    report.shard_merge_entries = report.run.shard_merge_entries;
    return report;
  }

  MonitorOptions mo;
  mo.retry = config.retry;
  mo.breaker = config.breaker;
  // The backend switch maps onto the monitor's maintenance mode: the
  // reference backend runs the from-scratch rebuild oracle, so backend
  // differential tests cover churn too.
  mo.maintenance = config.executor_backend == ExecutorBackend::kReference
                       ? MonitorIndexMode::kRebuild
                       : MonitorIndexMode::kIncremental;
  DynamicMonitor monitor(problem.num_resources, problem.epoch.length,
                         problem.budget, policy.get(), spec.mode, mo);
  monitor.set_probe_callback([&](ResourceId resource, Chronon now) {
    return session.Probe(resource, now);
  });
  PULLMON_RETURN_NOT_OK(
      DriveChurnEpoch(&monitor, problem, config, seed, &report));
  report.run.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();
  // Mirror the scheduling/fault/health/churn telemetry the way
  // MonitoringProxy::Run does, so churn and proxy reports compare
  // field-for-field.
  FinalizeChurnReport(monitor, config.breaker.enabled, &session, &report);
  return report;
}

}  // namespace pullmon
