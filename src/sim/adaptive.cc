#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "core/completeness.h"
#include "core/dynamic_monitor.h"
#include "core/parallel_executor.h"
#include "estimation/estimation_session.h"
#include "policies/policy_factory.h"
#include "sim/experiment.h"
#include "trace/update_model.h"
#include "util/datetime.h"
#include "util/random.h"

namespace pullmon {

namespace {

/// Publication chronons of the items a just-committed probe appended to
/// the session's notification buffer, ascending. `items_before` is the
/// buffer size the caller sampled before the probe landed (zero when
/// the probe opened a new chronon, because the buffer resets then).
std::vector<Chronon> NewItemChronons(const FeedPullSession& session,
                                     Chronon now, std::size_t items_before,
                                     const ChrononClock& clock,
                                     Chronon epoch_length) {
  std::vector<Chronon> updates;
  if (session.fetch_chronon() != now) return updates;
  const std::vector<FeedItem>& items = session.current_items();
  for (std::size_t i = items_before; i < items.size(); ++i) {
    auto u = static_cast<Chronon>(clock.FromUnix(items[i].published));
    if (u < 0) u = 0;
    if (u >= epoch_length) u = epoch_length - 1;
    updates.push_back(u);
  }
  std::sort(updates.begin(), updates.end());
  return updates;
}

/// Serial probe path with observation capture: runs the session probe
/// and feeds its outcome — success, 304, and the new-item diff — to the
/// estimation session. Used by the serial monitor's probe callback and
/// by the explore probes of both arms.
bool ObservedProbe(FeedPullSession* session, EstimationSession* model,
                   const ProxyRunReport& report, ResourceId resource,
                   Chronon now, const ChrononClock& clock,
                   Chronon epoch_length) {
  ProbeObservation obs;
  obs.resource = resource;
  obs.probed_at = now;
  const std::size_t items_before = session->fetch_chronon() == now
                                       ? session->current_items().size()
                                       : 0;
  const std::size_t nm_before = report.not_modified;
  obs.success = session->Probe(resource, now);
  if (obs.success) {
    obs.not_modified = report.not_modified > nm_before;
    if (!obs.not_modified) {
      obs.update_chronons = NewItemChronons(*session, now, items_before,
                                            clock, epoch_length);
    }
  }
  model->Ingest(obs);
  return obs.success;
}

/// Per-chronon explore decisions, fixed up front from (seed, chronon)
/// alone so the budget split is identical across backends and thread
/// counts. A marked chronon diverts one budget unit from the monitor
/// into an epsilon probe of the coldest resource.
std::vector<uint8_t> PlanExploreChronons(const SimulationConfig& config,
                                         uint64_t seed) {
  std::vector<uint8_t> explore(
      static_cast<std::size_t>(config.epoch_length), 0);
  if (config.explore_eps <= 0.0 || config.budget < 1) return explore;
  for (Chronon t = 0; t < config.epoch_length; ++t) {
    uint64_t state = (seed * 0x9E3779B97F4A7C15ULL) ^
                     (static_cast<uint64_t>(t) + 0x632BE59BD9B4E019ULL);
    const double u =
        static_cast<double>(SplitMix64(&state) >> 11) * 0x1.0p-53;
    if (u < config.explore_eps) explore[static_cast<std::size_t>(t)] = 1;
  }
  return explore;
}

/// The coldest resource: maximal chronons since the estimator last saw
/// a probe of it (never-probed resources sort first), ties to the
/// lowest id. Purely a function of the ingested observation sequence.
ResourceId ColdestResource(const EstimationSession& model,
                           int num_resources) {
  ResourceId coldest = 0;
  Chronon best = model.LastProbe(0);
  for (ResourceId r = 1; r < num_resources; ++r) {
    const Chronon lp = model.LastProbe(r);
    if (lp < best) {
      best = lp;
      coldest = r;
    }
  }
  return coldest;
}

/// Registers every true profile, then drives the monitor chronon by
/// chronon: at each forecast-horizon boundary it regenerates predicted
/// t-intervals from the estimation session and submits them, fires the
/// chronon's explore probe if one is planned, and steps. The epoch loop
/// is shared verbatim by both executor backends (like DriveChurnEpoch).
template <typename Monitor>
Status DriveAdaptiveEpoch(Monitor* monitor,
                          const MonitoringProblem& problem,
                          const SimulationConfig& config,
                          EstimationSession* model,
                          FeedPullSession* session,
                          const std::vector<uint8_t>& explore_at,
                          const BudgetVector& monitor_budget,
                          const ChrononClock& clock,
                          Schedule* explore_schedule,
                          std::size_t* explore_issued,
                          ProxyRunReport* report) {
  const Chronon epoch_length = problem.epoch.length;
  EiDerivationOptions deriv;
  deriv.restriction = config.restriction;
  deriv.window = config.window;

  // The true profiles contribute only their identity and resource sets;
  // their oracle EIs never reach the monitor.
  std::vector<ProfileId> handle;
  std::vector<std::vector<ResourceId>> resources_of;
  handle.reserve(problem.profiles.size());
  resources_of.reserve(problem.profiles.size());
  for (const Profile& p : problem.profiles) {
    handle.push_back(monitor->RegisterProfile(p.name()));
    std::vector<ResourceId> rs;
    for (const TInterval& eta : p.t_intervals()) {
      for (const ExecutionInterval& ei : eta.eis()) {
        if (std::find(rs.begin(), rs.end(), ei.resource) == rs.end()) {
          rs.push_back(ei.resource);
        }
      }
    }
    resources_of.push_back(std::move(rs));
  }

  std::vector<std::vector<ExecutionInterval>> predicted(
      static_cast<std::size_t>(problem.num_resources));
  for (Chronon now = 0; now < epoch_length; ++now) {
    if (now % config.forecast_horizon == 0) {
      ++report->estimation_forecast_refreshes;
      const Chronon horizon_end =
          std::min<Chronon>(now + config.forecast_horizon, epoch_length);
      for (ResourceId r = 0; r < problem.num_resources; ++r) {
        predicted[static_cast<std::size_t>(r)] =
            DeriveExecutionIntervalsFromEvents(
                model->PredictEvents(r, now, horizon_end), r, epoch_length,
                deriv);
      }
      for (std::size_t p = 0; p < problem.profiles.size(); ++p) {
        std::size_t rounds = 0;
        for (ResourceId r : resources_of[p]) {
          rounds = std::max(rounds,
                            predicted[static_cast<std::size_t>(r)].size());
        }
        // The i-th predicted update round of each resource forms the
        // i-th predicted t-interval, mirroring how the oracle derivation
        // pairs update rounds across a profile's resources; resources
        // predicted to fall silent early simply drop out of later
        // rounds.
        for (std::size_t i = 0; i < rounds; ++i) {
          TInterval predicted_eta;
          for (ResourceId r : resources_of[p]) {
            const auto& eis = predicted[static_cast<std::size_t>(r)];
            if (i < eis.size()) predicted_eta.AddEi(eis[i]);
          }
          if (predicted_eta.empty()) continue;
          PULLMON_ASSIGN_OR_RETURN(
              int submission, monitor->Submit(handle[p], predicted_eta));
          (void)submission;
          ++report->estimation_predicted_t_intervals;
          report->estimation_predicted_eis += predicted_eta.size();
        }
      }
    }
    auto explore_probe = [&]() -> Status {
      const ResourceId target =
          ColdestResource(*model, problem.num_resources);
      ++(*explore_issued);
      ++report->estimation_explore_probes;
      if (ObservedProbe(session, model, *report, target, now, clock,
                        epoch_length)) {
        PULLMON_RETURN_NOT_OK(explore_schedule->AddProbe(target, now));
      }
      return Status::OK();
    };
    if (explore_at[static_cast<std::size_t>(now)] != 0) {
      PULLMON_RETURN_NOT_OK(explore_probe());
    }
    const std::size_t monitor_probes_before = monitor->stats().probes_used;
    StepResult step;
    PULLMON_ASSIGN_OR_RETURN(step, monitor->Step());
    report->notifications_delivered += step.captured.size();
    // Work conservation: budget units the monitor left on the table
    // (too few live predicted candidates this chronon) become further
    // explore probes instead of evaporating — this is also what
    // bootstraps the loop, since a cold estimator yields no candidates
    // at all. Each probe's observation lands before the next target is
    // chosen, so consecutive leftover probes walk the coldest
    // resources in round-robin order.
    const auto monitor_probes = static_cast<int>(
        monitor->stats().probes_used - monitor_probes_before);
    for (int leftover = monitor_budget.at(now) - monitor_probes;
         leftover > 0; --leftover) {
      PULLMON_RETURN_NOT_OK(explore_probe());
    }
  }
  return Status::OK();
}

/// Telemetry mirroring of the adaptive arms. Unlike the churn
/// finalizer, completeness is scored against the *true* profiles over
/// the combined monitor + explore schedule — the monitor only ever saw
/// predicted submissions, so its own capture accounting measures the
/// forecasts, not the ground truth.
template <typename Monitor>
Status FinalizeAdaptiveReport(const Monitor& monitor, bool breaker_enabled,
                              const MonitoringProblem& problem,
                              const Schedule& explore_schedule,
                              std::size_t explore_issued,
                              FeedPullSession* session,
                              ProxyRunReport* report) {
  const MonitorStats& ms = monitor.stats();
  Schedule combined(problem.epoch.length);
  for (Chronon t = 0; t < problem.epoch.length; ++t) {
    for (ResourceId r : monitor.schedule().ProbesAt(t)) {
      PULLMON_RETURN_NOT_OK(combined.AddProbe(r, t));
    }
    for (ResourceId r : explore_schedule.ProbesAt(t)) {
      PULLMON_RETURN_NOT_OK(combined.AddProbe(r, t));
    }
  }
  report->run.schedule = combined;
  report->run.completeness =
      EvaluateCompleteness(problem.profiles, combined);
  report->run.probes_used = ms.probes_used + explore_issued;
  report->run.t_intervals_completed = monitor.t_intervals_completed();
  report->run.t_intervals_failed = monitor.t_intervals_failed();
  report->run.candidates_scored = ms.candidates_scored;
  report->run.max_concurrent_candidates = ms.max_concurrent_candidates;
  report->run.probes_failed = ms.probes_failed;
  report->run.retries_issued = ms.retries_issued;
  report->run.retry_probes_spent = ms.retry_probes_spent;
  report->run.t_intervals_lost_to_faults = ms.t_intervals_lost_to_faults;
  const HealthStats& hs = monitor.health().stats();
  report->run.circuits_opened = hs.circuits_opened;
  report->run.circuits_reopened = hs.circuits_reopened;
  report->run.probation_probes = hs.probation_probes;
  report->run.probation_successes = hs.probation_successes;
  report->run.probes_suppressed = hs.probes_suppressed;
  report->run.budget_reclaimed = hs.budget_reclaimed;
  report->run.open_chronons_total = hs.open_chronons_total;
  if (breaker_enabled) {
    report->run.open_chronons_by_resource =
        monitor.health().OpenChrononsByResource();
  }
  report->probes_failed = ms.probes_failed;
  report->retries_issued = ms.retries_issued;
  report->retry_probes_spent = ms.retry_probes_spent;
  report->circuits_opened = report->run.circuits_opened;
  report->circuits_reopened = report->run.circuits_reopened;
  report->probation_probes = report->run.probation_probes;
  report->probation_successes = report->run.probation_successes;
  report->probes_suppressed = report->run.probes_suppressed;
  report->budget_reclaimed = report->run.budget_reclaimed;
  report->open_chronons_total = report->run.open_chronons_total;
  report->open_chronons_by_resource =
      report->run.open_chronons_by_resource;
  const std::size_t total = report->run.completeness.total_t_intervals;
  report->gc_lost_to_faults =
      total == 0
          ? 0.0
          : static_cast<double>(report->run.t_intervals_lost_to_faults) /
                static_cast<double>(total);
  session->FinishReport();
  return Status::OK();
}

}  // namespace

Result<ProxyRunReport> RunAdaptiveOnce(const SimulationConfig& config,
                                       const PolicySpec& spec,
                                       uint64_t seed) {
  PULLMON_RETURN_NOT_OK(config.faults.Validate());
  PULLMON_RETURN_NOT_OK(config.retry.Validate());
  PULLMON_RETURN_NOT_OK(config.breaker.Validate());
  if (config.estimator_half_life <= 0.0) {
    return Status::InvalidArgument(
        "--estimator-half-life must be > 0 chronons");
  }
  if (config.explore_eps < 0.0 || config.explore_eps > 1.0) {
    return Status::InvalidArgument("--explore-eps must be in [0, 1]");
  }
  if (config.forecast_horizon < 1) {
    return Status::InvalidArgument(
        "--forecast-horizon must be >= 1 chronons");
  }

  UpdateTrace trace(0, 0);
  std::optional<TraceStore> store;
  PULLMON_ASSIGN_OR_RETURN(MonitoringProblem problem,
                           BuildProblem(config, seed, &trace, &store));
  const auto buffer_capacity = static_cast<std::size_t>(
      config.feed_buffer_capacity < 1 ? 1 : config.feed_buffer_capacity);
  std::optional<FeedNetwork> network_holder;
  if (store.has_value()) {
    network_holder.emplace(&*store, buffer_capacity);
  } else {
    network_holder.emplace(&trace, buffer_capacity);
  }
  FeedNetwork& network = *network_holder;
  PolicyOptions po;
  po.random_seed = seed ^ 0x5bf03635ULL;
  po.num_resources = problem.num_resources;
  PULLMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                           MakePolicy(spec.policy, po));

  ProxyRunReport report;
  ProxyOptions popts;
  popts.faults = config.faults;
  popts.fault_seed = config.fault_seed ^ (seed * 0x9E3779B97F4A7C15ULL);
  popts.retry = config.retry;
  popts.breaker = config.breaker;
  popts.parse_cache = config.parse_cache;
  FeedPullSession session(&network, problem.num_resources, popts, &report);

  const ChrononClock clock;
  EstimationOptions eopts;
  eopts.half_life = config.estimator_half_life;
  EstimationSession model(problem.num_resources, problem.epoch.length,
                          eopts);

  // The explore split is fixed up front; the monitor's budget vector is
  // the configured one minus the diverted explore units, so the two
  // probe streams together never exceed C_j.
  const std::vector<uint8_t> explore_at = PlanExploreChronons(config, seed);
  std::vector<int> monitor_budgets(
      static_cast<std::size_t>(problem.epoch.length), config.budget);
  for (std::size_t t = 0; t < explore_at.size(); ++t) {
    if (explore_at[t] != 0) monitor_budgets[t] = config.budget - 1;
  }
  BudgetVector monitor_budget =
      BudgetVector::FromVector(std::move(monitor_budgets));
  Schedule explore_schedule(problem.epoch.length);
  std::size_t explore_issued = 0;

  const auto run_start = std::chrono::steady_clock::now();
  if (config.executor_backend == ExecutorBackend::kParallel) {
    ParallelOptions opts;
    opts.retry = config.retry;
    opts.breaker = config.breaker;
    opts.threads = config.threads;
    ParallelExecutor monitor(problem.num_resources, problem.epoch.length,
                             monitor_budget, policy.get(), spec.mode, opts);
    // Observation capture rides the serial decide/commit phases: decide
    // records each token's resource, commit applies the attempt and
    // derives the item diff — so the estimator ingests in canonical
    // attempt order at every thread count.
    struct AttemptMeta {
      ResourceId resource = 0;
      Chronon chronon = 0;
    };
    std::vector<AttemptMeta> metas;
    ParallelProbeHooks hooks;
    hooks.begin_chronon = [&](Chronon, int num_workers) {
      metas.clear();
      session.BeginParallelChronon(num_workers);
    };
    hooks.decide = [&](ResourceId resource, Chronon now, int token) {
      PULLMON_CHECK(static_cast<std::size_t>(token) == metas.size());
      metas.push_back({resource, now});
      return session.DecideAttempt(resource, now, token);
    };
    hooks.execute = [&](const std::vector<int>& tokens, int worker) {
      for (int token : tokens) session.ExecuteAttempt(token, worker);
    };
    hooks.commit = [&](int token) {
      const AttemptMeta& meta = metas[static_cast<std::size_t>(token)];
      const std::size_t items_before =
          session.fetch_chronon() == meta.chronon
              ? session.current_items().size()
              : 0;
      const std::size_t nm_before = report.not_modified;
      const std::size_t failures_before =
          report.timeouts + report.server_errors + report.outage_probes +
          report.parse_failures;
      session.CommitAttempt(token);
      const std::size_t failures_after =
          report.timeouts + report.server_errors + report.outage_probes +
          report.parse_failures;
      ProbeObservation obs;
      obs.resource = meta.resource;
      obs.probed_at = meta.chronon;
      obs.success = failures_after == failures_before;
      if (obs.success) {
        obs.not_modified = report.not_modified > nm_before;
        if (!obs.not_modified) {
          obs.update_chronons =
              NewItemChronons(session, meta.chronon, items_before, clock,
                              problem.epoch.length);
        }
      }
      model.Ingest(obs);
    };
    monitor.set_probe_hooks(std::move(hooks));
    PULLMON_RETURN_NOT_OK(DriveAdaptiveEpoch(
        &monitor, problem, config, &model, &session, explore_at, monitor_budget, clock,
        &explore_schedule, &explore_issued, &report));
    report.run.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    PULLMON_RETURN_NOT_OK(FinalizeAdaptiveReport(
        monitor, config.breaker.enabled, problem, explore_schedule,
        explore_issued, &session, &report));
    const ShardRunStats& ss = monitor.shard_stats();
    report.run.shard_count = static_cast<std::size_t>(ss.shard_count);
    report.run.shard_candidates_scored = ss.candidates_scored;
    report.run.shard_probes_executed = ss.probes_executed;
    report.run.shard_merge_entries = ss.merge_entries;
    report.shard_count = report.run.shard_count;
    report.shard_candidates_scored = report.run.shard_candidates_scored;
    report.shard_probes_executed = report.run.shard_probes_executed;
    report.shard_merge_entries = report.run.shard_merge_entries;
  } else {
    MonitorOptions mo;
    mo.retry = config.retry;
    mo.breaker = config.breaker;
    mo.maintenance = config.executor_backend == ExecutorBackend::kReference
                         ? MonitorIndexMode::kRebuild
                         : MonitorIndexMode::kIncremental;
    DynamicMonitor monitor(problem.num_resources, problem.epoch.length,
                           monitor_budget, policy.get(), spec.mode, mo);
    monitor.set_probe_callback([&](ResourceId resource, Chronon now) {
      return ObservedProbe(&session, &model, report, resource, now, clock,
                           problem.epoch.length);
    });
    PULLMON_RETURN_NOT_OK(DriveAdaptiveEpoch(
        &monitor, problem, config, &model, &session, explore_at, monitor_budget, clock,
        &explore_schedule, &explore_issued, &report));
    report.run.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    PULLMON_RETURN_NOT_OK(FinalizeAdaptiveReport(
        monitor, config.breaker.enabled, problem, explore_schedule,
        explore_issued, &session, &report));
  }

  const EstimationStats& es = model.stats();
  report.estimation_probes_observed = es.probes_observed;
  report.estimation_update_events = es.update_events;
  report.estimation_not_modified = es.not_modified;
  report.estimation_duplicate_events = es.duplicate_events;
  report.estimation_periodic_resources = model.PeriodicResources();
  return report;
}

}  // namespace pullmon
