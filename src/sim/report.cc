#include "sim/report.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pullmon {

Status SweepReport::Add(std::string value, const ComparisonResult& result) {
  std::vector<std::string> labels;
  for (const auto& outcome : result.policies) {
    labels.push_back(outcome.spec.Label());
  }
  if (policy_labels_.empty()) {
    policy_labels_ = labels;
  } else if (labels != policy_labels_) {
    return Status::InvalidArgument(
        "sweep points carry different policy line-ups");
  }
  Row row;
  row.value = std::move(value);
  for (const auto& outcome : result.policies) {
    Cell cell;
    cell.gc_mean = outcome.gc.mean();
    cell.gc_ci95 = outcome.gc.ci95_halfwidth();
    cell.runtime_ms = outcome.runtime_seconds.mean() * 1e3;
    row.cells.push_back(cell);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string SweepReport::ToTable() const {
  std::vector<std::string> header{parameter_};
  for (const auto& label : policy_labels_) header.push_back(label);
  TablePrinter table(header);
  for (const auto& row : rows_) {
    std::vector<std::string> cells{row.value};
    for (const auto& cell : row.cells) {
      cells.push_back(StringFormat("%.3f ±%.3f", cell.gc_mean,
                                   cell.gc_ci95));
    }
    table.AddRow(cells);
  }
  return table.ToString();
}

std::string SweepReport::ToCsv() const {
  std::ostringstream out;
  out << CsvEscape(parameter_);
  for (const auto& label : policy_labels_) {
    out << "," << label << " gc," << label << " ci95," << label
        << " runtime_ms";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << row.value;
    for (const auto& cell : row.cells) {
      out << "," << StringFormat("%.6f", cell.gc_mean) << ","
          << StringFormat("%.6f", cell.gc_ci95) << ","
          << StringFormat("%.4f", cell.runtime_ms);
    }
    out << "\n";
  }
  return out.str();
}

std::string SweepReport::ToMarkdown() const {
  std::ostringstream out;
  out << "| " << parameter_;
  for (const auto& label : policy_labels_) out << " | " << label;
  out << " |\n|";
  for (std::size_t i = 0; i <= policy_labels_.size(); ++i) {
    out << "---|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << "| " << row.value;
    for (const auto& cell : row.cells) {
      out << " | " << StringFormat("%.3f", cell.gc_mean);
    }
    out << " |\n";
  }
  return out.str();
}

Status SweepReport::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsv();
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

}  // namespace pullmon
