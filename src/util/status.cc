#include "util/status.h"

namespace pullmon {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pullmon
