#ifndef PULLMON_UTIL_RANDOM_H_
#define PULLMON_UTIL_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

namespace pullmon {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state. All
/// stochastic components of the library draw from this generator so that
/// experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Satisfies the C++ UniformRandomBitGenerator concept.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Exponentially distributed value with the given rate (> 0).
  double NextExponential(double rate);

  /// Poisson distributed count with the given mean (>= 0). Uses inversion
  /// for small means and the PTRS transformed-rejection method for large.
  int64_t NextPoisson(double mean);

  /// Standard normal (Box-Muller; no cached spare to stay stateless).
  double NextGaussian();

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

  /// The raw xoshiro256** state, for checkpointing a stream mid-run.
  /// RestoreState(SaveState()) resumes the exact sequence.
  std::array<uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  uint64_t state_[4];
};

/// One step of the SplitMix64 sequence; also useful as a cheap hash.
uint64_t SplitMix64(uint64_t* state);

}  // namespace pullmon

#endif  // PULLMON_UTIL_RANDOM_H_
