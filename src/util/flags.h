#ifndef PULLMON_UTIL_FLAGS_H_
#define PULLMON_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// Minimal command-line flag parser for the library's tools.
/// Flags are registered with defaults, then Parse() consumes
/// "--name=value" / "--name value" tokens ("--name" alone sets a bool
/// flag to true); everything else becomes a positional argument.
/// "--help" is always accepted and sets help_requested().
class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Registration (call before Parse). Duplicate names are a bug and
  /// abort in debug builds.
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt64(const std::string& name, int64_t default_value,
                std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value,
               std::string help);

  /// Parses the given arguments (argv[0] is skipped by the argc/argv
  /// overload). InvalidArgument on unknown flags or unparsable values.
  Status Parse(int argc, const char* const* argv);
  Status Parse(const std::vector<std::string>& args);

  /// Typed access; aborts (debug) on unknown names or type mismatches.
  std::string GetString(const std::string& name) const;
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  /// Formatted usage text listing all flags with defaults.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt64, kDouble, kBool };

  struct Flag {
    std::string name;
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    bool set = false;
  };

  void Register(Flag flag);
  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;
  Status Assign(Flag* flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;  // registration order, for Usage()
  std::map<std::string, std::size_t> index_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace pullmon

#endif  // PULLMON_UTIL_FLAGS_H_
