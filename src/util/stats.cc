#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace pullmon {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 100.0) return values.back();
  double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double LinearSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx == 0.0) return 0.0;
  return sxy / sxx;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace pullmon
