#ifndef PULLMON_UTIL_TABLE_PRINTER_H_
#define PULLMON_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace pullmon {

/// Renders aligned fixed-width text tables, used by the benchmark
/// harnesses to print the rows/series of each paper table and figure.
///
///   TablePrinter t({"policy", "GC"});
///   t.AddRow({"MRSF(P)", "0.82"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the table width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string FormatDouble(double value, int precision = 4);

  /// Writes the table with a header underline and column gutters.
  void Print(std::ostream& out) const;

  /// Renders to a string (mainly for tests).
  std::string ToString() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pullmon

#endif  // PULLMON_UTIL_TABLE_PRINTER_H_
