#ifndef PULLMON_UTIL_STATS_H_
#define PULLMON_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace pullmon {

/// Streaming univariate statistics (Welford's algorithm) used by the
/// experiment runner to aggregate repeated simulation runs.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  /// Merges another accumulator into this one (parallel aggregation).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const;
  double max() const;

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean; 0 for fewer than two samples.
  double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample by linear interpolation between closest
/// ranks. `q` in [0, 100]. Returns 0 for an empty sample. The input is
/// copied and sorted.
double Percentile(std::vector<double> values, double q);

/// Least-squares slope of y over x; 0 if fewer than two points or
/// degenerate x. Used by scalability analyses to verify linear trends.
double LinearSlope(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation of x and y; 0 on degenerate input.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace pullmon

#endif  // PULLMON_UTIL_STATS_H_
