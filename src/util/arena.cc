#include "util/arena.h"

namespace pullmon {

void Arena::AddBlock(std::size_t min_bytes) {
  Block block;
  block.size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  block.data = std::make_unique<char[]>(block.size);
  bytes_reserved_ += block.size;
  current_ = blocks_.size();
  offset_ = 0;
  blocks_.push_back(std::move(block));
}

}  // namespace pullmon
