#include "util/random.h"

#include <cassert>
#include <cmath>

namespace pullmon {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256** by Blackman & Vigna (public domain reference code).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits scaled into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0.0);
  double u = NextDouble();
  // Guard the log against u == 0 (cannot happen given 53-bit mantissa
  // construction, but keep it robust).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

int64_t Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search (Knuth).
    double l = std::exp(-mean);
    double p = 1.0;
    int64_t k = 0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // PTRS transformed rejection (Hormann 1993).
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    double u = NextDouble() - 0.5;
    double v = NextDouble();
    double us = 0.5 - std::fabs(u);
    double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<int64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    double log_mean = std::log(mean);
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<int64_t>(k);
    }
  }
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace pullmon
