#ifndef PULLMON_UTIL_CSV_H_
#define PULLMON_UTIL_CSV_H_

#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// A parsed CSV document: an optional header row plus data rows. Fields
/// are unescaped; RFC-4180-style quoting with embedded commas, quotes and
/// newlines is supported.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or an error if missing.
  Result<std::size_t> ColumnIndex(std::string_view name) const;
};

/// Parses CSV text. If `has_header` the first record populates
/// `CsvDocument::header`. Returns ParseError on unterminated quotes.
Result<CsvDocument> ParseCsv(std::string_view text, bool has_header);

/// Reads and parses a CSV file; IoError if the file cannot be read.
Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header);

/// Incremental CSV writer with RFC-4180 quoting. Rows are written eagerly
/// to the underlying stream.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (must outlive the writer).
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Opens `path` for writing; check ok() before use.
  static Result<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Writes one record; fields are quoted only when necessary.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes the underlying stream.
  void Flush();

 private:
  CsvWriter() = default;

  std::unique_ptr<std::ofstream> owned_;  // set when writing to a file
  std::ostream* out_ = nullptr;
};

/// Quotes a single CSV field if it contains a comma, quote, CR or LF.
std::string CsvEscape(std::string_view field);

}  // namespace pullmon

#endif  // PULLMON_UTIL_CSV_H_
