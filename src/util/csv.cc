#include "util/csv.h"

#include <memory>
#include <sstream>

namespace pullmon {

Result<std::size_t> CsvDocument::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("no CSV column named '" + std::string(name) + "'");
}

Result<CsvDocument> ParseCsv(std::string_view text, bool has_header) {
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool record_started = false;

  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
  };
  auto end_record = [&]() {
    end_field();
    if (has_header && doc.header.empty() && doc.rows.empty()) {
      doc.header = std::move(record);
    } else {
      doc.rows.push_back(std::move(record));
    }
    record.clear();
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_started = true;
        break;
      case ',':
        end_field();
        record_started = true;
        break;
      case '\r':
        // Swallow; the following '\n' (if any) terminates the record.
        break;
      case '\n':
        if (record_started || !field.empty() || !record.empty()) {
          end_record();
        }
        break;
      default:
        field.push_back(c);
        record_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  if (record_started || !field.empty() || !record.empty()) {
    end_record();
  }
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return ParseCsv(buffer.str(), has_header);
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*file) return Status::IoError("cannot open for writing: " + path);
  CsvWriter writer;
  writer.out_ = file.get();
  writer.owned_ = std::move(file);
  return writer;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << CsvEscape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::Flush() { out_->flush(); }

}  // namespace pullmon
