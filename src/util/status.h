#ifndef PULLMON_UTIL_STATUS_H_
#define PULLMON_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pullmon {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kIoError,
  kParseError,
  kUnimplemented,
  /// The operation was deliberately cut short (e.g. the crash-injection
  /// harness simulating a process kill mid-run; src/recovery/).
  kAborted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier, modeled after the Status idiom used by
/// Arrow and RocksDB. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts in debug builds (assert); callers must check ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define PULLMON_RETURN_NOT_OK(expr)        \
  do {                                     \
    ::pullmon::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define PULLMON_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PULLMON_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!PULLMON_CONCAT_(_res_, __LINE__).ok())      \
    return PULLMON_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PULLMON_CONCAT_(_res_, __LINE__)).value()

#define PULLMON_CONCAT_INNER_(a, b) a##b
#define PULLMON_CONCAT_(a, b) PULLMON_CONCAT_INNER_(a, b)

}  // namespace pullmon

#endif  // PULLMON_UTIL_STATUS_H_
