#include "util/datetime.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace pullmon {

namespace {

constexpr std::array<const char*, 7> kWeekdayNames = {
    "Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"};
constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

Result<int> MonthFromName(std::string_view name) {
  for (int m = 0; m < 12; ++m) {
    if (name == kMonthNames[static_cast<std::size_t>(m)]) return m + 1;
  }
  return Status::ParseError("unknown month name: " + std::string(name));
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Result<int> ParseFixedInt(std::string_view s) {
  if (!IsDigits(s)) {
    return Status::ParseError("expected digits, got: " + std::string(s));
  }
  int value = 0;
  for (char c : s) value = value * 10 + (c - '0');
  return value;
}

}  // namespace

int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

int WeekdayFromDays(int64_t days) {
  return static_cast<int>(days >= -4 ? (days + 4) % 7
                                     : (days + 5) % 7 + 6);
}

int64_t ToUnixSeconds(const DateTime& dt) {
  return DaysFromCivil(dt.year, dt.month, dt.day) * 86400 +
         dt.hour * 3600 + dt.minute * 60 + dt.second;
}

DateTime FromUnixSeconds(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  DateTime dt;
  CivilFromDays(days, &dt.year, &dt.month, &dt.day);
  dt.hour = static_cast<int>(rem / 3600);
  dt.minute = static_cast<int>((rem % 3600) / 60);
  dt.second = static_cast<int>(rem % 60);
  return dt;
}

std::string FormatRfc822(int64_t unix_seconds) {
  DateTime dt = FromUnixSeconds(unix_seconds);
  int64_t days = DaysFromCivil(dt.year, dt.month, dt.day);
  return StringFormat(
      "%s, %02d %s %04d %02d:%02d:%02d GMT",
      kWeekdayNames[static_cast<std::size_t>(WeekdayFromDays(days))],
      dt.day, kMonthNames[static_cast<std::size_t>(dt.month - 1)], dt.year,
      dt.hour, dt.minute, dt.second);
}

Result<int64_t> ParseRfc822(std::string_view text) {
  // Grammar: [weekday ","] day month year time zone
  // Scanned entirely over views: this runs per feed item on the probe
  // hot path and must not allocate on success.
  std::string_view s = Trim(text);
  // Strip an optional leading weekday.
  std::size_t comma = s.find(',');
  if (comma != std::string_view::npos) s = Trim(s.substr(comma + 1));

  // Whitespace-separated fields, empties dropped; the original grammar
  // ignores anything beyond the fifth field.
  std::array<std::string_view, 5> parts;
  std::size_t num_parts = 0;
  for (std::size_t pos = 0; pos < s.size() && num_parts < parts.size();) {
    if (s[pos] == ' ') {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < s.size() && s[end] != ' ') ++end;
    parts[num_parts++] = s.substr(pos, end - pos);
    pos = end;
  }
  if (num_parts < 5) {
    return Status::ParseError("RFC822 date too short: " + std::string(text));
  }
  DateTime dt;
  PULLMON_ASSIGN_OR_RETURN(dt.day, ParseFixedInt(parts[0]));
  PULLMON_ASSIGN_OR_RETURN(dt.month, MonthFromName(parts[1]));
  PULLMON_ASSIGN_OR_RETURN(dt.year, ParseFixedInt(parts[2]));
  if (dt.year < 100) dt.year += dt.year < 70 ? 2000 : 1900;

  // ':'-separated time, empty segments kept (and rejected as
  // non-digits below, like the original Split-based scan).
  std::array<std::string_view, 3> hms;
  std::size_t num_hms = 1;
  std::string_view time = parts[3];
  std::size_t seg_start = 0;
  for (std::size_t pos = 0; pos <= time.size(); ++pos) {
    if (pos == time.size() || time[pos] == ':') {
      if (num_hms > hms.size()) break;
      hms[num_hms - 1] = time.substr(seg_start, pos - seg_start);
      seg_start = pos + 1;
      if (pos < time.size()) ++num_hms;
    }
  }
  if (num_hms < 2 || num_hms > 3) {
    return Status::ParseError("bad RFC822 time: " + std::string(time));
  }
  PULLMON_ASSIGN_OR_RETURN(dt.hour, ParseFixedInt(hms[0]));
  PULLMON_ASSIGN_OR_RETURN(dt.minute, ParseFixedInt(hms[1]));
  if (num_hms == 3) {
    PULLMON_ASSIGN_OR_RETURN(dt.second, ParseFixedInt(hms[2]));
  }

  std::string_view zone = parts[4];
  int64_t offset_seconds = 0;
  if (zone == "GMT" || zone == "UT" || zone == "UTC" || zone == "Z") {
    offset_seconds = 0;
  } else if ((zone[0] == '+' || zone[0] == '-') && zone.size() == 5) {
    PULLMON_ASSIGN_OR_RETURN(int hh, ParseFixedInt(zone.substr(1, 2)));
    PULLMON_ASSIGN_OR_RETURN(int mm, ParseFixedInt(zone.substr(3, 2)));
    offset_seconds = (hh * 3600 + mm * 60) * (zone[0] == '+' ? 1 : -1);
  } else if (zone == "EST") {
    offset_seconds = -5 * 3600;
  } else if (zone == "EDT") {
    offset_seconds = -4 * 3600;
  } else if (zone == "PST") {
    offset_seconds = -8 * 3600;
  } else if (zone == "PDT") {
    offset_seconds = -7 * 3600;
  } else {
    return Status::ParseError("unknown RFC822 zone: " + std::string(zone));
  }
  return ToUnixSeconds(dt) - offset_seconds;
}

std::string FormatRfc3339(int64_t unix_seconds) {
  DateTime dt = FromUnixSeconds(unix_seconds);
  return StringFormat("%04d-%02d-%02dT%02d:%02d:%02dZ", dt.year, dt.month,
                      dt.day, dt.hour, dt.minute, dt.second);
}

Result<int64_t> ParseRfc3339(std::string_view text) {
  // View-based for the same reason as ParseRfc822: no allocation on
  // the per-item success path.
  std::string_view s = Trim(text);
  // Minimum: "YYYY-MM-DDThh:mm:ssZ"
  if (s.size() < 20 || s[4] != '-' || s[7] != '-' ||
      (s[10] != 'T' && s[10] != 't' && s[10] != ' ') || s[13] != ':' ||
      s[16] != ':') {
    return Status::ParseError("malformed RFC3339 date: " + std::string(s));
  }
  DateTime dt;
  PULLMON_ASSIGN_OR_RETURN(dt.year, ParseFixedInt(s.substr(0, 4)));
  PULLMON_ASSIGN_OR_RETURN(dt.month, ParseFixedInt(s.substr(5, 2)));
  PULLMON_ASSIGN_OR_RETURN(dt.day, ParseFixedInt(s.substr(8, 2)));
  PULLMON_ASSIGN_OR_RETURN(dt.hour, ParseFixedInt(s.substr(11, 2)));
  PULLMON_ASSIGN_OR_RETURN(dt.minute, ParseFixedInt(s.substr(14, 2)));
  PULLMON_ASSIGN_OR_RETURN(dt.second, ParseFixedInt(s.substr(17, 2)));
  std::size_t pos = 19;
  // Truncate fractional seconds.
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  if (pos >= s.size()) {
    return Status::ParseError("RFC3339 date missing zone: " + std::string(s));
  }
  int64_t offset_seconds = 0;
  if (s[pos] == 'Z' || s[pos] == 'z') {
    if (pos + 1 != s.size()) {
      return Status::ParseError("trailing characters in RFC3339 date: " + std::string(s));
    }
  } else if ((s[pos] == '+' || s[pos] == '-') && s.size() == pos + 6 &&
             s[pos + 3] == ':') {
    PULLMON_ASSIGN_OR_RETURN(int hh, ParseFixedInt(s.substr(pos + 1, 2)));
    PULLMON_ASSIGN_OR_RETURN(int mm, ParseFixedInt(s.substr(pos + 4, 2)));
    offset_seconds = (hh * 3600 + mm * 60) * (s[pos] == '+' ? 1 : -1);
  } else {
    return Status::ParseError("bad RFC3339 zone in: " + std::string(s));
  }
  return ToUnixSeconds(dt) - offset_seconds;
}

}  // namespace pullmon
