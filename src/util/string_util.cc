#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pullmon {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  std::size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  std::size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view input) {
  std::string s(Trim(input));
  if (s.empty()) return Status::ParseError("empty integer field");
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + s);
  }
  if (end != s.c_str() + s.size()) {
    return Status::ParseError("trailing characters in integer: " + s);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view input) {
  std::string s(Trim(input));
  if (s.empty()) return Status::ParseError("empty double field");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(s.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: " + s);
  }
  if (end != s.c_str() + s.size()) {
    return Status::ParseError("trailing characters in double: " + s);
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace pullmon
