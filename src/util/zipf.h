#ifndef PULLMON_UTIL_ZIPF_H_
#define PULLMON_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace pullmon {

/// Samples from a Zipf(theta, n) distribution over ranks {1, ..., n}:
/// P(X = i) proportional to 1 / i^theta. theta == 0 degenerates to the
/// uniform distribution U[1, n], matching the generator semantics in
/// Section 5.1 of the paper (alpha for inter-user resource popularity,
/// beta for intra-user rank preference).
///
/// Sampling is by inverse transform over the precomputed CDF (O(log n)
/// per draw after O(n) setup), which is exact for the modest n used in
/// profile generation.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `theta` must be >= 0.
  ZipfDistribution(double theta, uint64_t n);

  /// Draws a rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  /// Probability mass of rank i (1-based).
  double Pmf(uint64_t i) const;

  double theta() const { return theta_; }
  uint64_t n() const { return n_; }

 private:
  double theta_;
  uint64_t n_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i+1)
};

}  // namespace pullmon

#endif  // PULLMON_UTIL_ZIPF_H_
