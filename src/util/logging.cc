#include "util/logging.h"

namespace pullmon {

const char* LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

Logger& Logger::Global() {
  // Function-local static reference; never destroyed (see style guide on
  // static storage duration objects).
  static Logger& logger = *new Logger();
  return logger;
}

void Logger::Emit(LogLevel level, const std::string& file, int line,
                  const std::string& message) {
  if (!ShouldLog(level) && level != LogLevel::kFatal) return;
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  // Trim the path to the basename for readability.
  std::size_t slash = file.find_last_of('/');
  std::string base =
      slash == std::string::npos ? file : file.substr(slash + 1);
  out << "[" << LogLevelToString(level) << " " << base << ":" << line << "] "
      << message << "\n";
  out.flush();
}

}  // namespace pullmon
