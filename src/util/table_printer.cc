#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pullmon {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& out) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < columns) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < columns; ++i) {
    total += widths[i] + (i + 1 < columns ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

}  // namespace pullmon
