#ifndef PULLMON_UTIL_ARENA_H_
#define PULLMON_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace pullmon {

/// A bump allocator with scoped reset, built for the probe hot path:
/// parse a feed document into the arena, consume the result, Reset(),
/// repeat. After the first few probes have grown the block list to the
/// working-set size, the steady state performs zero heap allocations —
/// Reset() rewinds the bump pointer and keeps every block.
///
/// Lifetime rules (see DESIGN.md §11):
///  * Objects are never destroyed individually; Reset() and the
///    destructor reclaim storage without running destructors, so only
///    trivially destructible types may live in an arena (enforced by
///    New/NewArray at compile time).
///  * Everything allocated since the last Reset() dies together at the
///    next Reset(). Views handed out by arena-backed parsers are valid
///    exactly that long — and views into the *input* buffer are valid
///    only as long as the input outlives its consumers.
///  * Not thread-safe; one arena per worker, like one Rng per stream.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < 64 ? 64 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage, aligned; never returns nullptr (aborts on OOM like
  /// operator new). Size 0 returns a unique non-null pointer.
  void* Allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= block.size) {
          offset_ = aligned + bytes;
          bytes_used_ += bytes;
          return block.data.get() + aligned;
        }
        // The current block is exhausted for this request; move on (a
        // reset arena may skip blocks too small for an oversize ask).
        ++current_;
        offset_ = 0;
        continue;
      }
      AddBlock(bytes + align);
    }
  }

  /// Constructs a T in the arena. T must be trivially destructible —
  /// the arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Value-initialized array of T in the arena.
  template <typename T>
  T* NewArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must be trivially destructible");
    T* array = static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (array + i) T();
    return array;
  }

  /// Copies `text` into the arena and returns a view of the copy.
  std::string_view CopyString(std::string_view text) {
    if (text.empty()) return std::string_view();
    char* copy = static_cast<char*>(Allocate(text.size(), 1));
    std::memcpy(copy, text.data(), text.size());
    return std::string_view(copy, text.size());
  }

  /// Rewinds the bump pointer to the start of the first block. All
  /// blocks are retained: a warmed-up arena allocates nothing.
  void Reset() {
    current_ = 0;
    offset_ = 0;
    bytes_used_ = 0;
  }

  /// Bytes handed out since the last Reset() (excludes alignment slop).
  std::size_t bytes_used() const { return bytes_used_; }
  /// Total bytes owned across all blocks (survives Reset()).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Grows the block list (the cold path; out of line so the hot
  /// Allocate stays small enough to inline).
  void AddBlock(std::size_t min_bytes);

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  /// Index of the block the bump pointer is in, and the offset within.
  std::size_t current_ = 0;
  std::size_t offset_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace pullmon

#endif  // PULLMON_UTIL_ARENA_H_
