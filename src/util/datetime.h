#ifndef PULLMON_UTIL_DATETIME_H_
#define PULLMON_UTIL_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pullmon {

/// A broken-down UTC timestamp. The library deals exclusively in UTC;
/// feeds with numeric-offset timezones are normalized on parse.
struct DateTime {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;
  int minute = 0;
  int second = 0;

  bool operator==(const DateTime& other) const = default;
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm);
/// valid across the full int range of years.
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// 0 = Sunday ... 6 = Saturday for a days-since-epoch value.
int WeekdayFromDays(int64_t days);

int64_t ToUnixSeconds(const DateTime& dt);
DateTime FromUnixSeconds(int64_t seconds);

/// "Mon, 01 Jan 2007 00:00:00 GMT" — the RFC 822/1123 format RSS 2.0
/// uses for <pubDate>.
std::string FormatRfc822(int64_t unix_seconds);

/// Parses RFC 822 dates with "GMT"/"UT"/"Z" or numeric +HHMM offsets;
/// the optional leading weekday is ignored (not validated).
Result<int64_t> ParseRfc822(std::string_view text);

/// "2007-01-01T00:00:00Z" — the RFC 3339 format Atom uses for <updated>.
std::string FormatRfc3339(int64_t unix_seconds);

/// Parses RFC 3339 with 'Z' or numeric +HH:MM offsets; fractional
/// seconds are accepted and truncated.
Result<int64_t> ParseRfc3339(std::string_view text);

/// Conversion between model chronons and wall-clock time for feed
/// serialization: chronon 0 maps to `base_unix_seconds` and each chronon
/// lasts `seconds_per_chronon`.
struct ChrononClock {
  /// Default base: 2007-01-01 00:00:00 UTC, one-minute chronons —
  /// roughly the paper's data-collection period.
  int64_t base_unix_seconds = 1167609600;
  int seconds_per_chronon = 60;

  int64_t ToUnix(int32_t chronon) const {
    return base_unix_seconds +
           static_cast<int64_t>(chronon) * seconds_per_chronon;
  }
  int32_t FromUnix(int64_t unix_seconds) const {
    return static_cast<int32_t>((unix_seconds - base_unix_seconds) /
                                seconds_per_chronon);
  }
};

}  // namespace pullmon

#endif  // PULLMON_UTIL_DATETIME_H_
