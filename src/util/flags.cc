#include "util/flags.h"

#include <cassert>

#include "util/string_util.h"

namespace pullmon {

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void FlagParser::Register(Flag flag) {
  assert(index_.find(flag.name) == index_.end() && "duplicate flag");
  index_[flag.name] = flags_.size();
  flags_.push_back(std::move(flag));
}

void FlagParser::AddString(const std::string& name,
                           std::string default_value, std::string help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  Register(std::move(flag));
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          std::string help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kInt64;
  flag.help = std::move(help);
  flag.int_value = default_value;
  Register(std::move(flag));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  Register(std::move(flag));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  Register(std::move(flag));
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &flags_[it->second];
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &flags_[it->second];
}

Status FlagParser::Assign(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kString:
      flag->string_value = value;
      break;
    case Type::kInt64: {
      PULLMON_ASSIGN_OR_RETURN(flag->int_value, ParseInt64(value));
      break;
    }
    case Type::kDouble: {
      PULLMON_ASSIGN_OR_RETURN(flag->double_value, ParseDouble(value));
      break;
    }
    case Type::kBool: {
      std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        flag->bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("bad boolean for --" + flag->name +
                                       ": " + value);
      }
      break;
    }
  }
  flag->set = true;
  return Status::OK();
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Status FlagParser::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name = body;
    std::string value;
    bool has_value = false;
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Usage());
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        flag->bool_value = true;
        flag->set = true;
        continue;
      }
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a value");
      }
      value = args[++i];
    }
    PULLMON_RETURN_NOT_OK(Assign(flag, value));
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  const Flag* flag = Find(name);
  assert(flag != nullptr && flag->type == Type::kString);
  return flag->string_value;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  const Flag* flag = Find(name);
  assert(flag != nullptr && flag->type == Type::kInt64);
  return flag->int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  const Flag* flag = Find(name);
  assert(flag != nullptr && flag->type == Type::kDouble);
  return flag->double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  const Flag* flag = Find(name);
  assert(flag != nullptr && flag->type == Type::kBool);
  return flag->bool_value;
}

bool FlagParser::WasSet(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && flag->set;
}

std::string FlagParser::Usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    std::string default_text;
    switch (flag.type) {
      case Type::kString:
        default_text = "\"" + flag.string_value + "\"";
        break;
      case Type::kInt64:
        default_text = StringFormat("%lld",
                                    static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        default_text = StringFormat("%g", flag.double_value);
        break;
      case Type::kBool:
        default_text = flag.bool_value ? "true" : "false";
        break;
    }
    out += StringFormat("  --%-18s %s (default %s)\n", flag.name.c_str(),
                        flag.help.c_str(), default_text.c_str());
  }
  return out;
}

}  // namespace pullmon
