#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pullmon {

ZipfDistribution::ZipfDistribution(double theta, uint64_t n)
    : theta_(theta), n_(n) {
  assert(n >= 1);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[i - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_;
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(uint64_t i) const {
  assert(i >= 1 && i <= n_);
  double prev = i == 1 ? 0.0 : cdf_[i - 2];
  return cdf_[i - 1] - prev;
}

}  // namespace pullmon
