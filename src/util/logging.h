#ifndef PULLMON_UTIL_LOGGING_H_
#define PULLMON_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace pullmon {

/// Severity levels for the library logger, ordered by importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelToString(LogLevel level);

/// Process-wide logger configuration. Messages below the threshold are
/// discarded; kFatal messages abort the process after being emitted.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  /// Sets the minimum level that is emitted (default: kWarning so library
  /// consumers are not spammed).
  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Redirects output (default: std::cerr). The stream must outlive the
  /// logger's use; pass nullptr to restore std::cerr.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  bool ShouldLog(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(threshold_);
  }

  void Emit(LogLevel level, const std::string& file, int line,
            const std::string& message);

 private:
  Logger() = default;

  LogLevel threshold_ = LogLevel::kWarning;
  std::ostream* sink_ = nullptr;
};

namespace internal_logging {

/// Collects one log statement's stream insertions and emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    Logger::Global().Emit(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string file_;
  int line_;
  std::ostringstream stream_;
};

/// glog-style voidifier: turns a streamed expression into void so the
/// conditional log macro type-checks. operator& binds looser than <<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define PULLMON_LOG_INTERNAL(level)                                        \
  ::pullmon::internal_logging::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: PULLMON_LOG(kInfo) << "message " << value;
#define PULLMON_LOG(severity)                                              \
  (!::pullmon::Logger::Global().ShouldLog(::pullmon::LogLevel::severity) && \
   ::pullmon::LogLevel::severity != ::pullmon::LogLevel::kFatal)           \
      ? (void)0                                                            \
      : ::pullmon::internal_logging::Voidify() &                           \
            PULLMON_LOG_INTERNAL(::pullmon::LogLevel::severity)

/// Aborts with a message when `cond` is false, in all build modes. Used for
/// internal invariants whose violation indicates a library bug.
#define PULLMON_CHECK(cond)                                               \
  (cond) ? (void)0                                                        \
         : (void)(PULLMON_LOG_INTERNAL(::pullmon::LogLevel::kFatal)       \
                  << "Check failed: " #cond " ")

#define PULLMON_CHECK_OK(expr)                                           \
  do {                                                                   \
    ::pullmon::Status _st = (expr);                                      \
    if (!_st.ok()) {                                                     \
      PULLMON_LOG_INTERNAL(::pullmon::LogLevel::kFatal)                  \
          << "Status not OK: " << _st.ToString();                        \
    }                                                                    \
  } while (false)

}  // namespace pullmon

#endif  // PULLMON_UTIL_LOGGING_H_
