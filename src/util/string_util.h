#ifndef PULLMON_UTIL_STRING_UTIL_H_
#define PULLMON_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// Splits `input` on every occurrence of `delim`. Empty fields are kept
/// ("a,,b" -> {"a", "", "b"}); an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// True if `input` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);

/// ASCII lowercasing (locale-independent).
std::string ToLower(std::string_view input);

/// Strict integer / double parsing: the whole (trimmed) string must be
/// consumed, otherwise a ParseError is returned.
Result<int64_t> ParseInt64(std::string_view input);
Result<double> ParseDouble(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pullmon

#endif  // PULLMON_UTIL_STRING_UTIL_H_
