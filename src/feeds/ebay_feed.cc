#include "feeds/ebay_feed.h"

#include "feeds/atom.h"
#include "util/string_util.h"

namespace pullmon {

FeedDocument AuctionToFeed(const AuctionTrace& trace, int auction,
                           ChrononClock clock) {
  FeedDocument doc;
  const AuctionInfo* info = nullptr;
  for (const auto& candidate : trace.auctions) {
    if (candidate.id == auction) {
      info = &candidate;
      break;
    }
  }
  doc.title = info != nullptr
                  ? StringFormat("Bids: %s (auction #%d)",
                                 info->item.c_str(), auction)
                  : StringFormat("Bids: auction #%d", auction);
  doc.link = StringFormat("http://auctions.example.com/listing/%d", auction);
  doc.description = info != nullptr
                        ? StringFormat("Live bid feed; opened %d closes %d",
                                       info->open, info->close)
                        : "Live bid feed";
  int bid_index = 0;
  for (const auto& bid : trace.bids) {
    if (bid.auction != auction) continue;
    FeedItem item;
    item.guid = StringFormat("auction-%d-bid-%d", auction, bid_index);
    item.title = StringFormat("New bid: $%.2f by %s", bid.amount,
                              bid.bidder.c_str());
    item.link = StringFormat("http://auctions.example.com/listing/%d#bid%d",
                             auction, bid_index);
    item.description = StringFormat(
        "Bid of $%.2f placed at chronon %d", bid.amount, bid.chronon);
    item.published = clock.ToUnix(bid.chronon);
    // Newest first, as feeds conventionally publish.
    doc.items.insert(doc.items.begin(), std::move(item));
    ++bid_index;
  }
  return doc;
}

std::vector<std::string> AuctionTraceToFeeds(const AuctionTrace& trace,
                                             FeedFormat format,
                                             ChrononClock clock) {
  std::vector<std::string> out;
  out.reserve(trace.auctions.size());
  for (const auto& info : trace.auctions) {
    out.push_back(WriteFeed(AuctionToFeed(trace, info.id, clock), format));
  }
  return out;
}

Result<UpdateTrace> TraceFromFeeds(const std::vector<std::string>& feeds,
                                   Chronon epoch_length,
                                   ChrononClock clock) {
  UpdateTrace trace(static_cast<int>(feeds.size()), epoch_length);
  for (std::size_t r = 0; r < feeds.size(); ++r) {
    PULLMON_ASSIGN_OR_RETURN(FeedDocument doc, ParseFeed(feeds[r]));
    for (const auto& item : doc.items) {
      Chronon when = clock.FromUnix(item.published);
      PULLMON_RETURN_NOT_OK(
          trace.AddEvent(static_cast<ResourceId>(r), when));
    }
  }
  return trace;
}

}  // namespace pullmon
