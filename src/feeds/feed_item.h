#ifndef PULLMON_FEEDS_FEED_ITEM_H_
#define PULLMON_FEEDS_FEED_ITEM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pullmon {

/// One entry of a Web feed (an RSS <item> or Atom <entry>). Items are
/// identified by guid; `published` is a Unix timestamp (UTC).
struct FeedItem {
  std::string guid;
  std::string title;
  std::string link;
  std::string description;
  int64_t published = 0;

  bool operator==(const FeedItem& other) const = default;
};

/// A whole feed document (RSS <channel> or Atom <feed>) with items in
/// document order (feeds conventionally list newest first).
struct FeedDocument {
  std::string title;
  std::string link;
  std::string description;
  std::vector<FeedItem> items;
};

/// Zero-copy counterpart of FeedItem produced by the arena parsers:
/// every field is a view into the document buffer or the arena, and
/// items form an intrusive list in document order. Valid until the
/// arena's next Reset() and only while the buffer outlives them.
struct FeedItemView {
  std::string_view guid;
  std::string_view title;
  std::string_view link;
  std::string_view description;
  int64_t published = 0;
  const FeedItemView* next = nullptr;
};

/// Zero-copy counterpart of FeedDocument (same lifetime rules).
struct FeedDocumentView {
  std::string_view title;
  std::string_view link;
  std::string_view description;
  const FeedItemView* first_item = nullptr;
  std::size_t num_items = 0;

  /// Deep-copies the view into an owning FeedDocument.
  FeedDocument Materialize() const {
    FeedDocument feed;
    feed.title = std::string(title);
    feed.link = std::string(link);
    feed.description = std::string(description);
    feed.items.reserve(num_items);
    for (const FeedItemView* item = first_item; item != nullptr;
         item = item->next) {
      FeedItem copy;
      copy.guid = std::string(item->guid);
      copy.title = std::string(item->title);
      copy.link = std::string(item->link);
      copy.description = std::string(item->description);
      copy.published = item->published;
      feed.items.push_back(std::move(copy));
    }
    return feed;
  }
};

/// The wire formats the library reads and writes.
enum class FeedFormat {
  kRss2,
  kAtom1,
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_FEED_ITEM_H_
