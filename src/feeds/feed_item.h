#ifndef PULLMON_FEEDS_FEED_ITEM_H_
#define PULLMON_FEEDS_FEED_ITEM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pullmon {

/// One entry of a Web feed (an RSS <item> or Atom <entry>). Items are
/// identified by guid; `published` is a Unix timestamp (UTC).
struct FeedItem {
  std::string guid;
  std::string title;
  std::string link;
  std::string description;
  int64_t published = 0;

  bool operator==(const FeedItem& other) const = default;
};

/// A whole feed document (RSS <channel> or Atom <feed>) with items in
/// document order (feeds conventionally list newest first).
struct FeedDocument {
  std::string title;
  std::string link;
  std::string description;
  std::vector<FeedItem> items;
};

/// The wire formats the library reads and writes.
enum class FeedFormat {
  kRss2,
  kAtom1,
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_FEED_ITEM_H_
