#include "feeds/rss.h"

#include "feeds/xml.h"
#include "util/datetime.h"

namespace pullmon {

Result<FeedDocument> ParseRss(std::string_view xml) {
  PULLMON_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "rss") {
    return Status::ParseError("expected <rss> root, got <" + root.name +
                              ">");
  }
  const XmlNode* channel = root.FirstChild("channel");
  if (channel == nullptr) {
    return Status::ParseError("<rss> document without <channel>");
  }
  FeedDocument feed;
  feed.title = channel->ChildText("title");
  feed.link = channel->ChildText("link");
  feed.description = channel->ChildText("description");
  for (const XmlNode* item_node : channel->Children("item")) {
    FeedItem item;
    item.guid = item_node->ChildText("guid");
    item.title = item_node->ChildText("title");
    item.link = item_node->ChildText("link");
    item.description = item_node->ChildText("description");
    std::string pub_date = item_node->ChildText("pubDate");
    if (!pub_date.empty()) {
      auto parsed = ParseRfc822(pub_date);
      if (parsed.ok()) item.published = *parsed;
    }
    feed.items.push_back(std::move(item));
  }
  return feed;
}

std::string WriteRss(const FeedDocument& feed) {
  XmlWriter writer;
  writer.Open("rss", {{"version", "2.0"}});
  writer.Open("channel");
  writer.Leaf("title", feed.title);
  writer.Leaf("link", feed.link);
  writer.Leaf("description", feed.description);
  for (const auto& item : feed.items) {
    writer.Open("item");
    writer.Leaf("guid", item.guid);
    writer.Leaf("title", item.title);
    writer.Leaf("link", item.link);
    writer.Leaf("description", item.description);
    writer.Leaf("pubDate", FormatRfc822(item.published));
    writer.Close();
  }
  writer.Close();
  writer.Close();
  return writer.str();
}

}  // namespace pullmon
