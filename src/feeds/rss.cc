#include "feeds/rss.h"

#include "feeds/xml.h"
#include "util/datetime.h"

namespace pullmon {

Result<FeedDocument> ParseRss(std::string_view xml) {
  PULLMON_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "rss") {
    return Status::ParseError("expected <rss> root, got <" + root.name +
                              ">");
  }
  const XmlNode* channel = root.FirstChild("channel");
  if (channel == nullptr) {
    return Status::ParseError("<rss> document without <channel>");
  }
  FeedDocument feed;
  feed.title = channel->ChildText("title");
  feed.link = channel->ChildText("link");
  feed.description = channel->ChildText("description");
  for (const XmlNode* item_node : channel->Children("item")) {
    FeedItem item;
    item.guid = item_node->ChildText("guid");
    item.title = item_node->ChildText("title");
    item.link = item_node->ChildText("link");
    item.description = item_node->ChildText("description");
    std::string pub_date = item_node->ChildText("pubDate");
    if (!pub_date.empty()) {
      auto parsed = ParseRfc822(pub_date);
      if (parsed.ok()) item.published = *parsed;
    }
    feed.items.push_back(std::move(item));
  }
  return feed;
}

Result<const FeedDocumentView*> ParseRss(std::string_view xml,
                                         Arena* arena) {
  PULLMON_ASSIGN_OR_RETURN(const ArenaXmlNode* root, ParseXml(xml, arena));
  if (root->name != "rss") {
    return Status::ParseError("expected <rss> root, got <" +
                              std::string(root->name) + ">");
  }
  const ArenaXmlNode* channel = root->FirstChild("channel");
  if (channel == nullptr) {
    return Status::ParseError("<rss> document without <channel>");
  }
  FeedDocumentView* feed = arena->New<FeedDocumentView>();
  feed->title = channel->ChildText("title");
  feed->link = channel->ChildText("link");
  feed->description = channel->ChildText("description");
  FeedItemView* last_item = nullptr;
  for (const ArenaXmlNode* item_node = channel->first_child;
       item_node != nullptr; item_node = item_node->next_sibling) {
    if (item_node->name != "item") continue;
    FeedItemView* item = arena->New<FeedItemView>();
    item->guid = item_node->ChildText("guid");
    item->title = item_node->ChildText("title");
    item->link = item_node->ChildText("link");
    item->description = item_node->ChildText("description");
    std::string_view pub_date = item_node->ChildText("pubDate");
    if (!pub_date.empty()) {
      auto parsed = ParseRfc822(pub_date);
      if (parsed.ok()) item->published = *parsed;
    }
    if (last_item == nullptr) {
      feed->first_item = item;
    } else {
      last_item->next = item;
    }
    last_item = item;
    ++feed->num_items;
  }
  return static_cast<const FeedDocumentView*>(feed);
}

std::string WriteRss(const FeedDocument& feed) {
  std::string out;
  WriteRssTo(feed, &out);
  return out;
}

void WriteRssTo(const FeedDocument& feed, std::string* out) {
  XmlWriter writer(out);
  writer.Open("rss", {{"version", "2.0"}});
  writer.Open("channel");
  writer.Leaf("title", feed.title);
  writer.Leaf("link", feed.link);
  writer.Leaf("description", feed.description);
  for (const auto& item : feed.items) {
    writer.Open("item");
    writer.Leaf("guid", item.guid);
    writer.Leaf("title", item.title);
    writer.Leaf("link", item.link);
    writer.Leaf("description", item.description);
    writer.Leaf("pubDate", FormatRfc822(item.published));
    writer.Close();
  }
  writer.Close();
  writer.Close();
}

}  // namespace pullmon
