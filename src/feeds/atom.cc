#include "feeds/atom.h"

#include "feeds/rss.h"
#include "feeds/xml.h"
#include "util/datetime.h"
#include "util/string_util.h"

namespace pullmon {

Result<FeedDocument> ParseAtom(std::string_view xml) {
  PULLMON_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "feed") {
    return Status::ParseError("expected <feed> root, got <" + root.name +
                              ">");
  }
  FeedDocument feed;
  feed.title = root.ChildText("title");
  feed.description = root.ChildText("subtitle");
  if (const XmlNode* link = root.FirstChild("link")) {
    if (const std::string* href = link->Attribute("href")) {
      feed.link = *href;
    }
  }
  for (const XmlNode* entry : root.Children("entry")) {
    FeedItem item;
    item.guid = entry->ChildText("id");
    item.title = entry->ChildText("title");
    item.description = entry->ChildText("summary");
    if (item.description.empty()) {
      item.description = entry->ChildText("content");
    }
    if (const XmlNode* link = entry->FirstChild("link")) {
      if (const std::string* href = link->Attribute("href")) {
        item.link = *href;
      }
    }
    std::string updated = entry->ChildText("updated");
    if (updated.empty()) updated = entry->ChildText("published");
    if (!updated.empty()) {
      auto parsed = ParseRfc3339(updated);
      if (parsed.ok()) item.published = *parsed;
    }
    feed.items.push_back(std::move(item));
  }
  return feed;
}

Result<const FeedDocumentView*> ParseAtom(std::string_view xml,
                                          Arena* arena) {
  PULLMON_ASSIGN_OR_RETURN(const ArenaXmlNode* root, ParseXml(xml, arena));
  if (root->name != "feed") {
    return Status::ParseError("expected <feed> root, got <" +
                              std::string(root->name) + ">");
  }
  FeedDocumentView* feed = arena->New<FeedDocumentView>();
  feed->title = root->ChildText("title");
  feed->description = root->ChildText("subtitle");
  if (const ArenaXmlNode* link = root->FirstChild("link")) {
    if (const std::string_view* href = link->Attribute("href")) {
      feed->link = *href;
    }
  }
  FeedItemView* last_item = nullptr;
  for (const ArenaXmlNode* entry = root->first_child; entry != nullptr;
       entry = entry->next_sibling) {
    if (entry->name != "entry") continue;
    FeedItemView* item = arena->New<FeedItemView>();
    item->guid = entry->ChildText("id");
    item->title = entry->ChildText("title");
    item->description = entry->ChildText("summary");
    if (item->description.empty()) {
      item->description = entry->ChildText("content");
    }
    if (const ArenaXmlNode* link = entry->FirstChild("link")) {
      if (const std::string_view* href = link->Attribute("href")) {
        item->link = *href;
      }
    }
    std::string_view updated = entry->ChildText("updated");
    if (updated.empty()) updated = entry->ChildText("published");
    if (!updated.empty()) {
      auto parsed = ParseRfc3339(updated);
      if (parsed.ok()) item->published = *parsed;
    }
    if (last_item == nullptr) {
      feed->first_item = item;
    } else {
      last_item->next = item;
    }
    last_item = item;
    ++feed->num_items;
  }
  return static_cast<const FeedDocumentView*>(feed);
}

std::string WriteAtom(const FeedDocument& feed) {
  std::string out;
  WriteAtomTo(feed, &out);
  return out;
}

void WriteAtomTo(const FeedDocument& feed, std::string* out) {
  XmlWriter writer(out);
  writer.Open("feed", {{"xmlns", "http://www.w3.org/2005/Atom"}});
  writer.Leaf("title", feed.title);
  writer.Leaf("subtitle", feed.description);
  writer.Open("link", {{"href", feed.link}});
  writer.Close();
  for (const auto& item : feed.items) {
    writer.Open("entry");
    writer.Leaf("id", item.guid);
    writer.Leaf("title", item.title);
    writer.Leaf("summary", item.description);
    writer.Open("link", {{"href", item.link}});
    writer.Close();
    writer.Leaf("updated", FormatRfc3339(item.published));
    writer.Close();
  }
  writer.Close();
}

namespace {

/// Root sniffing shared by both ParseFeed overloads: 'r' for <rss>,
/// 'a' for <feed>, '\0' for no/unknown root, without parsing twice.
char SniffFeedRoot(std::string_view xml) {
  std::size_t pos = 0;
  while (pos < xml.size()) {
    pos = xml.find('<', pos);
    if (pos == std::string_view::npos) break;
    if (StartsWith(xml.substr(pos), "<?") ||
        StartsWith(xml.substr(pos), "<!--") ||
        StartsWith(xml.substr(pos), "<!")) {
      ++pos;
      continue;
    }
    break;
  }
  if (pos == std::string_view::npos || pos >= xml.size()) return '\0';
  if (StartsWith(xml.substr(pos), "<rss")) return 'r';
  if (StartsWith(xml.substr(pos), "<feed")) return 'a';
  return '\0';
}

}  // namespace

Result<FeedDocument> ParseFeed(std::string_view xml) {
  switch (SniffFeedRoot(xml)) {
    case 'r':
      return ParseRss(xml);
    case 'a':
      return ParseAtom(xml);
    default:
      return Status::ParseError("unrecognized feed root element");
  }
}

Result<const FeedDocumentView*> ParseFeed(std::string_view xml,
                                          Arena* arena) {
  switch (SniffFeedRoot(xml)) {
    case 'r':
      return ParseRss(xml, arena);
    case 'a':
      return ParseAtom(xml, arena);
    default:
      return Status::ParseError("unrecognized feed root element");
  }
}

std::string WriteFeed(const FeedDocument& feed, FeedFormat format) {
  std::string out;
  WriteFeedTo(feed, format, &out);
  return out;
}

void WriteFeedTo(const FeedDocument& feed, FeedFormat format,
                 std::string* out) {
  switch (format) {
    case FeedFormat::kRss2:
      WriteRssTo(feed, out);
      return;
    case FeedFormat::kAtom1:
      WriteAtomTo(feed, out);
      return;
  }
  out->clear();
}

}  // namespace pullmon
