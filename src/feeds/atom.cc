#include "feeds/atom.h"

#include "feeds/rss.h"
#include "feeds/xml.h"
#include "util/datetime.h"
#include "util/string_util.h"

namespace pullmon {

Result<FeedDocument> ParseAtom(std::string_view xml) {
  PULLMON_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml));
  if (root.name != "feed") {
    return Status::ParseError("expected <feed> root, got <" + root.name +
                              ">");
  }
  FeedDocument feed;
  feed.title = root.ChildText("title");
  feed.description = root.ChildText("subtitle");
  if (const XmlNode* link = root.FirstChild("link")) {
    if (const std::string* href = link->Attribute("href")) {
      feed.link = *href;
    }
  }
  for (const XmlNode* entry : root.Children("entry")) {
    FeedItem item;
    item.guid = entry->ChildText("id");
    item.title = entry->ChildText("title");
    item.description = entry->ChildText("summary");
    if (item.description.empty()) {
      item.description = entry->ChildText("content");
    }
    if (const XmlNode* link = entry->FirstChild("link")) {
      if (const std::string* href = link->Attribute("href")) {
        item.link = *href;
      }
    }
    std::string updated = entry->ChildText("updated");
    if (updated.empty()) updated = entry->ChildText("published");
    if (!updated.empty()) {
      auto parsed = ParseRfc3339(updated);
      if (parsed.ok()) item.published = *parsed;
    }
    feed.items.push_back(std::move(item));
  }
  return feed;
}

std::string WriteAtom(const FeedDocument& feed) {
  XmlWriter writer;
  writer.Open("feed", {{"xmlns", "http://www.w3.org/2005/Atom"}});
  writer.Leaf("title", feed.title);
  writer.Leaf("subtitle", feed.description);
  writer.Open("link", {{"href", feed.link}});
  writer.Close();
  for (const auto& item : feed.items) {
    writer.Open("entry");
    writer.Leaf("id", item.guid);
    writer.Leaf("title", item.title);
    writer.Leaf("summary", item.description);
    writer.Open("link", {{"href", item.link}});
    writer.Close();
    writer.Leaf("updated", FormatRfc3339(item.published));
    writer.Close();
  }
  writer.Close();
  return writer.str();
}

Result<FeedDocument> ParseFeed(std::string_view xml) {
  // Cheap root sniffing to avoid parsing twice: find the first element
  // that is not a declaration/comment.
  std::size_t pos = 0;
  while (pos < xml.size()) {
    pos = xml.find('<', pos);
    if (pos == std::string_view::npos) break;
    if (StartsWith(xml.substr(pos), "<?") ||
        StartsWith(xml.substr(pos), "<!--") ||
        StartsWith(xml.substr(pos), "<!")) {
      ++pos;
      continue;
    }
    break;
  }
  if (pos == std::string_view::npos || pos >= xml.size()) {
    return Status::ParseError("no root element in feed document");
  }
  if (StartsWith(xml.substr(pos), "<rss")) return ParseRss(xml);
  if (StartsWith(xml.substr(pos), "<feed")) return ParseAtom(xml);
  return Status::ParseError("unrecognized feed root element");
}

std::string WriteFeed(const FeedDocument& feed, FeedFormat format) {
  switch (format) {
    case FeedFormat::kRss2:
      return WriteRss(feed);
    case FeedFormat::kAtom1:
      return WriteAtom(feed);
  }
  return std::string();
}

}  // namespace pullmon
