#include "feeds/parse_cache.h"

#include <utility>

namespace pullmon {

uint64_t ParseCache::HashBody(std::string_view body) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : body) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

const FeedDocument* ParseCache::Lookup(ResourceId resource,
                                       std::string_view served_etag,
                                       std::string_view body, bool mangled,
                                       ParseCacheStats* sink) {
  // The mangled flag is authoritative: a body the transport layer
  // says is degraded must reach the parser, even when it carries a
  // truthful validator or happens to hash like the stored body. This
  // keeps fault accounting (parse_failures, invalidations) identical
  // with the cache on or off.
  if (mangled) {
    ++sink->misses;
    return nullptr;
  }
  Entry& entry = entries_[static_cast<std::size_t>(resource)];
  if (entry.valid) {
    // Validator key: the served ETag equals the stored one.
    if (!served_etag.empty() && served_etag == entry.etag) {
      ++sink->hits;
      sink->bytes_saved += body.size();
      return &entry.document;
    }
    // Content key: byte-identical body under a different (e.g.
    // storm-salted) validator.
    if (body.size() == entry.body_size &&
        HashBody(body) == entry.body_hash) {
      ++sink->hits;
      sink->bytes_saved += body.size();
      return &entry.document;
    }
  }
  ++sink->misses;
  return nullptr;
}

const FeedDocument& ParseCache::Store(ResourceId resource,
                                      std::string_view served_etag,
                                      std::string_view body,
                                      FeedDocument document) {
  Entry& entry = entries_[static_cast<std::size_t>(resource)];
  entry.valid = true;
  entry.etag.assign(served_etag);
  entry.body_hash = HashBody(body);
  entry.body_size = body.size();
  entry.document = std::move(document);
  return entry.document;
}

void ParseCache::Invalidate(ResourceId resource, ParseCacheStats* sink) {
  Entry& entry = entries_[static_cast<std::size_t>(resource)];
  if (!entry.valid) return;
  entry.valid = false;
  ++sink->invalidations;
}

ParseCacheImage ParseCache::Capture() const {
  ParseCacheImage image;
  image.entries.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    ParseCacheEntryImage out;
    out.valid = entry.valid;
    out.etag = entry.etag;
    out.body_hash = entry.body_hash;
    out.body_size = entry.body_size;
    out.document = entry.document;
    image.entries.push_back(std::move(out));
  }
  image.stats = stats_;
  return image;
}

Status ParseCache::Restore(const ParseCacheImage& image) {
  if (image.entries.size() != entries_.size()) {
    return Status::InvalidArgument(
        "parse-cache image resource count does not match the cache");
  }
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    const ParseCacheEntryImage& in = image.entries[r];
    Entry& entry = entries_[r];
    entry.valid = in.valid;
    entry.etag = in.etag;
    entry.body_hash = in.body_hash;
    entry.body_size = in.body_size;
    entry.document = in.document;
  }
  stats_ = image.stats;
  return Status::OK();
}

}  // namespace pullmon
