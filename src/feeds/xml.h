#ifndef PULLMON_FEEDS_XML_H_
#define PULLMON_FEEDS_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// One element of a parsed XML document. The parser covers the subset of
/// XML 1.0 needed for Web feeds: elements, attributes, character data,
/// the five predefined entities plus numeric character references,
/// comments, CDATA sections, processing instructions and an XML
/// declaration. Namespaces are not resolved; prefixed names are kept
/// verbatim (sufficient for RSS 2.0 / Atom 1.0 documents).
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  /// Concatenated character data (text + CDATA) directly under this
  /// element, entity-decoded, in document order.
  std::string text;

  /// First direct child with the given element name, or nullptr.
  const XmlNode* FirstChild(std::string_view child_name) const;

  /// All direct children with the given element name, in order.
  std::vector<const XmlNode*> Children(std::string_view child_name) const;

  /// Attribute value by name, or nullptr.
  const std::string* Attribute(std::string_view attr_name) const;

  /// Text of the first child with the given name, or "" when absent —
  /// the dominant access pattern for feed fields.
  std::string ChildText(std::string_view child_name) const;
};

/// Parses a complete document and returns its root element. ParseError
/// on malformed input (mismatched tags, bad entities, truncation, ...).
Result<XmlNode> ParseXml(std::string_view input);

/// Escapes &, <, >, " and ' for use in text content or attribute values.
std::string XmlEscape(std::string_view text);

/// Incremental writer producing indented XML, used by the feed
/// serializers.
class XmlWriter {
 public:
  XmlWriter() { out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"; }

  /// Opens <name attr1="v1" ...>; attributes are escaped.
  void Open(std::string_view name,
            const std::vector<std::pair<std::string, std::string>>&
                attributes = {});

  /// Writes <name>text</name> as a leaf (escaped).
  void Leaf(std::string_view name, std::string_view text);

  /// Closes the most recently opened element.
  void Close();

  /// The document so far; valid once all elements are closed.
  const std::string& str() const { return out_; }

 private:
  void Indent();

  std::string out_;
  std::vector<std::string> stack_;
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_XML_H_
