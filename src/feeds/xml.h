#ifndef PULLMON_FEEDS_XML_H_
#define PULLMON_FEEDS_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/status.h"

namespace pullmon {

/// One element of a parsed XML document. The parser covers the subset of
/// XML 1.0 needed for Web feeds: elements, attributes, character data,
/// the five predefined entities plus numeric character references,
/// comments, CDATA sections, processing instructions and an XML
/// declaration. Namespaces are not resolved; prefixed names are kept
/// verbatim (sufficient for RSS 2.0 / Atom 1.0 documents).
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  /// Concatenated character data (text + CDATA) directly under this
  /// element, entity-decoded, in document order.
  std::string text;

  /// First direct child with the given element name, or nullptr.
  const XmlNode* FirstChild(std::string_view child_name) const;

  /// All direct children with the given element name, in order.
  std::vector<const XmlNode*> Children(std::string_view child_name) const;

  /// Attribute value by name, or nullptr.
  const std::string* Attribute(std::string_view attr_name) const;

  /// Text of the first child with the given name, or "" when absent —
  /// the dominant access pattern for feed fields.
  std::string ChildText(std::string_view child_name) const;
};

/// Parses a complete document and returns its root element. ParseError
/// on malformed input (mismatched tags, bad entities, truncation, ...).
Result<XmlNode> ParseXml(std::string_view input);

/// One attribute of an arena-parsed element, an intrusive list entry.
struct ArenaXmlAttr {
  std::string_view name;
  std::string_view value;
  const ArenaXmlAttr* next = nullptr;
};

/// An element of an arena-parsed document: the zero-copy counterpart of
/// XmlNode. Names, attribute values and character data are
/// `std::string_view`s pointing either into the *input buffer* (the
/// common case: no entities, one contiguous text run) or into the
/// arena (decoded entities, concatenated mixed content). Children and
/// attributes are intrusive singly-linked lists in document order, so a
/// parse performs no allocations besides arena bumps.
///
/// Lifetime: nodes and every view they expose are valid until the
/// arena's next Reset() — and only while the input buffer outlives
/// them (see Arena's lifetime rules).
struct ArenaXmlNode {
  std::string_view name;
  /// Concatenated character data (text + CDATA) directly under this
  /// element, entity-decoded, in document order.
  std::string_view text;
  const ArenaXmlNode* first_child = nullptr;
  const ArenaXmlNode* next_sibling = nullptr;
  const ArenaXmlAttr* first_attr = nullptr;

  /// First direct child with the given element name, or nullptr.
  const ArenaXmlNode* FirstChild(std::string_view child_name) const;

  /// Attribute value by name, or nullptr.
  const std::string_view* Attribute(std::string_view attr_name) const;

  /// Trimmed text of the first child with the given name, or "" when
  /// absent — the dominant access pattern for feed fields.
  std::string_view ChildText(std::string_view child_name) const;
};

/// Arena overload of ParseXml: parses in-situ over `input` into
/// caller-owned arena storage. Accepts and rejects exactly the same
/// documents as the allocating overload and produces an equivalent
/// tree (differentially fuzz-tested); the returned node is arena-owned.
Result<const ArenaXmlNode*> ParseXml(std::string_view input,
                                     Arena* arena);

/// Escapes &, <, >, " and ' for use in text content or attribute values.
std::string XmlEscape(std::string_view text);

/// Incremental writer producing indented XML, used by the feed
/// serializers. Owns its buffer by default, or writes into a
/// caller-provided one so serialization can reuse capacity across
/// documents (the proxy hot path).
class XmlWriter {
 public:
  XmlWriter() : out_(&owned_) { Start(); }

  /// External-buffer mode: clears `*out` and writes into it. The
  /// buffer must outlive the writer; its capacity is retained.
  explicit XmlWriter(std::string* out) : out_(out) { Start(); }

  /// Opens <name attr1="v1" ...>; attributes are escaped.
  void Open(std::string_view name,
            const std::vector<std::pair<std::string, std::string>>&
                attributes = {});

  /// Writes <name>text</name> as a leaf (escaped).
  void Leaf(std::string_view name, std::string_view text);

  /// Closes the most recently opened element.
  void Close();

  /// The document so far; valid once all elements are closed.
  const std::string& str() const { return *out_; }

 private:
  void Start() {
    out_->clear();
    *out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  }
  void Indent();

  std::string owned_;
  std::string* out_;
  std::vector<std::string> stack_;
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_XML_H_
