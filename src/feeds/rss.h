#ifndef PULLMON_FEEDS_RSS_H_
#define PULLMON_FEEDS_RSS_H_

#include <string>
#include <string_view>

#include "feeds/feed_item.h"
#include "util/arena.h"
#include "util/status.h"

namespace pullmon {

/// Parses an RSS 2.0 document (root <rss> with one <channel>).
/// Unknown elements are ignored; a missing or unparsable <pubDate>
/// yields published == 0. ParseError on structural problems.
Result<FeedDocument> ParseRss(std::string_view xml);

/// Arena overload: parses in-situ over `xml` into caller-owned arena
/// storage, with no per-field string copies. Accepts/rejects the same
/// documents as the allocating overload.
Result<const FeedDocumentView*> ParseRss(std::string_view xml,
                                         Arena* arena);

/// Serializes a feed as RSS 2.0. Item pubDates are RFC 822.
std::string WriteRss(const FeedDocument& feed);

/// Serializes into `*out` (cleared first), reusing its capacity.
void WriteRssTo(const FeedDocument& feed, std::string* out);

}  // namespace pullmon

#endif  // PULLMON_FEEDS_RSS_H_
