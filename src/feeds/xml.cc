#include "feeds/xml.h"

#include <cctype>

#include "util/string_util.h"

namespace pullmon {

namespace {

/// Cursor-based recursive-descent XML parser.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<XmlNode> ParseDocument() {
    SkipMisc();
    if (AtEnd()) return Status::ParseError("XML document has no root element");
    XmlNode root;
    PULLMON_RETURN_NOT_OK(ParseElement(&root));
    SkipMisc();
    if (!AtEnd()) {
      return Status::ParseError("trailing content after XML root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }
  void Advance(std::size_t count = 1) { pos_ += count; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Skips whitespace, comments, processing instructions and the XML
  /// declaration — everything allowed outside the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        std::size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
        continue;
      }
      if (Match("<?")) {
        std::size_t end = input_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
        continue;
      }
      if (Match("<!DOCTYPE")) {
        std::size_t end = input_.find('>', pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 1;
        continue;
      }
      break;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Status::ParseError(
          StringFormat("expected XML name at offset %zu", pos_));
    }
    std::size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes one entity reference starting at '&'; appends to *out.
  Status DecodeEntity(std::string* out) {
    std::size_t end = input_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 12) {
      return Status::ParseError(
          StringFormat("unterminated entity at offset %zu", pos_));
    }
    std::string_view entity = input_.substr(pos_ + 1, end - pos_ - 1);
    if (entity == "lt") {
      out->push_back('<');
    } else if (entity == "gt") {
      out->push_back('>');
    } else if (entity == "amp") {
      out->push_back('&');
    } else if (entity == "apos") {
      out->push_back('\'');
    } else if (entity == "quot") {
      out->push_back('"');
    } else if (!entity.empty() && entity[0] == '#') {
      bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      uint32_t code = 0;
      std::size_t i = hex ? 2 : 1;
      if (i >= entity.size()) {
        return Status::ParseError("empty numeric character reference");
      }
      for (; i < entity.size(); ++i) {
        char c = entity[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Status::ParseError("bad numeric character reference: " +
                                    std::string(entity));
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      AppendUtf8(code, out);
    } else {
      return Status::ParseError("unknown entity: &" + std::string(entity) +
                                ";");
    }
    pos_ = end + 1;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError(
          StringFormat("expected quoted attribute value at offset %zu",
                       pos_));
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        PULLMON_RETURN_NOT_OK(DecodeEntity(&value));
      } else if (Peek() == '<') {
        return Status::ParseError("raw '<' in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Status::ParseError("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Status ParseElement(XmlNode* node) {
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError(
          StringFormat("expected '<' at offset %zu", pos_));
    }
    Advance();
    PULLMON_ASSIGN_OR_RETURN(node->name, ParseName());
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("truncated element tag");
      if (Peek() == '>' || Match("/>")) break;
      PULLMON_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError("expected '=' after attribute " +
                                  attr_name);
      }
      Advance();
      SkipWhitespace();
      PULLMON_ASSIGN_OR_RETURN(std::string attr_value,
                               ParseAttributeValue());
      node->attributes.emplace_back(std::move(attr_name),
                                    std::move(attr_value));
    }
    if (Match("/>")) {
      Advance(2);
      return Status::OK();
    }
    Advance();  // '>'

    // Content: text, children, comments, CDATA.
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unexpected end inside element <" +
                                  node->name + ">");
      }
      if (Match("</")) {
        Advance(2);
        PULLMON_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != node->name) {
          return Status::ParseError("mismatched closing tag </" +
                                    close_name + "> for <" + node->name +
                                    ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') {
          return Status::ParseError("malformed closing tag </" +
                                    close_name + ">");
        }
        Advance();
        return Status::OK();
      }
      if (Match("<!--")) {
        std::size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (Match("<![CDATA[")) {
        std::size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        node->text.append(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (Match("<?")) {
        std::size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        XmlNode child;
        PULLMON_RETURN_NOT_OK(ParseElement(&child));
        node->children.push_back(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        PULLMON_RETURN_NOT_OK(DecodeEntity(&node->text));
        continue;
      }
      node->text.push_back(Peek());
      Advance();
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

const XmlNode* XmlNode::FirstChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(
    std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children) {
    if (child.name == child_name) out.push_back(&child);
  }
  return out;
}

const std::string* XmlNode::Attribute(std::string_view attr_name) const {
  for (const auto& [name, value] : attributes) {
    if (name == attr_name) return &value;
  }
  return nullptr;
}

std::string XmlNode::ChildText(std::string_view child_name) const {
  const XmlNode* child = FirstChild(child_name);
  return child == nullptr ? std::string()
                          : std::string(Trim(child->text));
}

Result<XmlNode> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

void XmlWriter::Indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ += "  ";
}

void XmlWriter::Open(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  Indent();
  out_ += "<";
  out_.append(name);
  for (const auto& [attr, value] : attributes) {
    out_ += " " + attr + "=\"" + XmlEscape(value) + "\"";
  }
  out_ += ">\n";
  stack_.emplace_back(name);
}

void XmlWriter::Leaf(std::string_view name, std::string_view text) {
  Indent();
  out_ += "<";
  out_.append(name);
  out_ += ">";
  out_ += XmlEscape(text);
  out_ += "</";
  out_.append(name);
  out_ += ">\n";
}

void XmlWriter::Close() {
  if (stack_.empty()) return;
  std::string name = stack_.back();
  stack_.pop_back();
  Indent();
  out_ += "</" + name + ">\n";
}

}  // namespace pullmon
