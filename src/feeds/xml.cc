#include "feeds/xml.h"

#include <cctype>
#include <cstring>

#include "util/string_util.h"

namespace pullmon {

namespace {

// ---------------------------------------------------------------------
// Scanning helpers shared by the allocating and the arena parser, so
// the two accept exactly the same documents (the arena parser is
// differentially fuzz-tested against the allocating one).
// ---------------------------------------------------------------------

bool MatchAt(std::string_view input, std::size_t pos,
             std::string_view token) {
  return input.substr(pos, token.size()) == token;
}

void SkipWhitespace(std::string_view input, std::size_t* pos) {
  while (*pos < input.size() &&
         std::isspace(static_cast<unsigned char>(input[*pos]))) {
    ++*pos;
  }
}

/// Skips whitespace, comments, processing instructions and the XML
/// declaration — everything allowed outside the root element.
void SkipMisc(std::string_view input, std::size_t* pos) {
  while (true) {
    SkipWhitespace(input, pos);
    if (MatchAt(input, *pos, "<!--")) {
      std::size_t end = input.find("-->", *pos + 4);
      *pos = end == std::string_view::npos ? input.size() : end + 3;
      continue;
    }
    if (MatchAt(input, *pos, "<?")) {
      std::size_t end = input.find("?>", *pos + 2);
      *pos = end == std::string_view::npos ? input.size() : end + 2;
      continue;
    }
    if (MatchAt(input, *pos, "<!DOCTYPE")) {
      std::size_t end = input.find('>', *pos);
      *pos = end == std::string_view::npos ? input.size() : end + 1;
      continue;
    }
    break;
  }
}

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Scans an XML name at *pos; returns a view into the input.
Result<std::string_view> ScanName(std::string_view input,
                                  std::size_t* pos) {
  if (*pos >= input.size() || !IsNameStart(input[*pos])) {
    return Status::ParseError(
        StringFormat("expected XML name at offset %zu", *pos));
  }
  std::size_t start = *pos;
  while (*pos < input.size() && IsNameChar(input[*pos])) ++*pos;
  return input.substr(start, *pos - start);
}

void AppendUtf8(uint32_t code, char* buf, std::size_t* len) {
  if (code < 0x80) {
    buf[(*len)++] = static_cast<char>(code);
  } else if (code < 0x800) {
    buf[(*len)++] = static_cast<char>(0xC0 | (code >> 6));
    buf[(*len)++] = static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    buf[(*len)++] = static_cast<char>(0xE0 | (code >> 12));
    buf[(*len)++] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    buf[(*len)++] = static_cast<char>(0x80 | (code & 0x3F));
  } else {
    buf[(*len)++] = static_cast<char>(0xF0 | (code >> 18));
    buf[(*len)++] = static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    buf[(*len)++] = static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    buf[(*len)++] = static_cast<char>(0x80 | (code & 0x3F));
  }
}

/// Decodes one entity reference starting at '&' (== input[*pos]);
/// writes the decoded bytes (at most 4) into `buf`, advances *pos past
/// the ';'.
Status DecodeEntity(std::string_view input, std::size_t* pos, char* buf,
                    std::size_t* len) {
  *len = 0;
  std::size_t end = input.find(';', *pos);
  if (end == std::string_view::npos || end - *pos > 12) {
    return Status::ParseError(
        StringFormat("unterminated entity at offset %zu", *pos));
  }
  std::string_view entity = input.substr(*pos + 1, end - *pos - 1);
  if (entity == "lt") {
    buf[(*len)++] = '<';
  } else if (entity == "gt") {
    buf[(*len)++] = '>';
  } else if (entity == "amp") {
    buf[(*len)++] = '&';
  } else if (entity == "apos") {
    buf[(*len)++] = '\'';
  } else if (entity == "quot") {
    buf[(*len)++] = '"';
  } else if (!entity.empty() && entity[0] == '#') {
    bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
    uint32_t code = 0;
    std::size_t i = hex ? 2 : 1;
    if (i >= entity.size()) {
      return Status::ParseError("empty numeric character reference");
    }
    for (; i < entity.size(); ++i) {
      char c = entity[i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (hex && c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (hex && c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::ParseError("bad numeric character reference: " +
                                  std::string(entity));
      }
      code = code * (hex ? 16 : 10) + digit;
      if (code > 0x10FFFF) {
        return Status::ParseError("character reference out of range");
      }
    }
    AppendUtf8(code, buf, len);
  } else {
    return Status::ParseError("unknown entity: &" + std::string(entity) +
                              ";");
  }
  *pos = end + 1;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Allocating recursive-descent parser (the seed implementation, now on
// the shared scanning helpers).
// ---------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<XmlNode> ParseDocument() {
    SkipMisc(input_, &pos_);
    if (AtEnd()) return Status::ParseError("XML document has no root element");
    XmlNode root;
    PULLMON_RETURN_NOT_OK(ParseElement(&root));
    SkipMisc(input_, &pos_);
    if (!AtEnd()) {
      return Status::ParseError("trailing content after XML root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view token) const {
    return MatchAt(input_, pos_, token);
  }
  void Advance(std::size_t count = 1) { pos_ += count; }

  Result<std::string> ParseName() {
    PULLMON_ASSIGN_OR_RETURN(std::string_view name,
                             ScanName(input_, &pos_));
    return std::string(name);
  }

  Status AppendEntity(std::string* out) {
    char buf[4];
    std::size_t len = 0;
    PULLMON_RETURN_NOT_OK(DecodeEntity(input_, &pos_, buf, &len));
    out->append(buf, len);
    return Status::OK();
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError(
          StringFormat("expected quoted attribute value at offset %zu",
                       pos_));
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        PULLMON_RETURN_NOT_OK(AppendEntity(&value));
      } else if (Peek() == '<') {
        return Status::ParseError("raw '<' in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Status::ParseError("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Status ParseElement(XmlNode* node) {
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError(
          StringFormat("expected '<' at offset %zu", pos_));
    }
    Advance();
    PULLMON_ASSIGN_OR_RETURN(node->name, ParseName());
    // Attributes.
    while (true) {
      SkipWhitespace(input_, &pos_);
      if (AtEnd()) return Status::ParseError("truncated element tag");
      if (Peek() == '>' || Match("/>")) break;
      PULLMON_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace(input_, &pos_);
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError("expected '=' after attribute " +
                                  attr_name);
      }
      Advance();
      SkipWhitespace(input_, &pos_);
      PULLMON_ASSIGN_OR_RETURN(std::string attr_value,
                               ParseAttributeValue());
      node->attributes.emplace_back(std::move(attr_name),
                                    std::move(attr_value));
    }
    if (Match("/>")) {
      Advance(2);
      return Status::OK();
    }
    Advance();  // '>'

    // Content: text, children, comments, CDATA.
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unexpected end inside element <" +
                                  node->name + ">");
      }
      if (Match("</")) {
        Advance(2);
        PULLMON_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != node->name) {
          return Status::ParseError("mismatched closing tag </" +
                                    close_name + "> for <" + node->name +
                                    ">");
        }
        SkipWhitespace(input_, &pos_);
        if (AtEnd() || Peek() != '>') {
          return Status::ParseError("malformed closing tag </" +
                                    close_name + ">");
        }
        Advance();
        return Status::OK();
      }
      if (Match("<!--")) {
        std::size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (Match("<![CDATA[")) {
        std::size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        node->text.append(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (Match("<?")) {
        std::size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        XmlNode child;
        PULLMON_RETURN_NOT_OK(ParseElement(&child));
        node->children.push_back(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        PULLMON_RETURN_NOT_OK(AppendEntity(&node->text));
        continue;
      }
      node->text.push_back(Peek());
      Advance();
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Arena parser: same grammar, zero-copy output. Text and attribute
// values that need no decoding stay views into the input buffer; mixed
// or entity-bearing runs are assembled from arena-held chunks.
// ---------------------------------------------------------------------

class ArenaParser {
 public:
  ArenaParser(std::string_view input, Arena* arena)
      : input_(input), arena_(arena) {}

  Result<const ArenaXmlNode*> ParseDocument() {
    SkipMisc(input_, &pos_);
    if (AtEnd()) return Status::ParseError("XML document has no root element");
    ArenaXmlNode* root = arena_->New<ArenaXmlNode>();
    PULLMON_RETURN_NOT_OK(ParseElement(root));
    SkipMisc(input_, &pos_);
    if (!AtEnd()) {
      return Status::ParseError("trailing content after XML root element");
    }
    return static_cast<const ArenaXmlNode*>(root);
  }

 private:
  /// A run of decoded character data; elements concatenate their runs
  /// once at close time, so a single-run text (the common feed case)
  /// ends up a direct view with no copy at all.
  struct Chunk {
    std::string_view piece;
    Chunk* next = nullptr;
  };

  /// Accumulates views/decoded runs and renders them into one view.
  class ChunkList {
   public:
    explicit ChunkList(Arena* arena) : arena_(arena) {}

    void Add(std::string_view piece) {
      if (piece.empty()) return;
      Chunk* chunk = arena_->New<Chunk>();
      chunk->piece = piece;
      if (tail_ == nullptr) {
        head_ = tail_ = chunk;
      } else {
        tail_->next = chunk;
        tail_ = chunk;
      }
      total_ += piece.size();
      ++count_;
    }

    /// Copies at most 4 decoded bytes into the arena and appends them.
    void AddDecoded(const char* buf, std::size_t len) {
      if (len == 0) return;
      Add(arena_->CopyString(std::string_view(buf, len)));
    }

    std::string_view Render() const {
      if (count_ == 0) return std::string_view();
      if (count_ == 1) return head_->piece;
      char* out = static_cast<char*>(arena_->Allocate(total_, 1));
      std::size_t at = 0;
      for (const Chunk* chunk = head_; chunk != nullptr;
           chunk = chunk->next) {
        std::memcpy(out + at, chunk->piece.data(), chunk->piece.size());
        at += chunk->piece.size();
      }
      return std::string_view(out, total_);
    }

   private:
    Arena* arena_;
    Chunk* head_ = nullptr;
    Chunk* tail_ = nullptr;
    std::size_t total_ = 0;
    std::size_t count_ = 0;
  };

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view token) const {
    return MatchAt(input_, pos_, token);
  }
  void Advance(std::size_t count = 1) { pos_ += count; }

  Result<std::string_view> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError(
          StringFormat("expected quoted attribute value at offset %zu",
                       pos_));
    }
    char quote = Peek();
    Advance();
    ChunkList value(arena_);
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        char buf[4];
        std::size_t len = 0;
        PULLMON_RETURN_NOT_OK(DecodeEntity(input_, &pos_, buf, &len));
        value.AddDecoded(buf, len);
      } else if (Peek() == '<') {
        return Status::ParseError("raw '<' in attribute value");
      } else {
        // A raw run: everything until the quote, an entity, or a '<'.
        std::size_t start = pos_;
        while (!AtEnd() && Peek() != quote && Peek() != '&' &&
               Peek() != '<') {
          Advance();
        }
        value.Add(input_.substr(start, pos_ - start));
      }
    }
    if (AtEnd()) return Status::ParseError("unterminated attribute value");
    Advance();  // closing quote
    return value.Render();
  }

  Status ParseElement(ArenaXmlNode* node) {
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError(
          StringFormat("expected '<' at offset %zu", pos_));
    }
    Advance();
    PULLMON_ASSIGN_OR_RETURN(node->name, ScanName(input_, &pos_));
    // Attributes.
    ArenaXmlAttr* last_attr = nullptr;
    while (true) {
      SkipWhitespace(input_, &pos_);
      if (AtEnd()) return Status::ParseError("truncated element tag");
      if (Peek() == '>' || Match("/>")) break;
      PULLMON_ASSIGN_OR_RETURN(std::string_view attr_name,
                               ScanName(input_, &pos_));
      SkipWhitespace(input_, &pos_);
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError("expected '=' after attribute " +
                                  std::string(attr_name));
      }
      Advance();
      SkipWhitespace(input_, &pos_);
      PULLMON_ASSIGN_OR_RETURN(std::string_view attr_value,
                               ParseAttributeValue());
      ArenaXmlAttr* attr = arena_->New<ArenaXmlAttr>();
      attr->name = attr_name;
      attr->value = attr_value;
      if (last_attr == nullptr) {
        node->first_attr = attr;
      } else {
        last_attr->next = attr;
      }
      last_attr = attr;
    }
    if (Match("/>")) {
      Advance(2);
      return Status::OK();
    }
    Advance();  // '>'

    // Content: text, children, comments, CDATA.
    ChunkList text(arena_);
    ArenaXmlNode* last_child = nullptr;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unexpected end inside element <" +
                                  std::string(node->name) + ">");
      }
      if (Match("</")) {
        Advance(2);
        PULLMON_ASSIGN_OR_RETURN(std::string_view close_name,
                                 ScanName(input_, &pos_));
        if (close_name != node->name) {
          return Status::ParseError("mismatched closing tag </" +
                                    std::string(close_name) + "> for <" +
                                    std::string(node->name) + ">");
        }
        SkipWhitespace(input_, &pos_);
        if (AtEnd() || Peek() != '>') {
          return Status::ParseError("malformed closing tag </" +
                                    std::string(close_name) + ">");
        }
        Advance();
        node->text = text.Render();
        return Status::OK();
      }
      if (Match("<!--")) {
        std::size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (Match("<![CDATA[")) {
        std::size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA section");
        }
        text.Add(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (Match("<?")) {
        std::size_t end = input_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        ArenaXmlNode* child = arena_->New<ArenaXmlNode>();
        PULLMON_RETURN_NOT_OK(ParseElement(child));
        if (last_child == nullptr) {
          node->first_child = child;
        } else {
          last_child->next_sibling = child;
        }
        last_child = child;
        continue;
      }
      if (Peek() == '&') {
        char buf[4];
        std::size_t len = 0;
        PULLMON_RETURN_NOT_OK(DecodeEntity(input_, &pos_, buf, &len));
        text.AddDecoded(buf, len);
        continue;
      }
      // A raw character run: up to the next markup or entity.
      std::size_t start = pos_;
      while (!AtEnd() && Peek() != '<' && Peek() != '&') Advance();
      text.Add(input_.substr(start, pos_ - start));
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  Arena* arena_;
};

}  // namespace

const XmlNode* XmlNode::FirstChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(
    std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children) {
    if (child.name == child_name) out.push_back(&child);
  }
  return out;
}

const std::string* XmlNode::Attribute(std::string_view attr_name) const {
  for (const auto& [name, value] : attributes) {
    if (name == attr_name) return &value;
  }
  return nullptr;
}

std::string XmlNode::ChildText(std::string_view child_name) const {
  const XmlNode* child = FirstChild(child_name);
  return child == nullptr ? std::string()
                          : std::string(Trim(child->text));
}

const ArenaXmlNode* ArenaXmlNode::FirstChild(
    std::string_view child_name) const {
  for (const ArenaXmlNode* child = first_child; child != nullptr;
       child = child->next_sibling) {
    if (child->name == child_name) return child;
  }
  return nullptr;
}

const std::string_view* ArenaXmlNode::Attribute(
    std::string_view attr_name) const {
  for (const ArenaXmlAttr* attr = first_attr; attr != nullptr;
       attr = attr->next) {
    if (attr->name == attr_name) return &attr->value;
  }
  return nullptr;
}

std::string_view ArenaXmlNode::ChildText(
    std::string_view child_name) const {
  const ArenaXmlNode* child = FirstChild(child_name);
  return child == nullptr ? std::string_view() : Trim(child->text);
}

Result<XmlNode> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

Result<const ArenaXmlNode*> ParseXml(std::string_view input,
                                     Arena* arena) {
  ArenaParser parser(input, arena);
  return parser.ParseDocument();
}

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

void XmlWriter::Indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) *out_ += "  ";
}

void XmlWriter::Open(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  Indent();
  *out_ += "<";
  out_->append(name);
  for (const auto& [attr, value] : attributes) {
    *out_ += " " + attr + "=\"" + XmlEscape(value) + "\"";
  }
  *out_ += ">\n";
  stack_.emplace_back(name);
}

void XmlWriter::Leaf(std::string_view name, std::string_view text) {
  Indent();
  *out_ += "<";
  out_->append(name);
  *out_ += ">";
  *out_ += XmlEscape(text);
  *out_ += "</";
  out_->append(name);
  *out_ += ">\n";
}

void XmlWriter::Close() {
  if (stack_.empty()) return;
  std::string name = stack_.back();
  stack_.pop_back();
  Indent();
  *out_ += "</" + name + ">\n";
}

}  // namespace pullmon
