#ifndef PULLMON_FEEDS_FAULT_INJECTION_H_
#define PULLMON_FEEDS_FAULT_INJECTION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/chronon.h"
#include "feeds/feed_server.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// Per-resource fault rates of the injection layer. All rates are
/// per-probe probabilities in [0, 1]; latency is measured in fractional
/// chronons. The default (all zero) injects nothing and is guaranteed to
/// leave the probe path byte-identical to running without the layer.
struct FaultOptions {
  /// Probability that a probe times out: the request never completes
  /// within its chronon and no response (not even headers) is seen.
  double timeout_rate = 0.0;
  /// Probability of a transient server-side error (an HTTP 5xx): the
  /// request completes but carries no usable feed document.
  double server_error_rate = 0.0;
  /// Probability that a served body arrives truncated mid-document.
  double truncation_rate = 0.0;
  /// Probability that a served body arrives with garbled bytes.
  double corruption_rate = 0.0;
  /// Probability that a probe triggers an ETag invalidation storm: for
  /// the next `etag_storm_length` probes of the resource the server's
  /// validators are unstable, so every conditional fetch misses and pays
  /// for a full body.
  double etag_storm_rate = 0.0;
  /// Number of subsequent probes an ETag storm lasts.
  int etag_storm_length = 8;
  /// Mean simulated response latency in fractional chronons,
  /// exponentially distributed (0 disables latency simulation).
  double latency_mean = 0.0;
  /// A response slower than this many chronons misses its chronon
  /// boundary and is accounted as a timeout.
  double latency_timeout = 1.0;
  /// Per-chronon probability that a healthy resource enters an outage:
  /// the "bad" state of a two-state Gilbert-Elliott chain under which
  /// every probe of the resource fails until the outage ends. Models the
  /// correlated failure bursts of real Web sources (0 disables the
  /// chain entirely).
  double outage_enter_rate = 0.0;
  /// Per-chronon probability that a dark resource recovers. The mean
  /// outage length is 1/outage_exit_rate chronons; 0 makes outages
  /// permanent (a decommissioned source).
  double outage_exit_rate = 0.25;

  /// True when every knob is off — the layer is a pass-through.
  bool AllZero() const;
  /// Rates within [0,1], latency/storm parameters sane.
  Status Validate() const;
};

/// Deterministic counters of everything the fault layer did. Two runs
/// from the same seed produce equal stats (operator==).
struct FaultStats {
  std::size_t probes_seen = 0;
  std::size_t timeouts = 0;
  std::size_t server_errors = 0;
  std::size_t truncations = 0;
  std::size_t corruptions = 0;
  std::size_t storms_started = 0;
  /// Conditional fetches forced to full-body by an active storm.
  std::size_t etag_invalidations = 0;
  /// Probes swallowed because their resource was inside an outage.
  std::size_t outage_probes = 0;
  /// Healthy -> dark transitions of the per-resource outage chains.
  std::size_t outages_entered = 0;
  /// Dark chronons among those the outage chains were evaluated over
  /// (chains advance lazily, up to each resource's last probed chronon).
  std::size_t outage_chronons = 0;
  double latency_total = 0.0;
  double latency_max = 0.0;

  bool operator==(const FaultStats& other) const = default;
};

/// Truncates a serialized feed body at a pseudo-random cut point chosen
/// so the closing root tag is always lost — the result never parses.
/// Deterministic given the generator state.
std::string TruncateBody(const std::string& body, Rng* rng);

/// Garbles a serialized feed body by overwriting a window in its second
/// half with structurally invalid bytes (always containing "<<"), so the
/// result never parses for documents produced by WriteFeed.
/// Deterministic given the generator state.
std::string CorruptBody(const std::string& body, Rng* rng);

/// Resumable state of one FaultPlan, produced by Capture() and consumed
/// by Restore() — the recovery layer serializes it into proxy snapshots
/// so a restored run replays the exact fault sequence from the point of
/// interruption. Per-resource overrides and the options/seed are not
/// part of the image: they come from the run configuration.
struct FaultPlanImage {
  /// Raw xoshiro states of the lazily created per-resource streams
  /// (entries where *_ready is 0 are placeholders).
  std::vector<std::array<uint64_t, 4>> stream_states;
  std::vector<uint8_t> stream_ready;
  std::vector<int> storm_left;
  std::vector<std::array<uint64_t, 4>> outage_stream_states;
  std::vector<uint8_t> outage_stream_ready;
  std::vector<uint8_t> outage_dark;
  std::vector<Chronon> outage_eval_from;
  Chronon now = 0;
  FaultStats stats;
};

/// The fault-injection layer: wraps a FeedNetwork and decides, per
/// probe, whether and how the probe degrades. Every decision is drawn
/// from a per-resource stream derived from a single 64-bit seed, so the
/// full fault sequence of a run is reproducible from (seed, probe order)
/// and independent streams keep resources from perturbing each other.
class FaultPlan {
 public:
  /// What a probe through the layer experienced.
  enum class FaultKind {
    kNone,         // response delivered (possibly mangled)
    kTimeout,      // no response within the chronon
    kServerError,  // transient 5xx, no usable document
    kOutage,       // the resource is dark (Gilbert-Elliott bad state)
  };

  struct FaultedFetch {
    FaultKind fault = FaultKind::kNone;
    bool truncated = false;
    bool corrupted = false;
    /// Simulated response latency in fractional chronons (includes the
    /// full chronon waited on a timeout).
    double latency = 0.0;
    /// The (possibly mangled) response; meaningful iff fault == kNone.
    FeedServer::ConditionalFetch fetch;
  };

  /// The settled fate of one probe, drawn by DecideProbe() before any
  /// network fetch happens. A decision consumes the resource's fault
  /// stream and stats in full, so deciding is the only order-sensitive
  /// half of a probe: ExecuteDecision() is pure with respect to the
  /// plan's own state and may run on any thread, for any interleaving
  /// across resources (DESIGN.md section 16).
  struct ProbeDecision {
    FaultKind fault = FaultKind::kNone;
    /// The per-resource options were all zero: the probe is a plain
    /// pass-through fetch and none of the fields below are meaningful.
    bool all_zero = false;
    bool truncated = false;
    bool corrupted = false;
    /// An ETag storm forces this probe to an unconditional fetch.
    bool storm = false;
    /// Pre-drawn salt appended to the echoed validator under a storm.
    uint64_t storm_salt = 0;
    /// Seed of the dedicated mangling generator (truncation/corruption
    /// cut points draw from a fresh Rng(mangle_seed), never from the
    /// resource's fault stream — the stream's consumption must not
    /// depend on the fetched body).
    uint64_t mangle_seed = 0;
    /// Predicted conditional-fetch outcome (exact: the server's
    /// validator only moves at chronon boundaries, so the decide pass
    /// sees the same state the fetch will).
    bool not_modified = false;
    double latency = 0.0;
  };

  /// Settles the fate of the next probe of `resource` carrying validator
  /// `if_none_match`: consumes the resource's fault stream, updates the
  /// plan's stats, and predicts the conditional-fetch outcome — without
  /// fetching. Call in canonical probe order; pair each decision with
  /// exactly one ExecuteDecision() (or none: a timeout/error/outage
  /// decision needs no fetch, executing it just materializes the
  /// outcome).
  Result<ProbeDecision> DecideProbe(ResourceId resource,
                                    const std::string& if_none_match);

  /// Performs the fetch half of a decision: the conditional fetch
  /// (unconditional under a storm), validator salting, and body
  /// mangling, exactly as ProbeConditional() would have. Const on all
  /// plan state — only the probed server's internal caches move — so
  /// concurrent executions for resources owned by different shards are
  /// safe. `resource` and `if_none_match` must be the pair the decision
  /// was drawn for.
  Result<FaultedFetch> ExecuteDecision(ResourceId resource,
                                       const std::string& if_none_match,
                                       const ProbeDecision& decision) const;

  /// `network` must outlive the plan; no ownership taken.
  FaultPlan(FeedNetwork* network, uint64_t seed,
            FaultOptions defaults = FaultOptions{});

  /// Overrides the fault rates of one resource (heterogeneous networks:
  /// a flaky CDN edge next to healthy origins).
  void SetResourceOptions(ResourceId resource, FaultOptions options);
  const FaultOptions& OptionsFor(ResourceId resource) const;

  /// Restarts every per-resource stream and storm state from the seed —
  /// the next run replays the identical fault sequence. Stats reset too.
  void Reset();

  /// Delegates clock advancement to the wrapped network and records the
  /// current chronon: the per-resource outage chains are evaluated lazily
  /// up to the clock seen here, once per chronon, so a resource's outage
  /// trajectory depends only on (seed, chronon) — never on how often or
  /// in which order resources are probed.
  void AdvanceTo(Chronon t) {
    now_ = t;
    network_->AdvanceTo(t);
  }

  /// Whether `resource` is dark at chronon `t` (advances its chain to
  /// `t` if needed; `t` must not precede chronons already evaluated).
  bool InOutage(ResourceId resource, Chronon t);

  /// The faulty pull-probe: draws this probe's fate, performs the
  /// underlying conditional fetch unless the fault swallowed it, and
  /// applies body/validator degradations. NotFound for unknown
  /// resources, like the wrapped network.
  Result<FaultedFetch> ProbeConditional(ResourceId resource,
                                        const std::string& if_none_match);

  FeedNetwork* network() { return network_; }
  const FaultStats& stats() const { return stats_; }

  /// Checkpoint support: Capture() freezes the full dynamic state
  /// (stream positions, storm/outage progress, stats); Restore() resumes
  /// it on a plan built over the same network size, seed, and options.
  /// InvalidArgument on a size mismatch.
  FaultPlanImage Capture() const;
  Status Restore(const FaultPlanImage& image);

 private:
  Rng& StreamFor(ResourceId resource);
  Rng& OutageStreamFor(ResourceId resource);

  FeedNetwork* network_;
  uint64_t seed_;
  FaultOptions defaults_;
  /// Sparse per-resource overrides, parallel to `has_override_`.
  std::vector<FaultOptions> overrides_;
  std::vector<uint8_t> has_override_;
  /// Lazily created per-resource generators (index == ResourceId).
  std::vector<Rng> streams_;
  std::vector<uint8_t> stream_ready_;
  /// Remaining probes of an active ETag storm, per resource.
  std::vector<int> storm_left_;
  /// The outage chains draw from dedicated per-resource streams, one
  /// draw per evaluated chronon, so per-probe fault draws never shift a
  /// resource's outage trajectory (and vice versa).
  std::vector<Rng> outage_streams_;
  std::vector<uint8_t> outage_stream_ready_;
  std::vector<uint8_t> outage_dark_;
  /// First chronon each chain has not been evaluated for yet.
  std::vector<Chronon> outage_eval_from_;
  Chronon now_ = 0;
  FaultStats stats_;
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_FAULT_INJECTION_H_
