#ifndef PULLMON_FEEDS_FEED_SERVER_H_
#define PULLMON_FEEDS_FEED_SERVER_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include <optional>

#include "core/chronon.h"
#include "feeds/feed_item.h"
#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/datetime.h"
#include "util/status.h"

namespace pullmon {

/// A simulated volatile feed publisher: a server holding a *bounded*
/// buffer of feed items, evicting the oldest on overflow. This models
/// the paper's observation (via [10]) that feed providers keep each item
/// available only for a limited life period (~80% of feeds are under
/// 10 KB), which is precisely what makes pull scheduling necessary —
/// items fetched too late are gone.
class FeedServer {
 public:
  FeedServer(ResourceId id, std::string title, std::size_t capacity,
             FeedFormat format = FeedFormat::kRss2,
             ChrononClock clock = ChrononClock{});

  ResourceId id() const { return id_; }
  const std::string& title() const { return title_; }
  std::size_t capacity() const { return capacity_; }

  /// Publishes an item (newest first); evicts beyond capacity.
  void Publish(FeedItem item);

  /// Serves the current buffer as a serialized feed document — the pull
  /// protocol endpoint (an HTTP GET in a deployment).
  std::string Fetch();

  /// Zero-copy Fetch: a view of the server's cached serialization,
  /// valid until the next Publish() (serialization and its buffer are
  /// reused across probes of an unchanged feed — the probe hot path
  /// performs no allocation in the steady state).
  std::string_view FetchView();

  /// Result of a conditional fetch (HTTP If-None-Match semantics).
  struct ConditionalFetch {
    /// True when the client's validator still matches: no body is sent
    /// (an HTTP 304), only the validator is echoed.
    bool not_modified = false;
    std::string body;  // empty when not_modified
    /// Opaque validator of the served state; present either way.
    std::string etag;
  };

  /// Zero-copy ConditionalFetch: views into the server's cached body
  /// and validator buffers, valid until the next Publish().
  struct ConditionalFetchView {
    bool not_modified = false;
    std::string_view body;  // empty when not_modified
    std::string_view etag;
  };

  /// Conditional pull: pass the validator from a previous fetch (or ""
  /// for an unconditional one). When the feed state is unchanged the
  /// server answers not_modified with an empty body — the bandwidth
  /// economy that makes frequent polling viable in deployments.
  ConditionalFetch FetchConditional(const std::string& if_none_match);

  /// Zero-copy FetchConditional (same protocol and counters).
  ConditionalFetchView FetchConditionalView(std::string_view if_none_match);

  /// Validator of the current buffer state (changes on every publish).
  std::string CurrentETag() const;

  /// Zero-copy CurrentETag: a view of the cached validator, valid until
  /// the next Publish().
  std::string_view CurrentETagView() const;

  /// Items currently buffered, newest first.
  const std::deque<FeedItem>& items() const { return items_; }

  std::size_t publish_count() const { return publish_count_; }
  std::size_t fetch_count() const { return fetch_count_; }
  /// Conditional fetches answered without a body.
  std::size_t not_modified_count() const { return not_modified_count_; }
  /// Items lost to the bounded buffer — data a late prober can never see.
  std::size_t evicted_count() const { return evicted_count_; }

 private:
  ResourceId id_;
  std::string title_;
  std::size_t capacity_;
  FeedFormat format_;
  ChrononClock clock_;
  std::deque<FeedItem> items_;
  std::size_t publish_count_ = 0;
  std::size_t fetch_count_ = 0;
  std::size_t evicted_count_ = 0;
  std::size_t not_modified_count_ = 0;
  // Serialization and validator caches, invalidated by Publish(). Both
  // buffers (and the scratch document) retain their capacity across
  // rebuilds, so probing an unchanged feed allocates nothing. Mutable
  // because the accessors are logically const (CurrentETag).
  mutable std::string body_cache_;
  mutable bool body_dirty_ = true;
  mutable std::string etag_cache_;
  mutable bool etag_dirty_ = true;
  mutable FeedDocument scratch_doc_;
};

/// A fleet of feed servers, one per resource, replaying an update trace:
/// advancing the network clock publishes the due items; probing a
/// resource fetches (and parses, at the caller's choice) its feed.
/// Used by the proxy layer and the examples to exercise the full
/// pull path end to end.
class FeedNetwork {
 public:
  /// `trace` must outlive the network. `buffer_capacity` bounds each
  /// server's feed size.
  FeedNetwork(const UpdateTrace* trace, std::size_t buffer_capacity,
              FeedFormat format = FeedFormat::kRss2,
              ChrononClock clock = ChrononClock{});

  /// Paged-backend variant: replays a sealed TraceStore through a
  /// StreamingTraceReader, so the pending trace is never materialized —
  /// AdvanceTo holds O(num_resources) reader state instead of the whole
  /// event list. Per-server publish order and item content are
  /// identical to the in-memory constructor for equal traces (servers
  /// are independent, so the cross-server interleaving within one
  /// AdvanceTo batch is immaterial). `store` must outlive the network.
  FeedNetwork(const TraceStore* store, std::size_t buffer_capacity,
              FeedFormat format = FeedFormat::kRss2,
              ChrononClock clock = ChrononClock{});

  /// Publishes every update event with chronon <= t that has not been
  /// published yet. Must be called with non-decreasing t.
  void AdvanceTo(Chronon t);

  /// Pull-probe of one resource: the serialized feed at the current
  /// clock. NotFound for unknown resources.
  Result<std::string> Probe(ResourceId resource);

  /// Conditional pull-probe (If-None-Match). NotFound for unknown
  /// resources.
  Result<FeedServer::ConditionalFetch> ProbeConditional(
      ResourceId resource, const std::string& if_none_match);

  /// Zero-copy conditional pull-probe: views valid until the probed
  /// server's next Publish(). NotFound for unknown resources.
  Result<FeedServer::ConditionalFetchView> ProbeConditionalView(
      ResourceId resource, std::string_view if_none_match);

  FeedServer* server(ResourceId resource);
  std::size_t num_servers() const { return servers_.size(); }

  /// Total items evicted across servers so far.
  std::size_t TotalEvicted() const;

  /// The paged store backing this network, or nullptr when it replays
  /// an in-memory UpdateTrace. Proxy telemetry reads store stats here.
  const TraceStore* trace_store() const { return store_; }

 private:
  /// Publishes one trace event to its server (shared by both replay
  /// paths; the guid indexes per-resource publish order).
  void PublishEvent(ResourceId r, Chronon when);

  /// Exactly one of trace_ / store_ is set.
  const UpdateTrace* trace_ = nullptr;
  const TraceStore* store_ = nullptr;
  ChrononClock clock_;
  Chronon published_through_ = -1;
  std::vector<FeedServer> servers_;
  /// Per-resource count of already-published events (the guid index;
  /// doubles as the replay cursor on the in-memory path).
  std::vector<std::size_t> next_event_;
  /// Streaming replay state of the paged path.
  std::optional<StreamingTraceReader> reader_;
  std::optional<UpdateEvent> pending_;
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_FEED_SERVER_H_
