#ifndef PULLMON_FEEDS_EBAY_FEED_H_
#define PULLMON_FEEDS_EBAY_FEED_H_

#include <string>
#include <vector>

#include "feeds/feed_item.h"
#include "trace/auction_generator.h"
#include "util/datetime.h"
#include "util/status.h"

namespace pullmon {

/// Renders one auction's bid history as a feed document, newest bid
/// first — the shape of the eBay Web feeds the paper's real trace was
/// extracted from. Guids follow "auction-<id>-bid-<n>".
FeedDocument AuctionToFeed(const AuctionTrace& trace, int auction,
                           ChrononClock clock = ChrononClock{});

/// Serializes every auction of a trace to its own feed document.
std::vector<std::string> AuctionTraceToFeeds(
    const AuctionTrace& trace, FeedFormat format = FeedFormat::kRss2,
    ChrononClock clock = ChrononClock{});

/// Reconstructs the update-event trace by parsing serialized feeds (the
/// i-th document belongs to resource i): the "extract bid information
/// from Web feeds" step of Section 5.1. Item timestamps are mapped back
/// to chronons via `clock`; out-of-epoch items fail with OutOfRange.
Result<UpdateTrace> TraceFromFeeds(const std::vector<std::string>& feeds,
                                   Chronon epoch_length,
                                   ChrononClock clock = ChrononClock{});

}  // namespace pullmon

#endif  // PULLMON_FEEDS_EBAY_FEED_H_
