#include "feeds/fault_injection.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

namespace {

Status ValidateRate(double rate, const char* name) {
  if (rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument(
        StringFormat("%s must be in [0,1], got %g", name, rate));
  }
  return Status::OK();
}

}  // namespace

bool FaultOptions::AllZero() const {
  return timeout_rate == 0.0 && server_error_rate == 0.0 &&
         truncation_rate == 0.0 && corruption_rate == 0.0 &&
         etag_storm_rate == 0.0 && latency_mean == 0.0 &&
         outage_enter_rate == 0.0;
}

Status FaultOptions::Validate() const {
  PULLMON_RETURN_NOT_OK(ValidateRate(timeout_rate, "timeout_rate"));
  PULLMON_RETURN_NOT_OK(ValidateRate(server_error_rate, "server_error_rate"));
  PULLMON_RETURN_NOT_OK(ValidateRate(truncation_rate, "truncation_rate"));
  PULLMON_RETURN_NOT_OK(ValidateRate(corruption_rate, "corruption_rate"));
  PULLMON_RETURN_NOT_OK(ValidateRate(etag_storm_rate, "etag_storm_rate"));
  if (etag_storm_rate > 0.0 && etag_storm_length <= 0) {
    return Status::InvalidArgument(
        "etag_storm_length must be positive when storms are enabled");
  }
  if (latency_mean < 0.0) {
    return Status::InvalidArgument("latency_mean must be >= 0");
  }
  if (latency_timeout <= 0.0) {
    return Status::InvalidArgument("latency_timeout must be > 0");
  }
  PULLMON_RETURN_NOT_OK(ValidateRate(outage_enter_rate, "outage_enter_rate"));
  PULLMON_RETURN_NOT_OK(ValidateRate(outage_exit_rate, "outage_exit_rate"));
  return Status::OK();
}

std::string TruncateBody(const std::string& body, Rng* rng) {
  // Serialized feeds end in a closing root tag of at most 8 bytes
  // ("</feed>\n"); keeping strictly fewer than size-8 bytes guarantees
  // the root element is left open and the parser reports an error.
  if (body.size() <= 9) return body.substr(0, 1);
  std::size_t keep =
      1 + static_cast<std::size_t>(
              rng->NextBounded(static_cast<uint64_t>(body.size() - 9)));
  return body.substr(0, keep);
}

std::string CorruptBody(const std::string& body, Rng* rng) {
  std::string mangled = body;
  if (mangled.size() < 16) return "<<";
  // Land the damage in the second half of the document — past the XML
  // declaration, inside the root element — so the raw "<<" is a
  // guaranteed structural error for WriteFeed output (which contains no
  // CDATA or comment sections that could hide it).
  std::size_t half = mangled.size() / 2;
  std::size_t offset =
      half + static_cast<std::size_t>(
                 rng->NextBounded(static_cast<uint64_t>(half - 6)));
  static constexpr char kGarbage[] = "<&#;\x01\xff";
  mangled[offset] = '<';
  mangled[offset + 1] = '<';
  mangled[offset + 2] = kGarbage[rng->NextBounded(sizeof(kGarbage) - 1)];
  mangled[offset + 3] = kGarbage[rng->NextBounded(sizeof(kGarbage) - 1)];
  return mangled;
}

FaultPlan::FaultPlan(FeedNetwork* network, uint64_t seed,
                     FaultOptions defaults)
    : network_(network), seed_(seed), defaults_(defaults) {
  std::size_t n = network_->num_servers();
  overrides_.resize(n);
  has_override_.assign(n, 0);
  streams_.resize(n, Rng(0));
  stream_ready_.assign(n, 0);
  storm_left_.assign(n, 0);
  outage_streams_.resize(n, Rng(0));
  outage_stream_ready_.assign(n, 0);
  outage_dark_.assign(n, 0);
  outage_eval_from_.assign(n, 0);
}

void FaultPlan::SetResourceOptions(ResourceId resource,
                                   FaultOptions options) {
  std::size_t r = static_cast<std::size_t>(resource);
  if (r >= overrides_.size()) return;
  overrides_[r] = options;
  has_override_[r] = 1;
}

const FaultOptions& FaultPlan::OptionsFor(ResourceId resource) const {
  std::size_t r = static_cast<std::size_t>(resource);
  if (r < has_override_.size() && has_override_[r]) return overrides_[r];
  return defaults_;
}

void FaultPlan::Reset() {
  std::fill(stream_ready_.begin(), stream_ready_.end(), 0);
  std::fill(storm_left_.begin(), storm_left_.end(), 0);
  std::fill(outage_stream_ready_.begin(), outage_stream_ready_.end(), 0);
  std::fill(outage_dark_.begin(), outage_dark_.end(), 0);
  std::fill(outage_eval_from_.begin(), outage_eval_from_.end(), 0);
  now_ = 0;
  stats_ = FaultStats{};
}

FaultPlanImage FaultPlan::Capture() const {
  FaultPlanImage image;
  image.stream_states.reserve(streams_.size());
  for (const Rng& rng : streams_) {
    image.stream_states.push_back(rng.SaveState());
  }
  image.stream_ready = stream_ready_;
  image.storm_left = storm_left_;
  image.outage_stream_states.reserve(outage_streams_.size());
  for (const Rng& rng : outage_streams_) {
    image.outage_stream_states.push_back(rng.SaveState());
  }
  image.outage_stream_ready = outage_stream_ready_;
  image.outage_dark = outage_dark_;
  image.outage_eval_from = outage_eval_from_;
  image.now = now_;
  image.stats = stats_;
  return image;
}

Status FaultPlan::Restore(const FaultPlanImage& image) {
  const std::size_t n = streams_.size();
  if (image.stream_states.size() != n || image.stream_ready.size() != n ||
      image.storm_left.size() != n ||
      image.outage_stream_states.size() != n ||
      image.outage_stream_ready.size() != n ||
      image.outage_dark.size() != n ||
      image.outage_eval_from.size() != n) {
    return Status::InvalidArgument(
        "fault-plan image resource count does not match the plan");
  }
  for (std::size_t r = 0; r < n; ++r) {
    streams_[r].RestoreState(image.stream_states[r]);
    outage_streams_[r].RestoreState(image.outage_stream_states[r]);
  }
  stream_ready_ = image.stream_ready;
  storm_left_ = image.storm_left;
  outage_stream_ready_ = image.outage_stream_ready;
  outage_dark_ = image.outage_dark;
  outage_eval_from_ = image.outage_eval_from;
  now_ = image.now;
  stats_ = image.stats;
  return Status::OK();
}

Rng& FaultPlan::StreamFor(ResourceId resource) {
  std::size_t r = static_cast<std::size_t>(resource);
  if (!stream_ready_[r]) {
    // One SplitMix64 step decorrelates the per-resource seeds even for
    // adjacent resource ids; the Rng constructor mixes further.
    uint64_t state = seed_ + 0x9E3779B97F4A7C15ULL * (resource + 1);
    streams_[r] = Rng(SplitMix64(&state));
    stream_ready_[r] = 1;
  }
  return streams_[r];
}

Rng& FaultPlan::OutageStreamFor(ResourceId resource) {
  std::size_t r = static_cast<std::size_t>(resource);
  if (!outage_stream_ready_[r]) {
    // Same derivation as StreamFor, salted so the outage chain and the
    // per-probe fault stream of a resource are independent.
    uint64_t state = (seed_ ^ 0xA5A5A5A55A5A5A5AULL) +
                     0x9E3779B97F4A7C15ULL * (resource + 1);
    outage_streams_[r] = Rng(SplitMix64(&state));
    outage_stream_ready_[r] = 1;
  }
  return outage_streams_[r];
}

bool FaultPlan::InOutage(ResourceId resource, Chronon t) {
  const FaultOptions& options = OptionsFor(resource);
  if (options.outage_enter_rate <= 0.0) return false;
  std::size_t r = static_cast<std::size_t>(resource);
  Rng& rng = OutageStreamFor(resource);
  // One Gilbert-Elliott step per chronon in [eval_from, t]; the state
  // after the step at chronon c is the state *during* chronon c.
  while (outage_eval_from_[r] <= t) {
    if (outage_dark_[r]) {
      if (options.outage_exit_rate > 0.0 &&
          rng.NextBool(options.outage_exit_rate)) {
        outage_dark_[r] = 0;
      }
    } else if (rng.NextBool(options.outage_enter_rate)) {
      outage_dark_[r] = 1;
      ++stats_.outages_entered;
    }
    if (outage_dark_[r]) ++stats_.outage_chronons;
    ++outage_eval_from_[r];
  }
  return outage_dark_[r] != 0;
}

Result<FaultPlan::ProbeDecision> FaultPlan::DecideProbe(
    ResourceId resource, const std::string& if_none_match) {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= storm_left_.size()) {
    return Status::NotFound(
        StringFormat("no feed server for resource %d", resource));
  }
  const FaultOptions& options = OptionsFor(resource);
  ++stats_.probes_seen;
  ProbeDecision decision;
  if (options.AllZero()) {
    // Fast pass-through: no stream is touched, the execute phase probes
    // the wrapped network verbatim — byte-identical to running without
    // the layer.
    decision.all_zero = true;
    return decision;
  }

  auto record_latency = [&] {
    stats_.latency_total += decision.latency;
    stats_.latency_max = std::max(stats_.latency_max, decision.latency);
  };

  // Outages swallow the probe before any per-probe fate is drawn, so a
  // dark stretch does not consume the resource's fault stream: the
  // per-probe fault sequence after recovery is the same one the
  // resource would have seen without the outage.
  if (InOutage(resource, now_)) {
    decision.fault = FaultKind::kOutage;
    if (options.latency_mean > 0.0) {
      decision.latency = options.latency_timeout;
    }
    ++stats_.outage_probes;
    record_latency();
    return decision;
  }

  Rng& rng = StreamFor(resource);
  if (options.latency_mean > 0.0) {
    decision.latency = rng.NextExponential(1.0 / options.latency_mean);
  }

  // Hard faults first: the request dies before a response exists, so
  // the wrapped server never sees a fetch.
  if (options.timeout_rate > 0.0 && rng.NextBool(options.timeout_rate)) {
    decision.fault = FaultKind::kTimeout;
    decision.latency = std::max(decision.latency, options.latency_timeout);
    ++stats_.timeouts;
    record_latency();
    return decision;
  }
  if (options.server_error_rate > 0.0 &&
      rng.NextBool(options.server_error_rate)) {
    decision.fault = FaultKind::kServerError;
    ++stats_.server_errors;
    record_latency();
    return decision;
  }
  // A response slower than the chronon boundary is indistinguishable
  // from a timeout to the prober.
  if (decision.latency >= options.latency_timeout) {
    decision.fault = FaultKind::kTimeout;
    ++stats_.timeouts;
    record_latency();
    return decision;
  }

  // ETag invalidation storms: while active, the server's validators are
  // unstable — the client's If-None-Match can never hit, so the probe is
  // forced to an unconditional full-body fetch and the echoed validator
  // is salted so the *next* conditional fetch misses too. The salt is
  // drawn here rather than after the fetch: the fetch consumes no plan
  // randomness, so the value is unchanged.
  std::size_t r = static_cast<std::size_t>(resource);
  decision.storm = storm_left_[r] > 0;
  if (!decision.storm && options.etag_storm_rate > 0.0 &&
      rng.NextBool(options.etag_storm_rate)) {
    decision.storm = true;
    storm_left_[r] = options.etag_storm_length;
    ++stats_.storms_started;
  }
  if (decision.storm) {
    --storm_left_[r];
    decision.storm_salt = rng.Next();
    ++stats_.etag_invalidations;
  }

  // Predict the conditional-fetch outcome: the server's validator moves
  // only when a chronon boundary publishes items, never on a fetch, so
  // the state read here is exactly the state the execute-phase fetch
  // observes (ExecuteDecision checks the prediction).
  decision.not_modified =
      !decision.storm && !if_none_match.empty() &&
      if_none_match == network_->server(resource)->CurrentETagView();

  // Served bodies are never empty (WriteFeed output always carries the
  // document skeleton), so a delivered response is mangle-eligible iff
  // it is a full body rather than a 304.
  if (!decision.not_modified) {
    if (options.truncation_rate > 0.0 &&
        rng.NextBool(options.truncation_rate)) {
      decision.truncated = true;
      ++stats_.truncations;
    } else if (options.corruption_rate > 0.0 &&
               rng.NextBool(options.corruption_rate)) {
      decision.corrupted = true;
      ++stats_.corruptions;
    }
    if (decision.truncated || decision.corrupted) {
      // One draw seeds a dedicated mangling generator; letting the cut
      // points draw from the resource stream directly would make the
      // stream's position depend on the fetched document.
      decision.mangle_seed = rng.Next();
    }
  }
  record_latency();
  return decision;
}

Result<FaultPlan::FaultedFetch> FaultPlan::ExecuteDecision(
    ResourceId resource, const std::string& if_none_match,
    const ProbeDecision& decision) const {
  FaultedFetch outcome;
  outcome.latency = decision.latency;
  if (decision.all_zero) {
    PULLMON_ASSIGN_OR_RETURN(
        outcome.fetch, network_->ProbeConditional(resource, if_none_match));
    return outcome;
  }
  outcome.fault = decision.fault;
  if (decision.fault != FaultKind::kNone) return outcome;

  PULLMON_ASSIGN_OR_RETURN(
      outcome.fetch,
      network_->ProbeConditional(
          resource, decision.storm ? std::string() : if_none_match));
  if (decision.storm) {
    outcome.fetch.etag += StringFormat(
        "-storm%016llx",
        static_cast<unsigned long long>(decision.storm_salt));
  }
  PULLMON_CHECK(outcome.fetch.not_modified == decision.not_modified);
  if (decision.truncated || decision.corrupted) {
    Rng mangle_rng(decision.mangle_seed);
    if (decision.truncated) {
      outcome.fetch.body = TruncateBody(outcome.fetch.body, &mangle_rng);
      outcome.truncated = true;
    } else {
      outcome.fetch.body = CorruptBody(outcome.fetch.body, &mangle_rng);
      outcome.corrupted = true;
    }
  }
  return outcome;
}

Result<FaultPlan::FaultedFetch> FaultPlan::ProbeConditional(
    ResourceId resource, const std::string& if_none_match) {
  auto decision = DecideProbe(resource, if_none_match);
  if (!decision.ok()) return decision.status();
  return ExecuteDecision(resource, if_none_match, decision.value());
}

}  // namespace pullmon
