#include "feeds/feed_server.h"

#include "feeds/atom.h"
#include "feeds/rss.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

FeedServer::FeedServer(ResourceId id, std::string title,
                       std::size_t capacity, FeedFormat format,
                       ChrononClock clock)
    : id_(id),
      title_(std::move(title)),
      capacity_(capacity == 0 ? 1 : capacity),
      format_(format),
      clock_(clock) {}

void FeedServer::Publish(FeedItem item) {
  items_.push_front(std::move(item));
  ++publish_count_;
  while (items_.size() > capacity_) {
    items_.pop_back();
    ++evicted_count_;
  }
  body_dirty_ = true;
  etag_dirty_ = true;
}

std::string_view FeedServer::CurrentETagView() const {
  if (etag_dirty_) {
    // A content-derived validator: publish count plus the newest guid
    // is enough to distinguish every buffer state of this server.
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
      }
    };
    mix(StringFormat("%zu", publish_count_));
    if (!items_.empty()) mix(items_.front().guid);
    etag_cache_ =
        StringFormat("\"%016llx\"", static_cast<unsigned long long>(h));
    etag_dirty_ = false;
  }
  return etag_cache_;
}

std::string FeedServer::CurrentETag() const {
  return std::string(CurrentETagView());
}

FeedServer::ConditionalFetchView FeedServer::FetchConditionalView(
    std::string_view if_none_match) {
  ConditionalFetchView result;
  result.etag = CurrentETagView();
  if (!if_none_match.empty() && if_none_match == result.etag) {
    result.not_modified = true;
    ++not_modified_count_;
    ++fetch_count_;
    return result;
  }
  result.body = FetchView();
  return result;
}

FeedServer::ConditionalFetch FeedServer::FetchConditional(
    const std::string& if_none_match) {
  ConditionalFetchView view = FetchConditionalView(if_none_match);
  ConditionalFetch result;
  result.not_modified = view.not_modified;
  result.body.assign(view.body);
  result.etag.assign(view.etag);
  return result;
}

std::string_view FeedServer::FetchView() {
  ++fetch_count_;
  if (body_dirty_) {
    // The scratch document and the body buffer keep their capacity, so
    // rebuilds after the warm-up allocate only for genuinely new item
    // content.
    scratch_doc_.title = title_;
    scratch_doc_.link =
        StringFormat("http://feeds.example.com/resource/%d", id_);
    scratch_doc_.description =
        StringFormat("Volatile feed of resource %d (capacity %zu)", id_,
                     capacity_);
    scratch_doc_.items.assign(items_.begin(), items_.end());
    WriteFeedTo(scratch_doc_, format_, &body_cache_);
    body_dirty_ = false;
  }
  return body_cache_;
}

std::string FeedServer::Fetch() { return std::string(FetchView()); }

FeedNetwork::FeedNetwork(const UpdateTrace* trace,
                         std::size_t buffer_capacity, FeedFormat format,
                         ChrononClock clock)
    : trace_(trace), clock_(clock) {
  servers_.reserve(static_cast<std::size_t>(trace->num_resources()));
  next_event_.assign(static_cast<std::size_t>(trace->num_resources()), 0);
  for (ResourceId r = 0; r < trace->num_resources(); ++r) {
    servers_.emplace_back(r, StringFormat("Resource %d updates", r),
                          buffer_capacity, format, clock);
  }
}

FeedNetwork::FeedNetwork(const TraceStore* store,
                         std::size_t buffer_capacity, FeedFormat format,
                         ChrononClock clock)
    : store_(store), clock_(clock) {
  servers_.reserve(static_cast<std::size_t>(store->num_resources()));
  next_event_.assign(static_cast<std::size_t>(store->num_resources()), 0);
  for (ResourceId r = 0; r < store->num_resources(); ++r) {
    servers_.emplace_back(r, StringFormat("Resource %d updates", r),
                          buffer_capacity, format, clock);
  }
  reader_.emplace(store_);
}

void FeedNetwork::PublishEvent(ResourceId r, Chronon when) {
  const std::size_t next = next_event_[static_cast<std::size_t>(r)];
  FeedItem item;
  item.guid = StringFormat("resource-%d-update-%zu", r, next);
  item.title = StringFormat("Update %zu of resource %d", next, r);
  item.link =
      StringFormat("http://feeds.example.com/resource/%d/%zu", r, next);
  item.description =
      StringFormat("State change observed at chronon %d", when);
  item.published = clock_.ToUnix(when);
  servers_[static_cast<std::size_t>(r)].Publish(std::move(item));
  ++next_event_[static_cast<std::size_t>(r)];
}

void FeedNetwork::AdvanceTo(Chronon t) {
  if (t <= published_through_) return;
  if (store_ != nullptr) {
    // Streaming replay: drain the merge reader up to t. The reader
    // yields (chronon, resource)-ordered events, so per-server publish
    // order matches the in-memory path.
    while (true) {
      if (!pending_.has_value()) {
        UpdateEvent event;
        if (!reader_->Next(&event)) break;
        pending_ = event;
      }
      if (pending_->chronon > t) break;
      PublishEvent(pending_->resource, pending_->chronon);
      pending_.reset();
    }
    // A replay that cannot trust its own trace must not limp on.
    PULLMON_CHECK(reader_->status().ok());
  } else {
    for (ResourceId r = 0; r < trace_->num_resources(); ++r) {
      const auto& events = trace_->EventsFor(r);
      std::size_t& next = next_event_[static_cast<std::size_t>(r)];
      while (next < events.size() && events[next] <= t) {
        Chronon when = events[next];
        PublishEvent(r, when);
      }
    }
  }
  published_through_ = t;
}

Result<std::string> FeedNetwork::Probe(ResourceId resource) {
  if (resource < 0 ||
      resource >= static_cast<ResourceId>(servers_.size())) {
    return Status::NotFound(
        StringFormat("no feed server for resource %d", resource));
  }
  return servers_[static_cast<std::size_t>(resource)].Fetch();
}

Result<FeedServer::ConditionalFetch> FeedNetwork::ProbeConditional(
    ResourceId resource, const std::string& if_none_match) {
  if (resource < 0 ||
      resource >= static_cast<ResourceId>(servers_.size())) {
    return Status::NotFound(
        StringFormat("no feed server for resource %d", resource));
  }
  return servers_[static_cast<std::size_t>(resource)].FetchConditional(
      if_none_match);
}

Result<FeedServer::ConditionalFetchView> FeedNetwork::ProbeConditionalView(
    ResourceId resource, std::string_view if_none_match) {
  if (resource < 0 ||
      resource >= static_cast<ResourceId>(servers_.size())) {
    return Status::NotFound(
        StringFormat("no feed server for resource %d", resource));
  }
  return servers_[static_cast<std::size_t>(resource)].FetchConditionalView(
      if_none_match);
}

FeedServer* FeedNetwork::server(ResourceId resource) {
  if (resource < 0 ||
      resource >= static_cast<ResourceId>(servers_.size())) {
    return nullptr;
  }
  return &servers_[static_cast<std::size_t>(resource)];
}

std::size_t FeedNetwork::TotalEvicted() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server.evicted_count();
  return total;
}

}  // namespace pullmon
