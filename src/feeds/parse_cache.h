#ifndef PULLMON_FEEDS_PARSE_CACHE_H_
#define PULLMON_FEEDS_PARSE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/chronon.h"
#include "feeds/feed_item.h"
#include "util/status.h"

namespace pullmon {

/// Counters of everything a ParseCache did; deterministic per run.
struct ParseCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t invalidations = 0;
  /// Body bytes whose parse was skipped by a hit.
  std::size_t bytes_saved = 0;

  bool operator==(const ParseCacheStats& other) const = default;
};

/// Resumable state of one ParseCache, produced by Capture() and consumed
/// by Restore() — the recovery layer serializes it into proxy snapshots.
/// The full cached documents travel with the validators: a restored run
/// must replay the same hits (and skip the same parses) the uninterrupted
/// run would have, or the parse_cache_* counters diverge.
struct ParseCacheEntryImage {
  bool valid = false;
  std::string etag;
  uint64_t body_hash = 0;
  std::size_t body_size = 0;
  FeedDocument document;
};

struct ParseCacheImage {
  std::vector<ParseCacheEntryImage> entries;
  ParseCacheStats stats;
};

/// A per-resource parse cache in front of the feed layer: remembers the
/// last successfully parsed document of every resource together with
/// the validator (ETag) it was served under and a content hash of its
/// body. A later probe whose response matches either key skips parsing
/// and replays the cached FeedDocument.
///
/// Two keys, because the two cover different recoveries:
///  * The *validator* key hits when the server echoes the exact ETag
///    the entry was stored under — e.g. the first full-body fetch after
///    an ETag storm subsides with the feed unchanged. It is only
///    honored for pristine bodies (`mangled == false`): a truncated or
///    garbled body may travel under a truthful validator, and replaying
///    cached content for it would hide the fault.
///  * The *content* key (FNV-1a over the body, plus its size) hits when
///    the bytes themselves are unchanged even though validators are
///    unstable — every probe inside an ETag storm. A mangled body fails
///    this key by construction, so corrupt deliveries always fall
///    through to the parser (and then Invalidate()).
///
/// Replay is deterministic: a hit can only occur for a body that is
/// byte-identical to one that parsed successfully before (or served
/// under its exact validator), so the replayed document equals what the
/// parser would have produced — callers observe identical items,
/// counters, and notifications with the cache on or off.
class ParseCache {
 public:
  explicit ParseCache(std::size_t num_resources)
      : entries_(num_resources) {}

  /// The cached document for this response, or nullptr on a miss.
  /// `served_etag` is the validator accompanying the response body;
  /// `mangled` marks bodies known to be degraded in flight.
  const FeedDocument* Lookup(ResourceId resource,
                             std::string_view served_etag,
                             std::string_view body, bool mangled) {
    return Lookup(resource, served_etag, body, mangled, &stats_);
  }

  /// Sink variant for the parallel probe pipeline: counter mutations go
  /// to `sink` instead of the shared stats, so concurrent lanes stay
  /// race-free (entry state is still mutated — entries are per-resource
  /// and each resource is owned by one lane). Merge the sink back with
  /// MergeStats() during the serial commit phase.
  const FeedDocument* Lookup(ResourceId resource,
                             std::string_view served_etag,
                             std::string_view body, bool mangled,
                             ParseCacheStats* sink);

  /// Records a successful parse of `body` served under `served_etag`;
  /// returns the stored document (owned by the cache until the next
  /// Store/Invalidate of this resource).
  const FeedDocument& Store(ResourceId resource,
                            std::string_view served_etag,
                            std::string_view body, FeedDocument document);

  /// Drops the resource's entry (a parse failure proves the cached
  /// state can no longer be trusted as current).
  void Invalidate(ResourceId resource) { Invalidate(resource, &stats_); }

  /// Sink variant of Invalidate (see the Lookup overload).
  void Invalidate(ResourceId resource, ParseCacheStats* sink);

  /// Folds a per-attempt stat delta into the shared stats.
  void MergeStats(const ParseCacheStats& delta) {
    stats_.hits += delta.hits;
    stats_.misses += delta.misses;
    stats_.invalidations += delta.invalidations;
    stats_.bytes_saved += delta.bytes_saved;
  }

  const ParseCacheStats& stats() const { return stats_; }

  /// Checkpoint support: Capture() freezes entries and stats; Restore()
  /// resumes them on a cache built with the same resource count.
  /// InvalidArgument on a size mismatch.
  ParseCacheImage Capture() const;
  Status Restore(const ParseCacheImage& image);

  /// FNV-1a over the body bytes (the content key).
  static uint64_t HashBody(std::string_view body);

 private:
  struct Entry {
    bool valid = false;
    std::string etag;
    uint64_t body_hash = 0;
    std::size_t body_size = 0;
    FeedDocument document;
  };

  std::vector<Entry> entries_;
  ParseCacheStats stats_;
};

}  // namespace pullmon

#endif  // PULLMON_FEEDS_PARSE_CACHE_H_
