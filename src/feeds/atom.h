#ifndef PULLMON_FEEDS_ATOM_H_
#define PULLMON_FEEDS_ATOM_H_

#include <string>
#include <string_view>

#include "feeds/feed_item.h"
#include "util/arena.h"
#include "util/status.h"

namespace pullmon {

/// Parses an Atom 1.0 document (root <feed>). Entry <id> maps to guid,
/// <summary>/<content> to description, <updated> (RFC 3339) to
/// published. ParseError on structural problems.
Result<FeedDocument> ParseAtom(std::string_view xml);

/// Arena overload: parses in-situ over `xml` into caller-owned arena
/// storage (see ParseRss).
Result<const FeedDocumentView*> ParseAtom(std::string_view xml,
                                          Arena* arena);

/// Serializes a feed as Atom 1.0.
std::string WriteAtom(const FeedDocument& feed);

/// Serializes into `*out` (cleared first), reusing its capacity.
void WriteAtomTo(const FeedDocument& feed, std::string* out);

/// Auto-detects RSS vs Atom by root element and dispatches.
Result<FeedDocument> ParseFeed(std::string_view xml);

/// Arena overload of ParseFeed.
Result<const FeedDocumentView*> ParseFeed(std::string_view xml,
                                          Arena* arena);

/// Serializes in the requested format.
std::string WriteFeed(const FeedDocument& feed, FeedFormat format);

/// Serializes into `*out` (cleared first), reusing its capacity.
void WriteFeedTo(const FeedDocument& feed, FeedFormat format,
                 std::string* out);

}  // namespace pullmon

#endif  // PULLMON_FEEDS_ATOM_H_
