#ifndef PULLMON_FEEDS_ATOM_H_
#define PULLMON_FEEDS_ATOM_H_

#include <string>
#include <string_view>

#include "feeds/feed_item.h"
#include "util/status.h"

namespace pullmon {

/// Parses an Atom 1.0 document (root <feed>). Entry <id> maps to guid,
/// <summary>/<content> to description, <updated> (RFC 3339) to
/// published. ParseError on structural problems.
Result<FeedDocument> ParseAtom(std::string_view xml);

/// Serializes a feed as Atom 1.0.
std::string WriteAtom(const FeedDocument& feed);

/// Auto-detects RSS vs Atom by root element and dispatches.
Result<FeedDocument> ParseFeed(std::string_view xml);

/// Serializes in the requested format.
std::string WriteFeed(const FeedDocument& feed, FeedFormat format);

}  // namespace pullmon

#endif  // PULLMON_FEEDS_ATOM_H_
