#ifndef PULLMON_OFFLINE_GREEDY_OFFLINE_H_
#define PULLMON_OFFLINE_GREEDY_OFFLINE_H_

#include "core/problem.h"
#include "offline/offline_solution.h"
#include "util/status.h"

namespace pullmon {

/// Myopic greedy offline scheduler for split-interval selection (in the
/// spirit of Erlebach & Spieksma's simple algorithms for weighted job
/// interval selection): t-intervals are processed by earliest
/// latest-finish (heavier utility first on ties) and kept whenever they
/// remain jointly schedulable with the current selection under the
/// budget (EDF probe assignment with intra-resource sharing).
///
/// Runs in low-polynomial time with no LP, so it scales where the
/// Local-Ratio approximation does not — the pragmatic offline baseline a
/// production deployment would actually use, and the natural foil for
/// Figure 5's scalability story.
class GreedyOfflineScheduler {
 public:
  explicit GreedyOfflineScheduler(const MonitoringProblem* problem)
      : problem_(problem) {}

  Result<OfflineSolution> Solve();

 private:
  const MonitoringProblem* problem_;
};

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_GREEDY_OFFLINE_H_
