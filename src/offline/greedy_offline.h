#ifndef PULLMON_OFFLINE_GREEDY_OFFLINE_H_
#define PULLMON_OFFLINE_GREEDY_OFFLINE_H_

#include "core/problem.h"
#include "offline/incremental_edf.h"
#include "offline/offline_solution.h"
#include "util/status.h"

namespace pullmon {

struct GreedyOfflineOptions {
  /// Feasibility oracle used for the acceptance tests. kFromScratch is
  /// the seed per-candidate rebuild, kept as the differential oracle.
  FeasibilityBackend backend = FeasibilityBackend::kIncremental;
};

/// Myopic greedy offline scheduler for split-interval selection (in the
/// spirit of Erlebach & Spieksma's simple algorithms for weighted job
/// interval selection): t-intervals are processed by earliest
/// latest-finish (heavier utility first on ties) and kept whenever they
/// remain jointly schedulable with the current selection under the
/// budget (EDF probe assignment with intra-resource sharing). For
/// alternatives (required() < size()) only a required()-sized subset
/// must fit — see TryCommitTInterval.
///
/// Runs in low-polynomial time with no LP, so it scales where the
/// Local-Ratio approximation does not — the pragmatic offline baseline a
/// production deployment would actually use, and the natural foil for
/// Figure 5's scalability story. Acceptance tests go through the
/// incremental EDF checker; per-candidate cost is proportional to the
/// replayed suffix, not the whole selection.
class GreedyOfflineScheduler {
 public:
  explicit GreedyOfflineScheduler(const MonitoringProblem* problem,
                                  GreedyOfflineOptions options = {})
      : problem_(problem), options_(options) {}

  Result<OfflineSolution> Solve();

 private:
  const MonitoringProblem* problem_;
  GreedyOfflineOptions options_;
};

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_GREEDY_OFFLINE_H_
