#include "offline/greedy_offline.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/completeness.h"
#include "util/logging.h"

namespace pullmon {

Result<OfflineSolution> GreedyOfflineScheduler::Solve() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  const auto start = std::chrono::steady_clock::now();
  const Chronon epoch_len = problem_->epoch.length;

  struct Item {
    const TInterval* eta;
    Chronon latest;
    double utility;
  };
  std::vector<Item> items;
  for (const auto& p : problem_->profiles) {
    for (const auto& eta : p.t_intervals()) {
      items.push_back(Item{&eta, eta.LatestFinish(), eta.weight()});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.latest != b.latest) return a.latest < b.latest;
    return a.utility > b.utility;
  });

  OfflineSolution solution;
  solution.schedule = Schedule(epoch_len);
  std::unique_ptr<EdfFeasibilityChecker> checker =
      MakeFeasibilityChecker(options_.backend, &problem_->budget,
                             epoch_len);
  for (const auto& item : items) {
    TryCommitTInterval(*item.eta, checker.get());
    ++solution.work;
  }
  PULLMON_RETURN_NOT_OK(checker->ExportSchedule(&solution.schedule));

  const auto end = std::chrono::steady_clock::now();
  solution.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  CompletenessReport report =
      EvaluateCompleteness(problem_->profiles, solution.schedule);
  solution.captured = report.captured_t_intervals;
  solution.gained_completeness = report.GainedCompleteness();
  solution.captured_weight = report.captured_weight;
  return solution;
}

}  // namespace pullmon
