#ifndef PULLMON_OFFLINE_SIMPLEX_H_
#define PULLMON_OFFLINE_SIMPLEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// A linear program in canonical form:
///   maximize    c^T x
///   subject to  A x <= b,   x >= 0,
/// with b >= 0 so the all-slack basis is feasible (every LP built by the
/// offline approximation satisfies this). Constraints are stored sparsely.
class LinearProgram {
 public:
  explicit LinearProgram(int num_vars);

  int num_vars() const { return num_vars_; }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }

  /// Sets the objective coefficient of `var` (default 0).
  Status SetObjective(int var, double coeff);

  /// Adds a constraint sum(terms) <= rhs; rhs must be >= 0. Returns the
  /// constraint index.
  Result<int> AddConstraint(
      const std::vector<std::pair<int, double>>& terms, double rhs);

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<std::vector<std::pair<int, double>>>& rows() const {
    return rows_;
  }
  const std::vector<double>& rhs() const { return rhs_; }

 private:
  int num_vars_;
  std::vector<double> objective_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<double> rhs_;
};

struct SimplexOptions {
  /// Hard cap on pivots; the solver returns its current (feasible) point
  /// with converged=false when exhausted.
  std::size_t max_iterations = 200000;
  /// Pivots of plain Dantzig pricing before switching to Bland's rule
  /// (cycle protection).
  std::size_t bland_after = 20000;
  double epsilon = 1e-9;
};

struct LpSolution {
  std::vector<double> values;
  double objective = 0.0;
  bool converged = true;
  std::size_t iterations = 0;
};

/// Primal simplex on the dense tableau. Errors: InvalidArgument for
/// malformed programs, FailedPrecondition for unbounded ones.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options = {});

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_SIMPLEX_H_
