#include "offline/transform.h"

namespace pullmon {

Result<MonitoringProblem> ContractToUnitWidth(
    const MonitoringProblem& problem, ContractionRule rule) {
  PULLMON_RETURN_NOT_OK(problem.Validate());
  MonitoringProblem out;
  out.num_resources = problem.num_resources;
  out.epoch = problem.epoch;
  out.budget = problem.budget;
  out.profiles.reserve(problem.profiles.size());
  for (const auto& p : problem.profiles) {
    Profile contracted(p.name(), {});
    for (const auto& eta : p.t_intervals()) {
      TInterval new_eta;
      for (const auto& ei : eta.eis()) {
        Chronon at;
        switch (rule) {
          case ContractionRule::kStart:
            at = ei.start;
            break;
          case ContractionRule::kMiddle:
            at = ei.start + (ei.finish - ei.start) / 2;
            break;
          case ContractionRule::kFinish:
            at = ei.finish;
            break;
          default:
            at = ei.start;
            break;
        }
        new_eta.AddEi(ExecutionInterval(ei.resource, at, at));
      }
      contracted.AddTInterval(std::move(new_eta));
    }
    out.profiles.push_back(std::move(contracted));
  }
  return out;
}

}  // namespace pullmon
