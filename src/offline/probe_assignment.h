#ifndef PULLMON_OFFLINE_PROBE_ASSIGNMENT_H_
#define PULLMON_OFFLINE_PROBE_ASSIGNMENT_H_

#include <vector>

#include "core/execution_interval.h"
#include "core/schedule.h"

namespace pullmon {

/// Earliest-deadline-first probe assignment: tries to place one probe
/// inside every given EI, respecting the per-chronon budget;
/// intra-resource sharing (an already-placed probe inside the window)
/// satisfies an EI for free. Returns false when some EI cannot be
/// placed. On success and when `out_schedule` is non-null, the probes
/// are added to it. Used by the offline schedulers to turn a selected
/// t-interval set into a concrete schedule (and as their feasibility
/// oracle).
bool AssignProbesEdf(const std::vector<ExecutionInterval>& eis,
                     const BudgetVector& budget, Chronon epoch_length,
                     Schedule* out_schedule);

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_PROBE_ASSIGNMENT_H_
