#ifndef PULLMON_OFFLINE_INCREMENTAL_EDF_H_
#define PULLMON_OFFLINE_INCREMENTAL_EDF_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "core/execution_interval.h"
#include "core/schedule.h"
#include "core/t_interval.h"
#include "util/status.h"

namespace pullmon {

/// The total processing order of the EDF probe assignment: by finish,
/// then start, then resource. Two EIs comparing equivalent are
/// identical (an EI is exactly the triple (resource, start, finish)),
/// so the order is deterministic up to interchangeable duplicates — a
/// requirement for the incremental and from-scratch backends to place
/// probe-for-probe identical schedules.
struct EdfOrderLess {
  bool operator()(const ExecutionInterval& a,
                  const ExecutionInterval& b) const {
    if (a.finish != b.finish) return a.finish < b.finish;
    if (a.start != b.start) return a.start < b.start;
    return a.resource < b.resource;
  }
};

/// Feasibility oracle shared by the offline schedulers: maintains the
/// multiset of accepted (committed) EIs and answers whether a candidate
/// batch can join them under the EDF probe assignment — one probe
/// inside every EI window, per-chronon budgets C_j, intra-resource
/// probe sharing (Section 3.1).
///
/// Protocol: TrialInsert() stages a batch. On true the trial is left
/// pending and must be resolved with Commit() or Rollback(); on false
/// the checker has already restored itself and no resolution is
/// needed. The feasibility answer and the exported schedule are
/// defined as exactly what AssignProbesEdf produces on the committed
/// multiset in EdfOrderLess order; every backend must agree
/// probe-for-probe (enforced by offline_differential_test and the
/// bench_offline_solvers equivalence check).
class EdfFeasibilityChecker {
 public:
  virtual ~EdfFeasibilityChecker() = default;

  /// Stages `eis` on top of the committed set. True = jointly
  /// schedulable (trial pending); false = infeasible (state restored).
  virtual bool TrialInsert(const std::vector<ExecutionInterval>& eis) = 0;

  /// Makes the pending trial part of the committed set.
  virtual void Commit() = 0;

  /// Discards the pending trial, restoring the pre-trial state.
  virtual void Rollback() = 0;

  /// Adds the probes of the committed set's EDF placement to `out`.
  /// Must not be called with a trial pending.
  virtual Status ExportSchedule(Schedule* out) const = 0;

  /// Number of committed EIs.
  virtual std::size_t committed_eis() const = 0;
};

/// Backend selector for the offline schedulers. kIncremental is the
/// production path; kFromScratch re-runs AssignProbesEdf over the whole
/// selection on every acceptance test (the seed behaviour, O(n) copies
/// and a full re-sort per call) and is kept as the differential oracle,
/// mirroring core/reference_executor on the online side.
enum class FeasibilityBackend { kIncremental, kFromScratch };

std::unique_ptr<EdfFeasibilityChecker> MakeFeasibilityChecker(
    FeasibilityBackend backend, const BudgetVector* budget,
    Chronon epoch_length);

/// Incremental EDF feasibility. Committed EIs are held sorted in
/// EdfOrderLess order together with their placement decisions
/// (placed-at chronon, or "shared" when a prior probe of the same
/// resource already covers the window), plus per-chronon usage
/// counters and per-resource sorted probe-slot lists.
///
/// A trial locates the first committed entry ordered at or after the
/// smallest staged EI, undoes only that suffix's placements, and
/// merge-replays suffix + batch in EDF order. The prefix placement is
/// untouched: EDF processes entries in EdfOrderLess order and each
/// step depends only on earlier placements, so the prefix of the
/// union's assignment equals the prefix of the committed assignment.
/// Rollback undoes the replayed placements and re-applies the recorded
/// suffix, restoring the exact pre-trial state.
class IncrementalEdfChecker : public EdfFeasibilityChecker {
 public:
  IncrementalEdfChecker(const BudgetVector* budget, Chronon epoch_length);

  bool TrialInsert(const std::vector<ExecutionInterval>& eis) override;
  void Commit() override;
  void Rollback() override;
  Status ExportSchedule(Schedule* out) const override;
  std::size_t committed_eis() const override { return entries_.size(); }

  /// Total entries processed across all replays — the work the
  /// incremental structure actually did. The from-scratch path would
  /// have processed the whole selection per trial; tests assert this
  /// stays near-linear for deadline-ordered insertion sequences.
  std::size_t replay_steps() const { return replay_steps_; }

 private:
  struct Entry {
    ExecutionInterval ei;
    Chronon placed_at = -1;  // -1: satisfied by sharing, owns no probe
  };

  std::vector<Chronon>& Slots(ResourceId resource);
  bool PlaceEntry(Entry* entry);
  void UndoPlacement(const Entry& entry);
  void RedoPlacement(const Entry& entry);

  const BudgetVector* budget_;
  Chronon epoch_len_;
  std::vector<Entry> entries_;  // committed, EdfOrderLess-sorted
  std::vector<int> used_;       // probes placed per chronon
  std::vector<std::vector<Chronon>> slots_;  // sorted probe chronons / r

  bool pending_ = false;
  std::size_t pending_pos_ = 0;      // first replayed position
  std::vector<Entry> old_suffix_;    // recorded pre-trial suffix
  std::vector<Entry> new_suffix_;    // replayed suffix incl. the batch
  std::vector<ExecutionInterval> sorted_batch_;
  std::size_t replay_steps_ = 0;
};

/// The preserved seed path: keeps a flat EI vector and re-runs
/// AssignProbesEdf on a full copy per trial.
class FromScratchEdfChecker : public EdfFeasibilityChecker {
 public:
  FromScratchEdfChecker(const BudgetVector* budget, Chronon epoch_length)
      : budget_(budget), epoch_len_(epoch_length) {}

  bool TrialInsert(const std::vector<ExecutionInterval>& eis) override;
  void Commit() override;
  void Rollback() override;
  Status ExportSchedule(Schedule* out) const override;
  std::size_t committed_eis() const override { return committed_.size(); }

 private:
  const BudgetVector* budget_;
  Chronon epoch_len_;
  std::vector<ExecutionInterval> committed_;
  std::vector<ExecutionInterval> trial_;
  bool pending_ = false;
};

/// Upper bound on the q-subsets examined per alternatives t-interval
/// before giving up (C(rank, required) is tiny at the paper's ranks;
/// the cap only guards degenerate hand-built instances).
inline constexpr int kMaxSubsetTrials = 64;

/// Alternatives-aware acceptance test (Section 6 extension): commits a
/// required()-sized subset of eta's EIs when one is jointly schedulable
/// with the committed set, leaving the checker untouched otherwise.
/// Matching EvaluateCompleteness, capture only demands required() of
/// the EIs, so feasibility must not flatten all of them. Subsets are
/// tried in lexicographic order over the EDF processing order and the
/// first feasible one wins; with required() == size() this is the
/// plain all-EIs test. Returns true when a subset was committed.
bool TryCommitTInterval(const TInterval& eta,
                        EdfFeasibilityChecker* checker);

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_INCREMENTAL_EDF_H_
