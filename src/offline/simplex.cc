#include "offline/simplex.h"

#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace pullmon {

LinearProgram::LinearProgram(int num_vars)
    : num_vars_(num_vars < 0 ? 0 : num_vars),
      objective_(static_cast<std::size_t>(num_vars_), 0.0) {}

Status LinearProgram::SetObjective(int var, double coeff) {
  if (var < 0 || var >= num_vars_) {
    return Status::InvalidArgument(
        StringFormat("objective var %d outside [0,%d)", var, num_vars_));
  }
  objective_[static_cast<std::size_t>(var)] = coeff;
  return Status::OK();
}

Result<int> LinearProgram::AddConstraint(
    const std::vector<std::pair<int, double>>& terms, double rhs) {
  if (rhs < 0.0) {
    return Status::InvalidArgument(
        "canonical-form constraint requires rhs >= 0");
  }
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    if (var < 0 || var >= num_vars_) {
      return Status::InvalidArgument(
          StringFormat("constraint var %d outside [0,%d)", var, num_vars_));
    }
  }
  rows_.push_back(terms);
  rhs_.push_back(rhs);
  return static_cast<int>(rhs_.size()) - 1;
}

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options) {
  const int n = lp.num_vars();
  const int m = lp.num_constraints();
  const double eps = options.epsilon;

  // Dense tableau: m constraint rows + 1 objective row; columns are the
  // n structural variables, m slacks, then the RHS.
  const std::size_t cols = static_cast<std::size_t>(n + m + 1);
  std::vector<std::vector<double>> tableau(
      static_cast<std::size_t>(m + 1), std::vector<double>(cols, 0.0));
  std::vector<int> basis(static_cast<std::size_t>(m));

  for (int i = 0; i < m; ++i) {
    auto& row = tableau[static_cast<std::size_t>(i)];
    for (const auto& [var, coeff] : lp.rows()[static_cast<std::size_t>(i)]) {
      row[static_cast<std::size_t>(var)] += coeff;
    }
    row[static_cast<std::size_t>(n + i)] = 1.0;  // slack
    row[cols - 1] = lp.rhs()[static_cast<std::size_t>(i)];
    basis[static_cast<std::size_t>(i)] = n + i;
  }
  // Objective row holds -c so that a positive entry signals optimality
  // violation in the usual max-tableau convention (we look for negative
  // reduced costs in row m).
  auto& obj_row = tableau[static_cast<std::size_t>(m)];
  for (int j = 0; j < n; ++j) {
    obj_row[static_cast<std::size_t>(j)] =
        -lp.objective()[static_cast<std::size_t>(j)];
  }

  LpSolution solution;
  bool optimal = false;
  std::size_t iteration = 0;
  while (iteration < options.max_iterations) {
    const bool bland = iteration >= options.bland_after;
    // Pricing: pick the entering column.
    int entering = -1;
    double best = -eps;
    for (int j = 0; j < n + m; ++j) {
      double reduced = obj_row[static_cast<std::size_t>(j)];
      if (reduced < -eps) {
        if (bland) {
          entering = j;
          break;
        }
        if (reduced < best) {
          best = reduced;
          entering = j;
        }
      }
    }
    if (entering < 0) {
      optimal = true;
      break;
    }

    // Ratio test: pick the leaving row.
    int leaving = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      double a = tableau[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(entering)];
      if (a > eps) {
        double ratio = tableau[static_cast<std::size_t>(i)][cols - 1] / a;
        if (ratio < best_ratio - eps ||
            (bland && std::fabs(ratio - best_ratio) <= eps && leaving >= 0 &&
             basis[static_cast<std::size_t>(i)] <
                 basis[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving < 0) {
      return Status::FailedPrecondition("LP is unbounded");
    }

    // Pivot.
    auto& pivot_row = tableau[static_cast<std::size_t>(leaving)];
    double pivot = pivot_row[static_cast<std::size_t>(entering)];
    for (auto& cell : pivot_row) cell /= pivot;
    for (int i = 0; i <= m; ++i) {
      if (i == leaving) continue;
      auto& row = tableau[static_cast<std::size_t>(i)];
      double factor = row[static_cast<std::size_t>(entering)];
      if (std::fabs(factor) <= eps) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        row[j] -= factor * pivot_row[j];
      }
    }
    basis[static_cast<std::size_t>(leaving)] = entering;
    ++iteration;
  }

  // The loop may exit on the iteration cap with the tableau already
  // optimal (the final pivot reached the optimum exactly at the cap).
  // Re-run pricing once so `converged` reports optimality of the
  // tableau, not how the loop happened to exit.
  if (!optimal) {
    optimal = true;
    for (int j = 0; j < n + m; ++j) {
      if (obj_row[static_cast<std::size_t>(j)] < -eps) {
        optimal = false;
        break;
      }
    }
  }
  solution.iterations = iteration;
  solution.converged = optimal;
  solution.values.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    int var = basis[static_cast<std::size_t>(i)];
    if (var < n) {
      solution.values[static_cast<std::size_t>(var)] =
          tableau[static_cast<std::size_t>(i)][cols - 1];
    }
  }
  solution.objective = 0.0;
  for (int j = 0; j < n; ++j) {
    solution.objective += lp.objective()[static_cast<std::size_t>(j)] *
                          solution.values[static_cast<std::size_t>(j)];
  }
  return solution;
}

}  // namespace pullmon
