#ifndef PULLMON_OFFLINE_TRANSFORM_H_
#define PULLMON_OFFLINE_TRANSFORM_H_

#include "core/problem.h"
#include "util/status.h"

namespace pullmon {

/// Where a general-width EI is contracted to one chronon by
/// ContractToUnitWidth.
enum class ContractionRule {
  kStart,   // [s, f] -> [s, s]
  kMiddle,  // [s, f] -> [(s+f)/2, (s+f)/2]
  kFinish,  // [s, f] -> [f, f]
};

/// The deterministic instantiation of the Proposition-2 transformation:
/// contracts every EI to a single chronon, producing a P^[1] instance.
/// Any schedule feasible for the contracted instance is feasible for the
/// original and captures at least the same t-intervals (a probe inside
/// the contracted chronon lies inside the original window), so an
/// algorithm for P^[1] instances yields a feasible solution of the
/// general instance — at the cost of one extra rank unit in the
/// approximation guarantee (Proposition 2).
Result<MonitoringProblem> ContractToUnitWidth(
    const MonitoringProblem& problem,
    ContractionRule rule = ContractionRule::kStart);

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_TRANSFORM_H_
