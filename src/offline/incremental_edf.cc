#include "offline/incremental_edf.h"

#include <algorithm>

#include "offline/probe_assignment.h"
#include "util/logging.h"

namespace pullmon {

IncrementalEdfChecker::IncrementalEdfChecker(const BudgetVector* budget,
                                             Chronon epoch_length)
    : budget_(budget), epoch_len_(epoch_length) {
  used_.assign(static_cast<std::size_t>(epoch_len_ < 0 ? 0 : epoch_len_),
               0);
}

std::vector<Chronon>& IncrementalEdfChecker::Slots(ResourceId resource) {
  std::size_t index = static_cast<std::size_t>(resource);
  if (index >= slots_.size()) slots_.resize(index + 1);
  return slots_[index];
}

bool IncrementalEdfChecker::PlaceEntry(Entry* entry) {
  const ExecutionInterval& ei = entry->ei;
  std::vector<Chronon>& slots = Slots(ei.resource);
  auto shared = std::lower_bound(slots.begin(), slots.end(), ei.start);
  if (shared != slots.end() && *shared <= ei.finish) {
    entry->placed_at = -1;
    return true;
  }
  for (Chronon j = ei.start; j <= ei.finish; ++j) {
    if (used_[static_cast<std::size_t>(j)] < budget_->at(j)) {
      ++used_[static_cast<std::size_t>(j)];
      slots.insert(std::lower_bound(slots.begin(), slots.end(), j), j);
      entry->placed_at = j;
      return true;
    }
  }
  return false;
}

void IncrementalEdfChecker::UndoPlacement(const Entry& entry) {
  if (entry.placed_at < 0) return;
  --used_[static_cast<std::size_t>(entry.placed_at)];
  std::vector<Chronon>& slots = Slots(entry.ei.resource);
  auto it =
      std::lower_bound(slots.begin(), slots.end(), entry.placed_at);
  PULLMON_CHECK(it != slots.end() && *it == entry.placed_at);
  slots.erase(it);
}

void IncrementalEdfChecker::RedoPlacement(const Entry& entry) {
  if (entry.placed_at < 0) return;
  ++used_[static_cast<std::size_t>(entry.placed_at)];
  std::vector<Chronon>& slots = Slots(entry.ei.resource);
  slots.insert(
      std::lower_bound(slots.begin(), slots.end(), entry.placed_at),
      entry.placed_at);
}

bool IncrementalEdfChecker::TrialInsert(
    const std::vector<ExecutionInterval>& eis) {
  PULLMON_CHECK(!pending_);
  sorted_batch_.assign(eis.begin(), eis.end());
  std::sort(sorted_batch_.begin(), sorted_batch_.end(), EdfOrderLess{});
  old_suffix_.clear();
  new_suffix_.clear();
  if (sorted_batch_.empty()) {
    pending_ = true;
    pending_pos_ = entries_.size();
    return true;
  }
  auto split = std::lower_bound(
      entries_.begin(), entries_.end(), sorted_batch_.front(),
      [](const Entry& entry, const ExecutionInterval& ei) {
        return EdfOrderLess{}(entry.ei, ei);
      });
  pending_pos_ = static_cast<std::size_t>(split - entries_.begin());
  old_suffix_.assign(split, entries_.end());
  for (auto it = old_suffix_.rbegin(); it != old_suffix_.rend(); ++it) {
    UndoPlacement(*it);
  }
  // Merge-replay in EDF order; ties take the committed entry first
  // (tied EIs are identical, so the choice cannot change the outcome).
  std::size_t oi = 0;
  std::size_t ni = 0;
  bool feasible = true;
  while (feasible &&
         (oi < old_suffix_.size() || ni < sorted_batch_.size())) {
    bool take_old =
        ni == sorted_batch_.size() ||
        (oi < old_suffix_.size() &&
         !EdfOrderLess{}(sorted_batch_[ni], old_suffix_[oi].ei));
    Entry entry;
    entry.ei = take_old ? old_suffix_[oi++].ei : sorted_batch_[ni++];
    ++replay_steps_;
    feasible = PlaceEntry(&entry);
    if (feasible) new_suffix_.push_back(entry);
  }
  if (!feasible) {
    for (auto it = new_suffix_.rbegin(); it != new_suffix_.rend(); ++it) {
      UndoPlacement(*it);
    }
    for (const Entry& entry : old_suffix_) RedoPlacement(entry);
    old_suffix_.clear();
    new_suffix_.clear();
    return false;
  }
  pending_ = true;
  return true;
}

void IncrementalEdfChecker::Commit() {
  PULLMON_CHECK(pending_);
  entries_.resize(pending_pos_);
  entries_.insert(entries_.end(), new_suffix_.begin(), new_suffix_.end());
  old_suffix_.clear();
  new_suffix_.clear();
  pending_ = false;
}

void IncrementalEdfChecker::Rollback() {
  PULLMON_CHECK(pending_);
  for (auto it = new_suffix_.rbegin(); it != new_suffix_.rend(); ++it) {
    UndoPlacement(*it);
  }
  for (const Entry& entry : old_suffix_) RedoPlacement(entry);
  old_suffix_.clear();
  new_suffix_.clear();
  pending_ = false;
}

Status IncrementalEdfChecker::ExportSchedule(Schedule* out) const {
  PULLMON_CHECK(!pending_);
  for (const Entry& entry : entries_) {
    if (entry.placed_at >= 0) {
      PULLMON_RETURN_NOT_OK(
          out->AddProbe(entry.ei.resource, entry.placed_at));
    }
  }
  return Status::OK();
}

bool FromScratchEdfChecker::TrialInsert(
    const std::vector<ExecutionInterval>& eis) {
  PULLMON_CHECK(!pending_);
  trial_ = committed_;
  trial_.insert(trial_.end(), eis.begin(), eis.end());
  if (!AssignProbesEdf(trial_, *budget_, epoch_len_, nullptr)) {
    trial_.clear();
    return false;
  }
  pending_ = true;
  return true;
}

void FromScratchEdfChecker::Commit() {
  PULLMON_CHECK(pending_);
  committed_.swap(trial_);
  trial_.clear();
  pending_ = false;
}

void FromScratchEdfChecker::Rollback() {
  PULLMON_CHECK(pending_);
  trial_.clear();
  pending_ = false;
}

Status FromScratchEdfChecker::ExportSchedule(Schedule* out) const {
  PULLMON_CHECK(!pending_);
  if (!AssignProbesEdf(committed_, *budget_, epoch_len_, out)) {
    return Status::Internal(
        "committed EI set unexpectedly infeasible at export");
  }
  return Status::OK();
}

std::unique_ptr<EdfFeasibilityChecker> MakeFeasibilityChecker(
    FeasibilityBackend backend, const BudgetVector* budget,
    Chronon epoch_length) {
  if (backend == FeasibilityBackend::kFromScratch) {
    return std::make_unique<FromScratchEdfChecker>(budget, epoch_length);
  }
  return std::make_unique<IncrementalEdfChecker>(budget, epoch_length);
}

bool TryCommitTInterval(const TInterval& eta,
                        EdfFeasibilityChecker* checker) {
  const std::size_t k = eta.size();
  if (k == 0) return false;
  const std::size_t q = eta.required();
  if (q >= k) {
    if (!checker->TrialInsert(eta.eis())) return false;
    checker->Commit();
    return true;
  }
  std::vector<ExecutionInterval> sorted = eta.eis();
  std::sort(sorted.begin(), sorted.end(), EdfOrderLess{});
  std::vector<std::size_t> pick(q);
  for (std::size_t i = 0; i < q; ++i) pick[i] = i;
  std::vector<ExecutionInterval> subset(q);
  int trials = 0;
  while (true) {
    for (std::size_t i = 0; i < q; ++i) subset[i] = sorted[pick[i]];
    ++trials;
    if (checker->TrialInsert(subset)) {
      checker->Commit();
      return true;
    }
    if (trials >= kMaxSubsetTrials) return false;
    // Advance to the next lexicographic combination of q out of k.
    std::size_t i = q;
    while (i > 0 && pick[i - 1] == k - q + (i - 1)) --i;
    if (i == 0) return false;
    ++pick[i - 1];
    for (std::size_t j = i; j < q; ++j) pick[j] = pick[j - 1] + 1;
  }
}

}  // namespace pullmon
