#ifndef PULLMON_OFFLINE_EXACT_SOLVER_H_
#define PULLMON_OFFLINE_EXACT_SOLVER_H_

#include <cstdint>

#include "core/problem.h"
#include "offline/offline_solution.h"
#include "util/status.h"

namespace pullmon {

struct ExactSolverOptions {
  /// Instances with more execution intervals are rejected — the capture
  /// state is a bitmask and the state space is exponential (Lemma 1:
  /// full enumeration costs O(n^(K*C_max))).
  std::size_t max_eis = 28;
  /// Search budget; ResourceExhausted when exceeded.
  uint64_t max_nodes = 50000000;
};

/// Optimal offline solver for Problem 1 by memoized search over
/// (chronon, captured-EI bitmask) states, enumerating per chronon the
/// maximal probe sets over resources that currently carry live candidate
/// EIs. Exact but exponential — usable only on small instances; it
/// anchors the property tests (online GC <= OPT, Local-Ratio within its
/// proven factor) and the approximation-quality experiments.
class ExactSolver {
 public:
  explicit ExactSolver(const MonitoringProblem* problem,
                       ExactSolverOptions options = {});

  Result<OfflineSolution> Solve();

 private:
  const MonitoringProblem* problem_;
  ExactSolverOptions options_;
};

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_EXACT_SOLVER_H_
