#include "offline/local_ratio.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <vector>

#include "core/completeness.h"
#include "offline/probe_assignment.h"
#include "util/logging.h"

namespace pullmon {

namespace {

struct FlatT {
  std::vector<ExecutionInterval> eis;
  Chronon earliest = 0;
  Chronon latest = 0;
  double utility = 1.0;
};

/// Joint schedulability of a t-interval selection via AssignProbesEdf.
bool AssignProbes(const std::vector<const FlatT*>& chosen,
                  const BudgetVector& budget, Chronon epoch_len,
                  Schedule* out_schedule) {
  std::vector<ExecutionInterval> eis;
  for (const FlatT* t : chosen) {
    eis.insert(eis.end(), t->eis.begin(), t->eis.end());
  }
  return AssignProbesEdf(eis, budget, epoch_len, out_schedule);
}

}  // namespace

LocalRatioScheduler::LocalRatioScheduler(const MonitoringProblem* problem,
                                         LocalRatioOptions options)
    : problem_(problem), options_(options) {}

double LocalRatioScheduler::GuaranteedFactor() const {
  double k = static_cast<double>(problem_->rank());
  bool unit = problem_->IsUnitWidth();
  bool strict_budget = problem_->budget.max() <= 1;
  if (unit) return strict_budget ? 2 * k : 2 * k + 1;
  return strict_budget ? 2 * k + 2 : 2 * k + 3;
}

Result<OfflineSolution> LocalRatioScheduler::Solve() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  const auto start = std::chrono::steady_clock::now();
  const Chronon epoch_len = problem_->epoch.length;

  // --- Flatten t-intervals. ---------------------------------------------
  std::vector<FlatT> ts;
  for (const auto& p : problem_->profiles) {
    for (const auto& eta : p.t_intervals()) {
      FlatT flat;
      flat.eis = eta.eis();
      flat.earliest = eta.EarliestStart();
      flat.latest = eta.LatestFinish();
      flat.utility = eta.weight();
      ts.push_back(std::move(flat));
    }
  }
  const std::size_t num_t = ts.size();
  OfflineSolution solution;
  solution.schedule = Schedule(epoch_len);
  if (num_t == 0) {
    solution.optimal = true;
    return solution;
  }

  // --- Conflict adjacency: the split-interval graph of [2]. In the
  //     faithful reduction any time-overlap conflicts (single-machine
  //     view); the sharing-aware variant exempts same-resource overlaps
  //     (a probe in the non-empty window intersection serves both). ------
  const bool share_aware = options_.sharing_aware_conflicts;
  auto conflicts = [&](std::size_t a, std::size_t b) {
    for (const auto& ei_a : ts[a].eis) {
      for (const auto& ei_b : ts[b].eis) {
        if (!ei_a.OverlapsInTime(ei_b)) continue;
        if (!share_aware || ei_a.resource != ei_b.resource) return true;
      }
    }
    return false;
  };
  std::vector<std::vector<int>> adjacency(num_t);
  {
    // Sweep by t-interval span to avoid the full quadratic pass when
    // spans are short.
    std::vector<std::size_t> order(num_t);
    for (std::size_t i = 0; i < num_t; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return ts[a].earliest < ts[b].earliest;
              });
    for (std::size_t oi = 0; oi < num_t; ++oi) {
      std::size_t a = order[oi];
      for (std::size_t oj = oi + 1; oj < num_t; ++oj) {
        std::size_t b = order[oj];
        if (ts[b].earliest > ts[a].latest) break;  // span-disjoint beyond
        if (conflicts(a, b)) {
          adjacency[a].push_back(static_cast<int>(b));
          adjacency[b].push_back(static_cast<int>(a));
        }
      }
    }
  }

  // --- LP relaxation (a true relaxation of Problem 1, probe sharing
  //     included). Variables: x_t per t-interval, then y_(r,j) per
  //     (resource, chronon) pair covered by at least one EI window.
  //     Constraints: x_t <= sum_{j in window(e)} y_(r(e),j) per EI e;
  //     sum_r y_(r,j) <= C_j; x_t <= 1. ---------------------------------
  std::vector<double> fractional(num_t, 1.0);
  bool lp_solved = false;
  {
    // Enumerate used (resource, chronon) slots.
    std::map<std::pair<ResourceId, Chronon>, int> slot_var;
    std::size_t num_eis = 0;
    for (const auto& t : ts) {
      for (const auto& ei : t.eis) {
        ++num_eis;
        for (Chronon j = ei.start; j <= ei.finish; ++j) {
          slot_var.emplace(std::make_pair(ei.resource, j), 0);
        }
      }
    }
    {
      int cursor = static_cast<int>(num_t);
      for (auto& [slot, var] : slot_var) {
        (void)slot;
        var = cursor++;
      }
    }
    std::size_t vars = num_t + slot_var.size();
    std::size_t rows = num_eis + static_cast<std::size_t>(epoch_len) + num_t;
    if ((rows + 1) * (vars + rows + 1) <= options_.max_lp_cells) {
      LinearProgram lp(static_cast<int>(vars));
      for (std::size_t i = 0; i < num_t; ++i) {
        PULLMON_CHECK_OK(
            lp.SetObjective(static_cast<int>(i), ts[i].utility));
      }
      std::vector<std::vector<std::pair<int, double>>> budget_terms(
          static_cast<std::size_t>(epoch_len));
      for (const auto& [slot, var] : slot_var) {
        budget_terms[static_cast<std::size_t>(slot.second)].emplace_back(
            var, 1.0);
      }
      bool ok = true;
      for (std::size_t i = 0; i < num_t && ok; ++i) {
        for (const auto& ei : ts[i].eis) {
          std::vector<std::pair<int, double>> terms;
          terms.emplace_back(static_cast<int>(i), 1.0);
          for (Chronon j = ei.start; j <= ei.finish; ++j) {
            terms.emplace_back(slot_var.at({ei.resource, j}), -1.0);
          }
          ok = ok && lp.AddConstraint(terms, 0.0).ok();
        }
        ok = ok &&
             lp.AddConstraint({{static_cast<int>(i), 1.0}}, 1.0).ok();
      }
      for (Chronon j = 0; j < epoch_len && ok; ++j) {
        const auto& terms = budget_terms[static_cast<std::size_t>(j)];
        if (terms.empty()) continue;
        ok = ok &&
             lp.AddConstraint(terms,
                              static_cast<double>(problem_->budget.at(j)))
                 .ok();
      }
      if (ok) {
        auto lp_result = SolveLp(lp, options_.simplex);
        if (lp_result.ok()) {
          for (std::size_t i = 0; i < num_t; ++i) {
            fractional[i] = std::clamp(lp_result->values[i], 0.0, 1.0);
          }
          solution.work += lp_result->iterations;
          lp_solved = lp_result->converged;
        }
      }
    }
  }
  if (!lp_solved) {
    PULLMON_LOG(kInfo)
        << "local ratio: LP skipped or unconverged; using uniform "
           "fractional values (degree-greedy selection)";
  }

  // --- Local-ratio weight decomposition; residual weights start at the
  //     client utilities (the scheme of [2] is natively weighted). -------
  std::vector<double> weight(num_t, 1.0);
  for (std::size_t i = 0; i < num_t; ++i) weight[i] = ts[i].utility;
  std::vector<char> positive(num_t, 1);
  std::vector<int> stack;
  stack.reserve(num_t);
  std::size_t remaining = num_t;
  constexpr double kEps = 1e-12;
  while (remaining > 0) {
    // Pick the positive-weight t-interval with the smallest fractional
    // load over its (positive) closed neighborhood.
    int best = -1;
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_t; ++i) {
      if (!positive[i]) continue;
      double load = fractional[i];
      for (int j : adjacency[i]) {
        if (positive[static_cast<std::size_t>(j)]) {
          load += fractional[static_cast<std::size_t>(j)];
        }
      }
      if (load < best_load) {
        best_load = load;
        best = static_cast<int>(i);
      }
    }
    PULLMON_CHECK(best >= 0);
    stack.push_back(best);
    ++solution.work;
    double w = weight[static_cast<std::size_t>(best)];
    // Subtract w over the closed neighborhood.
    auto deduct = [&](std::size_t idx) {
      if (!positive[idx]) return;
      weight[idx] -= w;
      if (weight[idx] <= kEps) {
        positive[idx] = 0;
        --remaining;
      }
    };
    deduct(static_cast<std::size_t>(best));
    for (int j : adjacency[static_cast<std::size_t>(best)]) {
      deduct(static_cast<std::size_t>(j));
    }
  }

  // --- Unwind: keep whatever remains jointly schedulable. ----------------
  std::vector<const FlatT*> selected;
  std::vector<char> in_solution(num_t, 0);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    selected.push_back(&ts[static_cast<std::size_t>(*it)]);
    if (!AssignProbes(selected, problem_->budget, epoch_len, nullptr)) {
      selected.pop_back();
    } else {
      in_solution[static_cast<std::size_t>(*it)] = 1;
    }
  }
  // Optional greedy augmentation: t-intervals whose weight was zeroed
  // as neighbors never reached the stack, but the conflict relation is
  // conservative (overlapping windows need not collide on actual probe
  // chronons) — adding any still-schedulable one only improves the
  // solution and preserves the approximation guarantee.
  if (options_.greedy_augmentation) {
    for (std::size_t i = 0; i < num_t; ++i) {
      if (in_solution[i]) continue;
      selected.push_back(&ts[i]);
      if (!AssignProbes(selected, problem_->budget, epoch_len, nullptr)) {
        selected.pop_back();
      } else {
        in_solution[i] = 1;
      }
    }
  }
  PULLMON_CHECK(AssignProbes(selected, problem_->budget, epoch_len,
                             &solution.schedule));

  const auto end = std::chrono::steady_clock::now();
  solution.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  CompletenessReport report =
      EvaluateCompleteness(problem_->profiles, solution.schedule);
  solution.captured = report.captured_t_intervals;
  solution.gained_completeness = report.GainedCompleteness();
  solution.captured_weight = report.captured_weight;
  return solution;
}

}  // namespace pullmon
