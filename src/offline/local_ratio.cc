#include "offline/local_ratio.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "core/completeness.h"
#include "util/logging.h"

namespace pullmon {

namespace {

struct FlatT {
  const TInterval* eta = nullptr;
  Chronon earliest = 0;
  Chronon latest = 0;
  double utility = 1.0;
  std::size_t required = 0;
  std::size_t size = 0;
};

/// Lazy min-heap entry for the decomposition's minimum-neighborhood-load
/// selection. Entries are invalidated by bumping the node's version;
/// stale pops are discarded.
struct LoadHeapItem {
  double load;
  int idx;
  uint32_t version;
};

struct LoadHeapGreater {
  bool operator()(const LoadHeapItem& a, const LoadHeapItem& b) const {
    if (a.load != b.load) return a.load > b.load;
    return a.idx > b.idx;
  }
};

}  // namespace

/// Scratch buffers reused across Solve() calls so repeated solves (the
/// bench sweeps, ExperimentRunner repetitions on one scheduler) do not
/// re-allocate the flatten/adjacency structures every time.
struct LocalRatioScheduler::Workspace {
  std::vector<FlatT> ts;
  std::vector<std::size_t> order;
  std::vector<std::pair<int, int>> edges;
  std::vector<int> adj_offset;  // CSR offsets, size num_t + 1
  std::vector<int> adj;         // CSR neighbor list, size 2 * |edges|
  std::vector<double> fractional;
  std::vector<double> weight;
  std::vector<double> load;
  std::vector<uint32_t> version;
  std::vector<char> positive;
  std::vector<int> stack;
  std::vector<int> zeroed;
  std::vector<char> in_solution;
  std::vector<std::pair<int, double>> terms;  // LP row scratch
  std::vector<std::pair<Chronon, int>> slot_by_chronon;
};

LocalRatioScheduler::LocalRatioScheduler(const MonitoringProblem* problem,
                                         LocalRatioOptions options)
    : problem_(problem), options_(options),
      ws_(std::make_unique<Workspace>()) {}

LocalRatioScheduler::~LocalRatioScheduler() = default;

double LocalRatioScheduler::GuaranteedFactor() const {
  double k = static_cast<double>(problem_->rank());
  bool unit = problem_->IsUnitWidth();
  bool strict_budget = problem_->budget.max() <= 1;
  if (unit) return strict_budget ? 2 * k : 2 * k + 1;
  return strict_budget ? 2 * k + 2 : 2 * k + 3;
}

Result<OfflineSolution> LocalRatioScheduler::Solve() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  const auto start = std::chrono::steady_clock::now();
  const Chronon epoch_len = problem_->epoch.length;
  Workspace& ws = *ws_;

  // --- Flatten t-intervals. ---------------------------------------------
  ws.ts.clear();
  for (const auto& p : problem_->profiles) {
    for (const auto& eta : p.t_intervals()) {
      FlatT flat;
      flat.eta = &eta;
      flat.earliest = eta.EarliestStart();
      flat.latest = eta.LatestFinish();
      flat.utility = eta.weight();
      flat.required = eta.required();
      flat.size = eta.size();
      ws.ts.push_back(flat);
    }
  }
  const std::vector<FlatT>& ts = ws.ts;
  const std::size_t num_t = ts.size();
  OfflineSolution solution;
  solution.schedule = Schedule(epoch_len);
  if (num_t == 0) {
    solution.optimal = true;
    return solution;
  }

  // --- Conflict adjacency: the split-interval graph of [2]. In the
  //     faithful reduction any time-overlap conflicts (single-machine
  //     view); the sharing-aware variant exempts same-resource overlaps
  //     (a probe in the non-empty window intersection serves both).
  //     Edges land in a flat CSR so the per-node vectors of the former
  //     layout (one heap allocation each) are gone. ----------------------
  const bool share_aware = options_.sharing_aware_conflicts;
  auto conflicts = [&](std::size_t a, std::size_t b) {
    for (const auto& ei_a : ts[a].eta->eis()) {
      for (const auto& ei_b : ts[b].eta->eis()) {
        if (!ei_a.OverlapsInTime(ei_b)) continue;
        if (!share_aware || ei_a.resource != ei_b.resource) return true;
      }
    }
    return false;
  };
  ws.edges.clear();
  {
    // Sweep by t-interval span to avoid the full quadratic pass when
    // spans are short.
    ws.order.resize(num_t);
    for (std::size_t i = 0; i < num_t; ++i) ws.order[i] = i;
    std::sort(ws.order.begin(), ws.order.end(),
              [&](std::size_t a, std::size_t b) {
                return ts[a].earliest < ts[b].earliest;
              });
    for (std::size_t oi = 0; oi < num_t; ++oi) {
      std::size_t a = ws.order[oi];
      for (std::size_t oj = oi + 1; oj < num_t; ++oj) {
        std::size_t b = ws.order[oj];
        if (ts[b].earliest > ts[a].latest) break;  // span-disjoint beyond
        if (conflicts(a, b)) {
          ws.edges.emplace_back(static_cast<int>(a),
                                static_cast<int>(b));
        }
      }
    }
  }
  ws.adj_offset.assign(num_t + 1, 0);
  for (const auto& [a, b] : ws.edges) {
    ++ws.adj_offset[static_cast<std::size_t>(a) + 1];
    ++ws.adj_offset[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t i = 0; i < num_t; ++i) {
    ws.adj_offset[i + 1] += ws.adj_offset[i];
  }
  ws.adj.resize(2 * ws.edges.size());
  {
    std::vector<int> cursor(ws.adj_offset.begin(),
                            ws.adj_offset.end() - 1);
    for (const auto& [a, b] : ws.edges) {
      ws.adj[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(a)]++)] = b;
      ws.adj[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(b)]++)] = a;
    }
  }
  auto neighbors = [&](std::size_t i) {
    return std::pair<const int*, const int*>(
        ws.adj.data() + ws.adj_offset[i],
        ws.adj.data() + ws.adj_offset[i + 1]);
  };

  // --- LP relaxation (a true relaxation of Problem 1, probe sharing
  //     included). Variables: x_t per t-interval, y_(r,j) per
  //     (resource, chronon) pair covered by at least one EI window,
  //     and z_e per EI of an alternatives t-interval. Constraints:
  //       all-required t:  x_t <= sum_{j in window(e)} y_(r(e),j)  per EI
  //       alternatives t:  z_e <= sum y, z_e <= 1, and
  //                        required * x_t <= sum_e z_e
  //       sum_r y_(r,j) <= C_j per non-empty chronon;  x_t <= 1.
  //     The z form only demands required() covered EIs, so alternative
  //     t-intervals are no longer over-constrained to full coverage. ----
  ws.fractional.assign(num_t, 1.0);
  bool lp_solved = false;
  {
    // Enumerate used (resource, chronon) slots.
    std::map<std::pair<ResourceId, Chronon>, int> slot_var;
    std::size_t num_all_req_eis = 0;
    std::size_t num_alt_eis = 0;
    std::size_t num_alt_ts = 0;
    for (const auto& t : ts) {
      if (t.required < t.size) {
        num_alt_eis += t.size;
        ++num_alt_ts;
      } else {
        num_all_req_eis += t.size;
      }
      for (const auto& ei : t.eta->eis()) {
        for (Chronon j = ei.start; j <= ei.finish; ++j) {
          slot_var.emplace(std::make_pair(ei.resource, j), 0);
        }
      }
    }
    {
      int cursor = static_cast<int>(num_t);
      for (auto& [slot, var] : slot_var) {
        (void)slot;
        var = cursor++;
      }
    }
    ws.slot_by_chronon.clear();
    for (const auto& [slot, var] : slot_var) {
      ws.slot_by_chronon.emplace_back(slot.second, var);
    }
    std::sort(ws.slot_by_chronon.begin(), ws.slot_by_chronon.end());
    std::size_t non_empty_budget_rows = 0;
    for (std::size_t i = 0; i < ws.slot_by_chronon.size(); ++i) {
      if (i == 0 ||
          ws.slot_by_chronon[i].first != ws.slot_by_chronon[i - 1].first) {
        ++non_empty_budget_rows;
      }
    }
    // Count exactly the rows the construction below materializes —
    // chronons no EI window touches have no budget row, so they must
    // not trip the cell guard.
    std::size_t vars = num_t + slot_var.size() + num_alt_eis;
    std::size_t rows = num_all_req_eis + 2 * num_alt_eis + num_alt_ts +
                       num_t + non_empty_budget_rows;
    if ((rows + 1) * (vars + rows + 1) > options_.max_lp_cells) {
      PULLMON_LOG(kWarning)
          << "local ratio: LP cell guard tripped (" << rows << " rows x "
          << vars << " vars -> " << (rows + 1) * (vars + rows + 1)
          << " tableau cells > max_lp_cells=" << options_.max_lp_cells
          << "); falling back to uniform fractional values";
    } else {
      LinearProgram lp(static_cast<int>(vars));
      for (std::size_t i = 0; i < num_t; ++i) {
        PULLMON_CHECK_OK(
            lp.SetObjective(static_cast<int>(i), ts[i].utility));
      }
      bool ok = true;
      int z_cursor = static_cast<int>(num_t + slot_var.size());
      auto& terms = ws.terms;
      for (std::size_t i = 0; i < num_t && ok; ++i) {
        const bool alternatives = ts[i].required < ts[i].size;
        int z_first = z_cursor;
        for (const auto& ei : ts[i].eta->eis()) {
          terms.clear();
          if (alternatives) {
            terms.emplace_back(z_cursor, 1.0);
          } else {
            terms.emplace_back(static_cast<int>(i), 1.0);
          }
          for (Chronon j = ei.start; j <= ei.finish; ++j) {
            terms.emplace_back(slot_var.at({ei.resource, j}), -1.0);
          }
          ok = ok && lp.AddConstraint(terms, 0.0).ok();
          if (alternatives) {
            ok = ok && lp.AddConstraint({{z_cursor, 1.0}}, 1.0).ok();
            ++z_cursor;
          }
        }
        if (alternatives && ok) {
          terms.clear();
          terms.emplace_back(static_cast<int>(i),
                             static_cast<double>(ts[i].required));
          for (int z = z_first; z < z_cursor; ++z) {
            terms.emplace_back(z, -1.0);
          }
          ok = ok && lp.AddConstraint(terms, 0.0).ok();
        }
        ok = ok &&
             lp.AddConstraint({{static_cast<int>(i), 1.0}}, 1.0).ok();
      }
      for (std::size_t lo = 0; lo < ws.slot_by_chronon.size() && ok;) {
        std::size_t hi = lo;
        terms.clear();
        while (hi < ws.slot_by_chronon.size() &&
               ws.slot_by_chronon[hi].first ==
                   ws.slot_by_chronon[lo].first) {
          terms.emplace_back(ws.slot_by_chronon[hi].second, 1.0);
          ++hi;
        }
        ok = ok && lp.AddConstraint(
                         terms,
                         static_cast<double>(problem_->budget.at(
                             ws.slot_by_chronon[lo].first)))
                       .ok();
        lo = hi;
      }
      if (ok) {
        auto lp_result = SolveLp(lp, options_.simplex);
        if (lp_result.ok()) {
          for (std::size_t i = 0; i < num_t; ++i) {
            ws.fractional[i] = std::clamp(lp_result->values[i], 0.0, 1.0);
          }
          solution.work += lp_result->iterations;
          lp_solved = lp_result->converged;
        }
      }
    }
  }
  solution.used_lp = lp_solved;
  if (!lp_solved) {
    PULLMON_LOG(kInfo)
        << "local ratio: LP skipped or unconverged; using uniform "
           "fractional values (degree-greedy selection)";
  }
  const std::vector<double>& fractional = ws.fractional;

  // --- Local-ratio weight decomposition; residual weights start at the
  //     client utilities (the scheme of [2] is natively weighted).
  //     Selection picks the positive-weight t-interval of minimum
  //     fractional load over its positive closed neighborhood; loads
  //     are maintained incrementally (a node leaving the positive set
  //     subtracts its fractional value from its neighbors) and served
  //     from a lazily invalidated min-heap, replacing the former
  //     O(num_t + edges) rescan per iteration. ---------------------------
  ws.weight.assign(num_t, 1.0);
  for (std::size_t i = 0; i < num_t; ++i) ws.weight[i] = ts[i].utility;
  ws.positive.assign(num_t, 1);
  ws.version.assign(num_t, 0);
  ws.load.assign(num_t, 0.0);
  std::priority_queue<LoadHeapItem, std::vector<LoadHeapItem>,
                      LoadHeapGreater>
      heap;
  for (std::size_t i = 0; i < num_t; ++i) {
    double load = fractional[i];
    auto [nb, ne] = neighbors(i);
    for (const int* j = nb; j != ne; ++j) {
      load += fractional[static_cast<std::size_t>(*j)];
    }
    ws.load[i] = load;
    heap.push({load, static_cast<int>(i), 0});
  }
  ws.stack.clear();
  ws.zeroed.clear();
  std::size_t remaining = num_t;
  constexpr double kEps = 1e-12;
  while (remaining > 0) {
    int best = -1;
    while (true) {
      PULLMON_CHECK(!heap.empty());
      LoadHeapItem top = heap.top();
      heap.pop();
      std::size_t idx = static_cast<std::size_t>(top.idx);
      if (!ws.positive[idx] || top.version != ws.version[idx]) continue;
      best = top.idx;
      break;
    }
    ws.stack.push_back(best);
    ++solution.work;
    double w = ws.weight[static_cast<std::size_t>(best)];
    // Subtract w over the closed neighborhood.
    auto deduct = [&](std::size_t idx) {
      if (!ws.positive[idx]) return;
      ws.weight[idx] -= w;
      if (ws.weight[idx] <= kEps) {
        ws.positive[idx] = 0;
        --remaining;
        ws.zeroed.push_back(static_cast<int>(idx));
      }
    };
    deduct(static_cast<std::size_t>(best));
    {
      auto [nb, ne] = neighbors(static_cast<std::size_t>(best));
      for (const int* j = nb; j != ne; ++j) {
        deduct(static_cast<std::size_t>(*j));
      }
    }
    // Nodes that left the positive set no longer contribute to their
    // neighbors' loads.
    for (int u : ws.zeroed) {
      auto [nb, ne] = neighbors(static_cast<std::size_t>(u));
      for (const int* j = nb; j != ne; ++j) {
        std::size_t idx = static_cast<std::size_t>(*j);
        if (!ws.positive[idx]) continue;
        ws.load[idx] -= fractional[static_cast<std::size_t>(u)];
        ++ws.version[idx];
        heap.push({ws.load[idx], *j, ws.version[idx]});
      }
    }
    ws.zeroed.clear();
  }

  // --- Unwind: keep whatever remains jointly schedulable (for
  //     alternatives, whatever can commit a required()-sized subset). ---
  std::unique_ptr<EdfFeasibilityChecker> checker =
      MakeFeasibilityChecker(options_.backend, &problem_->budget,
                             epoch_len);
  ws.in_solution.assign(num_t, 0);
  for (auto it = ws.stack.rbegin(); it != ws.stack.rend(); ++it) {
    std::size_t i = static_cast<std::size_t>(*it);
    if (TryCommitTInterval(*ts[i].eta, checker.get())) {
      ws.in_solution[i] = 1;
    }
  }
  // Optional greedy augmentation: t-intervals whose weight was zeroed
  // as neighbors never reached the stack, but the conflict relation is
  // conservative (overlapping windows need not collide on actual probe
  // chronons) — adding any still-schedulable one only improves the
  // solution and preserves the approximation guarantee.
  if (options_.greedy_augmentation) {
    for (std::size_t i = 0; i < num_t; ++i) {
      if (ws.in_solution[i]) continue;
      if (TryCommitTInterval(*ts[i].eta, checker.get())) {
        ws.in_solution[i] = 1;
      }
    }
  }
  PULLMON_RETURN_NOT_OK(checker->ExportSchedule(&solution.schedule));

  const auto end = std::chrono::steady_clock::now();
  solution.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  CompletenessReport report =
      EvaluateCompleteness(problem_->profiles, solution.schedule);
  solution.captured = report.captured_t_intervals;
  solution.gained_completeness = report.GainedCompleteness();
  solution.captured_weight = report.captured_weight;
  return solution;
}

}  // namespace pullmon
