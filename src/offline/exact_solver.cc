#include "offline/exact_solver.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

#include "core/completeness.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

namespace {

struct FlatEi {
  ExecutionInterval ei;
  int t_id;
};

struct FlatT {
  std::vector<int> ei_ids;
  double weight = 1.0;
  int required = 0;
};

using Mask = uint32_t;

class Search {
 public:
  Search(const MonitoringProblem* problem, const ExactSolverOptions& options)
      : problem_(problem), options_(options) {}

  Result<OfflineSolution> Run() {
    PULLMON_RETURN_NOT_OK(problem_->Validate());
    Flatten();
    if (eis_.size() > options_.max_eis) {
      return Status::InvalidArgument(StringFormat(
          "instance has %zu EIs; exact solver accepts at most %zu",
          eis_.size(), options_.max_eis));
    }
    const auto start = std::chrono::steady_clock::now();
    PULLMON_ASSIGN_OR_RETURN(double best, Dfs(0, 0));

    OfflineSolution solution;
    solution.schedule = Schedule(problem_->epoch.length);
    PULLMON_RETURN_NOT_OK(Reconstruct(best, &solution.schedule));
    const auto end = std::chrono::steady_clock::now();
    solution.captured_weight = best;
    CompletenessReport report =
        EvaluateCompleteness(problem_->profiles, solution.schedule);
    solution.captured = report.captured_t_intervals;
    solution.gained_completeness = report.GainedCompleteness();
    solution.optimal = true;
    solution.elapsed_seconds =
        std::chrono::duration<double>(end - start).count();
    solution.work = nodes_;
    return solution;
  }

 private:
  void Flatten() {
    for (const auto& p : problem_->profiles) {
      for (const auto& eta : p.t_intervals()) {
        FlatT flat_t;
        flat_t.weight = eta.weight();
        flat_t.required = static_cast<int>(eta.required());
        for (const auto& ei : eta.eis()) {
          flat_t.ei_ids.push_back(static_cast<int>(eis_.size()));
          eis_.push_back(FlatEi{ei, static_cast<int>(ts_.size())});
        }
        ts_.push_back(std::move(flat_t));
      }
    }
    active_at_.assign(static_cast<std::size_t>(problem_->epoch.length), {});
    for (int id = 0; id < static_cast<int>(eis_.size()); ++id) {
      const auto& ei = eis_[static_cast<std::size_t>(id)].ei;
      for (Chronon t = ei.start; t <= ei.finish; ++t) {
        active_at_[static_cast<std::size_t>(t)].push_back(id);
      }
    }
  }

  bool IsCapturedT(int t_id, Mask mask) const {
    const FlatT& flat = ts_[static_cast<std::size_t>(t_id)];
    int captured = 0;
    for (int id : flat.ei_ids) {
      if ((mask & (Mask{1} << id)) && ++captured >= flat.required) {
        return true;
      }
    }
    return false;
  }

  /// True if too few EIs remain alive before chronon `now` to reach the
  /// t-interval's required capture count.
  bool IsFailedT(int t_id, Mask mask, Chronon now) const {
    const FlatT& flat = ts_[static_cast<std::size_t>(t_id)];
    int dead = 0;
    for (int id : flat.ei_ids) {
      if (!(mask & (Mask{1} << id)) &&
          eis_[static_cast<std::size_t>(id)].ei.finish < now) {
        ++dead;
      }
    }
    return static_cast<int>(flat.ei_ids.size()) - dead < flat.required;
  }

  /// Total utility of captured t-intervals (counts when weights are 1).
  double CountCaptured(Mask mask) const {
    double total = 0.0;
    for (int t_id = 0; t_id < static_cast<int>(ts_.size()); ++t_id) {
      if (IsCapturedT(t_id, mask)) {
        total += ts_[static_cast<std::size_t>(t_id)].weight;
      }
    }
    return total;
  }

  /// Optimistic completion value: captured plus still-capturable.
  double UpperBound(Mask mask, Chronon now) const {
    double total = 0.0;
    for (int t_id = 0; t_id < static_cast<int>(ts_.size()); ++t_id) {
      if (IsCapturedT(t_id, mask) || !IsFailedT(t_id, mask, now)) {
        total += ts_[static_cast<std::size_t>(t_id)].weight;
      }
    }
    return total;
  }

  std::size_t CountCapturedTIntervals(Mask mask) const {
    std::size_t count = 0;
    for (int t_id = 0; t_id < static_cast<int>(ts_.size()); ++t_id) {
      if (IsCapturedT(t_id, mask)) ++count;
    }
    return count;
  }

  /// Resources that carry at least one live candidate EI at `now`.
  std::vector<ResourceId> RelevantResources(Mask mask, Chronon now) const {
    std::vector<ResourceId> out;
    for (int id : active_at_[static_cast<std::size_t>(now)]) {
      const FlatEi& flat = eis_[static_cast<std::size_t>(id)];
      if (mask & (Mask{1} << id)) continue;
      if (IsFailedT(flat.t_id, mask, now) ||
          IsCapturedT(flat.t_id, mask)) {
        continue;
      }
      if (std::find(out.begin(), out.end(), flat.ei.resource) == out.end()) {
        out.push_back(flat.ei.resource);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Mask ApplyProbes(Mask mask, Chronon now,
                   const std::vector<ResourceId>& probes) const {
    for (int id : active_at_[static_cast<std::size_t>(now)]) {
      const FlatEi& flat = eis_[static_cast<std::size_t>(id)];
      if (mask & (Mask{1} << id)) continue;
      if (!std::binary_search(probes.begin(), probes.end(),
                              flat.ei.resource)) {
        continue;
      }
      if (IsFailedT(flat.t_id, mask, now)) continue;
      mask |= Mask{1} << id;
    }
    return mask;
  }

  /// Enumerates size-`choose` subsets of `relevant`, invoking `fn`.
  template <typename Fn>
  void ForEachSubset(const std::vector<ResourceId>& relevant, int choose,
                     Fn&& fn) const {
    std::vector<ResourceId> current;
    EnumerateSubsets(relevant, choose, 0, &current, fn);
  }

  template <typename Fn>
  void EnumerateSubsets(const std::vector<ResourceId>& relevant, int choose,
                        std::size_t from, std::vector<ResourceId>* current,
                        Fn&& fn) const {
    if (static_cast<int>(current->size()) == choose) {
      fn(*current);
      return;
    }
    std::size_t needed =
        static_cast<std::size_t>(choose) - current->size();
    for (std::size_t i = from; i + needed <= relevant.size(); ++i) {
      current->push_back(relevant[i]);
      EnumerateSubsets(relevant, choose, i + 1, current, fn);
      current->pop_back();
    }
  }

  Result<double> Dfs(Chronon now, Mask mask) {
    if (now >= problem_->epoch.length) return CountCaptured(mask);
    uint64_t key = (static_cast<uint64_t>(now) << 32) | mask;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    if (++nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "exact solver node budget exceeded");
    }
    // No further gain possible from this state: short-circuit.
    double captured_now = CountCaptured(mask);
    if (UpperBound(mask, now) <= captured_now + kValueEps) {
      memo_[key] = captured_now;
      return captured_now;
    }

    std::vector<ResourceId> relevant = RelevantResources(mask, now);
    int budget = problem_->budget.at(now);
    double best = -1.0;
    Status failure = Status::OK();
    if (relevant.empty() || budget <= 0) {
      PULLMON_ASSIGN_OR_RETURN(best, Dfs(now + 1, mask));
    } else {
      int choose = std::min<int>(budget, static_cast<int>(relevant.size()));
      ForEachSubset(relevant, choose,
                    [&](const std::vector<ResourceId>& subset) {
        if (!failure.ok()) return;
        Mask next = ApplyProbes(mask, now, subset);
        auto sub = Dfs(now + 1, next);
        if (!sub.ok()) {
          failure = sub.status();
          return;
        }
        best = std::max(best, *sub);
      });
      if (!failure.ok()) return failure;
    }
    memo_[key] = best;
    return best;
  }

  /// Replays the DP forward, picking any probe set whose successor
  /// achieves the optimal value.
  Status Reconstruct(double target, Schedule* schedule) {
    Mask mask = 0;
    for (Chronon now = 0; now < problem_->epoch.length; ++now) {
      // Once the target is already realized no further probes are needed
      // (matches the DFS short-circuit, whose states have no memoized
      // children).
      if (CountCaptured(mask) >= target - kValueEps) break;
      std::vector<ResourceId> relevant = RelevantResources(mask, now);
      int budget = problem_->budget.at(now);
      if (relevant.empty() || budget <= 0) continue;
      int choose = std::min<int>(budget, static_cast<int>(relevant.size()));
      std::vector<ResourceId> chosen;
      bool found = false;
      ForEachSubset(relevant, choose,
                    [&](const std::vector<ResourceId>& subset) {
        if (found) return;
        Mask next = ApplyProbes(mask, now, subset);
        uint64_t key = (static_cast<uint64_t>(now + 1) << 32) | next;
        double value;
        if (now + 1 >= problem_->epoch.length) {
          value = CountCaptured(next);
        } else {
          auto it = memo_.find(key);
          if (it == memo_.end()) return;
          value = it->second;
        }
        if (value >= target - kValueEps) {
          chosen = subset;
          found = true;
        }
      });
      if (!found) {
        // The optimum is achieved without probing at this chronon (the
        // short-circuit path); continue.
        uint64_t key = (static_cast<uint64_t>(now + 1) << 32) | mask;
        auto it = memo_.find(key);
        double value = now + 1 >= problem_->epoch.length
                           ? CountCaptured(mask)
                           : (it != memo_.end() ? it->second : -1.0);
        if (value >= target - kValueEps) continue;
        return Status::Internal("exact solver reconstruction failed");
      }
      for (ResourceId r : chosen) {
        PULLMON_RETURN_NOT_OK(schedule->AddProbe(r, now));
      }
      mask = ApplyProbes(mask, now, chosen);
    }
    if (CountCaptured(mask) < target - kValueEps) {
      return Status::Internal(
          "exact solver reconstruction mismatches optimum");
    }
    return Status::OK();
  }

  const MonitoringProblem* problem_;
  ExactSolverOptions options_;
  std::vector<FlatEi> eis_;
  std::vector<FlatT> ts_;
  std::vector<std::vector<int>> active_at_;
  static constexpr double kValueEps = 1e-9;

  std::unordered_map<uint64_t, double> memo_;
  uint64_t nodes_ = 0;
};

}  // namespace

ExactSolver::ExactSolver(const MonitoringProblem* problem,
                         ExactSolverOptions options)
    : problem_(problem), options_(options) {}

Result<OfflineSolution> ExactSolver::Solve() {
  Search search(problem_, options_);
  return search.Run();
}

}  // namespace pullmon
