#include "offline/probe_assignment.h"

#include <algorithm>

#include "util/logging.h"

namespace pullmon {

bool AssignProbesEdf(const std::vector<ExecutionInterval>& eis,
                     const BudgetVector& budget, Chronon epoch_length,
                     Schedule* out_schedule) {
  struct Slot {
    ResourceId resource;
    Chronon chronon;
    bool operator<(const Slot& other) const {
      if (chronon != other.chronon) return chronon < other.chronon;
      return resource < other.resource;
    }
  };
  // Total order (finish, start, resource): ties under the former
  // (finish, start) key could land probes on different resources
  // depending on the unstable sort's whim; the resource tiebreaker
  // makes the placement deterministic, which the incremental checker's
  // probe-for-probe equivalence guarantee relies on (EIs comparing
  // equal are identical, so duplicates remain interchangeable).
  std::vector<ExecutionInterval> sorted = eis;
  std::sort(sorted.begin(), sorted.end(),
            [](const ExecutionInterval& a, const ExecutionInterval& b) {
              if (a.finish != b.finish) return a.finish < b.finish;
              if (a.start != b.start) return a.start < b.start;
              return a.resource < b.resource;
            });
  std::vector<int> used(static_cast<std::size_t>(epoch_length), 0);
  std::vector<Slot> placed;  // sorted
  auto has_probe = [&](ResourceId r, Chronon j) {
    return std::binary_search(placed.begin(), placed.end(), Slot{r, j});
  };
  for (const auto& ei : sorted) {
    bool satisfied = false;
    for (Chronon j = ei.start; j <= ei.finish && !satisfied; ++j) {
      if (has_probe(ei.resource, j)) satisfied = true;
    }
    if (satisfied) continue;
    Chronon placed_at = -1;
    for (Chronon j = ei.start; j <= ei.finish; ++j) {
      if (used[static_cast<std::size_t>(j)] < budget.at(j)) {
        placed_at = j;
        break;
      }
    }
    if (placed_at < 0) return false;
    ++used[static_cast<std::size_t>(placed_at)];
    Slot slot{ei.resource, placed_at};
    placed.insert(std::upper_bound(placed.begin(), placed.end(), slot),
                  slot);
  }
  if (out_schedule != nullptr) {
    for (const auto& slot : placed) {
      PULLMON_CHECK_OK(out_schedule->AddProbe(slot.resource, slot.chronon));
    }
  }
  return true;
}

}  // namespace pullmon
