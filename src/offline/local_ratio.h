#ifndef PULLMON_OFFLINE_LOCAL_RATIO_H_
#define PULLMON_OFFLINE_LOCAL_RATIO_H_

#include <memory>

#include "core/problem.h"
#include "offline/incremental_edf.h"
#include "offline/offline_solution.h"
#include "offline/simplex.h"
#include "util/status.h"

namespace pullmon {

struct LocalRatioOptions {
  SimplexOptions simplex;
  /// Hard cap on the LP tableau (rows * columns). Instances exceeding it
  /// skip the LP and fall back to uniform fractional values (degrading
  /// the selection rule to minimum conflict degree) — mirroring the
  /// scalability wall the paper reports for the offline approximation.
  /// Only rows the LP actually materializes are counted: chronons no EI
  /// window touches contribute no budget row.
  std::size_t max_lp_cells = 40000000;
  /// Faithful [2] reduction (default false): two t-intervals conflict
  /// whenever any of their EIs overlap in time, regardless of resource —
  /// the single-machine split-interval view, blind to probe sharing.
  /// When true, same-resource overlaps do not conflict (a probe in the
  /// window intersection serves both), strengthening the approximation
  /// beyond the paper's.
  bool sharing_aware_conflicts = false;
  /// After unwinding the stack, greedily add any remaining t-interval
  /// that stays schedulable. Off by default (not part of [2]); only
  /// improves the solution when on.
  bool greedy_augmentation = false;
  /// Feasibility oracle used by the unwind/augmentation acceptance
  /// tests. kFromScratch is the seed per-candidate rebuild, kept as the
  /// differential oracle.
  FeasibilityBackend backend = FeasibilityBackend::kIncremental;
};

/// Offline approximation for Problem 1 via the (fractional) Local-Ratio
/// scheme of Bar-Yehuda et al. [2] for scheduling split intervals
/// (Section 4.1.2):
///
///  1. Solve the LP relaxation with per-EI probe-placement variables and
///     per-chronon budget constraints (own dense-simplex solver). For
///     alternatives t-intervals (required() < size()) the relaxation
///     demands only required() covered EIs via auxiliary z variables.
///  2. Local-ratio weight decomposition: repeatedly pick the t-interval
///     whose closed conflict neighborhood carries the least fractional
///     weight, push it, and subtract its weight from the neighborhood.
///     Minimum-load selection runs on a lazily invalidated heap over
///     incrementally maintained neighborhood loads, O((V+E) log V)
///     overall instead of the former O(V(V+E)) rescan.
///  3. Unwind the stack, keeping each t-interval that remains jointly
///     schedulable (EDF probe assignment under the budget, with
///     intra-resource probe sharing as a bonus; alternatives need only
///     a schedulable required()-sized subset). Acceptance tests go
///     through the incremental EDF checker.
///
/// Conflicts are time-overlaps between EIs of different t-intervals —
/// the split-interval graph of [2]; probe sharing is deliberately *not*
/// credited in the conflict structure (the transformation of
/// Proposition 2 is to the no-sharing split-interval setting), which is
/// one reason the online policies can beat this approximation in the
/// paper's Figure 4.
///
/// Guarantee (Section 4.1.2): for P^[1], 2k (C_max = 1) or 2k+1
/// (C_max > 1); general widths add one rank via Proposition 2: 2k+2 /
/// 2k+3. See GuaranteedFactor().
class LocalRatioScheduler {
 public:
  explicit LocalRatioScheduler(const MonitoringProblem* problem,
                               LocalRatioOptions options = {});
  ~LocalRatioScheduler();

  Result<OfflineSolution> Solve();

  /// The proven approximation factor for this instance (its optimum is
  /// at most factor times the returned value).
  double GuaranteedFactor() const;

 private:
  struct Workspace;  // pooled flatten/adjacency/LP scratch buffers

  const MonitoringProblem* problem_;
  LocalRatioOptions options_;
  std::unique_ptr<Workspace> ws_;
};

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_LOCAL_RATIO_H_
