#ifndef PULLMON_OFFLINE_OFFLINE_SOLUTION_H_
#define PULLMON_OFFLINE_OFFLINE_SOLUTION_H_

#include <cstddef>

#include "core/schedule.h"

namespace pullmon {

/// Result of an offline scheduler (exact or approximate).
struct OfflineSolution {
  Schedule schedule{0};
  /// t-intervals captured by `schedule`.
  std::size_t captured = 0;
  /// captured / total t-intervals.
  double gained_completeness = 0.0;
  /// Total utility of captured t-intervals (== captured when all
  /// weights are 1).
  double captured_weight = 0.0;
  /// True when the value is provably optimal (exact solver only).
  bool optimal = false;
  /// True when an LP relaxation was solved to optimality and guided the
  /// solver (LocalRatioScheduler only; false when the cell guard or
  /// iteration cap forced the uniform-fractional fallback).
  bool used_lp = false;
  /// Wall-clock seconds spent solving (the Figure 5 quantity).
  double elapsed_seconds = 0.0;
  /// Search nodes (exact) or LP iterations + recursion steps (approx).
  std::size_t work = 0;
};

}  // namespace pullmon

#endif  // PULLMON_OFFLINE_OFFLINE_SOLUTION_H_
