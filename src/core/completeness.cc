#include "core/completeness.h"

namespace pullmon {

bool IsCaptured(const ExecutionInterval& ei, const Schedule& schedule) {
  for (Chronon t = ei.start; t <= ei.finish; ++t) {
    if (schedule.HasProbe(ei.resource, t)) return true;
  }
  return false;
}

bool IsCaptured(const TInterval& eta, const Schedule& schedule) {
  if (eta.empty()) return false;
  std::size_t captured = 0;
  std::size_t required = eta.required();
  for (const auto& ei : eta.eis()) {
    if (IsCaptured(ei, schedule) && ++captured >= required) return true;
  }
  return false;
}

CompletenessReport EvaluateCompleteness(const std::vector<Profile>& profiles,
                                        const Schedule& schedule) {
  CompletenessReport report;
  report.per_profile.reserve(profiles.size());
  for (const auto& p : profiles) {
    ProfileCompleteness pc;
    pc.total = p.size();
    for (const auto& eta : p.t_intervals()) {
      report.total_weight += eta.weight();
      if (IsCaptured(eta, schedule)) {
        ++pc.captured;
        report.captured_weight += eta.weight();
      }
    }
    report.captured_t_intervals += pc.captured;
    report.total_t_intervals += pc.total;
    report.per_profile.push_back(pc);
  }
  return report;
}

double GainedCompleteness(const std::vector<Profile>& profiles,
                          const Schedule& schedule) {
  return EvaluateCompleteness(profiles, schedule).GainedCompleteness();
}

}  // namespace pullmon
