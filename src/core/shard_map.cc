#include "core/shard_map.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace pullmon {

namespace {

/// One-shot SplitMix64 mix of a key (stateless keyed hash).
uint64_t MixKey(uint64_t key) {
  uint64_t state = key;
  return SplitMix64(&state);
}

}  // namespace

ShardMap::ShardMap(int num_shards, int vnodes, uint64_t salt)
    : num_shards_(num_shards), vnodes_(vnodes) {
  PULLMON_CHECK(num_shards >= 1);
  PULLMON_CHECK(vnodes >= 1);
  ring_.reserve(static_cast<std::size_t>(num_shards) *
                static_cast<std::size_t>(vnodes));
  for (int shard = 0; shard < num_shards; ++shard) {
    // Each shard draws its vnode positions from its own SplitMix64
    // stream, so adding shard S+1 leaves every existing point exactly
    // where it was — the root of the minimal-reassignment property.
    uint64_t state =
        salt ^ (static_cast<uint64_t>(shard) + 1) * 0x9E3779B97F4A7C15ULL;
    for (int v = 0; v < vnodes; ++v) {
      ring_.push_back(RingPoint{SplitMix64(&state), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.shard < b.shard;
            });
}

int ShardMap::ShardOf(uint64_t key) const {
  const uint64_t h = MixKey(key);
  // First ring point at or clockwise-after the key's position, wrapping
  // past the top of the ring back to the first point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t pos) { return p.position < pos; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::vector<int> ShardMap::AssignResources(int num_resources) const {
  std::vector<int> assignment(static_cast<std::size_t>(num_resources));
  for (ResourceId r = 0; r < num_resources; ++r) {
    assignment[static_cast<std::size_t>(r)] = ShardOfResource(r);
  }
  return assignment;
}

}  // namespace pullmon
