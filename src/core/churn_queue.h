#ifndef PULLMON_CORE_CHURN_QUEUE_H_
#define PULLMON_CORE_CHURN_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/chronon.h"
#include "core/t_interval.h"
#include "util/logging.h"
#include "util/status.h"

namespace pullmon {

/// One churn operation submitted through a ChurnQueue, applied at the
/// next chronon boundary.
struct ChurnOp {
  enum class Kind { kSubmit, kCancel, kEdit, kUnregister };

  Kind kind = Kind::kSubmit;
  ProfileId profile = 0;
  /// Target of Cancel/Edit; ignored for Submit/Unregister.
  int submission_id = -1;
  /// Payload of Submit, replacement of Edit; ignored otherwise.
  TInterval t_interval;
  /// Invoked inline on the draining thread after the operation is
  /// applied (empty for fire-and-forget submissions).
  std::function<void(const struct ChurnOutcome&)> on_complete;
};

/// What applying one queued operation produced, delivered to the
/// operation's completion callback.
struct ChurnOutcome {
  ChurnOp::Kind kind = ChurnOp::Kind::kSubmit;
  ProfileId profile = 0;
  Status status = Status::OK();
  /// Accepted Submit/Edit: the new submission id. Accepted Unregister:
  /// the number of submissions cancelled. Otherwise -1.
  int result = -1;
};

/// Bounded multi-producer single-consumer queue for churn operations
/// (DESIGN.md section 13, residual (c)). Client threads enqueue
/// Submit/Cancel/Edit/Unregister concurrently; the monitor's step loop
/// is the single consumer, draining the queue at the chronon boundary so
/// every mutation of the candidate structures still happens on the
/// monitor thread, between chronons — the monitor itself stays free of
/// internal locking. FIFO order is global: operations are applied in
/// exactly the order their enqueues won the queue lock, so a producer's
/// own operations never reorder relative to each other.
///
/// Memory ordering: the queue mutex is the only synchronization — an
/// enqueued operation (including its TInterval payload and callback
/// captures) happens-before its application on the consumer thread via
/// the lock hand-off.
class ChurnQueue {
 public:
  explicit ChurnQueue(std::size_t capacity) : capacity_(capacity) {
    PULLMON_CHECK(capacity >= 1);
  }

  ChurnQueue(const ChurnQueue&) = delete;
  ChurnQueue& operator=(const ChurnQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Pending operations (racy by nature; exact only while producers are
  /// quiescent).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_.size();
  }

  /// Enqueues without blocking; false when the queue is full.
  bool TryEnqueue(ChurnOp op) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (ops_.size() >= capacity_) return false;
      ops_.push_back(std::move(op));
    }
    return true;
  }

  /// Enqueues, blocking while the queue is full (producers park until
  /// the consumer drains). Never call from the consumer thread between
  /// drains — a full queue would deadlock against itself.
  void Enqueue(ChurnOp op) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return ops_.size() < capacity_; });
    ops_.push_back(std::move(op));
  }

  /// Drains every operation enqueued so far, applying each in FIFO
  /// order: `apply` maps ChurnOp -> ChurnOutcome, and each operation's
  /// completion callback (if any) runs inline right after it applies.
  /// Operations enqueued concurrently with the drain land in the next
  /// drain. Single-consumer: at most one Drain at a time. Returns the
  /// number of operations applied.
  template <typename Apply>
  std::size_t Drain(Apply&& apply) {
    std::deque<ChurnOp> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(ops_);
    }
    if (batch.empty()) return 0;
    not_full_.notify_all();
    for (ChurnOp& op : batch) {
      ChurnOutcome outcome = apply(op);
      if (op.on_complete) op.on_complete(outcome);
    }
    return batch.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<ChurnOp> ops_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_CHURN_QUEUE_H_
