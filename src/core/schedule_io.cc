#include "core/schedule_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace pullmon {

std::string ScheduleToCsv(const Schedule& schedule) {
  std::string out = "chronon,resource\n";
  for (Chronon t = 0; t < schedule.epoch_length(); ++t) {
    for (ResourceId r : schedule.ProbesAt(t)) {
      out += StringFormat("%d,%d\n", t, r);
    }
  }
  return out;
}

Result<Schedule> ScheduleFromCsv(const std::string& csv,
                                 Chronon epoch_length) {
  PULLMON_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv, /*has_header=*/true));
  PULLMON_ASSIGN_OR_RETURN(std::size_t chronon_col,
                           doc.ColumnIndex("chronon"));
  PULLMON_ASSIGN_OR_RETURN(std::size_t resource_col,
                           doc.ColumnIndex("resource"));
  Schedule schedule(epoch_length);
  for (const auto& row : doc.rows) {
    if (row.size() <= std::max(chronon_col, resource_col)) {
      return Status::ParseError("short row in schedule CSV");
    }
    PULLMON_ASSIGN_OR_RETURN(int64_t chronon,
                             ParseInt64(row[chronon_col]));
    PULLMON_ASSIGN_OR_RETURN(int64_t resource,
                             ParseInt64(row[resource_col]));
    PULLMON_RETURN_NOT_OK(schedule.AddProbe(
        static_cast<ResourceId>(resource), static_cast<Chronon>(chronon)));
  }
  return schedule;
}

Status WriteScheduleFile(const Schedule& schedule,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ScheduleToCsv(schedule);
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

Result<Schedule> ReadScheduleFile(const std::string& path,
                                  Chronon epoch_length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return ScheduleFromCsv(buffer.str(), epoch_length);
}

}  // namespace pullmon
