#ifndef PULLMON_CORE_REFERENCE_EXECUTOR_H_
#define PULLMON_CORE_REFERENCE_EXECUTOR_H_

#include "core/online_executor.h"

namespace pullmon {

/// The scan-based online executor: at every chronon it rebuilds the
/// candidate list, scores it, and fully sorts it before selecting
/// probes. This was the production path before the incremental
/// candidate index (DESIGN.md section 9) and is kept, unoptimized and
/// easy to audit, as the semantic oracle: the indexed OnlineExecutor
/// must be decision-identical to it on every instance, policy, mode and
/// fault pattern (tests/executor_differential_test.cc enforces this).
///
/// Public surface mirrors OnlineExecutor so either can drive the proxy
/// and experiment layers; select it with ExecutorBackend::kReference.
class ReferenceExecutor {
 public:
  ReferenceExecutor(const MonitoringProblem* problem, Policy* policy,
                    ExecutionMode mode);

  void set_capture_callback(OnlineExecutor::CaptureCallback callback) {
    capture_callback_ = std::move(callback);
  }
  void set_probe_callback(OnlineExecutor::ProbeCallback callback) {
    probe_callback_ = std::move(callback);
  }
  void set_retry_policy(RetryPolicy retry) { retry_ = retry; }
  void set_breaker_options(BreakerOptions breaker) { breaker_ = breaker; }

  Result<OnlineRunResult> Run();

 private:
  const MonitoringProblem* problem_;
  Policy* policy_;
  ExecutionMode mode_;
  OnlineExecutor::CaptureCallback capture_callback_;
  OnlineExecutor::ProbeCallback probe_callback_;
  RetryPolicy retry_;
  BreakerOptions breaker_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_REFERENCE_EXECUTOR_H_
