#include "core/profile.h"

#include <algorithm>

namespace pullmon {

std::size_t Profile::rank() const {
  std::size_t max_size = 0;
  for (const auto& eta : t_intervals_) {
    max_size = std::max(max_size, eta.size());
  }
  return max_size;
}

bool Profile::IsUnitWidth() const {
  return std::all_of(t_intervals_.begin(), t_intervals_.end(),
                     [](const TInterval& eta) { return eta.IsUnitWidth(); });
}

bool Profile::HasIntraResourceOverlap() const {
  // Within each t-interval.
  for (const auto& eta : t_intervals_) {
    if (eta.HasIntraResourceOverlap()) return true;
  }
  // Across sibling t-intervals of this profile.
  for (std::size_t a = 0; a < t_intervals_.size(); ++a) {
    for (std::size_t b = a + 1; b < t_intervals_.size(); ++b) {
      for (const auto& ei_a : t_intervals_[a].eis()) {
        for (const auto& ei_b : t_intervals_[b].eis()) {
          if (ei_a.SharesProbeWith(ei_b)) return true;
        }
      }
    }
  }
  return false;
}

Status Profile::Validate(const Epoch& epoch) const {
  if (t_intervals_.empty()) {
    return Status::InvalidArgument("profile with no t-intervals");
  }
  for (const auto& eta : t_intervals_) {
    PULLMON_RETURN_NOT_OK(eta.Validate(epoch));
  }
  return Status::OK();
}

std::size_t RankOf(const std::vector<Profile>& profiles) {
  std::size_t max_rank = 0;
  for (const auto& p : profiles) max_rank = std::max(max_rank, p.rank());
  return max_rank;
}

std::size_t TotalTIntervals(const std::vector<Profile>& profiles) {
  std::size_t total = 0;
  for (const auto& p : profiles) total += p.size();
  return total;
}

bool HasIntraResourceOverlap(const std::vector<Profile>& profiles,
                             bool across_profiles) {
  for (const auto& p : profiles) {
    if (p.HasIntraResourceOverlap()) return true;
  }
  if (!across_profiles) return false;
  // Cross-profile check: collect EIs per resource and sweep for overlap.
  std::vector<ExecutionInterval> all;
  for (const auto& p : profiles) {
    for (const auto& eta : p.t_intervals()) {
      for (const auto& ei : eta.eis()) all.push_back(ei);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ExecutionInterval& a, const ExecutionInterval& b) {
              if (a.resource != b.resource) return a.resource < b.resource;
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i].resource == all[i - 1].resource &&
        all[i].start <= all[i - 1].finish) {
      return true;
    }
  }
  return false;
}

}  // namespace pullmon
