#ifndef PULLMON_CORE_ONLINE_EXECUTOR_H_
#define PULLMON_CORE_ONLINE_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/completeness.h"
#include "core/policy.h"
#include "core/problem.h"
#include "core/resource_health.h"
#include "util/status.h"

namespace pullmon {

struct ParallelProbeHooks;  // core/parallel_executor.h

/// Same-chronon retry behavior of the probe path. A failed probe may be
/// retried with exponential backoff; every retry consumes one unit of
/// the chronon's probe budget C_j, so robustness against faults trades
/// directly against gained completeness. Backoff waits are measured in
/// fractional chronons: once the accumulated wait would cross the
/// chronon boundary (backoff_budget), remaining retries are abandoned —
/// the EI stays a candidate and can be re-scored next chronon.
struct RetryPolicy {
  /// Extra attempts allowed after a failed probe (0 disables retries).
  int max_retries = 0;
  /// Wait before the first retry, in fractional chronons.
  double backoff_base = 0.125;
  /// Multiplier applied to the wait before each subsequent retry.
  double backoff_multiplier = 2.0;
  /// Total wait allowed within one chronon (1.0 = the chronon itself).
  double backoff_budget = 1.0;

  Status Validate() const;
};

/// Outcome of one online run.
struct OnlineRunResult {
  Schedule schedule{0};
  CompletenessReport completeness;
  /// Wall-clock seconds spent in the online loop (candidate maintenance,
  /// policy scoring, selection) — the quantity plotted in Figure 5.
  double elapsed_seconds = 0.0;
  /// Probe attempts issued, including failed attempts and retries; each
  /// one consumed a unit of its chronon's budget. Equals the schedule's
  /// probe count when every probe succeeds.
  std::size_t probes_used = 0;
  std::size_t t_intervals_completed = 0;
  std::size_t t_intervals_failed = 0;
  /// Sum over chronons of candidate EIs scored (work measure).
  std::size_t candidates_scored = 0;
  /// Largest per-chronon candidate set encountered.
  std::size_t max_concurrent_candidates = 0;
  /// Probe attempts (initial or retry) the probe callback failed.
  std::size_t probes_failed = 0;
  /// Retry attempts started after a failed probe.
  std::size_t retries_issued = 0;
  /// Budget units consumed by retries — slots that could otherwise have
  /// probed other resources. Coincides with retries_issued under the
  /// unit probe-cost model.
  std::size_t retry_probes_spent = 0;
  /// Failed t-intervals that suffered at least one failed probe while
  /// holding a live candidate EI on the probed resource — an upper bound
  /// on the completeness the faults cost this run.
  std::size_t t_intervals_lost_to_faults = 0;

  // --- Resource-health telemetry (all zero when the breaker is off;
  // --- mirrors HealthStats, see core/resource_health.h). --------------
  std::size_t circuits_opened = 0;
  std::size_t circuits_reopened = 0;
  std::size_t probation_probes = 0;
  std::size_t probation_successes = 0;
  std::size_t probes_suppressed = 0;
  std::size_t budget_reclaimed = 0;
  std::size_t open_chronons_total = 0;
  /// Chronons each resource spent circuit-open (indexed by ResourceId);
  /// empty when the breaker is disabled.
  std::vector<std::size_t> open_chronons_by_resource;

  // --- Shard telemetry (kParallel only; zero/empty on the serial
  // --- backends; mirrors ShardRunStats, core/parallel_executor.h).
  // --- Depends on the shard map and workload, never the thread count —
  // --- the thread-invariance suite compares it bit-for-bit. ------------
  std::size_t shard_count = 0;
  std::vector<std::size_t> shard_candidates_scored;
  std::vector<std::size_t> shard_probes_executed;
  std::size_t shard_merge_entries = 0;
};

/// Which implementation of the online semantics executes a run. Both are
/// decision-identical (a differential test enforces it); they differ
/// only in per-chronon cost.
enum class ExecutorBackend {
  /// Incremental candidate index with partial top-C_j selection
  /// (core/candidate_index.h) — the default production path.
  kIndexed,
  /// Rebuild-and-fully-sort every chronon (core/reference_executor.h) —
  /// the easy-to-audit oracle.
  kReference,
  /// Sharded multi-threaded pipeline (core/parallel_executor.h):
  /// consistent-hash resource shards, per-shard scoring/selection, a
  /// deterministic ordered merge, and concurrent probe execution.
  /// Decision-identical to kIndexed at every thread count.
  kParallel,
};

/// "indexed" / "reference" / "parallel".
const char* ExecutorBackendToString(ExecutorBackend backend);

/// Runs an online policy over a monitoring problem, chronon by chronon.
///
/// Online semantics (Section 4.2.1):
///  * A t-interval is revealed when its earliest EI starts; an EI becomes
///    a candidate while active (start <= now <= finish) and uncaptured.
///  * Each chronon the policy scores all candidates; the executor probes
///    the resources of the best-scored EIs, at most C_j distinct
///    resources. A probe of resource r captures *every* active candidate
///    EI on r — this is how intra-resource overlap is exploited.
///  * A t-interval whose EI expires uncaptured fails permanently and its
///    remaining EIs stop competing.
///  * Ties are broken deterministically by (score, EI deadline,
///    t-interval arrival order, EI index).
///
/// The hot path maintains the candidate set incrementally (bucketed
/// arrival/expiry lists, per-resource live lists and counters) and
/// selects the top-C_j resources by partial selection instead of
/// sorting all candidates; set_backend(ExecutorBackend::kReference)
/// switches to the scan-based oracle implementation.
class OnlineExecutor {
 public:
  /// Invoked when a t-interval is fully captured: (profile, index of the
  /// t-interval within the profile, capture chronon). Used by the proxy
  /// push layer to deliver notifications.
  using CaptureCallback =
      std::function<void(ProfileId, std::size_t, Chronon)>;

  /// Invoked for every probe attempt the executor issues: (resource,
  /// chronon). The proxy layer uses this to perform the physical pull
  /// (feed fetch). Returns whether the probe succeeded: a failed probe
  /// consumes budget but captures nothing — its candidate EIs stay
  /// candidates, eligible for same-chronon retries (see RetryPolicy) and
  /// re-scoring at later chronons. Without a callback every probe
  /// succeeds (the logical simulation of Section 5).
  using ProbeCallback = std::function<bool(ResourceId, Chronon)>;

  /// `problem` and `policy` must outlive the executor; the executor does
  /// not take ownership.
  OnlineExecutor(const MonitoringProblem* problem, Policy* policy,
                 ExecutionMode mode);
  ~OnlineExecutor();

  void set_capture_callback(CaptureCallback callback) {
    capture_callback_ = std::move(callback);
  }

  void set_probe_callback(ProbeCallback callback) {
    probe_callback_ = std::move(callback);
  }

  /// Same-chronon retry behavior for failed probes (default: none).
  void set_retry_policy(RetryPolicy retry) { retry_ = retry; }

  /// Circuit-breaker behavior for unhealthy resources (default:
  /// disabled, which is byte-identical to running without the breaker).
  void set_breaker_options(BreakerOptions breaker) { breaker_ = breaker; }

  /// Selects the implementation (default: the incremental index).
  void set_backend(ExecutorBackend backend) { backend_ = backend; }
  ExecutorBackend backend() const { return backend_; }

  /// Worker threads of the kParallel backend (<= 1 runs the sharded
  /// pipeline inline); ignored by the serial backends.
  void set_threads(int threads) { threads_ = threads; }

  /// Three-phase probe pipeline of the kParallel backend (defined in
  /// core/parallel_executor.h); overrides the plain probe callback
  /// there. Ignored by the serial backends.
  void set_parallel_hooks(ParallelProbeHooks hooks);

  /// Validates the problem and executes the full epoch. Can be called
  /// repeatedly; each call is an independent run (the policy is Reset()).
  Result<OnlineRunResult> Run();

 private:
  Result<OnlineRunResult> RunIndexed();
  Result<OnlineRunResult> RunParallel();

  const MonitoringProblem* problem_;
  Policy* policy_;
  ExecutionMode mode_;
  ExecutorBackend backend_ = ExecutorBackend::kIndexed;
  CaptureCallback capture_callback_;
  ProbeCallback probe_callback_;
  RetryPolicy retry_;
  BreakerOptions breaker_;
  int threads_ = 1;
  /// Owned by pointer so this header needs no parallel_executor.h
  /// include (which includes this header back).
  std::shared_ptr<ParallelProbeHooks> parallel_hooks_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_ONLINE_EXECUTOR_H_
