#ifndef PULLMON_CORE_ONLINE_EXECUTOR_H_
#define PULLMON_CORE_ONLINE_EXECUTOR_H_

#include <cstddef>
#include <functional>

#include "core/completeness.h"
#include "core/policy.h"
#include "core/problem.h"
#include "util/status.h"

namespace pullmon {

/// Outcome of one online run.
struct OnlineRunResult {
  Schedule schedule{0};
  CompletenessReport completeness;
  /// Wall-clock seconds spent in the online loop (candidate maintenance,
  /// policy scoring, selection) — the quantity plotted in Figure 5.
  double elapsed_seconds = 0.0;
  std::size_t probes_used = 0;
  std::size_t t_intervals_completed = 0;
  std::size_t t_intervals_failed = 0;
  /// Sum over chronons of candidate EIs scored (work measure).
  std::size_t candidates_scored = 0;
  /// Largest per-chronon candidate set encountered.
  std::size_t max_concurrent_candidates = 0;
};

/// Runs an online policy over a monitoring problem, chronon by chronon.
///
/// Online semantics (Section 4.2.1):
///  * A t-interval is revealed when its earliest EI starts; an EI becomes
///    a candidate while active (start <= now <= finish) and uncaptured.
///  * Each chronon the policy scores all candidates; the executor probes
///    the resources of the best-scored EIs, at most C_j distinct
///    resources. A probe of resource r captures *every* active candidate
///    EI on r — this is how intra-resource overlap is exploited.
///  * A t-interval whose EI expires uncaptured fails permanently and its
///    remaining EIs stop competing.
///  * Ties are broken deterministically by (score, EI deadline,
///    t-interval arrival order, EI index).
class OnlineExecutor {
 public:
  /// Invoked when a t-interval is fully captured: (profile, index of the
  /// t-interval within the profile, capture chronon). Used by the proxy
  /// push layer to deliver notifications.
  using CaptureCallback =
      std::function<void(ProfileId, std::size_t, Chronon)>;

  /// Invoked for every probe the executor issues: (resource, chronon).
  /// The proxy layer uses this to perform the physical pull (feed fetch).
  using ProbeCallback = std::function<void(ResourceId, Chronon)>;

  /// `problem` and `policy` must outlive the executor; the executor does
  /// not take ownership.
  OnlineExecutor(const MonitoringProblem* problem, Policy* policy,
                 ExecutionMode mode);

  void set_capture_callback(CaptureCallback callback) {
    capture_callback_ = std::move(callback);
  }

  void set_probe_callback(ProbeCallback callback) {
    probe_callback_ = std::move(callback);
  }

  /// Validates the problem and executes the full epoch. Can be called
  /// repeatedly; each call is an independent run (the policy is Reset()).
  Result<OnlineRunResult> Run();

 private:
  const MonitoringProblem* problem_;
  Policy* policy_;
  ExecutionMode mode_;
  CaptureCallback capture_callback_;
  ProbeCallback probe_callback_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_ONLINE_EXECUTOR_H_
