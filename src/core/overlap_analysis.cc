#include "core/overlap_analysis.h"

#include <algorithm>

namespace pullmon {

OverlapReport AnalyzeOverlap(const std::vector<Profile>& profiles,
                             int num_resources, Chronon epoch_length) {
  OverlapReport report;
  if (num_resources <= 0 || epoch_length <= 0) return report;

  std::vector<std::vector<ExecutionInterval>> by_resource(
      static_cast<std::size_t>(num_resources));
  for (const auto& p : profiles) {
    for (const auto& eta : p.t_intervals()) {
      for (const auto& ei : eta.eis()) {
        if (ei.resource < 0 || ei.resource >= num_resources) continue;
        if (ei.start < 0 || ei.finish >= epoch_length) continue;
        by_resource[static_cast<std::size_t>(ei.resource)].push_back(ei);
        ++report.total_eis;
      }
    }
  }

  // Per-chronon concurrency: +1 at the first open window of a resource,
  // -1 once all its windows are closed. Build resource presence as
  // difference counts over merged per-resource coverage.
  std::vector<int> concurrency_delta(
      static_cast<std::size_t>(epoch_length) + 1, 0);

  for (auto& eis : by_resource) {
    if (eis.empty()) continue;
    ++report.resources_touched;

    // Sort by finish for the stabbing greedy; count overlapping pairs
    // with a start-sorted sweep first.
    std::sort(eis.begin(), eis.end(),
              [](const ExecutionInterval& a, const ExecutionInterval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.finish < b.finish;
              });
    // Overlapping pairs via sweep over active finishes.
    std::vector<Chronon> active_finishes;
    for (const auto& ei : eis) {
      active_finishes.erase(
          std::remove_if(active_finishes.begin(), active_finishes.end(),
                         [&](Chronon f) { return f < ei.start; }),
          active_finishes.end());
      report.intra_resource_overlapping_pairs += active_finishes.size();
      active_finishes.push_back(ei.finish);
    }

    // Resource presence intervals: merge the windows.
    Chronon open = eis.front().start;
    Chronon close = eis.front().finish;
    auto flush = [&]() {
      ++concurrency_delta[static_cast<std::size_t>(open)];
      --concurrency_delta[static_cast<std::size_t>(close) + 1];
    };
    for (std::size_t i = 1; i < eis.size(); ++i) {
      if (eis[i].start <= close) {
        close = std::max(close, eis[i].finish);
      } else {
        flush();
        open = eis[i].start;
        close = eis[i].finish;
      }
    }
    flush();

    // Minimum piercing set (earliest-finish stabbing greedy, exact for
    // interval piercing).
    std::sort(eis.begin(), eis.end(),
              [](const ExecutionInterval& a, const ExecutionInterval& b) {
                if (a.finish != b.finish) return a.finish < b.finish;
                return a.start < b.start;
              });
    Chronon last_pierce = -1;
    for (const auto& ei : eis) {
      if (ei.start > last_pierce) {
        last_pierce = ei.finish;
        ++report.min_probes_ignoring_budget;
      }
    }
  }

  if (report.total_eis > 0) {
    report.sharing_potential =
        1.0 - static_cast<double>(report.min_probes_ignoring_budget) /
                  static_cast<double>(report.total_eis);
  }

  long long running = 0, total_concurrency = 0;
  std::size_t peak = 0;
  for (Chronon t = 0; t < epoch_length; ++t) {
    running += concurrency_delta[static_cast<std::size_t>(t)];
    peak = std::max(peak, static_cast<std::size_t>(running));
    total_concurrency += running;
  }
  report.peak_concurrent_resources = peak;
  report.mean_concurrent_resources =
      static_cast<double>(total_concurrency) /
      static_cast<double>(epoch_length);
  return report;
}

}  // namespace pullmon
