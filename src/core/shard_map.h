#ifndef PULLMON_CORE_SHARD_MAP_H_
#define PULLMON_CORE_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "core/chronon.h"

namespace pullmon {

/// Consistent-hash assignment of resources to shards (DESIGN.md
/// section 16). The in-process parallel executor and the future
/// multi-proxy tier share this map, so the partition a resource lands in
/// today is the proxy instance it would be served by after the
/// distributed split — and growing the shard count reassigns only the
/// keys the new shard takes over, never keys between surviving shards
/// (the property the stability test pins down).
///
/// Classic ring construction: every shard projects `vnodes` points onto
/// a 64-bit ring via SplitMix64, a key hashes onto the ring, and the
/// first point clockwise owns it. More vnodes flatten the load spread at
/// the cost of a larger (binary-searched, read-only) ring.
class ShardMap {
 public:
  static constexpr int kDefaultVnodes = 64;

  /// `num_shards` >= 1; `vnodes` >= 1. `salt` perturbs every ring
  /// position, so two maps with different salts are independent.
  explicit ShardMap(int num_shards, int vnodes = kDefaultVnodes,
                    uint64_t salt = 0x5A17D00DULL);

  int num_shards() const { return num_shards_; }
  int vnodes() const { return vnodes_; }

  /// The shard owning an arbitrary 64-bit key.
  int ShardOf(uint64_t key) const;

  /// The shard owning a resource id (the hot call: resource ids are the
  /// keys the executor shards by).
  int ShardOfResource(ResourceId resource) const {
    return ShardOf(static_cast<uint64_t>(resource));
  }

  /// Precomputed shard of every resource in [0, num_resources) — the
  /// executor resolves per-probe lookups through this dense vector
  /// instead of binary-searching the ring.
  std::vector<int> AssignResources(int num_resources) const;

 private:
  struct RingPoint {
    uint64_t position;
    int shard;
  };

  int num_shards_;
  int vnodes_;
  /// Sorted by (position, shard); read-only after construction, so
  /// concurrent ShardOf() lookups need no synchronization.
  std::vector<RingPoint> ring_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_SHARD_MAP_H_
