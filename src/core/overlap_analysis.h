#ifndef PULLMON_CORE_OVERLAP_ANALYSIS_H_
#define PULLMON_CORE_OVERLAP_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "core/profile.h"

namespace pullmon {

/// Structural statistics of a workload's execution intervals, measuring
/// the two phenomena Section 3.1 singles out: intra-resource overlap
/// (shared probes — opportunity) and inter-resource concurrency
/// (congestion under the budget). Explains *why* popularity skew (the
/// alpha of Figure 7) lifts completeness: it concentrates EIs on few
/// resources, raising the sharing potential.
struct OverlapReport {
  std::size_t total_eis = 0;
  std::size_t resources_touched = 0;

  /// Same-resource, time-overlapping EI pairs (shareable probes).
  std::size_t intra_resource_overlapping_pairs = 0;

  /// Minimum probes that capture every EI, ignoring the budget: the sum
  /// over resources of a minimum piercing set of that resource's
  /// windows (computed exactly by the classic earliest-finish stabbing
  /// greedy). total_eis of them would be needed without sharing.
  std::size_t min_probes_ignoring_budget = 0;

  /// 1 - min_probes / total_eis: the fraction of probe work that
  /// sharing can save. 0 when no windows overlap on any resource.
  double sharing_potential = 0.0;

  /// Peak number of distinct resources with at least one open window at
  /// a single chronon — the instantaneous congestion the budget must
  /// ride out.
  std::size_t peak_concurrent_resources = 0;

  /// Mean of the same quantity over the epoch's chronons.
  double mean_concurrent_resources = 0.0;
};

/// Computes the report over every EI of every profile. `num_resources`
/// and `epoch_length` bound the instance as in MonitoringProblem; EIs
/// outside the bounds are ignored.
OverlapReport AnalyzeOverlap(const std::vector<Profile>& profiles,
                             int num_resources, Chronon epoch_length);

}  // namespace pullmon

#endif  // PULLMON_CORE_OVERLAP_ANALYSIS_H_
