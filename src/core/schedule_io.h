#ifndef PULLMON_CORE_SCHEDULE_IO_H_
#define PULLMON_CORE_SCHEDULE_IO_H_

#include <string>

#include "core/schedule.h"
#include "util/status.h"

namespace pullmon {

/// Serializes a schedule as CSV with header "chronon,resource", one row
/// per probe in (chronon, resource) order — the interchange format for
/// feeding schedules to external probing agents or analysis scripts.
std::string ScheduleToCsv(const Schedule& schedule);

/// Parses the ScheduleToCsv format into a schedule over an epoch of
/// `epoch_length` chronons. Probes outside the epoch fail the parse.
Result<Schedule> ScheduleFromCsv(const std::string& csv,
                                 Chronon epoch_length);

Status WriteScheduleFile(const Schedule& schedule, const std::string& path);
Result<Schedule> ReadScheduleFile(const std::string& path,
                                  Chronon epoch_length);

}  // namespace pullmon

#endif  // PULLMON_CORE_SCHEDULE_IO_H_
