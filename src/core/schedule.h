#ifndef PULLMON_CORE_SCHEDULE_H_
#define PULLMON_CORE_SCHEDULE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/chronon.h"
#include "util/status.h"

namespace pullmon {

/// The per-chronon probe budget C = (C_1, ..., C_K) (Section 3.3). Most
/// experiments use a uniform budget; a fully general per-chronon vector is
/// also supported.
class BudgetVector {
 public:
  /// Uniform budget c (>= 0) over an epoch of length `epoch_length`.
  static BudgetVector Uniform(int c, Chronon epoch_length);

  /// Arbitrary per-chronon budgets; the epoch length is the vector size.
  static BudgetVector FromVector(std::vector<int> budgets);

  /// Budget at chronon t; 0 outside the epoch.
  int at(Chronon t) const;

  /// C_max = max_j C_j.
  int max() const { return max_; }

  Chronon epoch_length() const { return epoch_length_; }

  /// Sum of budgets over the epoch (total probes available).
  long long Total() const;

 private:
  BudgetVector() = default;

  bool uniform_ = true;
  int uniform_value_ = 0;
  int max_ = 0;
  Chronon epoch_length_ = 0;
  std::vector<int> values_;  // used when !uniform_
};

/// A data delivery schedule S: the set of (resource, chronon) probes the
/// proxy performs (Section 3.2). Stored sparsely: per-chronon sorted
/// probe lists.
class Schedule {
 public:
  /// An empty schedule over an epoch of `epoch_length` chronons.
  explicit Schedule(Chronon epoch_length);

  Chronon epoch_length() const { return epoch_length_; }

  /// Records a probe of `resource` at chronon `t`. Duplicate probes are
  /// idempotent (the schedule matrix is 0/1). OutOfRange if t is outside
  /// the epoch, InvalidArgument on a negative resource.
  Status AddProbe(ResourceId resource, Chronon t);

  /// s_{i,j} == 1?
  bool HasProbe(ResourceId resource, Chronon t) const;

  /// Sorted resources probed at chronon t (empty outside the epoch).
  const std::vector<ResourceId>& ProbesAt(Chronon t) const;

  /// Total number of distinct (resource, chronon) probes.
  std::size_t TotalProbes() const { return total_probes_; }

  /// True if every chronon respects its budget C_j.
  bool SatisfiesBudget(const BudgetVector& budget) const;

  /// Multi-line "t=3: r0 r4" rendering of the non-empty chronons.
  std::string ToString() const;

 private:
  Chronon epoch_length_;
  std::size_t total_probes_ = 0;
  std::vector<std::vector<ResourceId>> probes_by_chronon_;
  static const std::vector<ResourceId> kEmpty;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_SCHEDULE_H_
