#include "core/reference_executor.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/logging.h"

namespace pullmon {

namespace {

/// One flattened execution interval with its runtime capture flag.
struct FlatEi {
  ExecutionInterval ei;
  int t_id = 0;      // index into the flattened t-interval array
  int ei_index = 0;  // index within the parent t-interval
  bool captured = false;
};

/// A scored candidate, ready for selection.
struct ScoredCandidate {
  int flat_id;
  int np_class;  // 0 = previously selected parent, 1 = new (NP mode only)
  double score;
  Chronon deadline;
};

}  // namespace

ReferenceExecutor::ReferenceExecutor(const MonitoringProblem* problem,
                                     Policy* policy, ExecutionMode mode)
    : problem_(problem), policy_(policy), mode_(mode) {}

Result<OnlineRunResult> ReferenceExecutor::Run() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  PULLMON_RETURN_NOT_OK(retry_.Validate());
  PULLMON_RETURN_NOT_OK(breaker_.Validate());
  policy_->Reset();

  // Mirrors the indexed path exactly: the tracker is a pure function of
  // the probe-attempt sequence, which both backends issue identically.
  ResourceHealthTracker health(problem_->num_resources, breaker_);
  policy_->AttachHealth(&health);

  const Chronon epoch_len = problem_->epoch.length;
  const int num_resources = problem_->num_resources;

  // --- Flatten the profile hierarchy into runtime arrays. ---------------
  std::vector<TIntervalRuntime> runtimes;
  std::vector<std::size_t> t_index_in_profile;  // parallel to runtimes
  std::vector<FlatEi> eis;
  for (ProfileId pid = 0;
       pid < static_cast<ProfileId>(problem_->profiles.size()); ++pid) {
    const Profile& p = problem_->profiles[static_cast<std::size_t>(pid)];
    int rank = static_cast<int>(p.rank());
    for (std::size_t ti = 0; ti < p.t_intervals().size(); ++ti) {
      const TInterval& eta = p.t_intervals()[ti];
      TIntervalRuntime rt;
      rt.profile = pid;
      rt.profile_rank = rank;
      rt.source = &eta;
      rt.weight = eta.weight();
      rt.required = static_cast<int>(eta.required());
      rt.ei_captured.assign(eta.size(), 0);
      int t_id = static_cast<int>(runtimes.size());
      runtimes.push_back(std::move(rt));
      t_index_in_profile.push_back(ti);
      for (std::size_t ei_idx = 0; ei_idx < eta.eis().size(); ++ei_idx) {
        FlatEi flat;
        flat.ei = eta.eis()[ei_idx];
        flat.t_id = t_id;
        flat.ei_index = static_cast<int>(ei_idx);
        eis.push_back(flat);
      }
    }
  }

  // Event lists: EIs indexed by start and finish chronon.
  std::vector<std::vector<int>> starting_at(
      static_cast<std::size_t>(epoch_len));
  std::vector<std::vector<int>> ending_at(
      static_cast<std::size_t>(epoch_len));
  for (int id = 0; id < static_cast<int>(eis.size()); ++id) {
    starting_at[static_cast<std::size_t>(eis[id].ei.start)].push_back(id);
    ending_at[static_cast<std::size_t>(eis[id].ei.finish)].push_back(id);
  }

  // Active candidate structures with lazy removal.
  std::vector<int> active_ids;
  std::vector<std::vector<int>> active_by_resource(
      static_cast<std::size_t>(num_resources));
  // Per-chronon "probed" markers without O(n) clearing.
  std::vector<Chronon> probed_stamp(static_cast<std::size_t>(num_resources),
                                    -1);
  // Per-chronon "suppression noted" markers, same trick: NoteSuppressed
  // fires once per (open-circuit resource, chronon) with live
  // candidates, matching the indexed path's per-resource reduction.
  std::vector<Chronon> suppressed_stamp(
      static_cast<std::size_t>(num_resources), -1);

  OnlineRunResult result;
  result.schedule = Schedule(epoch_len);

  // Parents that had a live candidate EI hit by a failed probe — failure
  // attribution for t_intervals_lost_to_faults.
  std::vector<uint8_t> fault_touched(runtimes.size(), 0);

  auto is_live = [&](const FlatEi& flat, Chronon now) {
    if (flat.captured) return false;
    const TIntervalRuntime& parent =
        runtimes[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed) return false;
    return flat.ei.finish >= now;
  };

  std::vector<ScoredCandidate> candidates;
  std::vector<int> capture_buffer;

  const auto run_start = std::chrono::steady_clock::now();

  for (Chronon now = 0; now < epoch_len; ++now) {
    // 1. Reveal EIs that start now (skip those of already-dead parents).
    for (int id : starting_at[static_cast<std::size_t>(now)]) {
      const FlatEi& flat = eis[static_cast<std::size_t>(id)];
      const TIntervalRuntime& parent =
          runtimes[static_cast<std::size_t>(flat.t_id)];
      if (parent.failed || parent.completed) continue;
      active_ids.push_back(id);
      active_by_resource[static_cast<std::size_t>(flat.ei.resource)]
          .push_back(id);
    }

    // Expired cool-downs move to probation before scoring, so a
    // half-open resource competes in this chronon's selection.
    health.BeginChronon(now);

    // 2. Compact the live candidate list and score it. Candidates on
    //    open-circuit resources stay live but are neither scored nor
    //    eligible for selection this chronon.
    candidates.clear();
    std::size_t write = 0;
    for (std::size_t read = 0; read < active_ids.size(); ++read) {
      int id = active_ids[read];
      FlatEi& flat = eis[static_cast<std::size_t>(id)];
      if (!is_live(flat, now)) continue;
      active_ids[write++] = id;
      ResourceId res = flat.ei.resource;
      if (health.IsSuppressed(res)) {
        if (suppressed_stamp[static_cast<std::size_t>(res)] != now) {
          suppressed_stamp[static_cast<std::size_t>(res)] = now;
          health.NoteSuppressed(res, 1);
        }
        continue;
      }
      const TIntervalRuntime& parent =
          runtimes[static_cast<std::size_t>(flat.t_id)];
      ScoredCandidate cand;
      cand.flat_id = id;
      cand.np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                       !parent.selected)
                          ? 1
                          : 0;
      cand.score = policy_->Score(flat.ei, parent, flat.ei_index, now);
      cand.deadline = flat.ei.finish;
      candidates.push_back(cand);
    }
    active_ids.resize(write);
    result.candidates_scored += candidates.size();
    result.max_concurrent_candidates =
        std::max(result.max_concurrent_candidates, candidates.size());

    // 3. Select up to C_now distinct resources, best candidates first —
    //    the full sort the indexed executor exists to avoid.
    int budget = problem_->budget.at(now);
    if (budget > 0 && !candidates.empty()) {
      std::sort(candidates.begin(), candidates.end(),
                [&](const ScoredCandidate& a, const ScoredCandidate& b) {
                  if (a.np_class != b.np_class) return a.np_class < b.np_class;
                  if (a.score != b.score) return a.score < b.score;
                  if (a.deadline != b.deadline) return a.deadline < b.deadline;
                  return a.flat_id < b.flat_id;
                });
      int probes_this_chronon = 0;
      for (const auto& cand : candidates) {
        if (probes_this_chronon >= budget) break;
        const FlatEi& flat = eis[static_cast<std::size_t>(cand.flat_id)];
        if (flat.captured) continue;  // freebie from an earlier probe
        ResourceId r = flat.ei.resource;
        if (probed_stamp[static_cast<std::size_t>(r)] == now) continue;
        probed_stamp[static_cast<std::size_t>(r)] = now;
        ++probes_this_chronon;
        ++result.probes_used;
        bool success = probe_callback_ ? probe_callback_(r, now) : true;
        health.RecordProbe(r, now, success);
        if (!success) {
          ++result.probes_failed;
          // Same-chronon retries with exponential backoff, each charged
          // one budget unit; abandoned when the accumulated wait would
          // cross the chronon boundary, the budget runs dry, or the
          // breaker opens the resource's circuit mid-loop (retrying a
          // resource the breaker just gave up on wastes budget).
          double waited = 0.0;
          double backoff = retry_.backoff_base;
          for (int attempt = 0; attempt < retry_.max_retries &&
                                probes_this_chronon < budget &&
                                !health.CircuitOpen(r);
               ++attempt) {
            waited += backoff;
            if (waited > retry_.backoff_budget) break;
            backoff *= retry_.backoff_multiplier;
            ++probes_this_chronon;
            ++result.probes_used;
            ++result.retries_issued;
            ++result.retry_probes_spent;
            success = probe_callback_(r, now);
            health.RecordProbe(r, now, success);
            if (success) break;
            ++result.probes_failed;
          }
        }
        if (!success) {
          // The probe never delivered: nothing is captured, candidates
          // on r stay candidates for later chronons. Record which
          // parents the failure touched for loss attribution.
          for (int id :
               active_by_resource[static_cast<std::size_t>(r)]) {
            const FlatEi& miss = eis[static_cast<std::size_t>(id)];
            if (!is_live(miss, now)) continue;
            fault_touched[static_cast<std::size_t>(miss.t_id)] = 1;
          }
          continue;
        }
        PULLMON_CHECK_OK(result.schedule.AddProbe(r, now));

        // 4. The probe captures every live candidate EI on resource r.
        capture_buffer.clear();
        capture_buffer.swap(
            active_by_resource[static_cast<std::size_t>(r)]);
        for (int id : capture_buffer) {
          FlatEi& hit = eis[static_cast<std::size_t>(id)];
          if (!is_live(hit, now)) continue;
          hit.captured = true;
          TIntervalRuntime& parent =
              runtimes[static_cast<std::size_t>(hit.t_id)];
          parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
          ++parent.num_captured;
          parent.selected = true;
          if (parent.num_captured >= parent.required) {
            parent.completed = true;
            ++result.t_intervals_completed;
            if (capture_callback_) {
              capture_callback_(
                  parent.profile,
                  t_index_in_profile[static_cast<std::size_t>(hit.t_id)],
                  now);
            }
          }
        }
      }
      // Reclaim accounting: at most probes_this_chronon of the budget
      // units a suppressed resource would have taken actually flowed to
      // other resources this chronon (an upper bound; see HealthStats).
      health.NoteBudgetReclaimed(
          std::min(health.SuppressedThisChronon(),
                   static_cast<std::size_t>(probes_this_chronon)));
    }

    // 5. Expire EIs whose window ends now; the parent fails once too few
    //    EIs remain alive to reach its required capture count (with the
    //    all-required default, any uncaptured expiry fails it).
    for (int id : ending_at[static_cast<std::size_t>(now)]) {
      const FlatEi& flat = eis[static_cast<std::size_t>(id)];
      if (flat.captured) continue;
      TIntervalRuntime& parent =
          runtimes[static_cast<std::size_t>(flat.t_id)];
      if (parent.failed || parent.completed) continue;
      ++parent.num_expired;
      if (parent.num_captured + parent.NumAlive() < parent.required) {
        parent.failed = true;
        ++result.t_intervals_failed;
        if (fault_touched[static_cast<std::size_t>(flat.t_id)]) {
          ++result.t_intervals_lost_to_faults;
        }
      }
    }
  }

  const auto run_end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(run_end - run_start).count();

  const HealthStats& hs = health.stats();
  result.circuits_opened = hs.circuits_opened;
  result.circuits_reopened = hs.circuits_reopened;
  result.probation_probes = hs.probation_probes;
  result.probation_successes = hs.probation_successes;
  result.probes_suppressed = hs.probes_suppressed;
  result.budget_reclaimed = hs.budget_reclaimed;
  result.open_chronons_total = hs.open_chronons_total;
  if (breaker_.enabled) {
    result.open_chronons_by_resource = health.OpenChrononsByResource();
  }

  result.completeness =
      EvaluateCompleteness(problem_->profiles, result.schedule);
  // Internal consistency: the executor's own capture accounting must agree
  // with the schedule-based evaluation.
  PULLMON_CHECK(result.completeness.captured_t_intervals ==
                result.t_intervals_completed);
  return result;
}

}  // namespace pullmon
