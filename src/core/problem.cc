#include "core/problem.h"

#include <algorithm>

#include "util/string_util.h"

namespace pullmon {

Status MonitoringProblem::Validate() const {
  if (num_resources <= 0) {
    return Status::InvalidArgument("num_resources must be positive");
  }
  if (epoch.length <= 0) {
    return Status::InvalidArgument("epoch length must be positive");
  }
  if (budget.epoch_length() != epoch.length) {
    return Status::InvalidArgument(StringFormat(
        "budget vector covers %d chronons but epoch has %d",
        budget.epoch_length(), epoch.length));
  }
  for (const auto& p : profiles) {
    PULLMON_RETURN_NOT_OK(p.Validate(epoch));
    for (const auto& eta : p.t_intervals()) {
      for (const auto& ei : eta.eis()) {
        if (ei.resource >= num_resources) {
          return Status::OutOfRange(StringFormat(
              "EI references resource %d but problem has only %d resources",
              ei.resource, num_resources));
        }
      }
    }
  }
  return Status::OK();
}

std::size_t MonitoringProblem::TotalEiCount() const {
  std::size_t total = 0;
  for (const auto& p : profiles) {
    for (const auto& eta : p.t_intervals()) total += eta.size();
  }
  return total;
}

bool MonitoringProblem::IsUnitWidth() const {
  return std::all_of(profiles.begin(), profiles.end(),
                     [](const Profile& p) { return p.IsUnitWidth(); });
}

}  // namespace pullmon
