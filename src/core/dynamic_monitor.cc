#include "core/dynamic_monitor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

DynamicMonitor::DynamicMonitor(int num_resources, Chronon epoch_length,
                               BudgetVector budget, Policy* policy,
                               ExecutionMode mode)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      budget_(std::move(budget)),
      policy_(policy),
      mode_(mode),
      schedule_(epoch_length),
      index_(num_resources, epoch_length) {
  policy_->Reset();
}

ProfileId DynamicMonitor::RegisterProfile(std::string name) {
  profile_names_.push_back(std::move(name));
  rank_of_profile_.push_back(0);
  runtimes_of_profile_.emplace_back();
  return static_cast<ProfileId>(profile_names_.size()) - 1;
}

Result<int> DynamicMonitor::Submit(ProfileId profile,
                                   TInterval t_interval) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  PULLMON_RETURN_NOT_OK(t_interval.Validate(Epoch{epoch_length_}));
  for (const auto& ei : t_interval.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::FailedPrecondition(StringFormat(
          "EI starts at %d but the monitor is already at chronon %d",
          ei.start, now_));
    }
  }

  submitted_.push_back(std::move(t_interval));
  const TInterval& stored = submitted_.back();
  int t_id = static_cast<int>(runtimes_.size());

  // Grow the profile's rank and refresh its existing runtimes so
  // rank-level policies see the new complexity.
  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  rank = std::max(rank, static_cast<int>(stored.size()));
  for (int other : runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
  runtimes_of_profile_[static_cast<std::size_t>(profile)].push_back(t_id);

  TIntervalRuntime rt;
  rt.profile = profile;
  rt.profile_rank = rank;
  rt.source = &stored;
  rt.weight = stored.weight();
  rt.required = static_cast<int>(stored.required());
  rt.ei_captured.assign(stored.size(), 0);
  runtimes_.push_back(std::move(rt));
  int submission = static_cast<int>(
      runtimes_of_profile_[static_cast<std::size_t>(profile)].size()) -
      1;
  submission_id_.push_back(submission);

  first_flat_.push_back(static_cast<int>(index_.size()));
  for (std::size_t i = 0; i < stored.eis().size(); ++i) {
    index_.AddEi(stored.eis()[i], t_id, static_cast<int>(i));
  }
  return submission;
}

void DynamicMonitor::RetireParent(int t_id) {
  const TIntervalRuntime& parent =
      runtimes_[static_cast<std::size_t>(t_id)];
  int begin = first_flat_[static_cast<std::size_t>(t_id)];
  int end = begin + parent.NumEis();
  for (int fid = begin; fid < end; ++fid) index_.Deactivate(fid);
}

Result<StepResult> DynamicMonitor::Step() {
  if (now_ >= epoch_length_) {
    return Status::FailedPrecondition("the epoch is over");
  }
  StepResult step;
  step.chronon = now_;

  // 1. Reveal EIs starting now (dead parents were retired eagerly).
  index_.ActivateArrivals(now_, [](int) { return true; });

  // 2. Score the live candidates, one minimal key per resource.
  index_.CollectResourceCandidates(
      now_,
      [&](const IndexedEi& flat) {
        const TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(flat.t_id)];
        int np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                        !parent.selected)
                           ? 1
                           : 0;
        return std::make_pair(
            np_class, policy_->Score(flat.ei, parent, flat.ei_index, now_));
      },
      &entries_);

  // 3. Partial top-C_now selection over resources, best first.
  int budget = budget_.at(now_);
  if (budget > 0 && !entries_.empty()) {
    std::size_t take =
        CandidateIndex::SelectTopResources(&entries_, budget);
    for (std::size_t e = 0;
         e < take && static_cast<int>(step.probed.size()) < budget; ++e) {
      ResourceId r = entries_[e].resource;
      step.probed.push_back(r);
      PULLMON_CHECK_OK(schedule_.AddProbe(r, now_));

      // 4. Capture every live candidate on this resource.
      index_.CaptureResource(r, [&](int, const IndexedEi& hit) {
        TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(hit.t_id)];
        parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
        ++parent.num_captured;
        parent.selected = true;
        if (parent.num_captured >= parent.required) {
          parent.completed = true;
          ++completed_;
          RetireParent(hit.t_id);
          step.captured.emplace_back(
              parent.profile,
              submission_id_[static_cast<std::size_t>(hit.t_id)]);
        }
      });
    }
  }

  // 5. Expiry.
  index_.ExpireEnding(now_, [&](int, const IndexedEi& flat) {
    TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed) return;
    ++parent.num_expired;
    if (parent.num_captured + parent.NumAlive() < parent.required) {
      parent.failed = true;
      ++failed_;
      RetireParent(flat.t_id);
      step.failed.emplace_back(
          parent.profile,
          submission_id_[static_cast<std::size_t>(flat.t_id)]);
    }
  });

  ++now_;
  return step;
}

Result<CompletenessReport> DynamicMonitor::RunToEnd() {
  while (now_ < epoch_length_) {
    PULLMON_ASSIGN_OR_RETURN(StepResult step, Step());
    (void)step;
  }
  return Completeness();
}

CompletenessReport DynamicMonitor::Completeness() const {
  CompletenessReport report;
  report.per_profile.resize(profile_names_.size());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    auto& pc = report.per_profile[static_cast<std::size_t>(rt.profile)];
    ++pc.total;
    ++report.total_t_intervals;
    report.total_weight += rt.weight;
    if (IsCaptured(*rt.source, schedule_)) {
      ++pc.captured;
      ++report.captured_t_intervals;
      report.captured_weight += rt.weight;
    }
  }
  return report;
}

}  // namespace pullmon
