#include "core/dynamic_monitor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

DynamicMonitor::DynamicMonitor(int num_resources, Chronon epoch_length,
                               BudgetVector budget, Policy* policy,
                               ExecutionMode mode)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      budget_(std::move(budget)),
      policy_(policy),
      mode_(mode),
      schedule_(epoch_length),
      starting_at_(static_cast<std::size_t>(
          epoch_length < 0 ? 0 : epoch_length)),
      ending_at_(static_cast<std::size_t>(
          epoch_length < 0 ? 0 : epoch_length)),
      active_by_resource_(static_cast<std::size_t>(
          num_resources < 0 ? 0 : num_resources)),
      probed_stamp_(static_cast<std::size_t>(
                        num_resources < 0 ? 0 : num_resources),
                    -1) {
  policy_->Reset();
}

ProfileId DynamicMonitor::RegisterProfile(std::string name) {
  profile_names_.push_back(std::move(name));
  rank_of_profile_.push_back(0);
  runtimes_of_profile_.emplace_back();
  return static_cast<ProfileId>(profile_names_.size()) - 1;
}

Result<int> DynamicMonitor::Submit(ProfileId profile,
                                   TInterval t_interval) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  PULLMON_RETURN_NOT_OK(t_interval.Validate(Epoch{epoch_length_}));
  for (const auto& ei : t_interval.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::FailedPrecondition(StringFormat(
          "EI starts at %d but the monitor is already at chronon %d",
          ei.start, now_));
    }
  }

  submitted_.push_back(std::move(t_interval));
  const TInterval& stored = submitted_.back();
  int t_id = static_cast<int>(runtimes_.size());

  // Grow the profile's rank and refresh its existing runtimes so
  // rank-level policies see the new complexity.
  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  rank = std::max(rank, static_cast<int>(stored.size()));
  for (int other : runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
  runtimes_of_profile_[static_cast<std::size_t>(profile)].push_back(t_id);

  TIntervalRuntime rt;
  rt.profile = profile;
  rt.profile_rank = rank;
  rt.source = &stored;
  rt.weight = stored.weight();
  rt.required = static_cast<int>(stored.required());
  rt.ei_captured.assign(stored.size(), 0);
  runtimes_.push_back(std::move(rt));
  int submission = static_cast<int>(
      runtimes_of_profile_[static_cast<std::size_t>(profile)].size()) -
      1;
  submission_id_.push_back(submission);

  for (std::size_t i = 0; i < stored.eis().size(); ++i) {
    const auto& ei = stored.eis()[i];
    int flat_id = static_cast<int>(eis_.size());
    eis_.push_back(FlatEi{ei, t_id, static_cast<int>(i), false});
    starting_at_[static_cast<std::size_t>(ei.start)].push_back(flat_id);
    ending_at_[static_cast<std::size_t>(ei.finish)].push_back(flat_id);
  }
  return submission;
}

bool DynamicMonitor::IsLive(const FlatEi& flat) const {
  if (flat.captured) return false;
  const TIntervalRuntime& parent =
      runtimes_[static_cast<std::size_t>(flat.t_id)];
  if (parent.failed || parent.completed) return false;
  return flat.ei.finish >= now_;
}

Result<StepResult> DynamicMonitor::Step() {
  if (now_ >= epoch_length_) {
    return Status::FailedPrecondition("the epoch is over");
  }
  StepResult step;
  step.chronon = now_;

  // 1. Reveal EIs starting now.
  for (int id : starting_at_[static_cast<std::size_t>(now_)]) {
    const FlatEi& flat = eis_[static_cast<std::size_t>(id)];
    const TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed) continue;
    active_ids_.push_back(id);
    active_by_resource_[static_cast<std::size_t>(flat.ei.resource)]
        .push_back(id);
  }

  // 2. Compact and score candidates.
  struct ScoredCandidate {
    int flat_id;
    int np_class;
    double score;
    Chronon deadline;
  };
  std::vector<ScoredCandidate> candidates;
  std::size_t write = 0;
  for (std::size_t read = 0; read < active_ids_.size(); ++read) {
    int id = active_ids_[read];
    FlatEi& flat = eis_[static_cast<std::size_t>(id)];
    if (!IsLive(flat)) continue;
    active_ids_[write++] = id;
    const TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    ScoredCandidate cand;
    cand.flat_id = id;
    cand.np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                     !parent.selected)
                        ? 1
                        : 0;
    cand.score = policy_->Score(flat.ei, parent, flat.ei_index, now_);
    cand.deadline = flat.ei.finish;
    candidates.push_back(cand);
  }
  active_ids_.resize(write);

  // 3. Select resources within budget, best first.
  int budget = budget_.at(now_);
  if (budget > 0 && !candidates.empty()) {
    std::sort(candidates.begin(), candidates.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                if (a.np_class != b.np_class) return a.np_class < b.np_class;
                if (a.score != b.score) return a.score < b.score;
                if (a.deadline != b.deadline) return a.deadline < b.deadline;
                return a.flat_id < b.flat_id;
              });
    std::vector<int> capture_buffer;
    for (const auto& cand : candidates) {
      if (static_cast<int>(step.probed.size()) >= budget) break;
      const FlatEi& flat = eis_[static_cast<std::size_t>(cand.flat_id)];
      if (flat.captured) continue;
      ResourceId r = flat.ei.resource;
      if (probed_stamp_[static_cast<std::size_t>(r)] == now_) continue;
      probed_stamp_[static_cast<std::size_t>(r)] = now_;
      step.probed.push_back(r);
      PULLMON_CHECK_OK(schedule_.AddProbe(r, now_));

      // 4. Capture every live candidate on this resource.
      capture_buffer.clear();
      capture_buffer.swap(
          active_by_resource_[static_cast<std::size_t>(r)]);
      for (int id : capture_buffer) {
        FlatEi& hit = eis_[static_cast<std::size_t>(id)];
        if (!IsLive(hit)) continue;
        hit.captured = true;
        TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(hit.t_id)];
        parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
        ++parent.num_captured;
        parent.selected = true;
        if (parent.num_captured >= parent.required) {
          parent.completed = true;
          ++completed_;
          step.captured.emplace_back(
              parent.profile,
              submission_id_[static_cast<std::size_t>(hit.t_id)]);
        }
      }
    }
  }

  // 5. Expiry.
  for (int id : ending_at_[static_cast<std::size_t>(now_)]) {
    const FlatEi& flat = eis_[static_cast<std::size_t>(id)];
    if (flat.captured) continue;
    TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed) continue;
    ++parent.num_expired;
    if (parent.num_captured + parent.NumAlive() < parent.required) {
      parent.failed = true;
      ++failed_;
      step.failed.emplace_back(
          parent.profile,
          submission_id_[static_cast<std::size_t>(flat.t_id)]);
    }
  }

  ++now_;
  return step;
}

Result<CompletenessReport> DynamicMonitor::RunToEnd() {
  while (now_ < epoch_length_) {
    PULLMON_ASSIGN_OR_RETURN(StepResult step, Step());
    (void)step;
  }
  return Completeness();
}

CompletenessReport DynamicMonitor::Completeness() const {
  CompletenessReport report;
  report.per_profile.resize(profile_names_.size());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    auto& pc = report.per_profile[static_cast<std::size_t>(rt.profile)];
    ++pc.total;
    ++report.total_t_intervals;
    report.total_weight += rt.weight;
    if (IsCaptured(*rt.source, schedule_)) {
      ++pc.captured;
      ++report.captured_t_intervals;
      report.captured_weight += rt.weight;
    }
  }
  return report;
}

}  // namespace pullmon
