#include "core/dynamic_monitor.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

const char* MonitorIndexModeToString(MonitorIndexMode mode) {
  switch (mode) {
    case MonitorIndexMode::kIncremental:
      return "incremental";
    case MonitorIndexMode::kRebuild:
      return "rebuild";
  }
  return "?";
}

DynamicMonitor::DynamicMonitor(int num_resources, Chronon epoch_length,
                               BudgetVector budget, Policy* policy,
                               ExecutionMode mode, MonitorOptions options)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      budget_(std::move(budget)),
      policy_(policy),
      mode_(mode),
      options_(options),
      churn_queue_(options.churn_queue_capacity),
      health_(num_resources, options.breaker),
      schedule_(epoch_length),
      index_(num_resources, epoch_length) {
  policy_->Reset();
  policy_->AttachHealth(&health_);
}

ProfileId DynamicMonitor::RegisterProfile(std::string name) {
  profile_names_.push_back(std::move(name));
  rank_of_profile_.push_back(0);
  profile_unregistered_.push_back(0);
  runtimes_of_profile_.emplace_back();
  return static_cast<ProfileId>(profile_names_.size()) - 1;
}

Result<int> DynamicMonitor::ResolveSubmission(ProfileId profile,
                                              int submission_id) const {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  const auto& subs =
      runtimes_of_profile_[static_cast<std::size_t>(profile)];
  if (submission_id < 0 ||
      submission_id >= static_cast<int>(subs.size())) {
    return Status::InvalidArgument(
        StringFormat("profile %d has no submission %d", profile,
                     submission_id));
  }
  return subs[static_cast<std::size_t>(submission_id)];
}

Result<int> DynamicMonitor::Submit(ProfileId profile,
                                   TInterval t_interval) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is unregistered", profile));
  }
  PULLMON_RETURN_NOT_OK(t_interval.Validate(Epoch{epoch_length_}));
  for (const auto& ei : t_interval.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::FailedPrecondition(StringFormat(
          "EI starts at %d but the monitor is already at chronon %d",
          ei.start, now_));
    }
  }
  ++stats_.submitted;
  return AppendSubmission(profile, std::move(t_interval));
}

int DynamicMonitor::AppendSubmission(ProfileId profile,
                                     TInterval t_interval) {
  submitted_.push_back(std::move(t_interval));
  const TInterval& stored = submitted_.back();
  int t_id = static_cast<int>(runtimes_.size());

  // Grow the profile's rank and refresh its existing runtimes so
  // rank-level policies see the new complexity.
  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  rank = std::max(rank, static_cast<int>(stored.size()));
  for (int other : runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
  runtimes_of_profile_[static_cast<std::size_t>(profile)].push_back(t_id);

  TIntervalRuntime rt;
  rt.profile = profile;
  rt.profile_rank = rank;
  rt.source = &stored;
  rt.weight = stored.weight();
  rt.required = static_cast<int>(stored.required());
  rt.ei_captured.assign(stored.size(), 0);
  runtimes_.push_back(std::move(rt));
  cancelled_.push_back(0);
  fault_touched_.push_back(0);
  int submission = static_cast<int>(
      runtimes_of_profile_[static_cast<std::size_t>(profile)].size()) -
      1;
  submission_id_.push_back(submission);

  first_flat_.push_back(static_cast<int>(index_.size()));
  for (std::size_t i = 0; i < stored.eis().size(); ++i) {
    index_.AddEi(stored.eis()[i], t_id, static_cast<int>(i));
  }
  return submission;
}

void DynamicMonitor::RetireParent(int t_id) {
  const TIntervalRuntime& parent =
      runtimes_[static_cast<std::size_t>(t_id)];
  index_.RetireRange(first_flat_[static_cast<std::size_t>(t_id)],
                     parent.NumEis());
}

void DynamicMonitor::RecomputeProfileRank(ProfileId profile) {
  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  int exact = 0;
  for (int other :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    if (cancelled_[static_cast<std::size_t>(other)]) continue;
    exact = std::max(
        exact,
        static_cast<int>(
            runtimes_[static_cast<std::size_t>(other)].source->size()));
  }
  if (exact == rank) return;
  rank = exact;
  for (int other :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
}

void DynamicMonitor::CancelLive(int t_id) {
  TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
  // Captures already spent on a submission the client is withdrawing
  // served nobody: account them as orphaned probe work.
  stats_.orphaned_probes += static_cast<std::size_t>(rt.num_captured);
  cancelled_[static_cast<std::size_t>(t_id)] = 1;
  RetireParent(t_id);
  // Rank is exact, not a high-water mark: withdrawing the submission
  // that carried the profile's maximum size may lower it.
  if (static_cast<int>(rt.source->size()) >=
      rank_of_profile_[static_cast<std::size_t>(rt.profile)]) {
    RecomputeProfileRank(rt.profile);
  }
  if (options_.maintenance == MonitorIndexMode::kRebuild) RebuildIndex();
}

Status DynamicMonitor::Cancel(ProfileId profile, int submission_id) {
  PULLMON_ASSIGN_OR_RETURN(int t_id,
                           ResolveSubmission(profile, submission_id));
  if (!IsLive(t_id)) {
    const TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
    const char* state = cancelled_[static_cast<std::size_t>(t_id)]
                            ? "already cancelled"
                            : (rt.completed ? "already completed"
                                            : "already failed");
    return Status::InvalidArgument(
        StringFormat("submission %d of profile %d is %s", submission_id,
                     profile, state));
  }
  CancelLive(t_id);
  ++stats_.cancelled;
  return Status::OK();
}

Result<int> DynamicMonitor::Unregister(ProfileId profile) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is already unregistered", profile));
  }
  profile_unregistered_[static_cast<std::size_t>(profile)] = 1;
  int cancelled = 0;
  for (int t_id :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    if (!IsLive(t_id)) continue;
    CancelLive(t_id);
    ++stats_.cancelled;
    ++cancelled;
  }
  ++stats_.unregistered_profiles;
  return cancelled;
}

Result<int> DynamicMonitor::Edit(ProfileId profile, int submission_id,
                                 TInterval replacement) {
  PULLMON_ASSIGN_OR_RETURN(int t_id,
                           ResolveSubmission(profile, submission_id));
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is unregistered", profile));
  }
  if (!IsLive(t_id)) {
    return Status::InvalidArgument(StringFormat(
        "submission %d of profile %d is no longer live", submission_id,
        profile));
  }
  // Validate the replacement in full *before* touching the old
  // submission, so a rejected edit is a no-op.
  PULLMON_RETURN_NOT_OK(replacement.Validate(Epoch{epoch_length_}));
  for (const auto& ei : replacement.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::InvalidArgument(StringFormat(
          "edited EI starts at %d but the monitor is already at chronon "
          "%d (edits cannot reach into the past)",
          ei.start, now_));
    }
  }
  CancelLive(t_id);
  ++stats_.edited;
  return AppendSubmission(profile, std::move(replacement));
}

void DynamicMonitor::RebuildIndex() {
  // The from-scratch oracle: re-register every EI in original flat-id
  // order (selection tie-breaks depend on flat ids), mark everything
  // that has left play dead — captured EIs, expired windows, and whole
  // parents that completed, failed, or were withdrawn — then replay the
  // activations of already-opened windows. Dead EIs are skipped by the
  // replay, so the rebuilt live lists hold exactly the surviving
  // candidates in activation order, matching the incremental index's
  // observable state (its lists may additionally carry dead entries
  // awaiting lazy compaction, which nothing observes).
  CandidateIndex fresh(num_resources_, epoch_length_);
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    const bool parent_dead =
        rt.completed || rt.failed || cancelled_[t] != 0;
    const auto& eis = rt.source->eis();
    for (std::size_t i = 0; i < eis.size(); ++i) {
      int fid =
          fresh.AddEi(eis[i], static_cast<int>(t), static_cast<int>(i));
      if (parent_dead || rt.ei_captured[i] != 0 ||
          eis[i].finish < now_) {
        fresh.Deactivate(fid);
      }
    }
  }
  for (Chronon t = 0; t < now_; ++t) {
    fresh.ActivateArrivals(t, [](int) { return true; });
  }
  index_ = std::move(fresh);
}

void DynamicMonitor::DrainChurnQueue() {
  churn_queue_.Drain([&](ChurnOp& op) {
    ChurnOutcome outcome;
    outcome.kind = op.kind;
    outcome.profile = op.profile;
    switch (op.kind) {
      case ChurnOp::Kind::kSubmit: {
        Result<int> r = Submit(op.profile, std::move(op.t_interval));
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
      case ChurnOp::Kind::kCancel:
        outcome.status = Cancel(op.profile, op.submission_id);
        break;
      case ChurnOp::Kind::kEdit: {
        Result<int> r =
            Edit(op.profile, op.submission_id, std::move(op.t_interval));
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
      case ChurnOp::Kind::kUnregister: {
        Result<int> r = Unregister(op.profile);
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
    }
    return outcome;
  });
}

Result<StepResult> DynamicMonitor::Step() {
  if (!validated_options_) {
    PULLMON_RETURN_NOT_OK(options_.retry.Validate());
    PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
    validated_options_ = true;
  }
  if (now_ >= epoch_length_) {
    return Status::FailedPrecondition("the epoch is over");
  }
  // 0. Apply churn that concurrent clients queued since the last
  // chronon boundary (single consumer: this thread).
  DrainChurnQueue();
  StepResult step;
  step.chronon = now_;

  // 1. Reveal EIs starting now (dead parents were retired eagerly).
  index_.ActivateArrivals(now_, [](int) { return true; });

  // Expired cool-downs move to probation before scoring, so a half-open
  // resource competes in this chronon's selection.
  health_.BeginChronon(now_);

  // 2. Score the live candidates, one minimal key per resource;
  //    open-circuit resources are skipped and their budget flows on.
  std::size_t scored = index_.CollectResourceCandidates(
      now_,
      [&](const IndexedEi& flat) {
        const TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(flat.t_id)];
        int np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                        !parent.selected)
                           ? 1
                           : 0;
        return std::make_pair(
            np_class, policy_->Score(flat.ei, parent, flat.ei_index, now_));
      },
      [&](ResourceId r) { return health_.IsSuppressed(r); },
      [&](ResourceId r, int live) { health_.NoteSuppressed(r, live); },
      &entries_);
  stats_.candidates_scored += scored;
  stats_.max_concurrent_candidates =
      std::max(stats_.max_concurrent_candidates, scored);

  // 3. Partial top-C_now selection over resources, best first.
  int budget = budget_.at(now_);
  if (budget > 0 && !entries_.empty()) {
    std::size_t take =
        CandidateIndex::SelectTopResources(&entries_, budget);
    int probes_this_chronon = 0;
    for (std::size_t e = 0; e < take; ++e) {
      if (probes_this_chronon >= budget) break;
      ResourceId r = entries_[e].resource;
      ++probes_this_chronon;
      ++stats_.probes_used;
      bool success = probe_callback_ ? probe_callback_(r, now_) : true;
      health_.RecordProbe(r, now_, success);
      if (!success) {
        ++stats_.probes_failed;
        // Same-chronon retries with exponential backoff, each charged
        // one budget unit (identical to OnlineExecutor's probe path).
        double waited = 0.0;
        double backoff = options_.retry.backoff_base;
        for (int attempt = 0; attempt < options_.retry.max_retries &&
                              probes_this_chronon < budget &&
                              !health_.CircuitOpen(r);
             ++attempt) {
          waited += backoff;
          if (waited > options_.retry.backoff_budget) break;
          backoff *= options_.retry.backoff_multiplier;
          ++probes_this_chronon;
          ++stats_.probes_used;
          ++stats_.retries_issued;
          ++stats_.retry_probes_spent;
          success = probe_callback_(r, now_);
          health_.RecordProbe(r, now_, success);
          if (success) break;
          ++stats_.probes_failed;
        }
      }
      if (!success) {
        // Nothing was delivered: candidates on r stay candidates.
        // Record which parents the failure touched for attribution.
        index_.ForEachLiveOnResource(r, [&](int, const IndexedEi& miss) {
          fault_touched_[static_cast<std::size_t>(miss.t_id)] = 1;
        });
        continue;
      }
      step.probed.push_back(r);
      PULLMON_CHECK_OK(schedule_.AddProbe(r, now_));

      // 4. Capture every live candidate on this resource.
      index_.CaptureResource(r, [&](int, const IndexedEi& hit) {
        TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(hit.t_id)];
        parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
        ++parent.num_captured;
        parent.selected = true;
        if (parent.num_captured >= parent.required) {
          parent.completed = true;
          ++completed_;
          RetireParent(hit.t_id);
          step.captured.emplace_back(
              parent.profile,
              submission_id_[static_cast<std::size_t>(hit.t_id)]);
        }
      });
    }
    health_.NoteBudgetReclaimed(
        std::min(health_.SuppressedThisChronon(),
                 static_cast<std::size_t>(probes_this_chronon)));
  }

  // 5. Expiry.
  index_.ExpireEnding(now_, [&](int, const IndexedEi& flat) {
    TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed ||
        cancelled_[static_cast<std::size_t>(flat.t_id)]) {
      return;
    }
    ++parent.num_expired;
    if (parent.num_captured + parent.NumAlive() < parent.required) {
      parent.failed = true;
      ++failed_;
      RetireParent(flat.t_id);
      if (fault_touched_[static_cast<std::size_t>(flat.t_id)]) {
        ++stats_.t_intervals_lost_to_faults;
      }
      step.failed.emplace_back(
          parent.profile,
          submission_id_[static_cast<std::size_t>(flat.t_id)]);
    }
  });

  ++now_;
  return step;
}

Result<CompletenessReport> DynamicMonitor::RunToEnd() {
  while (now_ < epoch_length_) {
    PULLMON_ASSIGN_OR_RETURN(StepResult step, Step());
    (void)step;
  }
  return Completeness();
}

CompletenessReport DynamicMonitor::Completeness() const {
  CompletenessReport report;
  report.per_profile.resize(profile_names_.size());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    // Withdrawn submissions leave the denominator: the client no longer
    // wants them, so they are neither captured nor missed.
    if (cancelled_[t]) continue;
    const TIntervalRuntime& rt = runtimes_[t];
    auto& pc = report.per_profile[static_cast<std::size_t>(rt.profile)];
    ++pc.total;
    ++report.total_t_intervals;
    report.total_weight += rt.weight;
    if (IsCaptured(*rt.source, schedule_)) {
      ++pc.captured;
      ++report.captured_t_intervals;
      report.captured_weight += rt.weight;
    }
  }
  return report;
}

MonitorImage DynamicMonitor::Capture() const {
  MonitorImage image;
  image.now = now_;
  image.profile_names = profile_names_;
  image.profile_unregistered = profile_unregistered_;
  image.submissions.reserve(runtimes_.size());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    MonitorSubmissionImage sub;
    sub.profile = rt.profile;
    sub.definition = *rt.source;
    sub.ei_captured = rt.ei_captured;
    sub.num_expired = rt.num_expired;
    sub.cancelled = cancelled_[t];
    sub.fault_touched = fault_touched_[t];
    sub.failed = rt.failed ? 1 : 0;
    sub.completed = rt.completed ? 1 : 0;
    sub.selected = rt.selected ? 1 : 0;
    image.submissions.push_back(std::move(sub));
  }
  image.probes_by_chronon.reserve(static_cast<std::size_t>(now_));
  for (Chronon t = 0; t < now_; ++t) {
    image.probes_by_chronon.push_back(schedule_.ProbesAt(t));
  }
  image.stats = stats_;
  image.health = health_.Capture();
  return image;
}

Status DynamicMonitor::Restore(const MonitorImage& image) {
  if (now_ != 0 || !runtimes_.empty() || !profile_names_.empty()) {
    return Status::FailedPrecondition(
        "Restore() requires a freshly constructed monitor");
  }
  if (image.now < 0 || image.now > epoch_length_) {
    return Status::InvalidArgument(StringFormat(
        "image chronon %d outside epoch of length %d", image.now,
        epoch_length_));
  }
  if (image.profile_unregistered.size() != image.profile_names.size()) {
    return Status::InvalidArgument(
        "image profile arrays disagree on the profile count");
  }
  if (image.probes_by_chronon.size() !=
      static_cast<std::size_t>(image.now)) {
    return Status::InvalidArgument(
        "image schedule does not cover exactly the chronons before now");
  }
  // The profile registry first, so submissions can validate against it.
  for (const std::string& name : image.profile_names) {
    RegisterProfile(name);
  }
  profile_unregistered_ = image.profile_unregistered;

  // Replay every submission through the AppendSubmission bookkeeping
  // (rank high-water marks, per-profile submission ids, flat EI ids come
  // out exactly as the original run produced them), then lay the
  // captured/expired/terminal state of the image over the runtimes.
  for (const MonitorSubmissionImage& sub : image.submissions) {
    if (sub.profile < 0 ||
        sub.profile >= static_cast<ProfileId>(profile_names_.size())) {
      return Status::InvalidArgument(StringFormat(
          "image submission names unknown profile %d", sub.profile));
    }
    PULLMON_RETURN_NOT_OK(sub.definition.Validate(Epoch{epoch_length_}));
    if (sub.ei_captured.size() != sub.definition.size()) {
      return Status::InvalidArgument(
          "image capture flags do not match the definition's EI count");
    }
    int t_id = static_cast<int>(runtimes_.size());
    AppendSubmission(sub.profile, sub.definition);
    TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
    rt.ei_captured = sub.ei_captured;
    rt.num_captured = 0;
    for (uint8_t flag : sub.ei_captured) rt.num_captured += flag != 0;
    rt.num_expired = sub.num_expired;
    rt.failed = sub.failed != 0;
    rt.completed = sub.completed != 0;
    rt.selected = sub.selected != 0;
    cancelled_[static_cast<std::size_t>(t_id)] = sub.cancelled;
    fault_touched_[static_cast<std::size_t>(t_id)] = sub.fault_touched;
    if (rt.completed) ++completed_;
    if (rt.failed) ++failed_;
  }
  // The replay lays cancelled flags after AppendSubmission's high-water
  // growth already ran, so bring every profile's rank back to the exact
  // (non-cancelled) value the interrupted run was carrying.
  for (ProfileId p = 0;
       p < static_cast<ProfileId>(profile_names_.size()); ++p) {
    RecomputeProfileRank(p);
  }

  now_ = image.now;
  for (Chronon t = 0; t < image.now; ++t) {
    for (ResourceId r :
         image.probes_by_chronon[static_cast<std::size_t>(t)]) {
      PULLMON_RETURN_NOT_OK(schedule_.AddProbe(r, t));
    }
  }
  stats_ = image.stats;
  PULLMON_RETURN_NOT_OK(health_.Restore(image.health));

  // The candidate structures come back through the rebuild oracle:
  // decision-identical to the incrementally maintained index (the churn
  // differential suite enforces it), so a restored run schedules exactly
  // what the uninterrupted run would have.
  RebuildIndex();
  return CheckInvariants();
}

Status DynamicMonitor::CheckInvariants() const {
  PULLMON_RETURN_NOT_OK(index_.CheckInvariants());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    int captured = 0;
    for (uint8_t flag : rt.ei_captured) captured += flag != 0;
    if (captured != rt.num_captured) {
      return Status::InvalidArgument(StringFormat(
          "t-interval %zu capture counter %d != %d flagged EIs", t,
          rt.num_captured, captured));
    }
    if (rt.completed && rt.num_captured < rt.required) {
      return Status::InvalidArgument(StringFormat(
          "t-interval %zu completed with %d of %d required captures", t,
          rt.num_captured, rt.required));
    }
    const bool dead = rt.completed || rt.failed || cancelled_[t] != 0;
    if (!dead) continue;
    int begin = first_flat_[t];
    int end = begin + rt.NumEis();
    for (int fid = begin; fid < end; ++fid) {
      const IndexedEi& flat = index_.at(fid);
      if (flat.active && !flat.dead) {
        return Status::InvalidArgument(StringFormat(
            "dead t-interval %zu still holds live EI (flat id %d)", t,
            fid));
      }
    }
  }
  return Status::OK();
}

}  // namespace pullmon
