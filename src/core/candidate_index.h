#ifndef PULLMON_CORE_CANDIDATE_INDEX_H_
#define PULLMON_CORE_CANDIDATE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "core/chronon.h"
#include "core/execution_interval.h"
#include "util/logging.h"
#include "util/status.h"

namespace pullmon {

/// Runtime state of one execution interval registered with the index.
/// `t_id` and `ei_index` are opaque caller handles (the executor's parent
/// t-interval bookkeeping); the index only manages EI lifecycle.
struct IndexedEi {
  ExecutionInterval ei;
  int t_id = 0;
  int ei_index = 0;
  /// Captured by a successful probe of its resource.
  bool captured = false;
  /// Permanently out of play (captured, expired, or parent dead).
  bool dead = false;
  /// Currently a member of its resource's live-candidate list.
  bool active = false;
};

/// The per-resource reduction of one chronon's candidates: the minimal
/// selection key among the resource's live EIs. Probing the resource
/// serves this candidate (and, by probe sharing, every other live
/// candidate on the resource).
struct ResourceCandidate {
  ResourceId resource = 0;
  int flat_id = 0;
  int np_class = 0;
  double score = 0.0;
  Chronon deadline = 0;
};

/// Incremental candidate index of the online execution semantics
/// (DESIGN.md section 9). Replaces the per-chronon rebuild-and-sort of
/// the scan-based executor with structures that are *maintained* as EIs
/// arrive, get captured, and expire:
///
///  * start/expiry event lists bucketed by chronon (built once);
///  * per-resource live-candidate lists with lazy compaction;
///  * per-resource running counters — live-candidate count (the
///    sharable-probe gain of one probe) and an earliest-deadline heap
///    (urgency) — updated on activation, capture, deactivation and
///    expiry instead of recomputed;
///  * a compact list of resources that currently hold candidates, so a
///    chronon's selection touches O(active resources), not O(n).
///
/// Selection contract: ordering candidates by (np_class, score,
/// deadline, flat_id) and probing best-first with per-chronon resource
/// dedup is equivalent to ordering *resources* by their minimal
/// candidate key — the form this index serves. SelectTopResources()
/// partially selects the best C_j of those keys instead of sorting all
/// candidates, which is what makes the indexed executor decision-
/// identical to ReferenceExecutor (a differential test enforces this).
///
/// Per-chronon cost: O(A) scoring for A live candidates (scores depend
/// on `now`, so they cannot be cached across chronons for a black-box
/// policy), plus O(R_active + C_j log C_j) selection, plus O(1)
/// amortized per EI lifecycle event — against the reference path's
/// O(total EIs + A log A) rebuild, re-sort and rescan.
class CandidateIndex {
 public:
  CandidateIndex(int num_resources, Chronon epoch_length);

  /// Registers an EI; returns its flat id (dense, in registration
  /// order). Must be called before the chronon `ei.start` is activated;
  /// the executor front-loads the whole problem, DynamicMonitor calls
  /// this from Submit() (which forbids retroactive arrivals).
  int AddEi(const ExecutionInterval& ei, int t_id, int ei_index);

  std::size_t size() const { return eis_.size(); }
  const IndexedEi& at(int flat_id) const {
    return eis_[static_cast<std::size_t>(flat_id)];
  }

  /// Activates the EIs whose window opens at `now`, skipping those whose
  /// parent is already dead. `parent_alive` is a callable int(t_id) ->
  /// bool.
  template <typename ParentAlive>
  void ActivateArrivals(Chronon now, ParentAlive&& parent_alive) {
    for (int id : starting_at_[static_cast<std::size_t>(now)]) {
      IndexedEi& flat = eis_[static_cast<std::size_t>(id)];
      if (flat.dead) continue;
      if (!parent_alive(flat.t_id)) {
        flat.dead = true;
        continue;
      }
      Activate(id);
    }
  }

  /// Scores every live candidate at `now` and reduces to one
  /// ResourceCandidate per resource holding the minimal key. `scorer` is
  /// a callable (const IndexedEi&) -> std::pair<int, double> returning
  /// (np_class, score). Also lazily compacts the per-resource lists and
  /// the active-resource list. Returns the number of candidates scored
  /// (the executor's work measure).
  template <typename Scorer>
  std::size_t CollectResourceCandidates(Chronon now, Scorer&& scorer,
                                        std::vector<ResourceCandidate>* out) {
    return CollectResourceCandidates(
        now, scorer, [](ResourceId) { return false; },
        [](ResourceId, int) {}, out);
  }

  /// Suppression-aware variant (DESIGN.md section 10): resources for
  /// which `suppressed` (a callable ResourceId -> bool) returns true are
  /// excluded from scoring and from `out` but stay fully indexed — their
  /// buckets are still compacted, their live counters stay exact, and
  /// they keep their slot in the active-resource list, so lifting the
  /// suppression next chronon needs no rebuild. Each suppressed resource
  /// still holding live candidates is reported to `on_suppressed` (a
  /// callable (ResourceId, int live_count)) for telemetry.
  template <typename Scorer, typename Suppressed, typename OnSuppressed>
  std::size_t CollectResourceCandidates(Chronon now, Scorer&& scorer,
                                        Suppressed&& suppressed,
                                        OnSuppressed&& on_suppressed,
                                        std::vector<ResourceCandidate>* out) {
    out->clear();
    std::size_t scored = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_resources_.size(); ++i) {
      ResourceId r = active_resources_[i];
      auto& bucket = live_on_resource_[static_cast<std::size_t>(r)];
      const bool skip = suppressed(r);
      std::size_t write = 0;
      ResourceCandidate best;
      bool have_best = false;
      for (std::size_t read = 0; read < bucket.size(); ++read) {
        int id = bucket[read];
        IndexedEi& flat = eis_[static_cast<std::size_t>(id)];
        if (flat.dead) {
          flat.active = false;
          continue;
        }
        bucket[write++] = id;
        if (skip) continue;
        const auto [np_class, score] = scorer(flat);
        ++scored;
        if (!have_best ||
            Better(np_class, score, flat.ei.finish, id, best)) {
          best.resource = r;
          best.flat_id = id;
          best.np_class = np_class;
          best.score = score;
          best.deadline = flat.ei.finish;
          have_best = true;
        }
      }
      bucket.resize(write);
      live_count_[static_cast<std::size_t>(r)] =
          static_cast<int>(write);
      if (write == 0) {
        in_play_[static_cast<std::size_t>(r)] = false;
        continue;  // drop r from the active-resource list
      }
      active_resources_[keep++] = r;
      if (skip) {
        on_suppressed(r, static_cast<int>(write));
      } else if (have_best) {
        out->push_back(best);
      }
    }
    active_resources_.resize(keep);
    (void)now;
    return scored;
  }

  /// Partially orders `entries` so that its first min(budget, size)
  /// elements are the best resources in ascending key order; elements
  /// beyond that prefix are unspecified. Returns the usable prefix
  /// length. O(R_active + C log C) versus sorting everything.
  static std::size_t SelectTopResources(
      std::vector<ResourceCandidate>* entries, int budget);

  /// Marks every live candidate on `resource` captured (a successful
  /// probe: intra-resource probe sharing) and empties the resource's
  /// list. `on_capture` is a callable (int flat_id, const IndexedEi&)
  /// invoked per captured EI — parent accounting lives in the caller,
  /// which may Deactivate() sibling EIs reentrantly (other resources
  /// only; `resource`'s own list is detached during the sweep).
  template <typename OnCapture>
  void CaptureResource(ResourceId resource, OnCapture&& on_capture) {
    auto& bucket = live_on_resource_[static_cast<std::size_t>(resource)];
    capture_scratch_.clear();
    capture_scratch_.swap(bucket);
    live_count_[static_cast<std::size_t>(resource)] = 0;
    // Detach first: a reentrant Deactivate() of an entry still in the
    // scratch list (a sibling on this same resource) must not touch the
    // already-zeroed counter.
    for (int id : capture_scratch_) {
      eis_[static_cast<std::size_t>(id)].active = false;
    }
    for (int id : capture_scratch_) {
      IndexedEi& flat = eis_[static_cast<std::size_t>(id)];
      if (flat.dead) continue;
      flat.captured = true;
      flat.dead = true;
      on_capture(id, const_cast<const IndexedEi&>(flat));
    }
    // Every scratch entry is dead now; their deadline-heap entries are
    // all corpses.
    MaybeCompactHeap(resource);
  }

  /// Visits every live candidate on `resource` without mutating it —
  /// the failed-probe path (fault attribution).
  template <typename Visitor>
  void ForEachLiveOnResource(ResourceId resource, Visitor&& visit) const {
    for (int id : live_on_resource_[static_cast<std::size_t>(resource)]) {
      const IndexedEi& flat = eis_[static_cast<std::size_t>(id)];
      if (flat.dead) continue;
      visit(id, flat);
    }
  }

  /// Removes an EI from play because its parent died (completed,
  /// failed, or withdrawn by a client cancel/edit) — the "interval
  /// departs" event of dynamic interval scheduling. This is the
  /// incremental-delete primitive: the pending start/expiry bucket
  /// entries and the live-list slot are retired *lazily* (skipped as
  /// dead, compacted on the next CollectResourceCandidates pass), while
  /// the per-resource live counter is settled immediately and the
  /// deadline heap cleans itself on the next EarliestDeadline query —
  /// or, when a cancel storm leaves it corpse-dominated, is compacted
  /// outright (MaybeCompactHeap) so its size stays bounded by the live
  /// population — so no churn operation ever rebuilds the index. Safe
  /// on any state:
  /// captured/expired/unstarted EIs are left as they are (their
  /// counters were already settled).
  void Deactivate(int flat_id);

  /// Deactivates the contiguous flat-id range [first_flat, first_flat +
  /// num_eis) — the shared retire path of the executors and
  /// DynamicMonitor, whose per-parent EIs are registered contiguously.
  void RetireRange(int first_flat, int num_eis) {
    for (int fid = first_flat; fid < first_flat + num_eis; ++fid) {
      Deactivate(fid);
    }
  }

  /// Expires the EIs whose window closes at `now`: each still-live one
  /// is removed from the index and reported to `on_expire` (a callable
  /// (int flat_id, const IndexedEi&)) for parent accounting, which may
  /// reentrantly Deactivate() siblings (including ones expiring at this
  /// same chronon — they are skipped as dead, matching the reference
  /// semantics where a dead parent's later expiries are ignored).
  template <typename OnExpire>
  void ExpireEnding(Chronon now, OnExpire&& on_expire) {
    for (int id : ending_at_[static_cast<std::size_t>(now)]) {
      if (!ExpireOne(id, on_expire)) continue;
    }
  }

  /// The flat ids whose windows close at `now` (dead entries included —
  /// callers filter through ExpireOne). Partition hook: the parallel
  /// executor k-way-merges the per-shard lists into the serial expiry
  /// order before applying ExpireOne() entry by entry.
  const std::vector<int>& EndingAt(Chronon now) const {
    return ending_at_[static_cast<std::size_t>(now)];
  }

  /// Expires a single EI if it is still live: removes it from the index
  /// and reports it to `on_expire` (same contract as ExpireEnding).
  /// False when the EI was already dead (nothing happened).
  template <typename OnExpire>
  bool ExpireOne(int flat_id, OnExpire&& on_expire) {
    IndexedEi& flat = eis_[static_cast<std::size_t>(flat_id)];
    if (flat.dead) return false;
    RemoveFromPlay(&flat);
    on_expire(flat_id, const_cast<const IndexedEi&>(flat));
    return true;
  }

  // --- Running per-resource counters (maintained, not recomputed). ----

  /// Live candidates on `resource` — how many EIs one probe would
  /// capture (the sharable-probe gain). Exact at chronon boundaries;
  /// during a chronon it reflects all mutations so far.
  int LiveCount(ResourceId resource) const {
    return live_count_[static_cast<std::size_t>(resource)];
  }

  /// Earliest deadline among live candidates on `resource`, or -1 when
  /// none — the resource's urgency. Amortized O(log) via a lazily
  /// cleaned min-heap.
  Chronon EarliestDeadline(ResourceId resource) const;

  /// Corpse floor below which compaction never runs — lazy pops in
  /// EarliestDeadline() handle small corpse populations for free.
  static constexpr int kHeapCompactionMinCorpses = 64;

  /// Physical size of `resource`'s deadline heap, corpses included —
  /// the quantity MaybeCompactHeap() bounds. The heap never holds more
  /// than max(kHeapCompactionMinCorpses, 2 * LiveCount(resource)) + 1
  /// corpses at a public-API boundary.
  std::size_t DeadlineHeapSize(ResourceId resource) const {
    return deadline_heap_[static_cast<std::size_t>(resource)].size();
  }

  /// Dead entries currently parked in `resource`'s deadline heap.
  /// Exact without any bookkeeping: every live EI owns exactly one heap
  /// entry, so corpses = heap size - live counter. (That identity also
  /// holds through CaptureResource's reentrant window — detaching the
  /// list zeroes the live counter at the same moment the whole scratch
  /// set's heap entries become doomed.)
  int DeadlineHeapCorpses(ResourceId resource) const {
    return static_cast<int>(DeadlineHeapSize(resource)) -
           live_count_[static_cast<std::size_t>(resource)];
  }

  /// Resources currently holding at least one live candidate (may
  /// include a few stale entries between compactions; LiveCount is
  /// authoritative).
  const std::vector<ResourceId>& ActiveResources() const {
    return active_resources_;
  }

  /// Exhaustive O(total EIs) audit of the lazy structures, run by the
  /// churn fuzz suite after every operation. Verifies, per resource:
  /// the exact live counter equals the number of non-dead live-list
  /// entries; non-dead entries are flagged active; every live EI
  /// appears in exactly one live-list slot and has a deadline-heap
  /// entry; a resource holding live candidates is on the active list;
  /// and captured implies dead. Returns InvalidArgument naming the
  /// first violated invariant.
  Status CheckInvariants() const;

 private:
  static bool Better(int np_class, double score, Chronon deadline, int id,
                     const ResourceCandidate& best) {
    if (np_class != best.np_class) return np_class < best.np_class;
    if (score != best.score) return score < best.score;
    if (deadline != best.deadline) return deadline < best.deadline;
    return id < best.flat_id;
  }

  void Activate(int flat_id);
  /// Settles counters for an EI leaving play (expiry / deactivation).
  void RemoveFromPlay(IndexedEi* flat);

  /// Rebuilds `resource`'s deadline heap without its corpses when dead
  /// entries dominate (> kHeapCompactionMinCorpses of them AND more
  /// than twice the live population). EarliestDeadline()'s lazy pops
  /// only clean the heap *top*; a cancel storm against a never-queried
  /// resource would otherwise grow the heap with one corpse per
  /// cancelled EI for the rest of the epoch. The ratio trigger keeps
  /// the rebuild O(1) amortized per death: each compaction erases more
  /// than half the heap, so its O(size) cost is charged to the deaths
  /// since the previous one.
  void MaybeCompactHeap(ResourceId resource);

  int num_resources_;
  Chronon epoch_length_;
  std::vector<IndexedEi> eis_;
  std::vector<std::vector<int>> starting_at_;  // chronon -> flat ids
  std::vector<std::vector<int>> ending_at_;
  std::vector<std::vector<int>> live_on_resource_;
  std::vector<int> live_count_;
  std::vector<bool> in_play_;  // resource present in active_resources_
  std::vector<ResourceId> active_resources_;
  /// Per-resource min-heaps of (deadline, flat id), cleaned lazily.
  mutable std::vector<std::vector<std::pair<Chronon, int>>> deadline_heap_;
  std::vector<int> capture_scratch_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_CANDIDATE_INDEX_H_
