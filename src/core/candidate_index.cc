#include "core/candidate_index.h"

#include "util/string_util.h"

namespace pullmon {

CandidateIndex::CandidateIndex(int num_resources, Chronon epoch_length)
    : num_resources_(num_resources < 0 ? 0 : num_resources),
      epoch_length_(epoch_length < 0 ? 0 : epoch_length),
      starting_at_(static_cast<std::size_t>(epoch_length_)),
      ending_at_(static_cast<std::size_t>(epoch_length_)),
      live_on_resource_(static_cast<std::size_t>(num_resources_)),
      live_count_(static_cast<std::size_t>(num_resources_), 0),
      in_play_(static_cast<std::size_t>(num_resources_), false),
      deadline_heap_(static_cast<std::size_t>(num_resources_)) {}

int CandidateIndex::AddEi(const ExecutionInterval& ei, int t_id,
                          int ei_index) {
  PULLMON_CHECK(ei.resource >= 0 && ei.resource < num_resources_);
  PULLMON_CHECK(ei.start >= 0 && ei.finish < epoch_length_);
  int flat_id = static_cast<int>(eis_.size());
  eis_.push_back(IndexedEi{ei, t_id, ei_index, false, false, false});
  starting_at_[static_cast<std::size_t>(ei.start)].push_back(flat_id);
  ending_at_[static_cast<std::size_t>(ei.finish)].push_back(flat_id);
  return flat_id;
}

void CandidateIndex::Activate(int flat_id) {
  IndexedEi& flat = eis_[static_cast<std::size_t>(flat_id)];
  flat.active = true;
  ResourceId r = flat.ei.resource;
  live_on_resource_[static_cast<std::size_t>(r)].push_back(flat_id);
  ++live_count_[static_cast<std::size_t>(r)];
  auto& heap = deadline_heap_[static_cast<std::size_t>(r)];
  heap.emplace_back(flat.ei.finish, flat_id);
  std::push_heap(heap.begin(), heap.end(),
                 std::greater<std::pair<Chronon, int>>());
  if (!in_play_[static_cast<std::size_t>(r)]) {
    in_play_[static_cast<std::size_t>(r)] = true;
    active_resources_.push_back(r);
  }
}

void CandidateIndex::RemoveFromPlay(IndexedEi* flat) {
  flat->dead = true;
  if (!flat->active) return;
  // The entry stays in its resource list until the next lazy compaction;
  // only the exact counter is settled here.
  --live_count_[static_cast<std::size_t>(flat->ei.resource)];
  MaybeCompactHeap(flat->ei.resource);
}

void CandidateIndex::MaybeCompactHeap(ResourceId resource) {
  const int live = live_count_[static_cast<std::size_t>(resource)];
  const int corpses = DeadlineHeapCorpses(resource);
  if (corpses <= kHeapCompactionMinCorpses || corpses <= 2 * live) return;
  auto& heap = deadline_heap_[static_cast<std::size_t>(resource)];
  heap.erase(std::remove_if(heap.begin(), heap.end(),
                            [this](const std::pair<Chronon, int>& entry) {
                              return eis_[static_cast<std::size_t>(
                                              entry.second)]
                                  .dead;
                            }),
             heap.end());
  std::make_heap(heap.begin(), heap.end(),
                 std::greater<std::pair<Chronon, int>>());
}

void CandidateIndex::Deactivate(int flat_id) {
  IndexedEi& flat = eis_[static_cast<std::size_t>(flat_id)];
  if (flat.dead) return;
  RemoveFromPlay(&flat);
}

Chronon CandidateIndex::EarliestDeadline(ResourceId resource) const {
  auto& heap = deadline_heap_[static_cast<std::size_t>(resource)];
  auto greater = std::greater<std::pair<Chronon, int>>();
  while (!heap.empty()) {
    const IndexedEi& top =
        eis_[static_cast<std::size_t>(heap.front().second)];
    if (!top.dead) return heap.front().first;
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();
  }
  return -1;
}

Status CandidateIndex::CheckInvariants() const {
  std::vector<int> list_occurrences(eis_.size(), 0);
  for (ResourceId r = 0; r < num_resources_; ++r) {
    const auto& bucket = live_on_resource_[static_cast<std::size_t>(r)];
    int non_dead = 0;
    for (int id : bucket) {
      if (id < 0 || id >= static_cast<int>(eis_.size())) {
        return Status::InvalidArgument(StringFormat(
            "resource %d live list holds out-of-range flat id %d", r, id));
      }
      const IndexedEi& flat = eis_[static_cast<std::size_t>(id)];
      if (flat.ei.resource != r) {
        return Status::InvalidArgument(StringFormat(
            "flat id %d (resource %d) filed under resource %d's live list",
            id, flat.ei.resource, r));
      }
      ++list_occurrences[static_cast<std::size_t>(id)];
      if (!flat.dead) {
        ++non_dead;
        if (!flat.active) {
          return Status::InvalidArgument(StringFormat(
              "flat id %d is listed live on resource %d but not active",
              id, r));
        }
      }
    }
    if (live_count_[static_cast<std::size_t>(r)] != non_dead) {
      return Status::InvalidArgument(StringFormat(
          "resource %d live counter %d != %d non-dead list entries", r,
          live_count_[static_cast<std::size_t>(r)], non_dead));
    }
    if (non_dead > 0 && !in_play_[static_cast<std::size_t>(r)]) {
      return Status::InvalidArgument(StringFormat(
          "resource %d holds %d live candidates but is not in play", r,
          non_dead));
    }
    // Audit the lazy deadline heap: entries must be well-formed, each
    // non-dead one must be an active EI of this resource with a matching
    // deadline, and the corpse identity (heap size - live counter) must
    // agree with a direct count — the quantity MaybeCompactHeap keys on.
    const auto& heap = deadline_heap_[static_cast<std::size_t>(r)];
    int heap_live = 0;
    for (const auto& entry : heap) {
      if (entry.second < 0 ||
          entry.second >= static_cast<int>(eis_.size())) {
        return Status::InvalidArgument(StringFormat(
            "resource %d deadline heap holds out-of-range flat id %d", r,
            entry.second));
      }
      const IndexedEi& flat = eis_[static_cast<std::size_t>(entry.second)];
      if (flat.ei.resource != r) {
        return Status::InvalidArgument(StringFormat(
            "flat id %d (resource %d) filed in resource %d's deadline heap",
            entry.second, flat.ei.resource, r));
      }
      if (flat.dead) continue;
      ++heap_live;
      if (!flat.active) {
        return Status::InvalidArgument(StringFormat(
            "flat id %d sits live in resource %d's deadline heap but is "
            "not active",
            entry.second, r));
      }
      if (entry.first != flat.ei.finish) {
        return Status::InvalidArgument(StringFormat(
            "flat id %d heap deadline %d != EI finish %d", entry.second,
            entry.first, flat.ei.finish));
      }
    }
    if (heap_live != live_count_[static_cast<std::size_t>(r)]) {
      return Status::InvalidArgument(StringFormat(
          "resource %d deadline heap holds %d live entries but the live "
          "counter says %d (corpse accounting broken)",
          r, heap_live, live_count_[static_cast<std::size_t>(r)]));
    }
  }
  // A resource flagged in play must actually sit on the active list.
  std::vector<uint8_t> on_active_list(
      static_cast<std::size_t>(num_resources_), 0);
  for (ResourceId r : active_resources_) {
    if (r < 0 || r >= num_resources_) {
      return Status::InvalidArgument(
          StringFormat("active-resource list holds bogus resource %d", r));
    }
    on_active_list[static_cast<std::size_t>(r)] = 1;
  }
  for (ResourceId r = 0; r < num_resources_; ++r) {
    if (in_play_[static_cast<std::size_t>(r)] &&
        !on_active_list[static_cast<std::size_t>(r)]) {
      return Status::InvalidArgument(StringFormat(
          "resource %d flagged in play but missing from the active list",
          r));
    }
  }
  for (std::size_t id = 0; id < eis_.size(); ++id) {
    const IndexedEi& flat = eis_[id];
    if (flat.captured && !flat.dead) {
      return Status::InvalidArgument(
          StringFormat("flat id %zu captured but not dead", id));
    }
    if (!flat.active || flat.dead) continue;
    // A live candidate occupies exactly one live-list slot...
    if (list_occurrences[id] != 1) {
      return Status::InvalidArgument(StringFormat(
          "live flat id %zu appears %d times in resource %d's live list",
          id, list_occurrences[id], flat.ei.resource));
    }
    // ... and is represented in its resource's lazy deadline heap.
    const auto& heap =
        deadline_heap_[static_cast<std::size_t>(flat.ei.resource)];
    bool in_heap = false;
    for (const auto& entry : heap) {
      if (entry.second == static_cast<int>(id) &&
          entry.first == flat.ei.finish) {
        in_heap = true;
        break;
      }
    }
    if (!in_heap) {
      return Status::InvalidArgument(StringFormat(
          "live flat id %zu missing from resource %d's deadline heap", id,
          flat.ei.resource));
    }
  }
  return Status::OK();
}

std::size_t CandidateIndex::SelectTopResources(
    std::vector<ResourceCandidate>* entries, int budget) {
  auto key_less = [](const ResourceCandidate& a,
                     const ResourceCandidate& b) {
    if (a.np_class != b.np_class) return a.np_class < b.np_class;
    if (a.score != b.score) return a.score < b.score;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.flat_id < b.flat_id;
  };
  if (budget <= 0) return 0;
  std::size_t take = std::min(entries->size(),
                              static_cast<std::size_t>(budget));
  if (take < entries->size()) {
    std::nth_element(entries->begin(),
                     entries->begin() + static_cast<std::ptrdiff_t>(take),
                     entries->end(), key_less);
  }
  std::sort(entries->begin(),
            entries->begin() + static_cast<std::ptrdiff_t>(take), key_less);
  return take;
}

}  // namespace pullmon
