#ifndef PULLMON_CORE_CHRONON_H_
#define PULLMON_CORE_CHRONON_H_

#include <cstdint>

namespace pullmon {

/// A chronon is the indivisible unit of time in the model (Section 3 of
/// the paper). The library uses 0-based chronons: an epoch of K chronons
/// spans {0, 1, ..., K-1}.
using Chronon = int32_t;

/// Identifies a monitored resource r_i in R = {r_1, ..., r_n}; 0-based.
using ResourceId = int32_t;

/// Identifies a client profile within a problem instance; 0-based.
using ProfileId = int32_t;

/// An epoch T = (T_1, ..., T_K): simply its length K.
struct Epoch {
  Chronon length = 0;

  bool Contains(Chronon t) const { return t >= 0 && t < length; }
};

}  // namespace pullmon

#endif  // PULLMON_CORE_CHRONON_H_
