#include "core/execution_interval.h"

#include "util/string_util.h"

namespace pullmon {

Status ExecutionInterval::Validate(const Epoch& epoch) const {
  if (resource < 0) {
    return Status::InvalidArgument("negative resource id in EI");
  }
  if (start < 0 || finish < start) {
    return Status::InvalidArgument("malformed EI bounds: " + ToString());
  }
  if (finish >= epoch.length) {
    return Status::OutOfRange("EI extends past the epoch: " + ToString());
  }
  return Status::OK();
}

std::string ExecutionInterval::ToString() const {
  return StringFormat("r%d:[%d,%d]", resource, start, finish);
}

}  // namespace pullmon
