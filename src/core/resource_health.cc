#include "core/resource_health.h"

#include <algorithm>

#include "util/string_util.h"

namespace pullmon {

const char* CircuitStateToString(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "closed";
    case CircuitState::kOpen:
      return "open";
    case CircuitState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

Status BreakerOptions::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument(
        StringFormat("failure_threshold must be >= 1, got %d",
                     failure_threshold));
  }
  if (cooldown_base < 1) {
    return Status::InvalidArgument(StringFormat(
        "cooldown_base must be >= 1 chronon, got %d", cooldown_base));
  }
  if (cooldown_multiplier < 1.0) {
    return Status::InvalidArgument(
        StringFormat("cooldown_multiplier must be >= 1, got %g",
                     cooldown_multiplier));
  }
  if (max_cooldown < cooldown_base) {
    return Status::InvalidArgument(StringFormat(
        "max_cooldown (%d) must be >= cooldown_base (%d)", max_cooldown,
        cooldown_base));
  }
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    return Status::InvalidArgument(StringFormat(
        "ewma_alpha must be in (0,1], got %g", ewma_alpha));
  }
  return Status::OK();
}

ResourceHealthTracker::ResourceHealthTracker(int num_resources,
                                             BreakerOptions options)
    : options_(options) {
  std::size_t n =
      num_resources < 0 ? 0 : static_cast<std::size_t>(num_resources);
  state_.assign(n, CircuitState::kClosed);
  consecutive_failures_.assign(n, 0);
  ewma_failure_.assign(n, 0.0);
  cooldown_.assign(n, options_.cooldown_base);
  open_until_.assign(n, 0);
  open_chronons_.assign(n, 0);
}

void ResourceHealthTracker::BeginChronon(Chronon now) {
  suppressed_this_chronon_ = 0;
  if (!options_.enabled) return;
  // Every list entry is kOpen (a circuit leaves the open state only
  // here); expired cool-downs enter probation, the rest accrue one open
  // chronon.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < open_list_.size(); ++i) {
    ResourceId r = open_list_[i];
    if (now >= open_until_[static_cast<std::size_t>(r)]) {
      state_[static_cast<std::size_t>(r)] = CircuitState::kHalfOpen;
      continue;
    }
    open_list_[keep++] = r;
    ++open_chronons_[static_cast<std::size_t>(r)];
    ++stats_.open_chronons_total;
  }
  open_list_.resize(keep);
}

void ResourceHealthTracker::Open(ResourceId resource, Chronon now,
                                 bool reopen) {
  std::size_t r = static_cast<std::size_t>(resource);
  if (reopen) {
    double grown = static_cast<double>(cooldown_[r]) *
                   options_.cooldown_multiplier;
    Chronon next = grown >= static_cast<double>(options_.max_cooldown)
                       ? options_.max_cooldown
                       : static_cast<Chronon>(grown);
    cooldown_[r] = std::max(next, cooldown_[r]);
  }
  state_[r] = CircuitState::kOpen;
  // Suppressed for exactly cooldown_[r] whole chronons after the failing
  // one; BeginChronon(open_until_) starts the probation phase.
  open_until_[r] = now + 1 + cooldown_[r];
  open_list_.push_back(resource);
}

void ResourceHealthTracker::RecordProbe(ResourceId resource, Chronon now,
                                        bool success) {
  std::size_t r = static_cast<std::size_t>(resource);
  bool probation = IsProbation(resource);
  if (probation) ++stats_.probation_probes;
  ewma_failure_[r] = options_.ewma_alpha * (success ? 0.0 : 1.0) +
                     (1.0 - options_.ewma_alpha) * ewma_failure_[r];
  if (success) {
    consecutive_failures_[r] = 0;
    if (probation) {
      state_[r] = CircuitState::kClosed;
      cooldown_[r] = options_.cooldown_base;
      ++stats_.probation_successes;
    }
    return;
  }
  ++consecutive_failures_[r];
  if (!options_.enabled) return;
  if (probation) {
    ++stats_.circuits_reopened;
    Open(resource, now, /*reopen=*/true);
  } else if (state_[r] == CircuitState::kClosed &&
             consecutive_failures_[r] >= options_.failure_threshold) {
    ++stats_.circuits_opened;
    Open(resource, now, /*reopen=*/false);
  }
}

void ResourceHealthTracker::NoteSuppressed(ResourceId resource,
                                           int live_candidates) {
  (void)resource;
  if (live_candidates <= 0) return;
  ++stats_.probes_suppressed;
  ++suppressed_this_chronon_;
}

void ResourceHealthTracker::NoteBudgetReclaimed(std::size_t reclaimed) {
  stats_.budget_reclaimed += reclaimed;
}

HealthImage ResourceHealthTracker::Capture() const {
  HealthImage image;
  image.state.reserve(state_.size());
  for (CircuitState s : state_) {
    image.state.push_back(static_cast<uint8_t>(s));
  }
  image.consecutive_failures = consecutive_failures_;
  image.ewma_failure = ewma_failure_;
  image.cooldown = cooldown_;
  image.open_until = open_until_;
  image.open_chronons = open_chronons_;
  image.open_list = open_list_;
  image.suppressed_this_chronon = suppressed_this_chronon_;
  image.stats = stats_;
  return image;
}

Status ResourceHealthTracker::Restore(const HealthImage& image) {
  const std::size_t n = state_.size();
  if (image.state.size() != n || image.consecutive_failures.size() != n ||
      image.ewma_failure.size() != n || image.cooldown.size() != n ||
      image.open_until.size() != n || image.open_chronons.size() != n) {
    return Status::InvalidArgument(
        "health image resource count does not match the tracker");
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (image.state[r] > static_cast<uint8_t>(CircuitState::kHalfOpen)) {
      return Status::InvalidArgument("health image holds an unknown "
                                     "circuit state");
    }
    state_[r] = static_cast<CircuitState>(image.state[r]);
  }
  consecutive_failures_ = image.consecutive_failures;
  ewma_failure_ = image.ewma_failure;
  cooldown_ = image.cooldown;
  open_until_ = image.open_until;
  open_chronons_ = image.open_chronons;
  open_list_ = image.open_list;
  suppressed_this_chronon_ = image.suppressed_this_chronon;
  stats_ = image.stats;
  return Status::OK();
}

}  // namespace pullmon
