#include "core/parallel_executor.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

// ---------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------

WorkerPool::WorkerPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Run(int num_jobs, const std::function<void(int)>& fn) {
  if (num_jobs <= 0) return;
  if (workers_.empty()) {
    for (int job = 0; job < num_jobs; ++job) fn(job);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_jobs_ = num_jobs;
    next_job_ = 0;
    jobs_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return jobs_done_ == num_jobs_; });
  fn_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  int seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (generation_ != seen_generation &&
                           next_job_ < num_jobs_);
    });
    if (shutdown_) return;
    const int generation = generation_;
    while (generation_ == generation && next_job_ < num_jobs_) {
      const int job = next_job_++;
      const std::function<void(int)>* fn = fn_;
      lock.unlock();
      (*fn)(job);
      lock.lock();
      ++jobs_done_;
      if (jobs_done_ == num_jobs_) done_cv_.notify_all();
    }
    seen_generation = generation;
  }
}

// ---------------------------------------------------------------------
// ParallelExecutor
// ---------------------------------------------------------------------

ParallelExecutor::ParallelExecutor(int num_resources, Chronon epoch_length,
                                   BudgetVector budget, Policy* policy,
                                   ExecutionMode mode,
                                   ParallelOptions options)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      budget_(std::move(budget)),
      policy_(policy),
      mode_(mode),
      options_(options),
      churn_queue_(options.churn_queue_capacity),
      health_(num_resources, options.breaker),
      shard_map_(options.shards),
      shard_of_resource_(shard_map_.AssignResources(num_resources)),
      pool_(options.threads),
      schedule_(epoch_length) {
  const std::size_t shards = static_cast<std::size_t>(options_.shards);
  partitions_.reserve(shards);
  for (int s = 0; s < options_.shards; ++s) {
    partitions_.emplace_back(num_resources, epoch_length);
  }
  global_of_local_.resize(shards);
  shard_entries_.resize(shards);
  shard_take_.assign(shards, 0);
  shard_suppressed_.resize(shards);
  shard_scored_.assign(shards, 0);
  merge_pos_.assign(shards, 0);
  expiry_pos_.assign(shards, 0);
  shard_stats_.shard_count = options_.shards;
  shard_stats_.candidates_scored.assign(shards, 0);
  shard_stats_.probes_executed.assign(shards, 0);
  tokens_by_worker_.resize(static_cast<std::size_t>(pool_.threads()));
  policy_->Reset();
  policy_->AttachHealth(&health_);
}

ProfileId ParallelExecutor::RegisterProfile(std::string name) {
  profile_names_.push_back(std::move(name));
  rank_of_profile_.push_back(0);
  profile_unregistered_.push_back(0);
  runtimes_of_profile_.emplace_back();
  return static_cast<ProfileId>(profile_names_.size()) - 1;
}

Result<int> ParallelExecutor::ResolveSubmission(ProfileId profile,
                                                int submission_id) const {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  const auto& subs =
      runtimes_of_profile_[static_cast<std::size_t>(profile)];
  if (submission_id < 0 ||
      submission_id >= static_cast<int>(subs.size())) {
    return Status::InvalidArgument(
        StringFormat("profile %d has no submission %d", profile,
                     submission_id));
  }
  return subs[static_cast<std::size_t>(submission_id)];
}

Result<int> ParallelExecutor::Submit(ProfileId profile,
                                     TInterval t_interval) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is unregistered", profile));
  }
  PULLMON_RETURN_NOT_OK(t_interval.Validate(Epoch{epoch_length_}));
  for (const auto& ei : t_interval.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::FailedPrecondition(StringFormat(
          "EI starts at %d but the monitor is already at chronon %d",
          ei.start, now_));
    }
  }
  ++stats_.submitted;
  return AppendSubmission(profile, std::move(t_interval));
}

int ParallelExecutor::AppendSubmission(ProfileId profile,
                                       TInterval t_interval) {
  submitted_.push_back(std::move(t_interval));
  const TInterval& stored = submitted_.back();
  int t_id = static_cast<int>(runtimes_.size());

  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  rank = std::max(rank, static_cast<int>(stored.size()));
  for (int other : runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
  runtimes_of_profile_[static_cast<std::size_t>(profile)].push_back(t_id);

  TIntervalRuntime rt;
  rt.profile = profile;
  rt.profile_rank = rank;
  rt.source = &stored;
  rt.weight = stored.weight();
  rt.required = static_cast<int>(stored.required());
  rt.ei_captured.assign(stored.size(), 0);
  runtimes_.push_back(std::move(rt));
  cancelled_.push_back(0);
  fault_touched_.push_back(0);
  int submission = static_cast<int>(
      runtimes_of_profile_[static_cast<std::size_t>(profile)].size()) -
      1;
  submission_id_.push_back(submission);

  // Register the EIs into their owning shard partitions; local flat ids
  // are handed out in global registration order, so within any one
  // shard they sort exactly like the serial executor's global ids.
  handles_of_runtime_.emplace_back();
  auto& handles = handles_of_runtime_.back();
  handles.reserve(stored.eis().size());
  for (std::size_t i = 0; i < stored.eis().size(); ++i) {
    const ExecutionInterval& ei = stored.eis()[i];
    const int shard =
        shard_of_resource_[static_cast<std::size_t>(ei.resource)];
    const int local =
        partitions_[static_cast<std::size_t>(shard)].AddEi(
            ei, t_id, static_cast<int>(i));
    const int global = static_cast<int>(handle_of_global_.size());
    PULLMON_CHECK(
        local ==
        static_cast<int>(global_of_local_[static_cast<std::size_t>(shard)]
                             .size()));
    global_of_local_[static_cast<std::size_t>(shard)].push_back(global);
    EiHandle handle{shard, local};
    handle_of_global_.push_back(handle);
    handles.push_back(handle);
  }
  return submission;
}

void ParallelExecutor::RetireParent(int t_id) {
  for (const EiHandle& h :
       handles_of_runtime_[static_cast<std::size_t>(t_id)]) {
    partitions_[static_cast<std::size_t>(h.shard)].Deactivate(h.local_id);
  }
}

void ParallelExecutor::RecomputeProfileRank(ProfileId profile) {
  auto& rank = rank_of_profile_[static_cast<std::size_t>(profile)];
  int exact = 0;
  for (int other :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    if (cancelled_[static_cast<std::size_t>(other)]) continue;
    exact = std::max(
        exact,
        static_cast<int>(
            runtimes_[static_cast<std::size_t>(other)].source->size()));
  }
  if (exact == rank) return;
  rank = exact;
  for (int other :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    runtimes_[static_cast<std::size_t>(other)].profile_rank = rank;
  }
}

void ParallelExecutor::CancelLive(int t_id) {
  TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
  stats_.orphaned_probes += static_cast<std::size_t>(rt.num_captured);
  cancelled_[static_cast<std::size_t>(t_id)] = 1;
  RetireParent(t_id);
  // Rank is exact (see DynamicMonitor's churn semantics): withdrawing
  // the submission that carried the profile's maximum may lower it.
  if (static_cast<int>(rt.source->size()) >=
      rank_of_profile_[static_cast<std::size_t>(rt.profile)]) {
    RecomputeProfileRank(rt.profile);
  }
}

Status ParallelExecutor::Cancel(ProfileId profile, int submission_id) {
  PULLMON_ASSIGN_OR_RETURN(int t_id,
                           ResolveSubmission(profile, submission_id));
  if (!IsLive(t_id)) {
    const TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
    const char* state = cancelled_[static_cast<std::size_t>(t_id)]
                            ? "already cancelled"
                            : (rt.completed ? "already completed"
                                            : "already failed");
    return Status::InvalidArgument(
        StringFormat("submission %d of profile %d is %s", submission_id,
                     profile, state));
  }
  CancelLive(t_id);
  ++stats_.cancelled;
  return Status::OK();
}

Result<int> ParallelExecutor::Unregister(ProfileId profile) {
  if (profile < 0 ||
      profile >= static_cast<ProfileId>(profile_names_.size())) {
    return Status::InvalidArgument(
        StringFormat("unknown profile id %d", profile));
  }
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is already unregistered", profile));
  }
  profile_unregistered_[static_cast<std::size_t>(profile)] = 1;
  int cancelled = 0;
  for (int t_id :
       runtimes_of_profile_[static_cast<std::size_t>(profile)]) {
    if (!IsLive(t_id)) continue;
    CancelLive(t_id);
    ++stats_.cancelled;
    ++cancelled;
  }
  ++stats_.unregistered_profiles;
  return cancelled;
}

Result<int> ParallelExecutor::Edit(ProfileId profile, int submission_id,
                                   TInterval replacement) {
  PULLMON_ASSIGN_OR_RETURN(int t_id,
                           ResolveSubmission(profile, submission_id));
  if (profile_unregistered_[static_cast<std::size_t>(profile)]) {
    return Status::InvalidArgument(
        StringFormat("profile %d is unregistered", profile));
  }
  if (!IsLive(t_id)) {
    return Status::InvalidArgument(StringFormat(
        "submission %d of profile %d is no longer live", submission_id,
        profile));
  }
  PULLMON_RETURN_NOT_OK(replacement.Validate(Epoch{epoch_length_}));
  for (const auto& ei : replacement.eis()) {
    if (ei.resource >= num_resources_) {
      return Status::OutOfRange(
          StringFormat("EI resource %d outside [0,%d)", ei.resource,
                       num_resources_));
    }
    if (ei.start < now_) {
      return Status::InvalidArgument(StringFormat(
          "edited EI starts at %d but the monitor is already at chronon "
          "%d (edits cannot reach into the past)",
          ei.start, now_));
    }
  }
  CancelLive(t_id);
  ++stats_.edited;
  return AppendSubmission(profile, std::move(replacement));
}

void ParallelExecutor::DrainChurnQueue() {
  churn_queue_.Drain([&](ChurnOp& op) {
    ChurnOutcome outcome;
    outcome.kind = op.kind;
    outcome.profile = op.profile;
    switch (op.kind) {
      case ChurnOp::Kind::kSubmit: {
        Result<int> r = Submit(op.profile, std::move(op.t_interval));
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
      case ChurnOp::Kind::kCancel:
        outcome.status = Cancel(op.profile, op.submission_id);
        break;
      case ChurnOp::Kind::kEdit: {
        Result<int> r =
            Edit(op.profile, op.submission_id, std::move(op.t_interval));
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
      case ChurnOp::Kind::kUnregister: {
        Result<int> r = Unregister(op.profile);
        if (r.ok()) {
          outcome.result = r.value();
        } else {
          outcome.status = r.status();
        }
        break;
      }
    }
    return outcome;
  });
}

void ParallelExecutor::CaptureOnProbe(ResourceId resource,
                                      StepResult* step) {
  const int shard =
      shard_of_resource_[static_cast<std::size_t>(resource)];
  partitions_[static_cast<std::size_t>(shard)].CaptureResource(
      resource, [&](int, const IndexedEi& hit) {
        TIntervalRuntime& parent =
            runtimes_[static_cast<std::size_t>(hit.t_id)];
        parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
        ++parent.num_captured;
        parent.selected = true;
        if (parent.num_captured >= parent.required) {
          parent.completed = true;
          ++completed_;
          RetireParent(hit.t_id);
          const int submission =
              submission_id_[static_cast<std::size_t>(hit.t_id)];
          step->captured.emplace_back(parent.profile, submission);
          if (capture_callback_) {
            if (hooks_.decide) {
              // Defer past the execute phase: the callback reads probe
              // payloads that exist only after commit.
              PendingOp op;
              op.kind = PendingOp::Kind::kCapture;
              op.profile = parent.profile;
              op.submission_id = submission;
              ops_.push_back(op);
            } else {
              capture_callback_(parent.profile, submission, now_);
            }
          }
        }
      });
}

void ParallelExecutor::MergeShardSelections(int budget) {
  merged_entries_.clear();
  const int S = options_.shards;
  std::fill(merge_pos_.begin(), merge_pos_.end(), 0);
  // S-way merge of sorted shard prefixes under the serial executor's
  // total order: (np_class, score, deadline, global flat id) ascending.
  // The shard prefixes each hold their shard's best min(budget, ·)
  // resources, so the union covers the global top-budget set.
  while (static_cast<int>(merged_entries_.size()) < budget) {
    int best_shard = -1;
    int best_global = 0;
    for (int s = 0; s < S; ++s) {
      const std::size_t p = merge_pos_[static_cast<std::size_t>(s)];
      if (p >= shard_take_[static_cast<std::size_t>(s)]) continue;
      const ResourceCandidate& c =
          shard_entries_[static_cast<std::size_t>(s)][p];
      const int global =
          global_of_local_[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(c.flat_id)];
      if (best_shard < 0) {
        best_shard = s;
        best_global = global;
        continue;
      }
      const ResourceCandidate& b =
          shard_entries_[static_cast<std::size_t>(best_shard)]
                        [merge_pos_[static_cast<std::size_t>(best_shard)]];
      bool better;
      if (c.np_class != b.np_class) {
        better = c.np_class < b.np_class;
      } else if (c.score != b.score) {
        better = c.score < b.score;
      } else if (c.deadline != b.deadline) {
        better = c.deadline < b.deadline;
      } else {
        better = global < best_global;
      }
      if (better) {
        best_shard = s;
        best_global = global;
      }
    }
    if (best_shard < 0) break;
    ResourceCandidate chosen =
        shard_entries_[static_cast<std::size_t>(best_shard)]
                      [merge_pos_[static_cast<std::size_t>(best_shard)]];
    chosen.flat_id = best_global;  // expose the global id downstream
    merged_entries_.push_back(chosen);
    ++merge_pos_[static_cast<std::size_t>(best_shard)];
  }
  shard_stats_.merge_entries += merged_entries_.size();
}

Result<StepResult> ParallelExecutor::Step() {
  if (!validated_options_) {
    PULLMON_RETURN_NOT_OK(options_.retry.Validate());
    PULLMON_RETURN_NOT_OK(options_.breaker.Validate());
    if (options_.shards < 1) {
      return Status::InvalidArgument("shards must be >= 1");
    }
    validated_options_ = true;
  }
  if (now_ >= epoch_length_) {
    return Status::FailedPrecondition("the epoch is over");
  }
  // 0. Apply churn queued by concurrent clients (single consumer).
  DrainChurnQueue();
  StepResult step;
  step.chronon = now_;
  const int S = options_.shards;

  if (hooks_.begin_chronon) hooks_.begin_chronon(now_, pool_.threads());

  // 1. Reveal EIs starting now, per shard in parallel (each shard's
  // starting list touches only that shard's partition).
  pool_.Run(S, [&](int s) {
    partitions_[static_cast<std::size_t>(s)].ActivateArrivals(
        now_, [](int) { return true; });
  });

  health_.BeginChronon(now_);

  // 2. Score per shard in parallel and select each shard's local top-k
  // against the budget slice. The health tracker is only *read* here
  // (IsSuppressed); suppression telemetry is deferred and applied
  // serially below so the tracker never sees concurrent writes.
  const int budget = budget_.at(now_);
  pool_.Run(S, [&](int s) {
    const std::size_t si = static_cast<std::size_t>(s);
    shard_suppressed_[si].clear();
    shard_scored_[si] =
        partitions_[si].CollectResourceCandidates(
            now_,
            [&](const IndexedEi& flat) {
              const TIntervalRuntime& parent =
                  runtimes_[static_cast<std::size_t>(flat.t_id)];
              int np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                              !parent.selected)
                                 ? 1
                                 : 0;
              return std::make_pair(
                  np_class,
                  policy_->Score(flat.ei, parent, flat.ei_index, now_));
            },
            [&](ResourceId r) { return health_.IsSuppressed(r); },
            [&](ResourceId r, int live) {
              shard_suppressed_[si].emplace_back(r, live);
            },
            &shard_entries_[si]);
    shard_take_[si] =
        budget > 0 ? CandidateIndex::SelectTopResources(
                         &shard_entries_[si], budget)
                   : 0;
  });

  // Serial post-barrier bookkeeping: suppression telemetry in shard
  // order (the recorded values are order-independent counters) and the
  // scored-work counters.
  std::size_t scored = 0;
  for (int s = 0; s < S; ++s) {
    const std::size_t si = static_cast<std::size_t>(s);
    for (const auto& [r, live] : shard_suppressed_[si]) {
      health_.NoteSuppressed(r, live);
    }
    scored += shard_scored_[si];
    shard_stats_.candidates_scored[si] += shard_scored_[si];
  }
  stats_.candidates_scored += scored;
  stats_.max_concurrent_candidates =
      std::max(stats_.max_concurrent_candidates, scored);

  // 3. Control pass: merge the shard selections into the global order,
  // then run the serial executor's exact budget/retry/breaker loop. In
  // hook mode every attempt's fate is *decided* here (serially, in
  // canonical order) and its data-plane work is deferred to phase 4.
  ops_.clear();
  for (auto& lane : tokens_by_worker_) lane.clear();
  int tokens_issued = 0;
  const int num_workers = pool_.threads();
  auto decide_attempt = [&](ResourceId r) {
    if (hooks_.decide) {
      const int token = tokens_issued++;
      const bool success = hooks_.decide(r, now_, token);
      PendingOp op;
      op.kind = PendingOp::Kind::kAttempt;
      op.token = token;
      ops_.push_back(op);
      const int worker =
          shard_of_resource_[static_cast<std::size_t>(r)] % num_workers;
      tokens_by_worker_[static_cast<std::size_t>(worker)].push_back(token);
      return success;
    }
    return probe_callback_ ? probe_callback_(r, now_) : true;
  };

  if (budget > 0) {
    MergeShardSelections(budget);
    int probes_this_chronon = 0;
    for (const ResourceCandidate& entry : merged_entries_) {
      if (probes_this_chronon >= budget) break;
      ResourceId r = entry.resource;
      const std::size_t shard =
          static_cast<std::size_t>(shard_of_resource_[
              static_cast<std::size_t>(r)]);
      ++probes_this_chronon;
      ++stats_.probes_used;
      ++shard_stats_.probes_executed[shard];
      bool success = decide_attempt(r);
      health_.RecordProbe(r, now_, success);
      if (!success) {
        ++stats_.probes_failed;
        double waited = 0.0;
        double backoff = options_.retry.backoff_base;
        for (int attempt = 0; attempt < options_.retry.max_retries &&
                              probes_this_chronon < budget &&
                              !health_.CircuitOpen(r);
             ++attempt) {
          waited += backoff;
          if (waited > options_.retry.backoff_budget) break;
          backoff *= options_.retry.backoff_multiplier;
          ++probes_this_chronon;
          ++stats_.probes_used;
          ++shard_stats_.probes_executed[shard];
          ++stats_.retries_issued;
          ++stats_.retry_probes_spent;
          success = decide_attempt(r);
          health_.RecordProbe(r, now_, success);
          if (success) break;
          ++stats_.probes_failed;
        }
      }
      if (!success) {
        partitions_[shard].ForEachLiveOnResource(
            r, [&](int, const IndexedEi& miss) {
              fault_touched_[static_cast<std::size_t>(miss.t_id)] = 1;
            });
        continue;
      }
      step.probed.push_back(r);
      PULLMON_CHECK_OK(schedule_.AddProbe(r, now_));
      CaptureOnProbe(r, &step);
    }
    health_.NoteBudgetReclaimed(
        std::min(health_.SuppressedThisChronon(),
                 static_cast<std::size_t>(probes_this_chronon)));
  }

  // 4. Execute phase: the decided attempts' fetch/parse/cache work runs
  // concurrently, one lane per worker, each lane in canonical order.
  // All attempts of one shard go to one worker, so per-resource session
  // state (etags, cache entries, server-side lazy caches) is
  // single-writer within the phase.
  if (hooks_.execute && tokens_issued > 0) {
    pool_.Run(num_workers, [&](int w) {
      const auto& lane = tokens_by_worker_[static_cast<std::size_t>(w)];
      if (!lane.empty()) hooks_.execute(lane, w);
    });
  }

  // 5. Commit replay: apply attempt payloads and fire capture
  // notifications in exactly the order the serial executor interleaves
  // them.
  for (const PendingOp& op : ops_) {
    if (op.kind == PendingOp::Kind::kAttempt) {
      if (hooks_.commit) hooks_.commit(op.token);
    } else {
      capture_callback_(op.profile, op.submission_id, now_);
    }
  }

  // 6. Expiry: S-way merge of the per-shard ending lists back into the
  // global registration order (the serial executor's expiry order).
  std::fill(expiry_pos_.begin(), expiry_pos_.end(), 0);
  auto expire_fn = [&](int, const IndexedEi& flat) {
    TIntervalRuntime& parent =
        runtimes_[static_cast<std::size_t>(flat.t_id)];
    if (parent.failed || parent.completed ||
        cancelled_[static_cast<std::size_t>(flat.t_id)]) {
      return;
    }
    ++parent.num_expired;
    if (parent.num_captured + parent.NumAlive() < parent.required) {
      parent.failed = true;
      ++failed_;
      RetireParent(flat.t_id);
      if (fault_touched_[static_cast<std::size_t>(flat.t_id)]) {
        ++stats_.t_intervals_lost_to_faults;
      }
      step.failed.emplace_back(
          parent.profile,
          submission_id_[static_cast<std::size_t>(flat.t_id)]);
    }
  };
  while (true) {
    int best_shard = -1;
    int best_global = std::numeric_limits<int>::max();
    for (int s = 0; s < S; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      const auto& list = partitions_[si].EndingAt(now_);
      if (expiry_pos_[si] >= list.size()) continue;
      const int global =
          global_of_local_[si]
                          [static_cast<std::size_t>(list[expiry_pos_[si]])];
      if (best_shard < 0 || global < best_global) {
        best_shard = s;
        best_global = global;
      }
    }
    if (best_shard < 0) break;
    const std::size_t si = static_cast<std::size_t>(best_shard);
    const int local = partitions_[si].EndingAt(now_)[expiry_pos_[si]];
    partitions_[si].ExpireOne(local, expire_fn);
    ++expiry_pos_[si];
  }

  ++now_;
  return step;
}

Result<CompletenessReport> ParallelExecutor::RunToEnd() {
  while (now_ < epoch_length_) {
    PULLMON_ASSIGN_OR_RETURN(StepResult step, Step());
    (void)step;
  }
  return Completeness();
}

CompletenessReport ParallelExecutor::Completeness() const {
  CompletenessReport report;
  report.per_profile.resize(profile_names_.size());
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    if (cancelled_[t]) continue;
    const TIntervalRuntime& rt = runtimes_[t];
    auto& pc = report.per_profile[static_cast<std::size_t>(rt.profile)];
    ++pc.total;
    ++report.total_t_intervals;
    report.total_weight += rt.weight;
    if (IsCaptured(*rt.source, schedule_)) {
      ++pc.captured;
      ++report.captured_t_intervals;
      report.captured_weight += rt.weight;
    }
  }
  return report;
}

Status ParallelExecutor::CheckInvariants() const {
  for (const CandidateIndex& partition : partitions_) {
    PULLMON_RETURN_NOT_OK(partition.CheckInvariants());
  }
  for (std::size_t t = 0; t < runtimes_.size(); ++t) {
    const TIntervalRuntime& rt = runtimes_[t];
    int captured = 0;
    for (uint8_t flag : rt.ei_captured) captured += flag != 0;
    if (captured != rt.num_captured) {
      return Status::InvalidArgument(StringFormat(
          "t-interval %zu capture counter %d != %d flagged EIs", t,
          rt.num_captured, captured));
    }
    if (rt.completed && rt.num_captured < rt.required) {
      return Status::InvalidArgument(StringFormat(
          "t-interval %zu completed with %d of %d required captures", t,
          rt.num_captured, rt.required));
    }
    const bool dead = rt.completed || rt.failed || cancelled_[t] != 0;
    if (!dead) continue;
    for (const EiHandle& h : handles_of_runtime_[t]) {
      const IndexedEi& flat =
          partitions_[static_cast<std::size_t>(h.shard)].at(h.local_id);
      if (flat.active && !flat.dead) {
        return Status::InvalidArgument(StringFormat(
            "dead t-interval %zu still holds live EI (shard %d local %d)",
            t, h.shard, h.local_id));
      }
    }
  }
  return Status::OK();
}

}  // namespace pullmon
