#ifndef PULLMON_CORE_RESOURCE_HEALTH_H_
#define PULLMON_CORE_RESOURCE_HEALTH_H_

#include <cstddef>
#include <vector>

#include "core/chronon.h"
#include "util/status.h"

namespace pullmon {

/// Circuit-breaker configuration of the resource-health subsystem
/// (DESIGN.md section 10). The default (disabled) leaves the executors
/// byte-identical to running without the subsystem: no candidate is ever
/// suppressed, no retry is ever cut short, and all health telemetry
/// stays zero.
struct BreakerOptions {
  /// Master switch. When false the tracker still estimates per-resource
  /// health (so a health-aware policy can discount flaky resources) but
  /// never suppresses a candidate or interferes with retries.
  bool enabled = false;
  /// Consecutive failed probe attempts that trip a closed circuit open.
  int failure_threshold = 3;
  /// Chronons an opened circuit stays dark before its probation
  /// (half-open) phase, for the first trip after a close.
  Chronon cooldown_base = 4;
  /// Cool-down growth per consecutive re-open (probation failure).
  double cooldown_multiplier = 2.0;
  /// Exponential cool-down cap.
  Chronon max_cooldown = 64;
  /// EWMA smoothing of the per-resource failure rate in (0, 1]:
  /// rate <- alpha * outcome + (1 - alpha) * rate per probe attempt.
  double ewma_alpha = 0.2;

  Status Validate() const;
};

/// Deterministic counters of everything the breaker did during one run.
struct HealthStats {
  /// Closed -> open transitions (failure threshold reached).
  std::size_t circuits_opened = 0;
  /// Half-open -> open transitions (probation probe failed; the
  /// cool-down doubles, capped at max_cooldown).
  std::size_t circuits_reopened = 0;
  /// Probes issued against half-open circuits.
  std::size_t probation_probes = 0;
  /// Probation probes that succeeded and closed their circuit.
  std::size_t probation_successes = 0;
  /// (resource, chronon) pairs where an open circuit excluded a resource
  /// holding at least one live candidate from selection.
  std::size_t probes_suppressed = 0;
  /// Upper bound on the budget units freed by suppression that were
  /// spent probing other resources: per chronon, min(suppressed
  /// resources with live candidates, budget units consumed).
  std::size_t budget_reclaimed = 0;
  /// Sum over resources of chronons spent with an open circuit.
  std::size_t open_chronons_total = 0;

  bool operator==(const HealthStats& other) const = default;
};

/// Resumable state of one ResourceHealthTracker, produced by Capture()
/// and consumed by Restore() — the recovery layer serializes it into
/// proxy snapshots (src/recovery/). Options are not part of the image:
/// they come from the run configuration, which a restored run must share
/// anyway (the snapshot codec fingerprints it).
struct HealthImage {
  std::vector<uint8_t> state;  // CircuitState per resource
  std::vector<int> consecutive_failures;
  std::vector<double> ewma_failure;
  std::vector<Chronon> cooldown;
  std::vector<Chronon> open_until;
  std::vector<std::size_t> open_chronons;
  std::vector<ResourceId> open_list;
  std::size_t suppressed_this_chronon = 0;
  HealthStats stats;
};

/// Breaker state of one resource.
enum class CircuitState {
  kClosed,    // probed normally
  kOpen,      // excluded from candidate selection until cool-down ends
  kHalfOpen,  // competes normally; the next probe is the probation
};

const char* CircuitStateToString(CircuitState state);

/// Per-resource health bookkeeping shared by both executor backends: an
/// EWMA failure-rate estimate, a consecutive-failure count, and the
/// circuit-breaker state machine
///
///   closed --[failure_threshold consecutive failures]--> open
///   open   --[cool-down elapsed]--> half-open
///   half-open --[probation success]--> closed   (cool-down resets)
///   half-open --[probation failure]--> open     (cool-down doubles,
///                                                capped at max_cooldown)
///
/// Everything is a pure function of the probe-attempt sequence, which
/// both backends issue identically (the differential test enforces it),
/// so the tracker never breaks decision-identity. The executor drives
/// it: BeginChronon() once per chronon before scoring, IsSuppressed()
/// while collecting candidates, RecordProbe() per probe attempt.
class ResourceHealthTracker {
 public:
  ResourceHealthTracker(int num_resources, BreakerOptions options);

  const BreakerOptions& options() const { return options_; }
  bool breaker_enabled() const { return options_.enabled; }

  /// Advances the state machine to `now`: circuits whose cool-down has
  /// elapsed move to half-open, and still-open circuits accrue one open
  /// chronon. No-op when the breaker is disabled.
  void BeginChronon(Chronon now);

  /// True when the breaker is enabled and the resource's circuit is
  /// open — the executor excludes it from candidate selection.
  bool IsSuppressed(ResourceId resource) const {
    return options_.enabled &&
           state_[static_cast<std::size_t>(resource)] == CircuitState::kOpen;
  }

  /// True when the breaker is enabled and the resource is half-open:
  /// its next probe is the probation probe.
  bool IsProbation(ResourceId resource) const {
    return options_.enabled && state_[static_cast<std::size_t>(resource)] ==
                                   CircuitState::kHalfOpen;
  }

  /// Records the outcome of one probe attempt (initial or retry) and
  /// runs the breaker transitions. The EWMA failure estimate updates
  /// even when the breaker is disabled, so health-aware policies work
  /// without it.
  void RecordProbe(ResourceId resource, Chronon now, bool success);

  /// True when the circuit is open right now — the executors use this
  /// after a failed attempt to abandon same-chronon retries of a
  /// resource the breaker just gave up on.
  bool CircuitOpen(ResourceId resource) const {
    return options_.enabled &&
           state_[static_cast<std::size_t>(resource)] == CircuitState::kOpen;
  }

  CircuitState state(ResourceId resource) const {
    return state_[static_cast<std::size_t>(resource)];
  }

  /// EWMA estimate in [0, 1] that the next probe of `resource` fails.
  double FailureRate(ResourceId resource) const {
    return ewma_failure_[static_cast<std::size_t>(resource)];
  }

  /// 1 - FailureRate(): the expected-gain discount a health-aware
  /// policy applies to the resource's candidates.
  double SuccessProbability(ResourceId resource) const {
    return 1.0 - ewma_failure_[static_cast<std::size_t>(resource)];
  }

  int ConsecutiveFailures(ResourceId resource) const {
    return consecutive_failures_[static_cast<std::size_t>(resource)];
  }

  /// Telemetry hook for the executor's scoring pass: a suppressed
  /// resource held `live_candidates` live EIs this chronon.
  void NoteSuppressed(ResourceId resource, int live_candidates);

  /// Telemetry hook after a chronon's probe loop: `reclaimed` budget
  /// units flowed to next-ranked candidates (see HealthStats).
  void NoteBudgetReclaimed(std::size_t reclaimed);

  /// Suppressed resources seen by NoteSuppressed since the last
  /// BeginChronon (the executor's reclaim accounting reads this).
  std::size_t SuppressedThisChronon() const {
    return suppressed_this_chronon_;
  }

  const HealthStats& stats() const { return stats_; }

  /// Chronons each resource spent with an open circuit (length = number
  /// of resources; all zero when the breaker never tripped).
  const std::vector<std::size_t>& OpenChrononsByResource() const {
    return open_chronons_;
  }

  /// Checkpoint support: Capture() freezes the full dynamic state;
  /// Restore() resumes it on a tracker built with the same resource
  /// count and options. InvalidArgument on a size mismatch.
  HealthImage Capture() const;
  Status Restore(const HealthImage& image);

 private:
  void Open(ResourceId resource, Chronon now, bool reopen);

  BreakerOptions options_;
  std::vector<CircuitState> state_;
  std::vector<int> consecutive_failures_;
  std::vector<double> ewma_failure_;
  /// Current cool-down length (doubles per re-open, capped).
  std::vector<Chronon> cooldown_;
  /// First chronon at which an open circuit may enter probation.
  std::vector<Chronon> open_until_;
  std::vector<std::size_t> open_chronons_;
  /// Resources with open circuits (compacted each BeginChronon).
  std::vector<ResourceId> open_list_;
  std::size_t suppressed_this_chronon_ = 0;
  HealthStats stats_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_RESOURCE_HEALTH_H_
