#ifndef PULLMON_CORE_DYNAMIC_MONITOR_H_
#define PULLMON_CORE_DYNAMIC_MONITOR_H_

#include <deque>
#include <string>
#include <vector>

#include "core/candidate_index.h"
#include "core/completeness.h"
#include "core/policy.h"
#include "core/problem.h"
#include "util/status.h"

namespace pullmon {

/// Outcome of one DynamicMonitor::Step() (one chronon).
struct StepResult {
  Chronon chronon = 0;
  /// Resources probed this chronon (<= budget).
  std::vector<ResourceId> probed;
  /// t-intervals fully captured this chronon: (profile, submission id).
  std::vector<std::pair<ProfileId, int>> captured;
  /// t-intervals that became impossible this chronon.
  std::vector<std::pair<ProfileId, int>> failed;
};

/// The truly online face of the library: clients subscribe and submit
/// t-intervals *while the epoch runs*, exactly the setting of
/// Section 4.2.1 ("at every chronon T_j, the proxy may receive a set of
/// new t-intervals"). OnlineExecutor requires the whole workload up
/// front and replays it; DynamicMonitor accepts submissions between
/// steps and is what a deployed proxy embeds.
///
/// Semantics are identical to OnlineExecutor (same candidate rules,
/// probe sharing, preemption classes, deterministic tie-breaks) — a
/// differential test asserts schedule-for-schedule equality when all
/// t-intervals are submitted up front.
class DynamicMonitor {
 public:
  /// `policy` must outlive the monitor; it is Reset() on construction.
  DynamicMonitor(int num_resources, Chronon epoch_length,
                 BudgetVector budget, Policy* policy, ExecutionMode mode);

  /// Registers a client profile; its rank grows as t-intervals are
  /// submitted (rank-level policies see the current rank).
  ProfileId RegisterProfile(std::string name);

  /// Submits a t-interval for a registered profile. The t-interval must
  /// be valid, lie within the epoch, and must not start before the
  /// current chronon (no retroactive arrivals). Returns a submission id
  /// unique within the profile, echoed in StepResult.
  Result<int> Submit(ProfileId profile, TInterval t_interval);

  /// Executes the current chronon (probe selection, captures, expiry)
  /// and advances time. FailedPrecondition once the epoch is over.
  Result<StepResult> Step();

  /// Runs the remaining chronons; returns the final completeness.
  Result<CompletenessReport> RunToEnd();

  /// The next chronon Step() will execute (== number of steps so far).
  Chronon now() const { return now_; }
  Chronon epoch_length() const { return epoch_length_; }

  /// Probes issued so far.
  const Schedule& schedule() const { return schedule_; }

  std::size_t t_intervals_submitted() const { return runtimes_.size(); }
  std::size_t t_intervals_completed() const { return completed_; }
  std::size_t t_intervals_failed() const { return failed_; }

  /// Completeness of the schedule so far against everything submitted.
  CompletenessReport Completeness() const;

 private:
  /// Removes a dead (completed/failed) parent's remaining EIs from the
  /// candidate index.
  void RetireParent(int t_id);

  int num_resources_;
  Chronon epoch_length_;
  BudgetVector budget_;
  Policy* policy_;
  ExecutionMode mode_;

  Chronon now_ = 0;
  Schedule schedule_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;

  /// Stable storage: TIntervalRuntime::source points into this deque.
  std::deque<TInterval> submitted_;
  std::vector<TIntervalRuntime> runtimes_;
  std::vector<int> submission_id_;   // per runtime, unique in profile
  std::vector<int> rank_of_profile_;  // current rank per profile
  std::vector<std::vector<int>> runtimes_of_profile_;
  std::vector<std::string> profile_names_;

  /// Incremental candidate structures shared with the indexed
  /// OnlineExecutor (same selection contract, so the executor/monitor
  /// differential test keeps holding).
  CandidateIndex index_;
  std::vector<int> first_flat_;  // first flat EI id per runtime
  std::vector<ResourceCandidate> entries_;  // per-chronon scratch
};

}  // namespace pullmon

#endif  // PULLMON_CORE_DYNAMIC_MONITOR_H_
