#ifndef PULLMON_CORE_DYNAMIC_MONITOR_H_
#define PULLMON_CORE_DYNAMIC_MONITOR_H_

#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/candidate_index.h"
#include "core/churn_queue.h"
#include "core/completeness.h"
#include "core/online_executor.h"
#include "core/policy.h"
#include "core/problem.h"
#include "core/resource_health.h"
#include "util/status.h"

namespace pullmon {

/// Outcome of one DynamicMonitor::Step() (one chronon).
struct StepResult {
  Chronon chronon = 0;
  /// Resources probed this chronon (<= budget).
  std::vector<ResourceId> probed;
  /// t-intervals fully captured this chronon: (profile, submission id).
  std::vector<std::pair<ProfileId, int>> captured;
  /// t-intervals that became impossible this chronon.
  std::vector<std::pair<ProfileId, int>> failed;
};

/// How the monitor maintains its candidate structures across churn
/// operations (Cancel / Edit / Unregister).
enum class MonitorIndexMode {
  /// Production path: every churn operation retires the affected EIs in
  /// place (CandidateIndex::Deactivate) — O(rank) per operation, no
  /// rebuild ever.
  kIncremental,
  /// Differential oracle: after every churn removal the candidate index
  /// is reconstructed from scratch from the monitor's parent bookkeeping
  /// (O(total EIs) per operation), mirroring the original "event lists
  /// are built once" design. Decision-identical to kIncremental — the
  /// churn differential suite and bench_churn enforce schedule-for-
  /// schedule equality.
  kRebuild,
};

/// "incremental" / "rebuild".
const char* MonitorIndexModeToString(MonitorIndexMode mode);

/// Behavioral knobs of the monitor's probe path and index maintenance.
/// Defaults reproduce the pre-churn monitor exactly: no retries, no
/// breaker, incremental maintenance.
struct MonitorOptions {
  /// Same-chronon retry/backoff for failed probes (needs a probe
  /// callback to ever fail).
  RetryPolicy retry;
  /// Circuit-breaker behavior of the resource-health tracking; disabled
  /// by default (byte-identical to no breaker).
  BreakerOptions breaker;
  /// Candidate-structure maintenance under churn.
  MonitorIndexMode maintenance = MonitorIndexMode::kIncremental;
  /// Capacity of the thread-safe churn ingress queue (Enqueue* methods);
  /// producers park (or TryEnqueue fails) once this many operations are
  /// waiting for the next chronon boundary.
  std::size_t churn_queue_capacity = 1024;
};

/// Deterministic counters of one monitor lifetime (mirrors the
/// scheduling/fault/churn portions of OnlineRunResult/ProxyRunReport).
struct MonitorStats {
  // --- Probe path (identical meaning to OnlineRunResult). -------------
  std::size_t probes_used = 0;
  std::size_t probes_failed = 0;
  std::size_t retries_issued = 0;
  std::size_t retry_probes_spent = 0;
  std::size_t candidates_scored = 0;
  std::size_t max_concurrent_candidates = 0;
  std::size_t t_intervals_lost_to_faults = 0;
  // --- Churn telemetry. ------------------------------------------------
  /// Accepted Submit() calls (edit replacements are counted under
  /// `edited`, not here).
  std::size_t submitted = 0;
  /// Accepted Cancel() calls plus per-submission cancellations performed
  /// by Unregister().
  std::size_t cancelled = 0;
  /// Accepted Edit() calls.
  std::size_t edited = 0;
  /// Accepted Unregister() calls.
  std::size_t unregistered_profiles = 0;
  /// Probe work orphaned by churn: EI captures whose parent t-interval
  /// was cancelled or edited away before completing — pulls whose data
  /// no client ever received.
  std::size_t orphaned_probes = 0;
};

/// One submission of a MonitorImage, in flat t_id (arrival) order. The
/// runtime's derived fields (num_captured, weight, required, rank) are
/// reconstructed from the definition and the capture flags on restore.
struct MonitorSubmissionImage {
  ProfileId profile = 0;
  TInterval definition;
  std::vector<uint8_t> ei_captured;
  int num_expired = 0;
  uint8_t cancelled = 0;
  uint8_t fault_touched = 0;
  uint8_t failed = 0;
  uint8_t completed = 0;
  uint8_t selected = 0;
};

/// Resumable state of one DynamicMonitor at a chronon boundary, produced
/// by Capture() and consumed by Restore() on a freshly constructed
/// monitor with the same constructor parameters. The candidate index is
/// intentionally absent: Restore() reconstructs it from the parent
/// bookkeeping via the rebuild oracle, which the churn differential
/// suite proves decision-identical to the incrementally maintained
/// index (DESIGN.md sections 13 and 15).
struct MonitorImage {
  Chronon now = 0;
  std::vector<std::string> profile_names;
  std::vector<uint8_t> profile_unregistered;
  std::vector<MonitorSubmissionImage> submissions;
  /// Probes of the schedule so far, per chronon in [0, now).
  std::vector<std::vector<ResourceId>> probes_by_chronon;
  MonitorStats stats;
  HealthImage health;
};

/// The truly online face of the library: clients subscribe, submit,
/// cancel, and edit t-intervals *while the epoch runs* — Section 4.2.1's
/// per-chronon arrivals extended with the full churn surface a deployed
/// proxy serving volatile client populations needs. OnlineExecutor
/// requires the whole workload up front and replays it; DynamicMonitor
/// accepts mutations between steps.
///
/// Semantics are identical to OnlineExecutor (same candidate rules,
/// probe sharing, preemption classes, retry/breaker behavior,
/// deterministic tie-breaks) — a differential test asserts
/// schedule-for-schedule equality when all t-intervals are submitted up
/// front, and the churn differential suite asserts equality between the
/// incremental index and the from-scratch rebuild oracle
/// (MonitorIndexMode::kRebuild) under arbitrary churn.
///
/// Churn semantics (DESIGN.md section 13):
///  * Cancel(profile, submission) withdraws a live submission; its
///    remaining EIs stop competing immediately (this chronon's budget
///    flows to other candidates). Cancelling an unknown, completed,
///    failed, or already-cancelled submission is InvalidArgument.
///  * Edit(profile, submission, replacement) atomically cancels the old
///    submission and resubmits the replacement (new deadline/weight/
///    alternatives), returning the replacement's submission id. The
///    replacement must not start before now() (InvalidArgument).
///  * Unregister(profile) cancels every live submission of the profile
///    and refuses future submissions to it.
///  * Cancelled submissions leave the completeness denominator — they
///    were withdrawn, not missed. Captures they already consumed are
///    surfaced as MonitorStats::orphaned_probes.
///  * A profile's rank is exact: it is the maximum t-interval size over
///    the profile's non-withdrawn submissions, so cancelling or editing
///    away the submission that carried the maximum lowers it (rank-level
///    policies — including the explore/exploit scorer — see the current
///    complexity, not a stale high-water mark).
class DynamicMonitor {
 public:
  /// Invoked for every probe attempt: (resource, chronon) -> success.
  /// Without a callback every probe succeeds (the logical setting).
  using ProbeCallback = std::function<bool(ResourceId, Chronon)>;

  /// `policy` must outlive the monitor; it is Reset() on construction.
  DynamicMonitor(int num_resources, Chronon epoch_length,
                 BudgetVector budget, Policy* policy, ExecutionMode mode,
                 MonitorOptions options = MonitorOptions{});

  void set_probe_callback(ProbeCallback callback) {
    probe_callback_ = std::move(callback);
  }

  /// Registers a client profile; its rank grows as t-intervals are
  /// submitted (rank-level policies see the current rank).
  ProfileId RegisterProfile(std::string name);

  /// Submits a t-interval for a registered profile. The t-interval must
  /// be valid, lie within the epoch, and must not start before the
  /// current chronon (no retroactive arrivals). Returns a submission id
  /// unique within the profile, echoed in StepResult.
  Result<int> Submit(ProfileId profile, TInterval t_interval);

  /// Withdraws a live submission mid-epoch; see the churn semantics
  /// above. O(rank) incremental delete — no rebuild.
  Status Cancel(ProfileId profile, int submission_id);

  /// Cancels every live submission of `profile` and bars future ones.
  /// Unknown or already-unregistered profiles are InvalidArgument.
  /// Returns the number of submissions cancelled.
  Result<int> Unregister(ProfileId profile);

  /// Cancel + resubmit in one atomic operation: validation failures
  /// (dead target, invalid or retroactive replacement) leave the old
  /// submission untouched. Returns the replacement's submission id.
  Result<int> Edit(ProfileId profile, int submission_id,
                   TInterval replacement);

  // --- Thread-safe churn ingress (DESIGN.md section 13, residual c). --
  // Submit/Cancel/Edit/Unregister mutate the candidate structures and
  // MUST be called from the monitor's own thread. Concurrent clients
  // instead enqueue operations here from any thread; Step() drains the
  // queue at the chronon boundary (FIFO, single consumer) and applies
  // each operation through the synchronous entry points, delivering the
  // per-op Status/submission-id to the operation's completion callback.

  /// Blocking enqueue: parks while the queue is full.
  void EnqueueChurn(ChurnOp op) { churn_queue_.Enqueue(std::move(op)); }
  /// Non-blocking enqueue: false when the queue is full.
  bool TryEnqueueChurn(ChurnOp op) {
    return churn_queue_.TryEnqueue(std::move(op));
  }
  ChurnQueue& churn_queue() { return churn_queue_; }

  /// Executes the current chronon (probe selection, captures, expiry)
  /// and advances time, applying queued churn operations first.
  /// FailedPrecondition once the epoch is over.
  Result<StepResult> Step();

  /// Runs the remaining chronons; returns the final completeness.
  Result<CompletenessReport> RunToEnd();

  /// The next chronon Step() will execute (== number of steps so far).
  Chronon now() const { return now_; }
  Chronon epoch_length() const { return epoch_length_; }

  /// Probes issued so far.
  const Schedule& schedule() const { return schedule_; }

  std::size_t t_intervals_submitted() const { return runtimes_.size(); }
  std::size_t t_intervals_completed() const { return completed_; }
  std::size_t t_intervals_failed() const { return failed_; }
  std::size_t t_intervals_cancelled() const { return stats_.cancelled; }

  const MonitorStats& stats() const { return stats_; }
  const ResourceHealthTracker& health() const { return health_; }
  MonitorIndexMode maintenance() const { return options_.maintenance; }

  /// Completeness of the schedule so far against everything submitted
  /// and not withdrawn (cancelled submissions are excluded).
  CompletenessReport Completeness() const;

  /// Audits the candidate index's lazy structures plus the monitor's
  /// parent bookkeeping (dead parents hold no live EIs, capture counts
  /// consistent) — the churn fuzz suite runs this after every op.
  Status CheckInvariants() const;

  /// Checkpoint support. Capture() freezes everything a resumed run
  /// needs at a chronon boundary (call between Step()s, never inside
  /// one). Restore() resumes the image on a *fresh* monitor built with
  /// the same constructor parameters — FailedPrecondition if this
  /// monitor has already registered, submitted, or stepped.
  MonitorImage Capture() const;
  Status Restore(const MonitorImage& image);

 private:
  /// True when the submission can still be mutated (not completed,
  /// failed, or cancelled).
  bool IsLive(int t_id) const {
    const TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
    return !rt.completed && !rt.failed &&
           !cancelled_[static_cast<std::size_t>(t_id)];
  }

  /// Resolves (profile, submission) to a flat t_id, or InvalidArgument.
  Result<int> ResolveSubmission(ProfileId profile, int submission_id) const;

  /// Records a pre-validated t-interval (shared tail of Submit and
  /// Edit); returns the submission id within the profile.
  int AppendSubmission(ProfileId profile, TInterval t_interval);

  /// Removes a dead (completed/failed/cancelled) parent's remaining EIs
  /// from the candidate index.
  void RetireParent(int t_id);

  /// Marks a live submission cancelled: orphan accounting, retire, rank
  /// recompute when the withdrawn submission carried the profile's
  /// maximum, and — under MonitorIndexMode::kRebuild — the from-scratch
  /// rebuild.
  void CancelLive(int t_id);

  /// Recomputes `profile`'s rank as the maximum t-interval size over its
  /// non-cancelled submissions and refreshes every sibling runtime's
  /// cached profile_rank when the value changed.
  void RecomputeProfileRank(ProfileId profile);

  /// The rebuild oracle: reconstructs `index_` from the monitor's parent
  /// bookkeeping (flat ids, live/dead state, activation replay), exactly
  /// as if every surviving EI had been registered into a fresh index.
  void RebuildIndex();

  /// Applies every queued churn operation (FIFO) through the
  /// synchronous entry points; called at the top of Step().
  void DrainChurnQueue();

  int num_resources_;
  Chronon epoch_length_;
  BudgetVector budget_;
  Policy* policy_;
  ExecutionMode mode_;
  MonitorOptions options_;
  ProbeCallback probe_callback_;
  ChurnQueue churn_queue_;
  ResourceHealthTracker health_;
  bool validated_options_ = false;

  Chronon now_ = 0;
  Schedule schedule_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  MonitorStats stats_;

  /// Stable storage: TIntervalRuntime::source points into this deque.
  std::deque<TInterval> submitted_;
  std::vector<TIntervalRuntime> runtimes_;
  std::vector<uint8_t> cancelled_;   // per runtime: withdrawn by client
  std::vector<uint8_t> fault_touched_;  // per runtime: failed probe seen
  std::vector<int> submission_id_;   // per runtime, unique in profile
  std::vector<int> rank_of_profile_;  // current rank per profile
  std::vector<uint8_t> profile_unregistered_;
  std::vector<std::vector<int>> runtimes_of_profile_;
  std::vector<std::string> profile_names_;

  /// Incremental candidate structures shared with the indexed
  /// OnlineExecutor (same selection contract, so the executor/monitor
  /// differential test keeps holding).
  CandidateIndex index_;
  std::vector<int> first_flat_;  // first flat EI id per runtime
  std::vector<ResourceCandidate> entries_;  // per-chronon scratch
};

}  // namespace pullmon

#endif  // PULLMON_CORE_DYNAMIC_MONITOR_H_
