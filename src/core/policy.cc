#include "core/policy.h"

namespace pullmon {

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kPreemptive:
      return "P";
    case ExecutionMode::kNonPreemptive:
      return "NP";
  }
  return "?";
}

const char* PolicyLevelToString(PolicyLevel level) {
  switch (level) {
    case PolicyLevel::kSingleEi:
      return "single-EI";
    case PolicyLevel::kRank:
      return "rank";
    case PolicyLevel::kMultiEi:
      return "multi-EIs";
    case PolicyLevel::kBaseline:
      return "baseline";
  }
  return "?";
}

}  // namespace pullmon
