#ifndef PULLMON_CORE_T_INTERVAL_H_
#define PULLMON_CORE_T_INTERVAL_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/execution_interval.h"
#include "util/status.h"

namespace pullmon {

/// A t-interval eta = {I_1, ..., I_k}: a set of execution intervals,
/// possibly over different resources. A t-interval is captured by a
/// schedule iff every one of its EIs is probed inside its window
/// (Section 3.1-3.2). t-intervals model the "all parts must be observed
/// together" semantics of complex profiles, e.g. overlapping price
/// observations from two markets in the arbitrage scenario.
///
/// Two extensions from the paper's future-work section (Section 6) are
/// supported:
///  * a client *utility* weight() (default 1) — weighted completeness
///    counts utilities instead of t-intervals, and utility-aware
///    policies/offline solvers prioritize by it;
///  * *alternatives*: required() < size() relaxes capture to "any
///    required() of the EIs" (default: all of them).
class TInterval {
 public:
  TInterval() = default;
  explicit TInterval(std::vector<ExecutionInterval> eis)
      : eis_(std::move(eis)) {}

  const std::vector<ExecutionInterval>& eis() const { return eis_; }

  /// Number of EIs, |eta|. Contributes to the parent profile's rank.
  std::size_t size() const { return eis_.size(); }
  bool empty() const { return eis_.empty(); }

  void AddEi(ExecutionInterval ei) { eis_.push_back(ei); }

  /// First chronon at which any EI becomes active; in the online setting
  /// this is when the t-interval is revealed to the proxy. Undefined for
  /// an empty t-interval (returns 0).
  Chronon EarliestStart() const;

  /// Last chronon at which any EI is active; after this the t-interval's
  /// fate is decided.
  Chronon LatestFinish() const;

  /// True if every EI has width one chronon (the P^[1] property).
  bool IsUnitWidth() const;

  /// True if some pair of EIs references the same resource with
  /// overlapping windows (intra-resource overlap within this t-interval).
  bool HasIntraResourceOverlap() const;

  /// Client utility of capturing this t-interval (> 0; default 1).
  double weight() const { return weight_; }
  void set_weight(double weight) { weight_ = weight; }

  /// Number of EIs that must be captured; defaults to all of them.
  std::size_t required() const {
    return required_ == 0 ? eis_.size()
                          : std::min(required_, eis_.size());
  }
  /// 0 restores the default (all EIs). Values above size() are clamped
  /// at query time.
  void set_required(std::size_t required) { required_ = required; }

  /// True if capture demands every EI (no alternatives).
  bool RequiresAll() const { return required() == eis_.size(); }

  /// Non-empty, positive weight, and every EI valid within the epoch.
  Status Validate(const Epoch& epoch) const;

  /// "{r0:[1,4], r2:[2,5]}" rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const TInterval& other) const = default;

 private:
  std::vector<ExecutionInterval> eis_;
  double weight_ = 1.0;
  std::size_t required_ = 0;  // 0 = all
};

}  // namespace pullmon

#endif  // PULLMON_CORE_T_INTERVAL_H_
