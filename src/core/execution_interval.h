#ifndef PULLMON_CORE_EXECUTION_INTERVAL_H_
#define PULLMON_CORE_EXECUTION_INTERVAL_H_

#include <string>

#include "core/chronon.h"
#include "util/status.h"

namespace pullmon {

/// An execution interval (EI) I = [T_s, T_f] over a resource r: the period
/// during which the proxy must probe r at least once for I to be captured
/// (Section 3.1). Both endpoints are inclusive; a unit-width EI (the P^[1]
/// case) has start == finish.
struct ExecutionInterval {
  ResourceId resource = 0;
  Chronon start = 0;
  Chronon finish = 0;

  ExecutionInterval() = default;
  ExecutionInterval(ResourceId r, Chronon s, Chronon f)
      : resource(r), start(s), finish(f) {}

  /// Number of chronons in the interval (>= 1 for a valid EI).
  Chronon width() const { return finish - start + 1; }

  bool Contains(Chronon t) const { return t >= start && t <= finish; }

  /// True if the two EIs share at least one chronon (regardless of
  /// resource).
  bool OverlapsInTime(const ExecutionInterval& other) const {
    return start <= other.finish && other.start <= finish;
  }

  /// Intra-resource overlap: same resource and overlapping in time. Such
  /// pairs can share a single probe (Section 3.1).
  bool SharesProbeWith(const ExecutionInterval& other) const {
    return resource == other.resource && OverlapsInTime(other);
  }

  /// Validates resource >= 0, 0 <= start <= finish, finish < epoch.
  Status Validate(const Epoch& epoch) const;

  /// "r3:[5,9]" style rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const ExecutionInterval& other) const = default;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_EXECUTION_INTERVAL_H_
