#ifndef PULLMON_CORE_PARALLEL_EXECUTOR_H_
#define PULLMON_CORE_PARALLEL_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/candidate_index.h"
#include "core/churn_queue.h"
#include "core/completeness.h"
#include "core/dynamic_monitor.h"
#include "core/online_executor.h"
#include "core/policy.h"
#include "core/problem.h"
#include "core/resource_health.h"
#include "core/shard_map.h"
#include "util/status.h"

namespace pullmon {

/// Fixed-size pool of worker threads for the parallel executor's
/// fork/join phases. Run() hands jobs 0..num_jobs-1 to the pool and
/// blocks until all complete; workers grab jobs dynamically (coarse
/// work stealing — jobs are per-shard, so there are at most a few
/// dozen). With `threads` <= 1 the pool spawns nothing and Run()
/// executes inline, making the single-threaded configuration literally
/// the serial code path.
///
/// Memory-ordering contract (DESIGN.md section 16): every job pickup
/// and completion is sequenced through the pool mutex, so all writes a
/// worker makes inside fn(job) happen-before Run()'s return on the
/// calling thread — phases need no atomics on the data they hand over.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return threads_; }

  /// Executes fn(0) .. fn(num_jobs - 1), each exactly once, on the pool
  /// (inline when the pool is serial). Blocks until every job is done.
  /// fn must not call Run() reentrantly.
  void Run(int num_jobs, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a generation
  std::condition_variable done_cv_;   // Run() waits for completion
  const std::function<void(int)>* fn_ = nullptr;
  int generation_ = 0;
  int num_jobs_ = 0;
  int next_job_ = 0;
  int jobs_done_ = 0;
  bool shutdown_ = false;
};

/// Externalized probe execution of the parallel pipeline (DESIGN.md
/// section 16). The executor splits each probe attempt into three
/// phases so the data-plane work (network fetch, parse, cache) runs
/// concurrently while every order-sensitive decision stays serial:
///
///  * decide(resource, chronon, token): serial, in canonical attempt
///    order — draws the attempt's fate (fault stream, validator
///    prediction) and returns success/failure so the control pass can
///    run retries/breaker exactly like the serial executor. Tokens are
///    dense per chronon, issued in decide order.
///  * execute(tokens, worker): parallel — performs the fetch/parse/
///    cache work of the given tokens, in token order, on the given
///    worker lane. All tokens of one resource shard go to one worker.
///  * commit(token): serial, in canonical order — applies the attempt's
///    counters and payload to the report/session state.
///  * begin_chronon(now, num_workers): serial, before the first decide
///    of each chronon.
///
/// When no hooks are installed the executor falls back to the plain
/// probe callback (decided serially, nothing to execute or commit).
struct ParallelProbeHooks {
  std::function<void(Chronon, int)> begin_chronon;
  std::function<bool(ResourceId, Chronon, int)> decide;
  std::function<void(const std::vector<int>&, int)> execute;
  std::function<void(int)> commit;
};

/// Behavioral knobs of the parallel executor. Defaults mirror
/// MonitorOptions plus the parallelism controls.
struct ParallelOptions {
  RetryPolicy retry;
  BreakerOptions breaker;
  /// Worker threads for the parallel phases; <= 1 runs every phase
  /// inline (still sharded, so telemetry is thread-count invariant).
  int threads = 1;
  /// Resource shards (consistent hashing via ShardMap). Fixed
  /// independently of `threads`: per-shard state and telemetry are
  /// identical across thread counts, which is what makes the full
  /// report bit-identical at 1/2/4/8 threads.
  int shards = kDefaultShards;
  /// Capacity of the thread-safe churn ingress queue.
  std::size_t churn_queue_capacity = 1024;

  static constexpr int kDefaultShards = 16;
};

/// Per-shard telemetry of one parallel run (mirrored into
/// ProxyRunReport's shard_* block). Depends on the shard map and the
/// workload only — never on the thread count.
struct ShardRunStats {
  int shard_count = 0;
  /// Candidate EIs scored per shard, summed over chronons.
  std::vector<std::size_t> candidates_scored;
  /// Probe attempts whose resource belonged to the shard.
  std::vector<std::size_t> probes_executed;
  /// Total entries that went through the two-phase merge.
  std::size_t merge_entries = 0;

  bool operator==(const ShardRunStats& other) const = default;
};

/// Multi-threaded implementation of the online monitoring semantics
/// (DESIGN.md section 16): resources are sharded by consistent hashing
/// (ShardMap — the same map a multi-proxy tier would use), each shard
/// owns a CandidateIndex partition, and each chronon runs as
///
///   churn drain -> [parallel] per-shard activation -> health begin
///   -> [parallel] per-shard scoring + shard-local top-k selection
///   -> serial ordered merge (two-phase: shard top-k, then an S-way
///      reduction under the global (np_class, score, deadline, flat id)
///      order) -> serial control pass (budget, retries, breaker,
///      capture bookkeeping — decision order identical to the serial
///      executor) -> [parallel] probe execution via ParallelProbeHooks
///   -> serial commit replay -> serial merged expiry.
///
/// The probe set, schedule, stats, and health trajectory are
/// bit-identical to DynamicMonitor/OnlineExecutor on the same workload
/// (the thread-invariance and differential suites enforce it); the
/// parallel phases only touch shard-disjoint state, and every phase
/// boundary synchronizes through the WorkerPool mutex.
///
/// Requirements: the policy's Score() must be a pure function of its
/// arguments and attached health state (true of every shipped policy —
/// documented on Policy), because shards score concurrently.
///
/// Checkpoint/restore is not offered on this executor; durable runs use
/// the serial monitor (config validation enforces it).
class ParallelExecutor {
 public:
  using CaptureCallback =
      std::function<void(ProfileId, int /*submission id*/, Chronon)>;
  using ProbeCallback = std::function<bool(ResourceId, Chronon)>;

  /// `policy` must outlive the executor; it is Reset() on construction.
  ParallelExecutor(int num_resources, Chronon epoch_length,
                   BudgetVector budget, Policy* policy, ExecutionMode mode,
                   ParallelOptions options = ParallelOptions{});

  /// Serial fallback probe path (same contract as DynamicMonitor's).
  void set_probe_callback(ProbeCallback callback) {
    probe_callback_ = std::move(callback);
  }

  /// Three-phase probe pipeline; overrides the plain probe callback.
  void set_probe_hooks(ParallelProbeHooks hooks) {
    hooks_ = std::move(hooks);
  }

  /// Invoked when a t-interval completes, during the commit replay (so
  /// a proxy layer reads fully committed payloads), in the exact order
  /// the serial executor would have fired it.
  void set_capture_callback(CaptureCallback callback) {
    capture_callback_ = std::move(callback);
  }

  // --- Churn surface (identical contract to DynamicMonitor). ----------
  ProfileId RegisterProfile(std::string name);
  Result<int> Submit(ProfileId profile, TInterval t_interval);
  Status Cancel(ProfileId profile, int submission_id);
  Result<int> Unregister(ProfileId profile);
  Result<int> Edit(ProfileId profile, int submission_id,
                   TInterval replacement);

  /// Thread-safe churn ingress, drained at the top of Step().
  void EnqueueChurn(ChurnOp op) { churn_queue_.Enqueue(std::move(op)); }
  bool TryEnqueueChurn(ChurnOp op) {
    return churn_queue_.TryEnqueue(std::move(op));
  }
  ChurnQueue& churn_queue() { return churn_queue_; }

  /// Executes the current chronon through the sharded pipeline.
  Result<StepResult> Step();
  Result<CompletenessReport> RunToEnd();

  Chronon now() const { return now_; }
  Chronon epoch_length() const { return epoch_length_; }
  const Schedule& schedule() const { return schedule_; }
  std::size_t t_intervals_submitted() const { return runtimes_.size(); }
  std::size_t t_intervals_completed() const { return completed_; }
  std::size_t t_intervals_failed() const { return failed_; }
  std::size_t t_intervals_cancelled() const { return stats_.cancelled; }
  const MonitorStats& stats() const { return stats_; }
  const ShardRunStats& shard_stats() const { return shard_stats_; }
  const ResourceHealthTracker& health() const { return health_; }
  const ShardMap& shard_map() const { return shard_map_; }
  int num_workers() const { return pool_.threads(); }

  CompletenessReport Completeness() const;

  /// Per-partition index audit plus parent bookkeeping checks (the
  /// parallel fuzz/differential suites run this between steps).
  Status CheckInvariants() const;

 private:
  /// Where one EI of a runtime lives: its shard partition and its dense
  /// index *within* that partition (partition-local flat id).
  struct EiHandle {
    int shard = 0;
    int local_id = 0;
  };

  bool IsLive(int t_id) const {
    const TIntervalRuntime& rt = runtimes_[static_cast<std::size_t>(t_id)];
    return !rt.completed && !rt.failed &&
           !cancelled_[static_cast<std::size_t>(t_id)];
  }

  Result<int> ResolveSubmission(ProfileId profile, int submission_id) const;
  int AppendSubmission(ProfileId profile, TInterval t_interval);
  void RetireParent(int t_id);
  void CancelLive(int t_id);
  /// Recomputes `profile`'s rank as the maximum t-interval size over its
  /// non-cancelled submissions (same exact-rank contract as
  /// DynamicMonitor::RecomputeProfileRank).
  void RecomputeProfileRank(ProfileId profile);
  void DrainChurnQueue();

  /// Serial capture bookkeeping of a successful probe of `resource`
  /// (parent accounting + retire + capture-event recording); capture
  /// callbacks are deferred into `ops_` when hooks are active.
  void CaptureOnProbe(ResourceId resource, StepResult* step);

  /// S-way merge of the per-shard sorted prefixes into the global
  /// best-first order (ties by translated global flat id).
  void MergeShardSelections(int budget);

  int num_resources_;
  Chronon epoch_length_;
  BudgetVector budget_;
  Policy* policy_;
  ExecutionMode mode_;
  ParallelOptions options_;
  ProbeCallback probe_callback_;
  ParallelProbeHooks hooks_;
  CaptureCallback capture_callback_;
  ChurnQueue churn_queue_;
  ResourceHealthTracker health_;
  bool validated_options_ = false;

  ShardMap shard_map_;
  /// Dense resource -> shard (precomputed from the ring).
  std::vector<int> shard_of_resource_;
  /// One CandidateIndex per shard, holding only the shard's EIs under
  /// partition-local flat ids.
  std::vector<CandidateIndex> partitions_;
  /// Partition-local flat id -> global flat id, per shard. Local ids
  /// are assigned in global registration order, so within one shard
  /// local-id comparisons agree with global-id comparisons (the
  /// within-shard tiebreak stays correct without translation).
  std::vector<std::vector<int>> global_of_local_;
  /// Global flat id -> owning EI handle.
  std::vector<EiHandle> handle_of_global_;
  /// Per runtime: handles of its EIs, in EI order.
  std::vector<std::vector<EiHandle>> handles_of_runtime_;

  WorkerPool pool_;

  Chronon now_ = 0;
  Schedule schedule_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  MonitorStats stats_;
  ShardRunStats shard_stats_;

  std::deque<TInterval> submitted_;
  std::vector<TIntervalRuntime> runtimes_;
  std::vector<uint8_t> cancelled_;
  std::vector<uint8_t> fault_touched_;
  std::vector<int> submission_id_;
  std::vector<int> rank_of_profile_;
  std::vector<uint8_t> profile_unregistered_;
  std::vector<std::vector<int>> runtimes_of_profile_;
  std::vector<std::string> profile_names_;

  // --- Per-chronon scratch (sized once, reused). ----------------------
  /// Per-shard candidate entries (flat ids are partition-local).
  std::vector<std::vector<ResourceCandidate>> shard_entries_;
  /// Usable sorted prefix of each shard's entries after top-k.
  std::vector<std::size_t> shard_take_;
  /// Per-shard (resource, live count) pairs deferred from the scoring
  /// phase to the serial NoteSuppressed application.
  std::vector<std::vector<std::pair<ResourceId, int>>> shard_suppressed_;
  /// Per-shard candidates scored this chronon.
  std::vector<std::size_t> shard_scored_;
  /// Globally merged selection, best first (flat ids are global).
  std::vector<ResourceCandidate> merged_entries_;
  /// Merge/expiry cursors, one per shard (reused across chronons).
  std::vector<std::size_t> merge_pos_;
  std::vector<std::size_t> expiry_pos_;

  /// One replayable operation of the commit phase.
  struct PendingOp {
    enum class Kind { kAttempt, kCapture };
    Kind kind = Kind::kAttempt;
    int token = -1;             // kAttempt
    ProfileId profile = 0;      // kCapture
    int submission_id = 0;      // kCapture
  };
  std::vector<PendingOp> ops_;
  /// Tokens grouped by worker lane (worker = shard % threads), each
  /// lane's tokens in canonical decide order.
  std::vector<std::vector<int>> tokens_by_worker_;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_PARALLEL_EXECUTOR_H_
