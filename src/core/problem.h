#ifndef PULLMON_CORE_PROBLEM_H_
#define PULLMON_CORE_PROBLEM_H_

#include <cstddef>
#include <vector>

#include "core/profile.h"
#include "core/schedule.h"
#include "util/status.h"

namespace pullmon {

/// Problem 1 (Complex Monitoring, Section 3.3): given profiles P over
/// resources R, an epoch of K chronons and a probe budget vector C,
/// find a schedule maximizing gained completeness subject to
/// sum_i s_{i,j} <= C_j for every chronon j.
struct MonitoringProblem {
  int num_resources = 0;
  Epoch epoch;
  std::vector<Profile> profiles;
  BudgetVector budget = BudgetVector::Uniform(0, 0);

  MonitoringProblem() = default;
  MonitoringProblem(int n, Chronon k, std::vector<Profile> p, int uniform_c)
      : num_resources(n),
        epoch{k},
        profiles(std::move(p)),
        budget(BudgetVector::Uniform(uniform_c, k)) {}

  /// Structural validation: positive sizes, budget covering the epoch,
  /// every profile valid, every EI's resource within [0, num_resources).
  Status Validate() const;

  /// rank(P).
  std::size_t rank() const { return RankOf(profiles); }

  /// Number of t-intervals over all profiles (the GC denominator).
  std::size_t TotalTIntervalCount() const { return TotalTIntervals(profiles); }

  /// Number of execution intervals over all t-intervals.
  std::size_t TotalEiCount() const;

  /// True if the instance is in P^[1] (every EI one chronon wide).
  bool IsUnitWidth() const;
};

}  // namespace pullmon

#endif  // PULLMON_CORE_PROBLEM_H_
