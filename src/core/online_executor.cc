#include "core/online_executor.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/candidate_index.h"
#include "core/parallel_executor.h"
#include "core/reference_executor.h"
#include "util/logging.h"

namespace pullmon {

const char* ExecutorBackendToString(ExecutorBackend backend) {
  switch (backend) {
    case ExecutorBackend::kIndexed:
      return "indexed";
    case ExecutorBackend::kReference:
      return "reference";
    case ExecutorBackend::kParallel:
      return "parallel";
  }
  return "?";
}

Status RetryPolicy::Validate() const {
  if (max_retries < 0) {
    return Status::InvalidArgument("max_retries must be >= 0");
  }
  if (backoff_base < 0.0) {
    return Status::InvalidArgument("backoff_base must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (backoff_budget <= 0.0) {
    return Status::InvalidArgument("backoff_budget must be > 0");
  }
  return Status::OK();
}

OnlineExecutor::OnlineExecutor(const MonitoringProblem* problem,
                               Policy* policy, ExecutionMode mode)
    : problem_(problem), policy_(policy), mode_(mode) {}

OnlineExecutor::~OnlineExecutor() = default;

void OnlineExecutor::set_parallel_hooks(ParallelProbeHooks hooks) {
  parallel_hooks_ = std::make_shared<ParallelProbeHooks>(std::move(hooks));
}

Result<OnlineRunResult> OnlineExecutor::Run() {
  if (backend_ == ExecutorBackend::kReference) {
    ReferenceExecutor reference(problem_, policy_, mode_);
    if (capture_callback_) reference.set_capture_callback(capture_callback_);
    if (probe_callback_) reference.set_probe_callback(probe_callback_);
    reference.set_retry_policy(retry_);
    reference.set_breaker_options(breaker_);
    return reference.Run();
  }
  if (backend_ == ExecutorBackend::kParallel) {
    return RunParallel();
  }
  return RunIndexed();
}

Result<OnlineRunResult> OnlineExecutor::RunParallel() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  PULLMON_RETURN_NOT_OK(retry_.Validate());
  PULLMON_RETURN_NOT_OK(breaker_.Validate());

  ParallelOptions options;
  options.retry = retry_;
  options.breaker = breaker_;
  options.threads = threads_;
  ParallelExecutor executor(problem_->num_resources, problem_->epoch.length,
                            problem_->budget, policy_, mode_, options);

  // Register every profile and submit its t-intervals in flattening
  // order, so the executor sees exactly the workload RunIndexed flattens
  // up front. Submission ids are per-profile and empty t-intervals are
  // unsubmittable, so an explicit submission -> t-interval-index map
  // keeps capture callbacks addressed like RunIndexed's.
  std::vector<std::vector<std::size_t>> t_index_of_submission(
      problem_->profiles.size());
  for (ProfileId pid = 0;
       pid < static_cast<ProfileId>(problem_->profiles.size()); ++pid) {
    const Profile& p = problem_->profiles[static_cast<std::size_t>(pid)];
    ProfileId handle = executor.RegisterProfile(p.name());
    PULLMON_CHECK(handle == pid);
    for (std::size_t ti = 0; ti < p.t_intervals().size(); ++ti) {
      const TInterval& eta = p.t_intervals()[ti];
      if (eta.empty()) continue;
      auto submitted = executor.Submit(pid, eta);
      PULLMON_RETURN_NOT_OK(submitted.status());
      PULLMON_CHECK(static_cast<std::size_t>(*submitted) ==
                    t_index_of_submission[static_cast<std::size_t>(pid)]
                        .size());
      t_index_of_submission[static_cast<std::size_t>(pid)].push_back(ti);
    }
  }

  if (probe_callback_) executor.set_probe_callback(probe_callback_);
  if (parallel_hooks_) executor.set_probe_hooks(*parallel_hooks_);
  if (capture_callback_) {
    executor.set_capture_callback(
        [this, &t_index_of_submission](ProfileId profile, int submission,
                                       Chronon now) {
          capture_callback_(
              profile,
              t_index_of_submission[static_cast<std::size_t>(profile)]
                                   [static_cast<std::size_t>(submission)],
              now);
        });
  }

  const auto run_start = std::chrono::steady_clock::now();
  for (Chronon now = 0; now < problem_->epoch.length; ++now) {
    PULLMON_RETURN_NOT_OK(executor.Step().status());
  }
  const auto run_end = std::chrono::steady_clock::now();

  OnlineRunResult result;
  result.schedule = executor.schedule();
  result.elapsed_seconds =
      std::chrono::duration<double>(run_end - run_start).count();
  const MonitorStats& ms = executor.stats();
  result.probes_used = ms.probes_used;
  result.t_intervals_completed = executor.t_intervals_completed();
  result.t_intervals_failed = executor.t_intervals_failed();
  result.candidates_scored = ms.candidates_scored;
  result.max_concurrent_candidates = ms.max_concurrent_candidates;
  result.probes_failed = ms.probes_failed;
  result.retries_issued = ms.retries_issued;
  result.retry_probes_spent = ms.retry_probes_spent;
  result.t_intervals_lost_to_faults = ms.t_intervals_lost_to_faults;

  const HealthStats& hs = executor.health().stats();
  result.circuits_opened = hs.circuits_opened;
  result.circuits_reopened = hs.circuits_reopened;
  result.probation_probes = hs.probation_probes;
  result.probation_successes = hs.probation_successes;
  result.probes_suppressed = hs.probes_suppressed;
  result.budget_reclaimed = hs.budget_reclaimed;
  result.open_chronons_total = hs.open_chronons_total;
  if (breaker_.enabled) {
    result.open_chronons_by_resource =
        executor.health().OpenChrononsByResource();
  }

  const ShardRunStats& ss = executor.shard_stats();
  result.shard_count = static_cast<std::size_t>(ss.shard_count);
  result.shard_candidates_scored = ss.candidates_scored;
  result.shard_probes_executed = ss.probes_executed;
  result.shard_merge_entries = ss.merge_entries;

  result.completeness =
      EvaluateCompleteness(problem_->profiles, result.schedule);
  PULLMON_CHECK(result.completeness.captured_t_intervals ==
                result.t_intervals_completed);
  return result;
}

Result<OnlineRunResult> OnlineExecutor::RunIndexed() {
  PULLMON_RETURN_NOT_OK(problem_->Validate());
  PULLMON_RETURN_NOT_OK(retry_.Validate());
  PULLMON_RETURN_NOT_OK(breaker_.Validate());
  policy_->Reset();

  // Health is tracked even with the breaker disabled (so health-aware
  // policies see EWMA failure rates), but only an enabled breaker ever
  // suppresses a resource or abandons a retry.
  ResourceHealthTracker health(problem_->num_resources, breaker_);
  policy_->AttachHealth(&health);

  const Chronon epoch_len = problem_->epoch.length;

  // --- Flatten the profile hierarchy into runtime arrays. ---------------
  std::vector<TIntervalRuntime> runtimes;
  std::vector<std::size_t> t_index_in_profile;  // parallel to runtimes
  std::vector<int> first_flat;  // first flat EI id of each runtime
  CandidateIndex index(problem_->num_resources, epoch_len);
  for (ProfileId pid = 0;
       pid < static_cast<ProfileId>(problem_->profiles.size()); ++pid) {
    const Profile& p = problem_->profiles[static_cast<std::size_t>(pid)];
    int rank = static_cast<int>(p.rank());
    for (std::size_t ti = 0; ti < p.t_intervals().size(); ++ti) {
      const TInterval& eta = p.t_intervals()[ti];
      TIntervalRuntime rt;
      rt.profile = pid;
      rt.profile_rank = rank;
      rt.source = &eta;
      rt.weight = eta.weight();
      rt.required = static_cast<int>(eta.required());
      rt.ei_captured.assign(eta.size(), 0);
      int t_id = static_cast<int>(runtimes.size());
      runtimes.push_back(std::move(rt));
      t_index_in_profile.push_back(ti);
      first_flat.push_back(static_cast<int>(index.size()));
      for (std::size_t ei_idx = 0; ei_idx < eta.eis().size(); ++ei_idx) {
        index.AddEi(eta.eis()[ei_idx], t_id, static_cast<int>(ei_idx));
      }
    }
  }

  OnlineRunResult result;
  result.schedule = Schedule(epoch_len);

  // Parents that had a live candidate EI hit by a failed probe — failure
  // attribution for t_intervals_lost_to_faults.
  std::vector<uint8_t> fault_touched(runtimes.size(), 0);

  // Removes a dead parent's remaining EIs from the index; flat ids of a
  // runtime are contiguous from first_flat.
  auto retire_parent = [&](int t_id) {
    const TIntervalRuntime& parent =
        runtimes[static_cast<std::size_t>(t_id)];
    index.RetireRange(first_flat[static_cast<std::size_t>(t_id)],
                      parent.NumEis());
  };

  std::vector<ResourceCandidate> entries;

  const auto run_start = std::chrono::steady_clock::now();

  for (Chronon now = 0; now < epoch_len; ++now) {
    // 1. Reveal EIs that start now. Dead parents were retired eagerly,
    //    so arrivals only need the index's own dead-flag check.
    index.ActivateArrivals(now, [](int) { return true; });

    // Expired cool-downs move to probation before scoring, so a
    // half-open resource competes in this chronon's selection.
    health.BeginChronon(now);

    // 2. Score the live candidates, reduced to one minimal selection
    //    key per resource (candidate keys and resource keys select
    //    identically; see CandidateIndex). Open-circuit resources are
    //    skipped, so their would-be budget flows to the next-ranked
    //    candidates automatically.
    std::size_t scored = index.CollectResourceCandidates(
        now,
        [&](const IndexedEi& flat) {
          const TIntervalRuntime& parent =
              runtimes[static_cast<std::size_t>(flat.t_id)];
          int np_class = (mode_ == ExecutionMode::kNonPreemptive &&
                          !parent.selected)
                             ? 1
                             : 0;
          return std::make_pair(
              np_class,
              policy_->Score(flat.ei, parent, flat.ei_index, now));
        },
        [&](ResourceId r) { return health.IsSuppressed(r); },
        [&](ResourceId r, int live) { health.NoteSuppressed(r, live); },
        &entries);
    result.candidates_scored += scored;
    result.max_concurrent_candidates =
        std::max(result.max_concurrent_candidates, scored);

    // 3. Partial selection: only the best C_now resources are ordered.
    int budget = problem_->budget.at(now);
    if (budget > 0 && !entries.empty()) {
      std::size_t take = CandidateIndex::SelectTopResources(&entries, budget);
      int probes_this_chronon = 0;
      for (std::size_t e = 0; e < take; ++e) {
        if (probes_this_chronon >= budget) break;
        ResourceId r = entries[e].resource;
        ++probes_this_chronon;
        ++result.probes_used;
        bool success = probe_callback_ ? probe_callback_(r, now) : true;
        health.RecordProbe(r, now, success);
        if (!success) {
          ++result.probes_failed;
          // Same-chronon retries with exponential backoff, each charged
          // one budget unit; abandoned when the accumulated wait would
          // cross the chronon boundary, the budget runs dry, or the
          // breaker opens the resource's circuit mid-loop (retrying a
          // resource the breaker just gave up on wastes budget).
          double waited = 0.0;
          double backoff = retry_.backoff_base;
          for (int attempt = 0; attempt < retry_.max_retries &&
                                probes_this_chronon < budget &&
                                !health.CircuitOpen(r);
               ++attempt) {
            waited += backoff;
            if (waited > retry_.backoff_budget) break;
            backoff *= retry_.backoff_multiplier;
            ++probes_this_chronon;
            ++result.probes_used;
            ++result.retries_issued;
            ++result.retry_probes_spent;
            success = probe_callback_(r, now);
            health.RecordProbe(r, now, success);
            if (success) break;
            ++result.probes_failed;
          }
        }
        if (!success) {
          // The probe never delivered: nothing is captured, candidates
          // on r stay candidates for later chronons. Record which
          // parents the failure touched for loss attribution.
          index.ForEachLiveOnResource(
              r, [&](int, const IndexedEi& miss) {
                fault_touched[static_cast<std::size_t>(miss.t_id)] = 1;
              });
          continue;
        }
        PULLMON_CHECK_OK(result.schedule.AddProbe(r, now));

        // 4. The probe captures every live candidate EI on resource r;
        //    a completed parent's other EIs leave the index at once.
        index.CaptureResource(r, [&](int, const IndexedEi& hit) {
          TIntervalRuntime& parent =
              runtimes[static_cast<std::size_t>(hit.t_id)];
          parent.ei_captured[static_cast<std::size_t>(hit.ei_index)] = 1;
          ++parent.num_captured;
          parent.selected = true;
          if (parent.num_captured >= parent.required) {
            parent.completed = true;
            ++result.t_intervals_completed;
            retire_parent(hit.t_id);
            if (capture_callback_) {
              capture_callback_(
                  parent.profile,
                  t_index_in_profile[static_cast<std::size_t>(hit.t_id)],
                  now);
            }
          }
        });
      }
      // Reclaim accounting: at most probes_this_chronon of the budget
      // units a suppressed resource would have taken actually flowed to
      // other resources this chronon (an upper bound; see HealthStats).
      health.NoteBudgetReclaimed(
          std::min(health.SuppressedThisChronon(),
                   static_cast<std::size_t>(probes_this_chronon)));
    }

    // 5. Expire EIs whose window ends now; the parent fails once too few
    //    EIs remain alive to reach its required capture count (with the
    //    all-required default, any uncaptured expiry fails it).
    index.ExpireEnding(now, [&](int, const IndexedEi& flat) {
      TIntervalRuntime& parent =
          runtimes[static_cast<std::size_t>(flat.t_id)];
      if (parent.failed || parent.completed) return;
      ++parent.num_expired;
      if (parent.num_captured + parent.NumAlive() < parent.required) {
        parent.failed = true;
        ++result.t_intervals_failed;
        retire_parent(flat.t_id);
        if (fault_touched[static_cast<std::size_t>(flat.t_id)]) {
          ++result.t_intervals_lost_to_faults;
        }
      }
    });
  }

  const auto run_end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(run_end - run_start).count();

  const HealthStats& hs = health.stats();
  result.circuits_opened = hs.circuits_opened;
  result.circuits_reopened = hs.circuits_reopened;
  result.probation_probes = hs.probation_probes;
  result.probation_successes = hs.probation_successes;
  result.probes_suppressed = hs.probes_suppressed;
  result.budget_reclaimed = hs.budget_reclaimed;
  result.open_chronons_total = hs.open_chronons_total;
  if (breaker_.enabled) {
    result.open_chronons_by_resource = health.OpenChrononsByResource();
  }

  result.completeness =
      EvaluateCompleteness(problem_->profiles, result.schedule);
  // Internal consistency: the executor's own capture accounting must agree
  // with the schedule-based evaluation.
  PULLMON_CHECK(result.completeness.captured_t_intervals ==
                result.t_intervals_completed);
  return result;
}

}  // namespace pullmon
