#include "core/t_interval.h"

#include <algorithm>

namespace pullmon {

Chronon TInterval::EarliestStart() const {
  Chronon earliest = 0;
  bool first = true;
  for (const auto& ei : eis_) {
    if (first || ei.start < earliest) earliest = ei.start;
    first = false;
  }
  return earliest;
}

Chronon TInterval::LatestFinish() const {
  Chronon latest = 0;
  bool first = true;
  for (const auto& ei : eis_) {
    if (first || ei.finish > latest) latest = ei.finish;
    first = false;
  }
  return latest;
}

bool TInterval::IsUnitWidth() const {
  return std::all_of(eis_.begin(), eis_.end(),
                     [](const ExecutionInterval& ei) {
                       return ei.width() == 1;
                     });
}

bool TInterval::HasIntraResourceOverlap() const {
  for (std::size_t i = 0; i < eis_.size(); ++i) {
    for (std::size_t j = i + 1; j < eis_.size(); ++j) {
      if (eis_[i].SharesProbeWith(eis_[j])) return true;
    }
  }
  return false;
}

Status TInterval::Validate(const Epoch& epoch) const {
  if (eis_.empty()) {
    return Status::InvalidArgument("t-interval with no execution intervals");
  }
  if (!(weight_ > 0.0)) {
    return Status::InvalidArgument("t-interval weight must be positive");
  }
  for (const auto& ei : eis_) {
    PULLMON_RETURN_NOT_OK(ei.Validate(epoch));
  }
  return Status::OK();
}

std::string TInterval::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < eis_.size(); ++i) {
    if (i > 0) out += ", ";
    out += eis_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace pullmon
