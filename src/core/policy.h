#ifndef PULLMON_CORE_POLICY_H_
#define PULLMON_CORE_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/t_interval.h"

namespace pullmon {

class ResourceHealthTracker;

/// Live state of one t-interval during an online run, shared between the
/// executor and the policies (policies read, the executor writes).
struct TIntervalRuntime {
  /// Owning profile (index into the problem's profile vector).
  ProfileId profile = 0;
  /// rank(p) of the owning profile, used by rank-level policies.
  int profile_rank = 0;
  /// The static definition (owned by the problem; outlives the run).
  const TInterval* source = nullptr;
  /// Per-EI capture flags, parallel to source->eis().
  std::vector<uint8_t> ei_captured;
  int num_captured = 0;
  /// EIs that expired uncaptured.
  int num_expired = 0;
  /// Client utility of the t-interval (TInterval::weight()).
  double weight = 1.0;
  /// Captures needed for completion (TInterval::required()).
  int required = 0;
  /// Too few EIs remain alive: the t-interval can no longer be captured.
  bool failed = false;
  /// required captures achieved.
  bool completed = false;
  /// At least one EI was probed; non-preemptive execution prioritizes the
  /// remaining EIs of selected t-intervals over newly arrived ones.
  bool selected = false;

  int NumEis() const { return static_cast<int>(source->eis().size()); }
  /// EIs still to capture under the all-required default.
  int NumResidual() const { return NumEis() - num_captured; }
  /// Captures still needed for completion (>= 0).
  int RequiredResidual() const {
    int residual = required - num_captured;
    return residual > 0 ? residual : 0;
  }
  /// EIs that are neither captured nor expired.
  int NumAlive() const { return NumEis() - num_captured - num_expired; }
};

/// Whether newly arrived t-intervals may displace previously selected
/// ones in the per-chronon probe choice (Section 4.2.1). Non-preemptive
/// execution first serves EIs of t-intervals that already received a
/// probe, then spends leftover budget on new t-intervals.
enum class ExecutionMode {
  kPreemptive,
  kNonPreemptive,
};

/// "P" / "NP" — the paper's labeling suffixes.
const char* ExecutionModeToString(ExecutionMode mode);

/// The three information levels of Section 4.2.2's policy classification,
/// plus a bucket for baselines that use no t-interval information.
enum class PolicyLevel {
  /// Uses only the candidate EI itself (e.g. S-EDF).
  kSingleEi,
  /// Additionally uses the parent t-interval's rank / residual count
  /// (e.g. MRSF).
  kRank,
  /// Uses full sibling information of the parent t-interval (e.g. M-EDF).
  kMultiEi,
  /// Control baselines (Random, FCFS) outside the paper's classification.
  kBaseline,
};

const char* PolicyLevelToString(PolicyLevel level);

/// An online policy Phi (Section 4.2.1): at each chronon it values the
/// candidate EIs; the executor probes the resources of the best-valued
/// EIs within budget. Smaller scores are preferred. Policies may keep
/// internal state (e.g. a PRNG); Reset() is invoked before each run.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Display name, e.g. "MRSF".
  virtual std::string name() const = 0;

  virtual PolicyLevel level() const = 0;

  /// Value of probing candidate EI `ei` (the `ei_index`-th EI of `parent`)
  /// at chronon `now`. The EI is guaranteed active (start <= now <=
  /// finish) and uncaptured, with a live (non-failed, non-completed)
  /// parent. Lower is better.
  virtual double Score(const ExecutionInterval& ei,
                       const TIntervalRuntime& parent, int ei_index,
                       Chronon now) = 0;

  /// Called by the executor before a run begins.
  virtual void Reset() {}

  /// Gives the policy read access to the run's per-resource health
  /// estimates (EWMA failure rates). The executor calls this once per
  /// run with a tracker that outlives the run; most policies ignore it —
  /// HealthAwarePolicy forwards it into its expected-gain discount.
  virtual void AttachHealth(const ResourceHealthTracker* health) {
    (void)health;
  }
};

/// S-EDF value of a single EI at chronon `now`: the number of remaining
/// chronons, I.T_f - now; when the EI is not yet active the paper
/// evaluates it "with T = 0", i.e. simply I.T_f (Section 4.2.2). Shared
/// by the S-EDF and M-EDF policies. Exposed here for reuse and testing.
inline double SingleEdfValue(const ExecutionInterval& ei, Chronon now) {
  if (now < ei.start) return static_cast<double>(ei.finish);
  return static_cast<double>(ei.finish - now);
}

}  // namespace pullmon

#endif  // PULLMON_CORE_POLICY_H_
