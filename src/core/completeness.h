#ifndef PULLMON_CORE_COMPLETENESS_H_
#define PULLMON_CORE_COMPLETENESS_H_

#include <cstddef>
#include <vector>

#include "core/profile.h"
#include "core/schedule.h"

namespace pullmon {

/// Capture indicator for a single EI: true iff the schedule probes the
/// EI's resource at some chronon inside [start, finish] (Section 3.2).
bool IsCaptured(const ExecutionInterval& ei, const Schedule& schedule);

/// Capture indicator for a t-interval: at least eta.required() of its
/// EIs captured (all of them by default — the paper's product
/// indicator; Section 6's "alternatives" extension relaxes it).
bool IsCaptured(const TInterval& eta, const Schedule& schedule);

/// Per-profile capture counts produced by EvaluateCompleteness.
struct ProfileCompleteness {
  std::size_t captured = 0;
  std::size_t total = 0;

  double Fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(captured) /
                                  static_cast<double>(total);
  }
};

/// Full evaluation of a schedule against a profile set.
struct CompletenessReport {
  std::size_t captured_t_intervals = 0;
  std::size_t total_t_intervals = 0;
  /// Utility-weighted totals (Section 6 extension); equal to the counts
  /// when all weights are 1.
  double captured_weight = 0.0;
  double total_weight = 0.0;
  std::vector<ProfileCompleteness> per_profile;

  /// GC(P, T, S) from Section 3.3: captured / total t-intervals.
  double GainedCompleteness() const {
    return total_t_intervals == 0
               ? 0.0
               : static_cast<double>(captured_t_intervals) /
                     static_cast<double>(total_t_intervals);
  }

  /// Utility-weighted completeness: captured / total utility.
  double WeightedGainedCompleteness() const {
    return total_weight == 0.0 ? 0.0 : captured_weight / total_weight;
  }
};

/// Evaluates every t-interval of every profile against the schedule.
CompletenessReport EvaluateCompleteness(const std::vector<Profile>& profiles,
                                        const Schedule& schedule);

/// Shorthand for EvaluateCompleteness(...).GainedCompleteness().
double GainedCompleteness(const std::vector<Profile>& profiles,
                          const Schedule& schedule);

}  // namespace pullmon

#endif  // PULLMON_CORE_COMPLETENESS_H_
