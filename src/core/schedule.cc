#include "core/schedule.h"

#include <algorithm>

#include "util/string_util.h"

namespace pullmon {

const std::vector<ResourceId> Schedule::kEmpty = {};

BudgetVector BudgetVector::Uniform(int c, Chronon epoch_length) {
  BudgetVector b;
  b.uniform_ = true;
  b.uniform_value_ = c;
  b.max_ = c;
  b.epoch_length_ = epoch_length;
  return b;
}

BudgetVector BudgetVector::FromVector(std::vector<int> budgets) {
  BudgetVector b;
  b.uniform_ = false;
  b.epoch_length_ = static_cast<Chronon>(budgets.size());
  b.max_ = 0;
  for (int v : budgets) b.max_ = std::max(b.max_, v);
  b.values_ = std::move(budgets);
  return b;
}

int BudgetVector::at(Chronon t) const {
  if (t < 0 || t >= epoch_length_) return 0;
  return uniform_ ? uniform_value_ : values_[static_cast<std::size_t>(t)];
}

long long BudgetVector::Total() const {
  if (uniform_) {
    return static_cast<long long>(uniform_value_) * epoch_length_;
  }
  long long total = 0;
  for (int v : values_) total += v;
  return total;
}

Schedule::Schedule(Chronon epoch_length)
    : epoch_length_(epoch_length),
      probes_by_chronon_(static_cast<std::size_t>(
          epoch_length < 0 ? 0 : epoch_length)) {}

Status Schedule::AddProbe(ResourceId resource, Chronon t) {
  if (resource < 0) {
    return Status::InvalidArgument("negative resource id in probe");
  }
  if (t < 0 || t >= epoch_length_) {
    return Status::OutOfRange(
        StringFormat("probe chronon %d outside epoch [0,%d)", t,
                     epoch_length_));
  }
  auto& probes = probes_by_chronon_[static_cast<std::size_t>(t)];
  auto it = std::lower_bound(probes.begin(), probes.end(), resource);
  if (it != probes.end() && *it == resource) return Status::OK();
  probes.insert(it, resource);
  ++total_probes_;
  return Status::OK();
}

bool Schedule::HasProbe(ResourceId resource, Chronon t) const {
  if (t < 0 || t >= epoch_length_) return false;
  const auto& probes = probes_by_chronon_[static_cast<std::size_t>(t)];
  return std::binary_search(probes.begin(), probes.end(), resource);
}

const std::vector<ResourceId>& Schedule::ProbesAt(Chronon t) const {
  if (t < 0 || t >= epoch_length_) return kEmpty;
  return probes_by_chronon_[static_cast<std::size_t>(t)];
}

bool Schedule::SatisfiesBudget(const BudgetVector& budget) const {
  for (Chronon t = 0; t < epoch_length_; ++t) {
    if (static_cast<int>(probes_by_chronon_[static_cast<std::size_t>(t)]
                             .size()) > budget.at(t)) {
      return false;
    }
  }
  return true;
}

std::string Schedule::ToString() const {
  std::string out;
  for (Chronon t = 0; t < epoch_length_; ++t) {
    const auto& probes = probes_by_chronon_[static_cast<std::size_t>(t)];
    if (probes.empty()) continue;
    out += StringFormat("t=%d:", t);
    for (ResourceId r : probes) out += StringFormat(" r%d", r);
    out += "\n";
  }
  return out;
}

}  // namespace pullmon
