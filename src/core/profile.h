#ifndef PULLMON_CORE_PROFILE_H_
#define PULLMON_CORE_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/t_interval.h"
#include "util/status.h"

namespace pullmon {

/// A client profile p = {eta_1, ..., eta_q}: the collection of t-intervals
/// a client needs captured (Section 3.1). Profiles, t-intervals and EIs
/// form a hierarchy; two t-intervals in the same profile are siblings.
class Profile {
 public:
  Profile() = default;
  explicit Profile(std::vector<TInterval> t_intervals)
      : t_intervals_(std::move(t_intervals)) {}
  Profile(std::string name, std::vector<TInterval> t_intervals)
      : name_(std::move(name)), t_intervals_(std::move(t_intervals)) {}

  const std::vector<TInterval>& t_intervals() const { return t_intervals_; }

  /// |p|: number of t-intervals (the GC denominator contribution).
  std::size_t size() const { return t_intervals_.size(); }
  bool empty() const { return t_intervals_.empty(); }

  void AddTInterval(TInterval t_interval) {
    t_intervals_.push_back(std::move(t_interval));
  }

  /// rank(p) = max_eta |eta|: the profile's complexity (Section 3.1).
  /// Returns 0 for an empty profile.
  std::size_t rank() const;

  /// True if every EI of every t-interval has width one (P^[1] member).
  bool IsUnitWidth() const;

  /// True if any pair of EIs anywhere in the profile shares a resource
  /// with overlapping windows.
  bool HasIntraResourceOverlap() const;

  /// Optional human-readable label (e.g. "AuctionWatch(3)#17").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Status Validate(const Epoch& epoch) const;

 private:
  std::string name_;
  std::vector<TInterval> t_intervals_;
};

/// rank(P) = max_p rank(p) over a set of profiles; 0 if empty.
std::size_t RankOf(const std::vector<Profile>& profiles);

/// Total number of t-intervals over all profiles (the GC denominator).
std::size_t TotalTIntervals(const std::vector<Profile>& profiles);

/// True if any profile (or any pair of EIs across profiles, when
/// `across_profiles` is set) exhibits intra-resource overlap. The paper's
/// theoretical bounds for MRSF assume none (Proposition 4).
bool HasIntraResourceOverlap(const std::vector<Profile>& profiles,
                             bool across_profiles = true);

}  // namespace pullmon

#endif  // PULLMON_CORE_PROFILE_H_
