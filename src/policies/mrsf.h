#ifndef PULLMON_POLICIES_MRSF_H_
#define PULLMON_POLICIES_MRSF_H_

#include <string>

#include "core/policy.h"

namespace pullmon {

/// Minimal Residual Stub First (Section 4.2.2, rank level): prefers EIs
/// whose parent t-interval has the fewest EIs left to capture,
///
///   MRSF(I) = rank(p) - #captured EIs of eta,
///
/// the intuition being that a t-interval with a smaller residual stub has
/// a higher probability of being fully captured. Proposition 4: without
/// intra-resource overlap and rank(P) = k, MRSF is k-competitive.
class MrsfPolicy : public Policy {
 public:
  std::string name() const override { return "MRSF"; }
  PolicyLevel level() const override { return PolicyLevel::kRank; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;

  /// The raw MRSF value of a t-interval (for tests on Example 1).
  static double Value(const TIntervalRuntime& parent);
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_MRSF_H_
