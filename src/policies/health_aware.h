#ifndef PULLMON_POLICIES_HEALTH_AWARE_H_
#define PULLMON_POLICIES_HEALTH_AWARE_H_

#include <memory>
#include <string>
#include <utility>

#include "core/policy.h"
#include "core/resource_health.h"

namespace pullmon {

/// Expected-gain discount wrapper (DESIGN.md section 10): combines any
/// base policy's score with the health tracker's estimated probe-success
/// probability p of the candidate's resource, so a flaky resource must
/// earn its probe against the expected waste of a failure. Selectable
/// via policy_factory as "health:<base>", e.g. "health:mrsf".
///
/// Scores here are lower-is-better, so the expected-gain form "multiply
/// the gain by p" becomes: divide a non-negative score by p (a flaky
/// resource's candidate looks further from its deadline), and multiply a
/// negative score by p (it looks less valuable). p is floored at
/// kMinSuccess so a fully dark resource degrades smoothly instead of
/// dropping out of the ordering.
///
/// Purity: the transform is a deterministic function of (base score,
/// tracker state), and the tracker evolves identically under both
/// executor backends, so the wrapper preserves decision-identity.
class HealthAwarePolicy : public Policy {
 public:
  /// Floor on the estimated success probability used in the transform.
  static constexpr double kMinSuccess = 0.05;

  explicit HealthAwarePolicy(std::unique_ptr<Policy> base)
      : base_(std::move(base)) {}

  std::string name() const override { return "health:" + base_->name(); }
  PolicyLevel level() const override { return base_->level(); }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;

  void Reset() override { base_->Reset(); }

  /// Keeps the tracker for its own discount and forwards it, so a base
  /// policy that is itself health-aware still sees it.
  void AttachHealth(const ResourceHealthTracker* health) override {
    health_ = health;
    base_->AttachHealth(health);
  }

  const Policy* base() const { return base_.get(); }

 private:
  std::unique_ptr<Policy> base_;
  const ResourceHealthTracker* health_ = nullptr;
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_HEALTH_AWARE_H_
