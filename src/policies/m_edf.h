#ifndef PULLMON_POLICIES_M_EDF_H_
#define PULLMON_POLICIES_M_EDF_H_

#include <string>

#include "core/policy.h"

namespace pullmon {

/// Multi Interval EDF (Section 4.2.2, multi-EIs level): values a
/// candidate EI by the summed S-EDF values of all *uncaptured* EIs of its
/// parent t-interval,
///
///   M-EDF(I, T) = sum_{I' in eta} S-EDF(I', T) * (1 - captured(I')),
///
/// where a not-yet-active sibling is evaluated with T = 0. A t-interval
/// with fewer total remaining chronons is less likely to collide with
/// others, hence is served first.
class MEdfPolicy : public Policy {
 public:
  std::string name() const override { return "M-EDF"; }
  PolicyLevel level() const override { return PolicyLevel::kMultiEi; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;

  /// The raw M-EDF value of a whole t-interval (used by tests replicating
  /// the paper's Example 1 / Figure 2).
  static double Value(const TIntervalRuntime& parent, Chronon now);
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_M_EDF_H_
