#ifndef PULLMON_POLICIES_POLICY_FACTORY_H_
#define PULLMON_POLICIES_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "util/status.h"

namespace pullmon {

/// Extra knobs some policies need at construction time.
struct PolicyOptions {
  uint64_t random_seed = 42;
  int num_resources = 0;  // required by "roundrobin"
};

/// Names accepted by MakePolicy (lowercase, hyphens optional):
/// "s-edf", "m-edf", "mrsf", "random", "fcfs", "roundrobin", plus a
/// "health:<base>" prefix that wraps any base policy in the
/// expected-gain discount of HealthAwarePolicy.
std::vector<std::string> KnownPolicyNames();

/// Instantiates a policy by name; NotFound for unknown names.
Result<std::unique_ptr<Policy>> MakePolicy(const std::string& name,
                                           const PolicyOptions& options = {});

}  // namespace pullmon

#endif  // PULLMON_POLICIES_POLICY_FACTORY_H_
