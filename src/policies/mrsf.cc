#include "policies/mrsf.h"

namespace pullmon {

double MrsfPolicy::Value(const TIntervalRuntime& parent) {
  return static_cast<double>(parent.profile_rank - parent.num_captured);
}

double MrsfPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)ei;
  (void)ei_index;
  (void)now;
  return Value(parent);
}

}  // namespace pullmon
