#include "policies/health_aware.h"

namespace pullmon {

double HealthAwarePolicy::Score(const ExecutionInterval& ei,
                                const TIntervalRuntime& parent,
                                int ei_index, Chronon now) {
  double score = base_->Score(ei, parent, ei_index, now);
  if (health_ == nullptr) return score;
  double p = health_->SuccessProbability(ei.resource);
  if (p < kMinSuccess) p = kMinSuccess;
  // Lower-is-better: a shrinking p must push the score up (away from
  // selection), whichever sign the base policy uses.
  return score >= 0.0 ? score / p : score * p;
}

}  // namespace pullmon
