#include "policies/policy_factory.h"

#include <string_view>
#include <utility>

#include "policies/baselines.h"
#include "policies/health_aware.h"
#include "policies/m_edf.h"
#include "policies/mrsf.h"
#include "policies/s_edf.h"
#include "policies/weighted.h"
#include "util/string_util.h"

namespace pullmon {

std::vector<std::string> KnownPolicyNames() {
  return {"s-edf", "m-edf",  "mrsf", "u-mrsf",    "u-edf",       "lrsf",
          "random", "fcfs", "roundrobin", "health:mrsf", "health:s-edf"};
}

Result<std::unique_ptr<Policy>> MakePolicy(const std::string& name,
                                           const PolicyOptions& options) {
  std::string key = ToLower(name);
  // "health:<base>" wraps any base policy in the expected-gain discount
  // of HealthAwarePolicy (policies/health_aware.h).
  constexpr std::string_view kHealthPrefix = "health:";
  if (key.rfind(kHealthPrefix, 0) == 0) {
    PULLMON_ASSIGN_OR_RETURN(
        std::unique_ptr<Policy> base,
        MakePolicy(key.substr(kHealthPrefix.size()), options));
    return std::unique_ptr<Policy>(new HealthAwarePolicy(std::move(base)));
  }
  // Accept both "s-edf" and "sedf" spellings.
  std::string compact;
  for (char c : key) {
    if (c != '-' && c != '_') compact.push_back(c);
  }
  if (compact == "sedf") {
    return std::unique_ptr<Policy>(new SEdfPolicy());
  }
  if (compact == "medf") {
    return std::unique_ptr<Policy>(new MEdfPolicy());
  }
  if (compact == "mrsf") {
    return std::unique_ptr<Policy>(new MrsfPolicy());
  }
  if (compact == "umrsf") {
    return std::unique_ptr<Policy>(new UtilityMrsfPolicy());
  }
  if (compact == "uedf") {
    return std::unique_ptr<Policy>(new UtilityEdfPolicy());
  }
  if (compact == "lrsf") {
    return std::unique_ptr<Policy>(new LrsfPolicy());
  }
  if (compact == "random") {
    return std::unique_ptr<Policy>(new RandomPolicy(options.random_seed));
  }
  if (compact == "fcfs") {
    return std::unique_ptr<Policy>(new FcfsPolicy());
  }
  if (compact == "roundrobin") {
    return std::unique_ptr<Policy>(
        new RoundRobinPolicy(options.num_resources));
  }
  return Status::NotFound("unknown policy: " + name);
}

}  // namespace pullmon
