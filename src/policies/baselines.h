#ifndef PULLMON_POLICIES_BASELINES_H_
#define PULLMON_POLICIES_BASELINES_H_

#include <string>

#include "core/policy.h"
#include "util/random.h"

namespace pullmon {

/// Values every candidate by an independent uniform draw: a pure control
/// baseline (not in the paper's classification) that quantifies how much
/// of the heuristics' completeness is informed rather than incidental.
///
/// The draw is a stateless keyed hash of (seed, candidate identity,
/// chronon) rather than a shared stream: the score of a candidate
/// depends only on the Score() arguments, never on how many candidates
/// were scored before it. This keeps the policy a pure function — the
/// requirement every policy must meet for the indexed and reference
/// executors to be decision-identical (they enumerate candidates in
/// different orders).
class RandomPolicy : public Policy {
 public:
  explicit RandomPolicy(uint64_t seed = 42) : seed_(seed) {}

  std::string name() const override { return "Random"; }
  PolicyLevel level() const override { return PolicyLevel::kBaseline; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;

 private:
  uint64_t seed_;
};

/// First-Come-First-Served: prefers the EI that became active earliest
/// (ties by the executor's deterministic ordering). Models a naive proxy
/// that serves monitoring requests in arrival order.
class FcfsPolicy : public Policy {
 public:
  std::string name() const override { return "FCFS"; }
  PolicyLevel level() const override { return PolicyLevel::kBaseline; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;
};

/// Static round-robin over resources: probes resources cyclically with no
/// regard to EI structure; the weakest informed baseline.
class RoundRobinPolicy : public Policy {
 public:
  explicit RoundRobinPolicy(int num_resources)
      : num_resources_(num_resources) {}

  std::string name() const override { return "RoundRobin"; }
  PolicyLevel level() const override { return PolicyLevel::kBaseline; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;

 private:
  int num_resources_;
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_BASELINES_H_
