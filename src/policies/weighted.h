#ifndef PULLMON_POLICIES_WEIGHTED_H_
#define PULLMON_POLICIES_WEIGHTED_H_

#include <string>

#include "core/policy.h"

namespace pullmon {

/// Utility-aware MRSF — the "prioritized policies" the paper's future
/// work (Section 6) calls for: the residual stub is discounted by the
/// client utility of the parent t-interval, so a high-utility t-interval
/// outranks an equally complete low-utility one.
///
///   U-MRSF(I) = (rank(p) - #captured) / weight(eta)
class UtilityMrsfPolicy : public Policy {
 public:
  std::string name() const override { return "U-MRSF"; }
  PolicyLevel level() const override { return PolicyLevel::kRank; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;
};

/// Utility-aware EDF: remaining chronons discounted by utility,
///   U-EDF(I, T) = (I.T_f - T) / weight(eta).
class UtilityEdfPolicy : public Policy {
 public:
  std::string name() const override { return "U-EDF"; }
  PolicyLevel level() const override { return PolicyLevel::kSingleEi; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;
};

/// Largest Residual Stub First — the deliberate inversion of MRSF, kept
/// as an ablation control: if MRSF's intuition (near-complete t-intervals
/// first) is right, LRSF must underperform it.
class LrsfPolicy : public Policy {
 public:
  std::string name() const override { return "LRSF"; }
  PolicyLevel level() const override { return PolicyLevel::kRank; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_WEIGHTED_H_
