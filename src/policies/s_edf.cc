#include "policies/s_edf.h"

namespace pullmon {

double SEdfPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)parent;
  (void)ei_index;
  return SingleEdfValue(ei, now);
}

}  // namespace pullmon
