#include "policies/m_edf.h"

namespace pullmon {

double MEdfPolicy::Value(const TIntervalRuntime& parent, Chronon now) {
  double total = 0.0;
  const auto& eis = parent.source->eis();
  for (std::size_t i = 0; i < eis.size(); ++i) {
    if (parent.ei_captured[i]) continue;
    total += SingleEdfValue(eis[i], now);
  }
  return total;
}

double MEdfPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)ei;
  (void)ei_index;
  return Value(parent, now);
}

}  // namespace pullmon
