#include "policies/weighted.h"

namespace pullmon {

double UtilityMrsfPolicy::Score(const ExecutionInterval& ei,
                                const TIntervalRuntime& parent,
                                int ei_index, Chronon now) {
  (void)ei;
  (void)ei_index;
  (void)now;
  double residual =
      static_cast<double>(parent.profile_rank - parent.num_captured);
  return residual / parent.weight;
}

double UtilityEdfPolicy::Score(const ExecutionInterval& ei,
                               const TIntervalRuntime& parent,
                               int ei_index, Chronon now) {
  (void)ei_index;
  return SingleEdfValue(ei, now) / parent.weight;
}

double LrsfPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)ei;
  (void)ei_index;
  (void)now;
  return -static_cast<double>(parent.profile_rank - parent.num_captured);
}

}  // namespace pullmon
