#include "policies/baselines.h"

namespace pullmon {

double RandomPolicy::Score(const ExecutionInterval& ei,
                           const TIntervalRuntime& parent, int ei_index,
                           Chronon now) {
  // Stateless keyed hash (SplitMix64 over the candidate identity): the
  // same candidate at the same chronon always draws the same value,
  // regardless of scoring order — see the class comment.
  uint64_t key = seed_;
  key = key * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(ei.resource);
  key = key * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(ei.start);
  key = key * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(ei.finish);
  key = key * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(now);
  key = key * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(ei_index);
  key = key * 0x9E3779B97F4A7C15ULL +
        static_cast<uint64_t>(parent.profile);
  uint64_t state = key;
  uint64_t bits = SplitMix64(&state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double FcfsPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)parent;
  (void)ei_index;
  (void)now;
  return static_cast<double>(ei.start);
}

double RoundRobinPolicy::Score(const ExecutionInterval& ei,
                               const TIntervalRuntime& parent, int ei_index,
                               Chronon now) {
  (void)parent;
  (void)ei_index;
  // Distance of the EI's resource ahead of the rotating cursor
  // (now mod n); resources are served cyclically across chronons.
  int cursor = num_resources_ > 0 ? static_cast<int>(now) % num_resources_ : 0;
  int delta = ei.resource - cursor;
  if (delta < 0) delta += num_resources_;
  return static_cast<double>(delta);
}

}  // namespace pullmon
