#include "policies/baselines.h"

namespace pullmon {

double RandomPolicy::Score(const ExecutionInterval& ei,
                           const TIntervalRuntime& parent, int ei_index,
                           Chronon now) {
  (void)ei;
  (void)parent;
  (void)ei_index;
  (void)now;
  return rng_.NextDouble();
}

double FcfsPolicy::Score(const ExecutionInterval& ei,
                         const TIntervalRuntime& parent, int ei_index,
                         Chronon now) {
  (void)parent;
  (void)ei_index;
  (void)now;
  return static_cast<double>(ei.start);
}

double RoundRobinPolicy::Score(const ExecutionInterval& ei,
                               const TIntervalRuntime& parent, int ei_index,
                               Chronon now) {
  (void)parent;
  (void)ei_index;
  // Distance of the EI's resource ahead of the rotating cursor
  // (now mod n); resources are served cyclically across chronons.
  int cursor = num_resources_ > 0 ? static_cast<int>(now) % num_resources_ : 0;
  int delta = ei.resource - cursor;
  if (delta < 0) delta += num_resources_;
  return static_cast<double>(delta);
}

}  // namespace pullmon
