#ifndef PULLMON_POLICIES_S_EDF_H_
#define PULLMON_POLICIES_S_EDF_H_

#include <string>

#include "core/policy.h"

namespace pullmon {

/// Single-interval Earliest Deadline First (Section 4.2.2, single-EI
/// level): prefers the candidate EI with the fewest remaining chronons,
/// S-EDF(I, T) = I.T_f - T. EDF is the classical baseline; it is optimal
/// for rank-1 instances (individual execution intervals) and serves as
/// the evaluation baseline in the paper.
class SEdfPolicy : public Policy {
 public:
  std::string name() const override { return "S-EDF"; }
  PolicyLevel level() const override { return PolicyLevel::kSingleEi; }

  double Score(const ExecutionInterval& ei, const TIntervalRuntime& parent,
               int ei_index, Chronon now) override;
};

}  // namespace pullmon

#endif  // PULLMON_POLICIES_S_EDF_H_
