#ifndef PULLMON_PULLMON_H_
#define PULLMON_PULLMON_H_

/// \file
/// Umbrella header: the full public API of the pullmon library —
/// pull-based online monitoring of volatile data sources (reproduction
/// of Roitman, Gal & Raschid, ICDE 2008). Include individual module
/// headers instead when compile time matters.

#define PULLMON_VERSION_MAJOR 1
#define PULLMON_VERSION_MINOR 0
#define PULLMON_VERSION_PATCH 0
#define PULLMON_VERSION_STRING "1.0.0"

// Core model and execution.
#include "core/chronon.h"              // IWYU pragma: export
#include "core/completeness.h"         // IWYU pragma: export
#include "core/dynamic_monitor.h"      // IWYU pragma: export
#include "core/execution_interval.h"   // IWYU pragma: export
#include "core/online_executor.h"      // IWYU pragma: export
#include "core/overlap_analysis.h"     // IWYU pragma: export
#include "core/policy.h"               // IWYU pragma: export
#include "core/problem.h"              // IWYU pragma: export
#include "core/profile.h"              // IWYU pragma: export
#include "core/schedule.h"             // IWYU pragma: export
#include "core/schedule_io.h"          // IWYU pragma: export
#include "core/t_interval.h"           // IWYU pragma: export

// Online policies.
#include "policies/baselines.h"        // IWYU pragma: export
#include "policies/m_edf.h"            // IWYU pragma: export
#include "policies/mrsf.h"             // IWYU pragma: export
#include "policies/policy_factory.h"   // IWYU pragma: export
#include "policies/s_edf.h"            // IWYU pragma: export
#include "policies/weighted.h"         // IWYU pragma: export

// Offline solvers.
#include "offline/exact_solver.h"      // IWYU pragma: export
#include "offline/greedy_offline.h"    // IWYU pragma: export
#include "offline/incremental_edf.h"   // IWYU pragma: export
#include "offline/local_ratio.h"       // IWYU pragma: export
#include "offline/probe_assignment.h"  // IWYU pragma: export
#include "offline/simplex.h"           // IWYU pragma: export
#include "offline/transform.h"         // IWYU pragma: export

// Update traces, generators, estimation.
#include "estimation/forecaster.h"         // IWYU pragma: export
#include "estimation/periodic_detector.h"  // IWYU pragma: export
#include "estimation/rate_estimator.h"     // IWYU pragma: export
#include "trace/auction_generator.h"       // IWYU pragma: export
#include "trace/feed_workload.h"           // IWYU pragma: export
#include "trace/perturb.h"                 // IWYU pragma: export
#include "trace/page_codec.h"              // IWYU pragma: export
#include "trace/poisson_generator.h"       // IWYU pragma: export
#include "trace/trace_io.h"                // IWYU pragma: export
#include "trace/trace_store.h"             // IWYU pragma: export
#include "trace/update_model.h"            // IWYU pragma: export
#include "trace/update_trace.h"            // IWYU pragma: export

// Web feed substrate.
#include "feeds/atom.h"             // IWYU pragma: export
#include "feeds/ebay_feed.h"        // IWYU pragma: export
#include "feeds/fault_injection.h"  // IWYU pragma: export
#include "feeds/feed_item.h"        // IWYU pragma: export
#include "feeds/feed_server.h"      // IWYU pragma: export
#include "feeds/parse_cache.h"      // IWYU pragma: export
#include "feeds/rss.h"              // IWYU pragma: export
#include "feeds/xml.h"              // IWYU pragma: export

// Profile generation and simulation harness.
#include "profilegen/auction_watch.h"      // IWYU pragma: export
#include "profilegen/profile_generator.h"  // IWYU pragma: export
#include "sim/churn.h"                     // IWYU pragma: export
#include "sim/config.h"                    // IWYU pragma: export
#include "sim/experiment.h"                // IWYU pragma: export
#include "sim/proxy.h"                     // IWYU pragma: export
#include "sim/report.h"                    // IWYU pragma: export

// Utilities.
#include "util/arena.h"          // IWYU pragma: export
#include "util/csv.h"            // IWYU pragma: export
#include "util/datetime.h"       // IWYU pragma: export
#include "util/flags.h"          // IWYU pragma: export
#include "util/logging.h"        // IWYU pragma: export
#include "util/random.h"         // IWYU pragma: export
#include "util/stats.h"          // IWYU pragma: export
#include "util/status.h"         // IWYU pragma: export
#include "util/string_util.h"    // IWYU pragma: export
#include "util/table_printer.h"  // IWYU pragma: export
#include "util/zipf.h"           // IWYU pragma: export

#endif  // PULLMON_PULLMON_H_
