#include "profilegen/profile_generator.h"

#include <set>

#include "profilegen/auction_watch.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace pullmon {

Result<std::vector<ResourceId>> DrawDistinctResources(int count, int n,
                                                      double alpha,
                                                      Rng* rng) {
  if (count <= 0) {
    return Status::InvalidArgument("resource count must be positive");
  }
  if (count > n) {
    return Status::InvalidArgument(StringFormat(
        "cannot draw %d distinct resources from %d", count, n));
  }
  ZipfDistribution zipf(alpha, static_cast<uint64_t>(n));
  std::set<ResourceId> chosen;
  // Rejection sampling; for pathological cases (count close to n under a
  // steep alpha) fall back to filling with the most popular unchosen ids.
  int attempts = 0;
  const int max_attempts = 64 * count + 1024;
  while (static_cast<int>(chosen.size()) < count &&
         attempts < max_attempts) {
    chosen.insert(static_cast<ResourceId>(zipf.Sample(rng) - 1));
    ++attempts;
  }
  for (ResourceId r = 0;
       static_cast<int>(chosen.size()) < count && r < n; ++r) {
    chosen.insert(r);
  }
  return std::vector<ResourceId>(chosen.begin(), chosen.end());
}

namespace {

/// The generator body, templated over the trace backend — both expose
/// num_resources() and a MakeAuctionWatchProfile overload, which is all
/// the draw consumes.
template <typename Trace>
Result<std::vector<Profile>> GenerateProfilesImpl(
    const Trace& trace, const ProfileGeneratorOptions& options,
    Rng* rng) {
  if (options.num_profiles <= 0) {
    return Status::InvalidArgument("num_profiles must be positive");
  }
  if (options.max_rank <= 0) {
    return Status::InvalidArgument("max_rank must be positive");
  }
  if (options.max_rank > trace.num_resources()) {
    return Status::InvalidArgument(
        "max_rank exceeds the number of resources");
  }
  ZipfDistribution rank_dist(options.beta,
                             static_cast<uint64_t>(options.max_rank));
  std::vector<Profile> profiles;
  profiles.reserve(static_cast<std::size_t>(options.num_profiles));

  for (int i = 0; i < options.num_profiles; ++i) {
    Profile profile;
    // A profile over resources with no trace activity has no t-intervals;
    // redraw its resources a few times before accepting it as empty.
    for (int attempt = 0; attempt < 16; ++attempt) {
      int rank = static_cast<int>(rank_dist.Sample(rng));
      PULLMON_ASSIGN_OR_RETURN(
          std::vector<ResourceId> resources,
          DrawDistinctResources(rank, trace.num_resources(), options.alpha,
                                rng));
      PULLMON_ASSIGN_OR_RETURN(
          profile,
          MakeAuctionWatchProfile(trace, resources, options.ei_options));
      if (!profile.empty()) break;
    }
    if (profile.empty()) continue;  // trace too sparse for this draw
    if (options.max_t_intervals_per_profile > 0 &&
        static_cast<int>(profile.size()) >
            options.max_t_intervals_per_profile) {
      std::vector<TInterval> truncated(
          profile.t_intervals().begin(),
          profile.t_intervals().begin() +
              options.max_t_intervals_per_profile);
      std::string name = profile.name();
      profile = Profile(std::move(name), std::move(truncated));
    }
    profile.set_name(StringFormat("%s#%d", profile.name().c_str(), i));
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace

Result<std::vector<Profile>> GenerateProfiles(
    const UpdateTrace& trace, const ProfileGeneratorOptions& options,
    Rng* rng) {
  return GenerateProfilesImpl(trace, options, rng);
}

Result<std::vector<Profile>> GenerateProfiles(
    const TraceStore& trace, const ProfileGeneratorOptions& options,
    Rng* rng) {
  return GenerateProfilesImpl(trace, options, rng);
}

}  // namespace pullmon
