#ifndef PULLMON_PROFILEGEN_PROFILE_GENERATOR_H_
#define PULLMON_PROFILEGEN_PROFILE_GENERATOR_H_

#include <vector>

#include "core/profile.h"
#include "trace/update_model.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// Knobs of the three-stage synthetic profile generator of Section 5.1.
struct ProfileGeneratorOptions {
  /// m: number of profiles to generate.
  int num_profiles = 0;
  /// k: maximal rank. Each profile's rank is drawn from Zipf(beta, k).
  int max_rank = 1;
  /// Inter-user preference: resources are drawn from Zipf(alpha, n);
  /// alpha = 0 is uniform, larger values concentrate on "popular"
  /// resources (Web feeds exhibit alpha = 1.37 per [10]).
  double alpha = 0.0;
  /// Intra-user preference: beta = 0 draws ranks uniformly from [1, k];
  /// larger values prefer less complex profiles.
  double beta = 0.0;
  /// Overwrite or window(W) restriction for EI lengths.
  EiDerivationOptions ei_options;
  /// Caps the number of t-intervals per profile; 0 = uncapped (every
  /// update round in the trace becomes a t-interval).
  int max_t_intervals_per_profile = 0;
};

/// Generates m profiles against an update trace:
///  1. rank ~ Zipf(beta, k)                     (intra-user preference)
///  2. `rank` distinct resources ~ Zipf(alpha, n) (inter-user preference)
///  3. t-intervals instantiated with the AuctionWatch(rank) template
///     under the configured EI length restriction.
/// Profiles whose resources carry no updates get zero t-intervals and
/// are regenerated with fresh resources (up to a bounded number of
/// retries) so that m non-degenerate profiles are returned whenever the
/// trace allows it; otherwise the short list is returned.
Result<std::vector<Profile>> GenerateProfiles(
    const UpdateTrace& trace, const ProfileGeneratorOptions& options,
    Rng* rng);

/// Paged-store variant: same three-stage draw (consumes `rng`
/// identically to the UpdateTrace overload when the backing events are
/// equal), with EIs derived through the store's page cache.
Result<std::vector<Profile>> GenerateProfiles(
    const TraceStore& trace, const ProfileGeneratorOptions& options,
    Rng* rng);

/// Draws `count` distinct resource ids from Zipf(alpha, n). The Zipf
/// rank order coincides with resource ids (resource 0 most popular),
/// matching how feed popularity is indexed in the paper's setup.
/// InvalidArgument when count > n.
Result<std::vector<ResourceId>> DrawDistinctResources(int count, int n,
                                                      double alpha,
                                                      Rng* rng);

}  // namespace pullmon

#endif  // PULLMON_PROFILEGEN_PROFILE_GENERATOR_H_
