#ifndef PULLMON_PROFILEGEN_AUCTION_WATCH_H_
#define PULLMON_PROFILEGEN_AUCTION_WATCH_H_

#include <vector>

#include "core/profile.h"
#include "trace/update_model.h"
#include "trace/update_trace.h"
#include "util/status.h"

namespace pullmon {

/// The "AuctionWatch(k)" profile template of Section 5.1: monitor an
/// item sold in k parallel auctions and notify the user once a new bid
/// was posted in *all* of them. Given the update trace and the chosen
/// resources {r_1, ..., r_k}, the i-th t-interval combines the execution
/// interval opened by the i-th update of every resource (each EI's
/// length determined by the overwrite / window(W) restriction); the
/// number of t-intervals is the minimum update count among the
/// resources. InvalidArgument if `resources` is empty or contains
/// duplicates/out-of-range ids.
Result<Profile> MakeAuctionWatchProfile(
    const UpdateTrace& trace, const std::vector<ResourceId>& resources,
    const EiDerivationOptions& ei_options);

/// Paged-store variant: identical combination rule, EIs derived through
/// the store's page cache so only the watched resources are decoded.
Result<Profile> MakeAuctionWatchProfile(
    const TraceStore& trace, const std::vector<ResourceId>& resources,
    const EiDerivationOptions& ei_options);

/// The arbitrage template of the paper's introduction (Figure 1): pairs
/// every EI of `market_a` with each *time-overlapping* EI of `market_b`
/// into rank-2 t-intervals, so a captured pair certifies two price
/// observations with a common time reference. Pairing is greedy
/// two-pointer (each EI used at most once) to avoid quadratic blowup.
Result<Profile> MakeArbitrageProfile(const UpdateTrace& trace,
                                     ResourceId market_a,
                                     ResourceId market_b,
                                     const EiDerivationOptions& ei_options);

}  // namespace pullmon

#endif  // PULLMON_PROFILEGEN_AUCTION_WATCH_H_
