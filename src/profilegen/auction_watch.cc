#include "profilegen/auction_watch.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace pullmon {

namespace {

/// Validation plus the round-wise combination rule, shared by both
/// trace backends; `derive` yields one resource's EIs.
template <typename DeriveEis>
Result<Profile> MakeAuctionWatchFromDeriver(
    int num_resources, const std::vector<ResourceId>& resources,
    DeriveEis&& derive) {
  if (resources.empty()) {
    return Status::InvalidArgument("AuctionWatch requires >= 1 resource");
  }
  std::set<ResourceId> unique(resources.begin(), resources.end());
  if (unique.size() != resources.size()) {
    return Status::InvalidArgument("duplicate resources in AuctionWatch");
  }
  for (ResourceId r : resources) {
    if (r < 0 || r >= num_resources) {
      return Status::OutOfRange(
          StringFormat("AuctionWatch resource %d outside trace", r));
    }
  }

  std::vector<std::vector<ExecutionInterval>> per_resource;
  per_resource.reserve(resources.size());
  std::size_t rounds = SIZE_MAX;
  for (ResourceId r : resources) {
    PULLMON_ASSIGN_OR_RETURN(std::vector<ExecutionInterval> eis,
                             derive(r));
    per_resource.push_back(std::move(eis));
    rounds = std::min(rounds, per_resource.back().size());
  }
  if (rounds == SIZE_MAX) rounds = 0;

  Profile profile(
      StringFormat("AuctionWatch(%zu)", resources.size()), {});
  for (std::size_t i = 0; i < rounds; ++i) {
    TInterval eta;
    for (const auto& eis : per_resource) eta.AddEi(eis[i]);
    profile.AddTInterval(std::move(eta));
  }
  return profile;
}

}  // namespace

Result<Profile> MakeAuctionWatchProfile(
    const UpdateTrace& trace, const std::vector<ResourceId>& resources,
    const EiDerivationOptions& ei_options) {
  return MakeAuctionWatchFromDeriver(
      trace.num_resources(), resources,
      [&](ResourceId r) -> Result<std::vector<ExecutionInterval>> {
        return DeriveExecutionIntervals(trace, r, ei_options);
      });
}

Result<Profile> MakeAuctionWatchProfile(
    const TraceStore& trace, const std::vector<ResourceId>& resources,
    const EiDerivationOptions& ei_options) {
  return MakeAuctionWatchFromDeriver(
      trace.num_resources(), resources,
      [&](ResourceId r) -> Result<std::vector<ExecutionInterval>> {
        return DeriveExecutionIntervals(trace, r, ei_options);
      });
}

Result<Profile> MakeArbitrageProfile(const UpdateTrace& trace,
                                     ResourceId market_a,
                                     ResourceId market_b,
                                     const EiDerivationOptions& ei_options) {
  if (market_a == market_b) {
    return Status::InvalidArgument("arbitrage needs two distinct markets");
  }
  for (ResourceId r : {market_a, market_b}) {
    if (r < 0 || r >= trace.num_resources()) {
      return Status::OutOfRange(
          StringFormat("arbitrage market %d outside trace", r));
    }
  }
  std::vector<ExecutionInterval> eis_a =
      DeriveExecutionIntervals(trace, market_a, ei_options);
  std::vector<ExecutionInterval> eis_b =
      DeriveExecutionIntervals(trace, market_b, ei_options);

  Profile profile("Arbitrage", {});
  std::size_t i = 0, j = 0;
  while (i < eis_a.size() && j < eis_b.size()) {
    if (eis_a[i].OverlapsInTime(eis_b[j])) {
      profile.AddTInterval(TInterval({eis_a[i], eis_b[j]}));
      ++i;
      ++j;
    } else if (eis_a[i].finish < eis_b[j].start) {
      ++i;
    } else {
      ++j;
    }
  }
  return profile;
}

}  // namespace pullmon
