#include "recovery/checkpoint.h"

#include <algorithm>

#include "util/string_util.h"

namespace pullmon {

namespace {
constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".pmsnap";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".pmwal";

std::string PaddedChronon(Chronon chronon) {
  std::string digits = std::to_string(chronon);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return digits;
}

Chronon ParseNumbered(const std::string& name, const char* prefix,
                      const char* suffix) {
  const std::string p(prefix);
  const std::string s(suffix);
  if (name.size() <= p.size() + s.size()) return -1;
  if (name.compare(0, p.size(), p) != 0) return -1;
  if (name.compare(name.size() - s.size(), s.size(), s) != 0) return -1;
  Chronon value = 0;
  for (std::size_t i = p.size(); i < name.size() - s.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}
}  // namespace

std::string SnapshotFileName(Chronon chronon) {
  return kSnapshotPrefix + PaddedChronon(chronon) + kSnapshotSuffix;
}

std::string WalFileName(Chronon chronon) {
  return kWalPrefix + PaddedChronon(chronon) + kWalSuffix;
}

Chronon ParseSnapshotFileName(const std::string& name) {
  return ParseNumbered(name, kSnapshotPrefix, kSnapshotSuffix);
}

Status WriteSnapshotFile(StableStorage* storage,
                         const ProxySnapshot& snapshot) {
  return storage->WriteFile(SnapshotFileName(snapshot.chronon),
                            EncodeSnapshot(snapshot));
}

Result<LoadedCheckpoint> LoadNewestCheckpoint(StableStorage* storage,
                                              std::uint64_t fingerprint) {
  PULLMON_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           storage->ListFiles());
  // Snapshot names sort by chronon (zero padding); walk newest first.
  std::vector<std::pair<Chronon, std::string>> snapshots;
  for (const std::string& name : names) {
    const Chronon chronon = ParseSnapshotFileName(name);
    if (chronon >= 0) snapshots.emplace_back(chronon, name);
  }
  std::sort(snapshots.begin(), snapshots.end());

  LoadedCheckpoint loaded;
  loaded.snapshots_seen = snapshots.size();
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto bytes = storage->ReadFile(it->second);
    if (!bytes.ok()) {
      ++loaded.snapshots_rejected;
      continue;
    }
    auto snapshot = DecodeSnapshot(*bytes);
    if (!snapshot.ok()) {
      ++loaded.snapshots_rejected;
      continue;
    }
    if (snapshot->fingerprint != fingerprint) {
      return Status::FailedPrecondition(StringFormat(
          "checkpoint %s was written by a different configuration "
          "(fingerprint %016llx, expected %016llx)",
          it->second.c_str(),
          static_cast<unsigned long long>(snapshot->fingerprint),
          static_cast<unsigned long long>(fingerprint)));
    }
    loaded.found = true;
    loaded.snapshot = std::move(*snapshot);

    // Read the generation's WAL under the torn-tail rule and make the
    // truncation durable, so the resumed run appends to an intact log.
    const std::string wal_name = WalFileName(it->first);
    auto wal_bytes = storage->ReadFile(wal_name);
    if (wal_bytes.ok()) {
      PULLMON_ASSIGN_OR_RETURN(loaded.wal, ReadWal(*wal_bytes));
      if (loaded.wal.torn_bytes > 0) {
        PULLMON_RETURN_NOT_OK(
            storage->TruncateFile(wal_name, loaded.wal.valid_bytes));
      }
    }
    // Drop newer generations that failed validation — they must never
    // shadow this one on a second recovery.
    for (auto newer = it.base(); newer != snapshots.end(); ++newer) {
      PULLMON_RETURN_NOT_OK(storage->RemoveFile(newer->second));
      PULLMON_RETURN_NOT_OK(storage->RemoveFile(WalFileName(newer->first)));
    }
    return loaded;
  }
  return loaded;  // found == false; counts say why
}

Status PruneCheckpoints(StableStorage* storage, Chronon keep_from) {
  PULLMON_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           storage->ListFiles());
  for (const std::string& name : names) {
    const Chronon chronon = ParseSnapshotFileName(name);
    if (chronon >= 0 && chronon < keep_from) {
      PULLMON_RETURN_NOT_OK(storage->RemoveFile(name));
      PULLMON_RETURN_NOT_OK(storage->RemoveFile(WalFileName(chronon)));
    }
  }
  return Status::OK();
}

Status ClearCheckpoints(StableStorage* storage) {
  PULLMON_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           storage->ListFiles());
  for (const std::string& name : names) {
    if (ParseSnapshotFileName(name) >= 0 ||
        ParseNumbered(name, kWalPrefix, kWalSuffix) >= 0) {
      PULLMON_RETURN_NOT_OK(storage->RemoveFile(name));
    }
  }
  return Status::OK();
}

}  // namespace pullmon
