#include "recovery/durable_runner.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/dynamic_monitor.h"
#include "policies/policy_factory.h"
#include "recovery/checkpoint.h"
#include "recovery/recovery_codec.h"
#include "recovery/wal.h"
#include "sim/churn.h"
#include "trace/page_codec.h"
#include "util/string_util.h"

namespace pullmon {

Status DurableOptions::Validate() const {
  if (storage == nullptr) {
    return Status::InvalidArgument("durable run needs a storage backend");
  }
  if (checkpoint_every < 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 0");
  }
  if (snapshot_wal_bytes == 0) {
    return Status::InvalidArgument("snapshot_wal_bytes must be > 0");
  }
  return Status::OK();
}

namespace {

std::uint64_t Fnv64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t RunFingerprint(const SimulationConfig& config,
                             const PolicySpec& spec, std::uint64_t seed) {
  // Canonical full-precision serialization of everything the run's
  // behavior depends on; a changed knob changes the fingerprint and the
  // snapshot is refused. (The WAL verification during replay is the
  // backstop for anything a hash collision would let through.)
  std::string bytes;
  AppendVarint(static_cast<std::uint64_t>(config.dataset), &bytes);
  AppendSigned(config.num_resources, &bytes);
  AppendSigned(config.epoch_length, &bytes);
  AppendSigned(config.num_profiles, &bytes);
  AppendSigned(config.max_rank, &bytes);
  AppendDouble(config.lambda, &bytes);
  AppendDouble(config.alpha, &bytes);
  AppendDouble(config.beta, &bytes);
  AppendVarint(static_cast<std::uint64_t>(config.restriction), &bytes);
  AppendSigned(config.window, &bytes);
  AppendSigned(config.budget, &bytes);
  AppendSigned(config.max_t_intervals_per_profile, &bytes);
  const AuctionTraceOptions& a = config.auction;
  AppendDouble(a.mean_duration_fraction, &bytes);
  AppendDouble(a.base_bid_rate, &bytes);
  AppendDouble(a.snipe_intensity, &bytes);
  AppendDouble(a.snipe_tau_fraction, &bytes);
  AppendDouble(a.start_price_min, &bytes);
  AppendDouble(a.start_price_max, &bytes);
  AppendDouble(a.increment_mean, &bytes);
  AppendSigned(a.num_bidders, &bytes);
  bytes.push_back(a.seed_opening_bid ? 1 : 0);
  const FeedWorkloadOptions& fw = config.feed_workload;
  AppendSigned(fw.chronons_per_hour, &bytes);
  AppendDouble(fw.periodic_fraction, &bytes);
  AppendDouble(fw.period_jitter, &bytes);
  AppendDouble(fw.period_spread, &bytes);
  AppendDouble(fw.aperiodic_lambda, &bytes);
  AppendDouble(fw.popularity_alpha, &bytes);
  const FaultOptions& f = config.faults;
  AppendDouble(f.timeout_rate, &bytes);
  AppendDouble(f.server_error_rate, &bytes);
  AppendDouble(f.truncation_rate, &bytes);
  AppendDouble(f.corruption_rate, &bytes);
  AppendDouble(f.etag_storm_rate, &bytes);
  AppendSigned(f.etag_storm_length, &bytes);
  AppendDouble(f.latency_mean, &bytes);
  AppendDouble(f.latency_timeout, &bytes);
  AppendDouble(f.outage_enter_rate, &bytes);
  AppendDouble(f.outage_exit_rate, &bytes);
  AppendFixed64(config.fault_seed, &bytes);
  AppendSigned(config.retry.max_retries, &bytes);
  AppendDouble(config.retry.backoff_base, &bytes);
  AppendDouble(config.retry.backoff_multiplier, &bytes);
  AppendDouble(config.retry.backoff_budget, &bytes);
  const BreakerOptions& b = config.breaker;
  bytes.push_back(b.enabled ? 1 : 0);
  AppendSigned(b.failure_threshold, &bytes);
  AppendSigned(b.cooldown_base, &bytes);
  AppendDouble(b.cooldown_multiplier, &bytes);
  AppendSigned(b.max_cooldown, &bytes);
  AppendDouble(b.ewma_alpha, &bytes);
  AppendVarint(static_cast<std::uint64_t>(config.executor_backend), &bytes);
  AppendSigned(config.feed_buffer_capacity, &bytes);
  bytes.push_back(config.parse_cache ? 1 : 0);
  const ChurnOptions& c = config.churn;
  bytes.push_back(c.enabled ? 1 : 0);
  AppendDouble(c.ops_per_chronon, &bytes);
  AppendDouble(c.cancel_fraction, &bytes);
  AppendDouble(c.edit_fraction, &bytes);
  AppendDouble(c.unregister_fraction, &bytes);
  AppendDouble(c.zipf_theta, &bytes);
  AppendFixed64(c.seed, &bytes);
  AppendVarint(static_cast<std::uint64_t>(config.trace_backend), &bytes);
  AppendVarint(config.trace_store.page_size, &bytes);
  AppendVarint(config.trace_store.cache_pages, &bytes);
  AppendLengthPrefixed(spec.policy, &bytes);
  AppendVarint(static_cast<std::uint64_t>(spec.mode), &bytes);
  AppendFixed64(seed, &bytes);
  return Fnv64(bytes);
}

Result<ProxyRunReport> RunDurableOnce(const SimulationConfig& config,
                                      const PolicySpec& spec,
                                      std::uint64_t seed,
                                      const DurableOptions& options) {
  PULLMON_RETURN_NOT_OK(options.Validate());
  PULLMON_RETURN_NOT_OK(config.churn.Validate());
  PULLMON_RETURN_NOT_OK(config.faults.Validate());
  PULLMON_RETURN_NOT_OK(config.retry.Validate());
  PULLMON_RETURN_NOT_OK(config.breaker.Validate());
  const std::uint64_t fingerprint = RunFingerprint(config, spec, seed);

  // --- The simulation substrate, built exactly like RunChurnOnce: the
  // --- problem instance, trace, network, policy, monitor, and churn
  // --- workload are pure functions of (config, spec, seed), which is
  // --- why none of them live in the snapshot.
  UpdateTrace trace(0, 0);
  std::optional<TraceStore> store;
  PULLMON_ASSIGN_OR_RETURN(MonitoringProblem problem,
                           BuildProblem(config, seed, &trace, &store));
  const auto buffer_capacity = static_cast<std::size_t>(
      config.feed_buffer_capacity < 1 ? 1 : config.feed_buffer_capacity);
  std::optional<FeedNetwork> network_holder;
  if (store.has_value()) {
    network_holder.emplace(&*store, buffer_capacity);
  } else {
    network_holder.emplace(&trace, buffer_capacity);
  }
  FeedNetwork& network = *network_holder;
  PolicyOptions po;
  po.random_seed = seed ^ 0x5bf03635ULL;
  po.num_resources = problem.num_resources;
  PULLMON_ASSIGN_OR_RETURN(std::unique_ptr<Policy> policy,
                           MakePolicy(spec.policy, po));

  MonitorOptions mo;
  mo.retry = config.retry;
  mo.breaker = config.breaker;
  mo.maintenance = config.executor_backend == ExecutorBackend::kReference
                       ? MonitorIndexMode::kRebuild
                       : MonitorIndexMode::kIncremental;
  DynamicMonitor monitor(problem.num_resources, problem.epoch.length,
                         problem.budget, policy.get(), spec.mode, mo);

  ProxyRunReport report;
  ProxyOptions popts;
  popts.faults = config.faults;
  popts.fault_seed = config.fault_seed ^ (seed * 0x9E3779B97F4A7C15ULL);
  popts.retry = config.retry;
  popts.breaker = config.breaker;
  popts.parse_cache = config.parse_cache;
  FeedPullSession session(&network, problem.num_resources, popts, &report);

  // Every probe outcome is captured for the chronon's WAL group (or
  // verified against it during replay).
  WalChronon current;
  monitor.set_probe_callback([&](ResourceId resource, Chronon now) {
    const bool success = session.Probe(resource, now);
    current.probes.push_back(
        WalProbeRecord{resource, static_cast<std::uint8_t>(success ? 1 : 0)});
    return success;
  });

  const Chronon epoch_length = problem.epoch.length;
  ChurnWorkload workload = GenerateChurnWorkload(
      config.churn, static_cast<int>(problem.profiles.size()), epoch_length,
      config.churn.seed ^ (seed * 0x9E3779B97F4A7C15ULL));
  std::vector<std::vector<TInterval>> defs(problem.profiles.size());

  // All durable writes of the run itself go through the crash wrapper;
  // the recovery scan below reads the raw storage (it models the *next*
  // process, which the planned kill does not touch).
  CrashInjectedStorage storage(options.storage, options.crash);

  Chronon start = 0;
  std::vector<WalChronon> replay;
  std::size_t wal_base_bytes = 0;
  Chronon generation = -1;
  std::optional<WalWriter> wal;
  bool restored = false;

  if (options.recover) {
    PULLMON_ASSIGN_OR_RETURN(
        LoadedCheckpoint loaded,
        LoadNewestCheckpoint(options.storage, fingerprint));
    if (loaded.found) {
      PULLMON_RETURN_NOT_OK(monitor.Restore(loaded.snapshot.monitor));
      PULLMON_RETURN_NOT_OK(session.Restore(loaded.snapshot.session));
      report.feeds_fetched = loaded.snapshot.feeds_fetched;
      report.not_modified = loaded.snapshot.not_modified;
      report.feed_bytes = loaded.snapshot.feed_bytes;
      report.items_parsed = loaded.snapshot.items_parsed;
      report.parse_failures = loaded.snapshot.parse_failures;
      report.corrupt_bodies = loaded.snapshot.corrupt_bodies;
      report.timeouts = loaded.snapshot.timeouts;
      report.server_errors = loaded.snapshot.server_errors;
      report.outage_probes = loaded.snapshot.outage_probes;
      report.notifications_delivered =
          loaded.snapshot.notifications_delivered;
      report.churn_rejected_ops = loaded.snapshot.churn_rejected_ops;
      // The defs shadow regrows from the submission images: flat order
      // is acceptance order, which is exactly how the original run
      // appended them per profile.
      for (const MonitorSubmissionImage& sub :
           loaded.snapshot.monitor.submissions) {
        defs[static_cast<std::size_t>(sub.profile)].push_back(
            sub.definition);
      }
      start = loaded.snapshot.chronon;
      generation = start;
      replay = std::move(loaded.wal.chronons);
      wal_base_bytes = loaded.wal.valid_bytes;
      wal.emplace(&storage, WalFileName(generation));
      restored = true;
      report.recovery_snapshots_loaded = 1;
      report.recovery_snapshots_rejected = loaded.snapshots_rejected;
      report.recovery_torn_tail_truncated = loaded.wal.torn_bytes;
    } else if (loaded.snapshots_seen == 0) {
      return Status::NotFound(
          "nothing to recover: the checkpoint directory holds no "
          "snapshots");
    } else {
      // Every durable generation was torn or corrupt — the crash hit
      // before the first snapshot completed. Nothing valid exists to
      // replay, so the run starts from scratch (counting what it
      // refused to trust).
      report.recovery_snapshots_rejected = loaded.snapshots_rejected;
    }
  }

  if (!restored) {
    PULLMON_RETURN_NOT_OK(ClearCheckpoints(options.storage));
    for (const Profile& p : problem.profiles) {
      monitor.RegisterProfile(p.name());
    }
  }

  // Arrivals bucketed by reveal chronon, as in RunChurnOnce. Profile
  // ids are assignment-ordered in both the fresh and restored paths, so
  // index i of problem.profiles is ProfileId i.
  std::vector<std::vector<std::pair<ProfileId, const TInterval*>>> arrivals(
      static_cast<std::size_t>(epoch_length));
  for (std::size_t i = 0; i < problem.profiles.size(); ++i) {
    const Profile& p = problem.profiles[i];
    for (const TInterval& eta : p.t_intervals()) {
      if (eta.empty()) continue;
      Chronon at = eta.EarliestStart();
      if (at < 0 || at >= epoch_length) continue;
      arrivals[static_cast<std::size_t>(at)].emplace_back(
          static_cast<ProfileId>(i), &eta);
    }
  }

  std::size_t next_event = 0;
  while (next_event < workload.events.size() &&
         workload.events[next_event].chronon < start) {
    ++next_event;
  }

  std::size_t replay_idx = 0;
  const auto run_start = std::chrono::steady_clock::now();
  for (Chronon now = start; now < epoch_length; ++now) {
    storage.SetChronon(now);
    const bool replaying = replay_idx < replay.size();

    // --- Checkpoint decision at the boundary, before the chronon
    // --- executes. Never during replay: generation `start` already
    // --- covers those chronons durably.
    if (!replaying) {
      const std::size_t wal_bytes =
          wal_base_bytes + (wal.has_value() ? wal->bytes_flushed() : 0);
      const bool due =
          !wal.has_value() ||
          (options.checkpoint_every > 0 && now != generation &&
           now % options.checkpoint_every == 0) ||
          (now != generation && wal_bytes >= options.snapshot_wal_bytes);
      if (due) {
        ProxySnapshot snapshot;
        snapshot.fingerprint = fingerprint;
        snapshot.chronon = now;
        snapshot.monitor = monitor.Capture();
        snapshot.session = session.Capture();
        snapshot.feeds_fetched = report.feeds_fetched;
        snapshot.not_modified = report.not_modified;
        snapshot.feed_bytes = report.feed_bytes;
        snapshot.items_parsed = report.items_parsed;
        snapshot.parse_failures = report.parse_failures;
        snapshot.corrupt_bodies = report.corrupt_bodies;
        snapshot.timeouts = report.timeouts;
        snapshot.server_errors = report.server_errors;
        snapshot.outage_probes = report.outage_probes;
        snapshot.notifications_delivered = report.notifications_delivered;
        snapshot.churn_rejected_ops = report.churn_rejected_ops;
        PULLMON_RETURN_NOT_OK(WriteSnapshotFile(&storage, snapshot));
        ++report.recovery_snapshots_written;
        generation = now;
        wal_base_bytes = 0;
        wal.emplace(&storage, WalFileName(generation));
        PULLMON_RETURN_NOT_OK(PruneCheckpoints(&storage, generation));
      }
    }

    // --- Execute the chronon, accumulating its WAL group. -------------
    current = WalChronon{};
    current.chronon = now;
    for (const auto& [pid, eta] :
         arrivals[static_cast<std::size_t>(now)]) {
      auto submitted = monitor.Submit(pid, *eta);
      WalChurnRecord op;
      op.kind = 3;  // arrival submit
      op.profile = pid;
      op.accepted = submitted.ok() ? 1 : 0;
      op.submission = submitted.ok() ? *submitted : -1;
      if (submitted.ok()) {
        defs[static_cast<std::size_t>(pid)].push_back(*eta);
      } else {
        ++report.churn_rejected_ops;
      }
      current.churn.push_back(op);
    }
    while (next_event < workload.events.size() &&
           workload.events[next_event].chronon == now) {
      const ChurnEvent& event = workload.events[next_event++];
      auto pid = static_cast<std::size_t>(event.profile);
      int count = static_cast<int>(defs[pid].size());
      int sub = count > 0 ? static_cast<int>(
                                event.pick % static_cast<std::uint64_t>(count))
                          : 0;
      WalChurnRecord op;
      op.profile = event.profile;
      op.submission = sub;
      switch (event.kind) {
        case ChurnEvent::Kind::kCancel: {
          op.kind = 0;
          op.accepted = monitor.Cancel(event.profile, sub).ok() ? 1 : 0;
          if (op.accepted == 0) ++report.churn_rejected_ops;
          break;
        }
        case ChurnEvent::Kind::kEdit: {
          op.kind = 1;
          TInterval replacement;
          if (count > 0) {
            replacement = BuildEditReplacement(
                defs[pid][static_cast<std::size_t>(sub)], now, epoch_length,
                event.deadline_delta, event.weight_factor);
          }
          auto edited = monitor.Edit(event.profile, sub, replacement);
          op.accepted = edited.ok() ? 1 : 0;
          if (edited.ok()) {
            defs[pid].push_back(std::move(replacement));
          } else {
            ++report.churn_rejected_ops;
          }
          break;
        }
        case ChurnEvent::Kind::kUnregister: {
          op.kind = 2;
          op.accepted = monitor.Unregister(event.profile).ok() ? 1 : 0;
          if (op.accepted == 0) ++report.churn_rejected_ops;
          break;
        }
      }
      current.churn.push_back(op);
    }
    PULLMON_ASSIGN_OR_RETURN(StepResult step, monitor.Step());
    report.notifications_delivered += step.captured.size();

    if (replaying) {
      // Recovery replay: the re-executed chronon must match the audit
      // trail the pre-crash process committed — any divergence means
      // the state or configuration is not what the WAL was written
      // under, and resuming would silently corrupt the run.
      const WalChronon& expected = replay[replay_idx++];
      if (expected.chronon != now || expected.churn != current.churn ||
          expected.probes != current.probes) {
        return Status::Internal(StringFormat(
            "WAL replay divergence at chronon %d: the re-executed "
            "chronon does not match the committed log",
            now));
      }
      report.recovery_wal_records_replayed +=
          expected.churn.size() + expected.probes.size() + 2;
    } else {
      wal->LogChrononStart(now);
      for (const WalChurnRecord& op : current.churn) wal->LogChurn(op);
      for (const WalProbeRecord& probe : current.probes) {
        wal->LogProbe(probe);
      }
      PULLMON_RETURN_NOT_OK(wal->CommitChronon(now));
      report.recovery_wal_records_logged +=
          current.churn.size() + current.probes.size() + 2;
    }
  }
  const auto run_end = std::chrono::steady_clock::now();

  report.run.elapsed_seconds =
      std::chrono::duration<double>(run_end - run_start).count();
  FinalizeChurnReport(monitor, config.breaker.enabled, &session, &report);
  return report;
}

}  // namespace pullmon
