#ifndef PULLMON_RECOVERY_CRASH_PLAN_H_
#define PULLMON_RECOVERY_CRASH_PLAN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/chronon.h"
#include "recovery/stable_storage.h"
#include "util/status.h"

namespace pullmon {

/// Where the crash-injection harness kills the run: the first byte
/// written at or after `chronon` once `write_offset` bytes of durable
/// writes have been permitted. The write in flight is torn — its prefix
/// reaches storage, the rest never does — which is exactly the tail
/// state a real process kill leaves behind. chronon < 0 disarms.
struct CrashPlan {
  Chronon chronon = -1;
  std::size_t write_offset = 0;

  bool Armed() const { return chronon >= 0; }
};

/// Storage wrapper that simulates a process kill per a CrashPlan. The
/// durable runner advances it with SetChronon() at every boundary; once
/// the plan's chronon is reached, every byte written through the
/// wrapper draws down the write_offset allowance, and the write that
/// exhausts it is torn (prefix persisted) and fails with
/// Status::Aborted. All later operations also fail Aborted — the
/// process is dead; only recovery from the inner storage remains.
class CrashInjectedStorage : public StableStorage {
 public:
  /// `inner` must outlive the wrapper; no ownership taken.
  CrashInjectedStorage(StableStorage* inner, CrashPlan plan)
      : inner_(inner), plan_(plan) {}

  /// Arms the byte counter when `now` reaches the plan's chronon.
  void SetChronon(Chronon now) {
    if (plan_.Armed() && now >= plan_.chronon) armed_ = true;
  }

  /// True once the simulated kill has fired.
  bool crashed() const { return crashed_; }

  Status WriteFile(const std::string& name,
                   std::string_view bytes) override;
  Status AppendFile(const std::string& name,
                    std::string_view bytes) override;
  Result<std::string> ReadFile(const std::string& name) const override;
  Status TruncateFile(const std::string& name, std::size_t size) override;
  Status RemoveFile(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() const override;

 private:
  /// Returns the number of bytes of `size` the plan lets through, and
  /// fires the crash when that is fewer than `size`.
  std::size_t Admit(std::size_t size);

  StableStorage* inner_;
  CrashPlan plan_;
  bool armed_ = false;
  bool crashed_ = false;
  std::size_t bytes_allowed_ = 0;
};

/// Flips one bit of `bytes` in place (bit_index counts from the low bit
/// of byte 0). Corruption harness for snapshot/WAL detection tests.
void FlipBit(std::string* bytes, std::size_t bit_index);

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_CRASH_PLAN_H_
