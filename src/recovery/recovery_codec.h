#ifndef PULLMON_RECOVERY_RECOVERY_CODEC_H_
#define PULLMON_RECOVERY_RECOVERY_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/dynamic_monitor.h"
#include "sim/proxy.h"
#include "util/status.h"

namespace pullmon {

/// Serialization of resumable proxy state (DESIGN.md section 15). The
/// codec reuses the trace page codec's discipline: LEB128 varints,
/// length-prefixed strings, and FNV-1a-32 checksums, with signed values
/// zigzag-encoded and raw 64-bit material (rng states, hashes, doubles)
/// stored as fixed little-endian words. Decoding never trusts the
/// input: truncated, overlong, or checksum-mangled bytes come back as a
/// Status, never a crash or a silent replay (fuzzed under asan, and the
/// recovery differential suite proves every single-bit flip detected).

// --- Write primitives (varints come from trace/page_codec.h). ---------

/// Appends `value` zigzag-mapped as a varint (small magnitudes of
/// either sign stay short).
void AppendSigned(std::int64_t value, std::string* out);

/// Appends `value` as 4 little-endian bytes.
void AppendFixed32(std::uint32_t value, std::string* out);

/// Appends `value` as 8 little-endian bytes.
void AppendFixed64(std::uint64_t value, std::string* out);

/// Appends the IEEE-754 bits of `value` as a fixed64.
void AppendDouble(double value, std::string* out);

/// Appends varint(size) + the raw bytes.
void AppendLengthPrefixed(std::string_view bytes, std::string* out);

// --- Read cursor. ------------------------------------------------------

/// Bounds-checked cursor over an encoded buffer; every Read* fails with
/// ParseError instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  Status ReadVarint(std::uint64_t* value);
  Status ReadSigned(std::int64_t* value);
  Status ReadFixed32(std::uint32_t* value);
  Status ReadFixed64(std::uint64_t* value);
  Status ReadDouble(double* value);
  Status ReadString(std::string* value);
  Status ReadByte(std::uint8_t* value);

  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

// --- Record framing shared by the snapshot file and the WAL. -----------

/// One decoded record frame: varint type | varint payload size |
/// payload | fixed32 FNV-1a checksum over everything before it.
struct RecordView {
  std::uint64_t type = 0;
  std::string_view payload;
  /// Total encoded size of the frame (cursor advance for the caller).
  std::size_t record_bytes = 0;
};

/// Appends one framed record to `out`.
void AppendRecord(std::uint64_t type, std::string_view payload,
                  std::string* out);

/// Decodes the record starting at bytes[0]. ParseError on truncation,
/// overlong varints, or a checksum mismatch — any torn or bit-flipped
/// frame is detected here, before its payload is ever interpreted.
Result<RecordView> DecodeRecord(std::string_view bytes);

// --- The proxy snapshot. ------------------------------------------------

/// Everything a resumed churn run needs at a chronon boundary that is
/// not re-derivable from (config, spec, seed): the monitor image, the
/// pull-session image, and the report counters the probe path mutates
/// live. The problem instance, trace, profiles, churn workload, policy,
/// and feed-network position are deliberately absent — they are pure
/// functions of the run configuration (DESIGN.md section 15 lists the
/// full argument).
struct ProxySnapshot {
  /// Fingerprint of (config, spec, seed); Restore under a different
  /// configuration is refused instead of silently diverging.
  std::uint64_t fingerprint = 0;
  /// The chronon the snapshot was taken at (== monitor.now).
  Chronon chronon = 0;
  MonitorImage monitor;
  PullSessionImage session;
  // Report counters owned by the probe path / runner loop (the rest of
  // ProxyRunReport is derived from component state at the end of the
  // run).
  std::size_t feeds_fetched = 0;
  std::size_t not_modified = 0;
  std::size_t feed_bytes = 0;
  std::size_t items_parsed = 0;
  std::size_t parse_failures = 0;
  std::size_t corrupt_bodies = 0;
  std::size_t timeouts = 0;
  std::size_t server_errors = 0;
  std::size_t outage_probes = 0;
  std::size_t notifications_delivered = 0;
  std::size_t churn_rejected_ops = 0;
};

/// Serializes a snapshot into a self-validating file: 4-byte magic,
/// varint format version, then one framed record holding the payload.
std::string EncodeSnapshot(const ProxySnapshot& snapshot);

/// Parses and validates a snapshot file (magic, version, checksum,
/// full payload decode). Any corruption is a ParseError.
Result<ProxySnapshot> DecodeSnapshot(std::string_view bytes);

/// Current snapshot format version.
inline constexpr std::uint64_t kSnapshotVersion = 1;

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_RECOVERY_CODEC_H_
