#ifndef PULLMON_RECOVERY_STABLE_STORAGE_H_
#define PULLMON_RECOVERY_STABLE_STORAGE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pullmon {

/// The durability substrate of the recovery layer (DESIGN.md section
/// 15): a flat namespace of named byte files with whole-file writes
/// (snapshots), appends (the write-ahead log), and truncation (the
/// torn-tail rule). Deliberately minimal — just enough surface for the
/// checkpoint/WAL protocol, small enough that the crash-injection
/// wrapper (crash_plan.h) can interpose on every byte written.
class StableStorage {
 public:
  virtual ~StableStorage() = default;

  /// Replaces (or creates) `name` with `bytes` in one logical write.
  virtual Status WriteFile(const std::string& name,
                           std::string_view bytes) = 0;

  /// Appends `bytes` to `name`, creating it when missing.
  virtual Status AppendFile(const std::string& name,
                            std::string_view bytes) = 0;

  /// The full contents of `name`; NotFound when it does not exist.
  virtual Result<std::string> ReadFile(const std::string& name) const = 0;

  /// Shrinks `name` to its first `size` bytes (no-op if already
  /// smaller); NotFound when it does not exist.
  virtual Status TruncateFile(const std::string& name,
                              std::size_t size) = 0;

  /// Deletes `name`; deleting a missing file is OK (idempotent).
  virtual Status RemoveFile(const std::string& name) = 0;

  /// Every file name present, sorted lexicographically.
  virtual Result<std::vector<std::string>> ListFiles() const = 0;
};

/// In-memory storage for tests and benchmarks: deterministic, no I/O
/// noise, contents directly inspectable (and corruptible) by harnesses.
class MemoryStorage : public StableStorage {
 public:
  Status WriteFile(const std::string& name,
                   std::string_view bytes) override;
  Status AppendFile(const std::string& name,
                    std::string_view bytes) override;
  Result<std::string> ReadFile(const std::string& name) const override;
  Status TruncateFile(const std::string& name, std::size_t size) override;
  Status RemoveFile(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() const override;

  /// Direct mutable access for corruption harnesses (nullptr when the
  /// file does not exist).
  std::string* MutableFile(const std::string& name);

 private:
  std::map<std::string, std::string> files_;
};

/// Real files under one directory — the CLI's --checkpoint-dir backend.
/// Snapshots are written via a temporary file + rename so a torn
/// whole-file write can never shadow a previously valid snapshot, and
/// both write paths are power-fail safe (DESIGN.md section 15,
/// durability residual b):
///  * AppendFile (the WAL group-flush boundary) fdatasync()s the log
///    before reporting success, so an acknowledged chronon's records
///    survive an OS crash — not just a process crash.
///  * WriteFile fdatasync()s the temporary before the rename and
///    fsync()s the directory after it, so the rename itself (the
///    snapshot commit point) is durable and cannot resurrect the old
///    snapshot after power loss.
class DirectoryStorage : public StableStorage {
 public:
  /// `directory` is created (with parents) when missing.
  explicit DirectoryStorage(std::string directory);

  /// IoError when the directory could not be created.
  Status Prepare();

  Status WriteFile(const std::string& name,
                   std::string_view bytes) override;
  Status AppendFile(const std::string& name,
                    std::string_view bytes) override;
  Result<std::string> ReadFile(const std::string& name) const override;
  Status TruncateFile(const std::string& name, std::size_t size) override;
  Status RemoveFile(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() const override;

  const std::string& directory() const { return directory_; }

  /// Successful fdatasync() calls on file data (one per append, one per
  /// whole-file write) — lets tests pin the durability protocol down.
  std::size_t data_syncs() const { return data_syncs_; }
  /// Successful fsync() calls on the directory (one per rename).
  std::size_t dir_syncs() const { return dir_syncs_; }

 private:
  std::string PathFor(const std::string& name) const;

  std::string directory_;
  std::size_t data_syncs_ = 0;
  std::size_t dir_syncs_ = 0;
};

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_STABLE_STORAGE_H_
