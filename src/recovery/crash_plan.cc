#include "recovery/crash_plan.h"

#include <cassert>

namespace pullmon {

namespace {
Status Dead() {
  return Status::Aborted("simulated crash: process killed");
}
}  // namespace

std::size_t CrashInjectedStorage::Admit(std::size_t size) {
  if (!armed_) return size;
  const std::size_t remaining =
      plan_.write_offset > bytes_allowed_ ? plan_.write_offset - bytes_allowed_
                                          : 0;
  if (size <= remaining) {
    bytes_allowed_ += size;
    return size;
  }
  bytes_allowed_ = plan_.write_offset;
  crashed_ = true;
  return remaining;
}

Status CrashInjectedStorage::WriteFile(const std::string& name,
                                       std::string_view bytes) {
  if (crashed_) return Dead();
  const std::size_t admitted = Admit(bytes.size());
  if (!crashed_) return inner_->WriteFile(name, bytes);
  // Torn whole-file write: the replacement's prefix lands, clobbering
  // whatever was there — the worst case a non-atomic writer can leave.
  Status st = inner_->WriteFile(name, bytes.substr(0, admitted));
  (void)st;
  return Dead();
}

Status CrashInjectedStorage::AppendFile(const std::string& name,
                                        std::string_view bytes) {
  if (crashed_) return Dead();
  const std::size_t admitted = Admit(bytes.size());
  if (!crashed_) return inner_->AppendFile(name, bytes);
  // Torn append: a partial tail survives at the end of the log.
  Status st = inner_->AppendFile(name, bytes.substr(0, admitted));
  (void)st;
  return Dead();
}

Result<std::string> CrashInjectedStorage::ReadFile(
    const std::string& name) const {
  if (crashed_) return Dead();
  return inner_->ReadFile(name);
}

Status CrashInjectedStorage::TruncateFile(const std::string& name,
                                          std::size_t size) {
  if (crashed_) return Dead();
  return inner_->TruncateFile(name, size);
}

Status CrashInjectedStorage::RemoveFile(const std::string& name) {
  if (crashed_) return Dead();
  return inner_->RemoveFile(name);
}

Result<std::vector<std::string>> CrashInjectedStorage::ListFiles() const {
  if (crashed_) return Dead();
  return inner_->ListFiles();
}

void FlipBit(std::string* bytes, std::size_t bit_index) {
  assert(bytes != nullptr);
  const std::size_t byte = bit_index / 8;
  assert(byte < bytes->size());
  (*bytes)[byte] = static_cast<char>(
      static_cast<unsigned char>((*bytes)[byte]) ^
      static_cast<unsigned char>(1u << (bit_index % 8)));
}

}  // namespace pullmon
