#include "recovery/stable_storage.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace pullmon {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// MemoryStorage
// ---------------------------------------------------------------------

Status MemoryStorage::WriteFile(const std::string& name,
                                std::string_view bytes) {
  files_[name].assign(bytes.data(), bytes.size());
  return Status::OK();
}

Status MemoryStorage::AppendFile(const std::string& name,
                                 std::string_view bytes) {
  files_[name].append(bytes.data(), bytes.size());
  return Status::OK();
}

Result<std::string> MemoryStorage::ReadFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second;
}

Status MemoryStorage::TruncateFile(const std::string& name,
                                   std::size_t size) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  if (it->second.size() > size) it->second.resize(size);
  return Status::OK();
}

Status MemoryStorage::RemoveFile(const std::string& name) {
  files_.erase(name);
  return Status::OK();
}

Result<std::vector<std::string>> MemoryStorage::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, bytes] : files_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string* MemoryStorage::MutableFile(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// DirectoryStorage
// ---------------------------------------------------------------------

DirectoryStorage::DirectoryStorage(std::string directory)
    : directory_(std::move(directory)) {}

Status DirectoryStorage::Prepare() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " +
                           directory_ + ": " + ec.message());
  }
  return Status::OK();
}

std::string DirectoryStorage::PathFor(const std::string& name) const {
  return (fs::path(directory_) / name).string();
}

Status DirectoryStorage::WriteFile(const std::string& name,
                                   std::string_view bytes) {
  // Write-then-rename keeps a previously valid file visible until the
  // replacement is fully on disk.
  const std::string final_path = PathFor(name);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp_path);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("short write to " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("cannot rename " + tmp_path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status DirectoryStorage::AppendFile(const std::string& name,
                                    std::string_view bytes) {
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open " + PathFor(name));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("short append to " + PathFor(name));
  return Status::OK();
}

Result<std::string> DirectoryStorage::ReadFile(
    const std::string& name) const {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + PathFor(name));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read error on " + PathFor(name));
  return bytes;
}

Status DirectoryStorage::TruncateFile(const std::string& name,
                                      std::size_t size) {
  const std::string path = PathFor(name);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("no such file: " + path);
  }
  const auto current = fs::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat " + path + ": " + ec.message());
  if (current <= size) return Status::OK();
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::IoError("cannot truncate " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status DirectoryStorage::RemoveFile(const std::string& name) {
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  if (ec) {
    return Status::IoError("cannot remove " + PathFor(name) + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> DirectoryStorage::ListFiles() const {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) {
    return Status::IoError("cannot list " + directory_ + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace pullmon
