#include "recovery/stable_storage.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pullmon {

namespace fs = std::filesystem;

namespace {

#if !defined(_WIN32)

/// RAII file descriptor (POSIX durability path).
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_;
};

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to " + path + " failed: " +
                             std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

#endif  // !defined(_WIN32)

}  // namespace

// ---------------------------------------------------------------------
// MemoryStorage
// ---------------------------------------------------------------------

Status MemoryStorage::WriteFile(const std::string& name,
                                std::string_view bytes) {
  files_[name].assign(bytes.data(), bytes.size());
  return Status::OK();
}

Status MemoryStorage::AppendFile(const std::string& name,
                                 std::string_view bytes) {
  files_[name].append(bytes.data(), bytes.size());
  return Status::OK();
}

Result<std::string> MemoryStorage::ReadFile(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second;
}

Status MemoryStorage::TruncateFile(const std::string& name,
                                   std::size_t size) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  if (it->second.size() > size) it->second.resize(size);
  return Status::OK();
}

Status MemoryStorage::RemoveFile(const std::string& name) {
  files_.erase(name);
  return Status::OK();
}

Result<std::vector<std::string>> MemoryStorage::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, bytes] : files_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::string* MemoryStorage::MutableFile(const std::string& name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// DirectoryStorage
// ---------------------------------------------------------------------

DirectoryStorage::DirectoryStorage(std::string directory)
    : directory_(std::move(directory)) {}

Status DirectoryStorage::Prepare() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " +
                           directory_ + ": " + ec.message());
  }
  return Status::OK();
}

std::string DirectoryStorage::PathFor(const std::string& name) const {
  return (fs::path(directory_) / name).string();
}

Status DirectoryStorage::WriteFile(const std::string& name,
                                   std::string_view bytes) {
  // Write-then-rename keeps a previously valid file visible until the
  // replacement is fully on disk; the fdatasync before the rename and
  // the directory fsync after it make the swap itself power-fail safe
  // (a crash either keeps the old file or the complete new one).
  const std::string final_path = PathFor(name);
  const std::string tmp_path = final_path + ".tmp";
#if !defined(_WIN32)
  {
    Fd fd(::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
    if (!fd.ok()) {
      return Status::IoError("cannot open " + tmp_path + ": " +
                             std::strerror(errno));
    }
    PULLMON_RETURN_NOT_OK(WriteAll(fd.get(), bytes, tmp_path));
    if (::fdatasync(fd.get()) != 0) {
      return Status::IoError("fdatasync on " + tmp_path + " failed: " +
                             std::strerror(errno));
    }
    ++data_syncs_;
  }
#else
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp_path);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IoError("short write to " + tmp_path);
  }
#endif
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("cannot rename " + tmp_path + ": " +
                           ec.message());
  }
#if !defined(_WIN32)
  {
    Fd dir(::open(directory_.c_str(), O_RDONLY | O_DIRECTORY));
    if (!dir.ok()) {
      return Status::IoError("cannot open directory " + directory_ + ": " +
                             std::strerror(errno));
    }
    if (::fsync(dir.get()) != 0) {
      return Status::IoError("fsync on directory " + directory_ +
                             " failed: " + std::strerror(errno));
    }
    ++dir_syncs_;
  }
#endif
  return Status::OK();
}

Status DirectoryStorage::AppendFile(const std::string& name,
                                    std::string_view bytes) {
  const std::string path = PathFor(name);
#if !defined(_WIN32)
  // One fdatasync per append: the WAL batches a chronon's records into a
  // single AppendFile (the group-flush boundary), so this is exactly one
  // sync per committed chronon.
  Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644));
  if (!fd.ok()) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  PULLMON_RETURN_NOT_OK(WriteAll(fd.get(), bytes, path));
  if (::fdatasync(fd.get()) != 0) {
    return Status::IoError("fdatasync on " + path + " failed: " +
                           std::strerror(errno));
  }
  ++data_syncs_;
  return Status::OK();
#else
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("short append to " + path);
  return Status::OK();
#endif
}

Result<std::string> DirectoryStorage::ReadFile(
    const std::string& name) const {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + PathFor(name));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read error on " + PathFor(name));
  return bytes;
}

Status DirectoryStorage::TruncateFile(const std::string& name,
                                      std::size_t size) {
  const std::string path = PathFor(name);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("no such file: " + path);
  }
  const auto current = fs::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat " + path + ": " + ec.message());
  if (current <= size) return Status::OK();
  fs::resize_file(path, size, ec);
  if (ec) {
    return Status::IoError("cannot truncate " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status DirectoryStorage::RemoveFile(const std::string& name) {
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  if (ec) {
    return Status::IoError("cannot remove " + PathFor(name) + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> DirectoryStorage::ListFiles() const {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) {
    return Status::IoError("cannot list " + directory_ + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace pullmon
