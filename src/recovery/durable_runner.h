#ifndef PULLMON_RECOVERY_DURABLE_RUNNER_H_
#define PULLMON_RECOVERY_DURABLE_RUNNER_H_

#include <cstddef>
#include <cstdint>

#include "recovery/crash_plan.h"
#include "recovery/stable_storage.h"
#include "sim/experiment.h"
#include "util/status.h"

namespace pullmon {

/// Durability knobs of RunDurableOnce.
struct DurableOptions {
  /// Where snapshots and WALs live; required, must outlive the run.
  StableStorage* storage = nullptr;
  /// Snapshot every N chronon boundaries (0 = only the initial snapshot
  /// and WAL-size-triggered ones).
  Chronon checkpoint_every = 0;
  /// A generation's WAL growing past this many bytes triggers a fresh
  /// snapshot at the next boundary, bounding replay work after a crash.
  /// Replay is deterministic re-execution (fast — no probes hit the
  /// network), so the default trades generously toward throughput: at
  /// the Figure-5 churn arm an epoch logs roughly half a megabyte, so
  /// 1 MiB amortizes the ~0.5 MB snapshot encode over about two epochs
  /// of work while still bounding post-crash replay to seconds.
  std::size_t snapshot_wal_bytes = 1024 * 1024;
  /// Resume from the newest valid snapshot in `storage` instead of
  /// starting fresh. NotFound when the directory holds no checkpoint
  /// files at all; if files exist but every generation is torn or
  /// corrupt (a crash before the first snapshot became durable), the
  /// run starts fresh with the rejections counted in the report.
  bool recover = false;
  /// Crash-injection point for the recovery harness; disarmed by
  /// default. An armed plan makes the run fail with Status::Aborted at
  /// the planned write, leaving storage exactly as a process kill
  /// would.
  CrashPlan crash;

  Status Validate() const;
};

/// Fingerprint of (config, spec, seed) stored in every snapshot: a
/// resumed run refuses state written under a different configuration
/// instead of silently diverging.
std::uint64_t RunFingerprint(const SimulationConfig& config,
                             const PolicySpec& spec, std::uint64_t seed);

/// The durable twin of RunChurnOnce (sim/churn.cc): the identical
/// simulation — same problem, trace, churn workload, probe path, and
/// seeds — with proxy state checkpointed to stable storage and a WAL of
/// churn ops and probe outcomes group-flushed at every chronon
/// boundary. Without a crash the returned report equals RunChurnOnce's
/// on every field except the recovery_* telemetry (the recovery
/// differential suite enforces this); after a crash, running again with
/// `recover = true` loads the newest valid snapshot, verifies the
/// re-executed chronons against the WAL, and finishes the epoch with —
/// again — the identical report.
Result<ProxyRunReport> RunDurableOnce(const SimulationConfig& config,
                                      const PolicySpec& spec,
                                      std::uint64_t seed,
                                      const DurableOptions& options);

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_DURABLE_RUNNER_H_
