#ifndef PULLMON_RECOVERY_WAL_H_
#define PULLMON_RECOVERY_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/chronon.h"
#include "recovery/stable_storage.h"
#include "util/status.h"

namespace pullmon {

/// The write-ahead log appended between snapshots: per executed chronon
/// one kChrononStart record, the churn operations applied and probe
/// outcomes observed during it, and a closing kChrononCommit. Records
/// are buffered in memory and group-flushed in one storage append at
/// the commit — a crash mid-chronon therefore loses at most the
/// uncommitted chronon, which recovery re-executes deterministically.
///
/// Because the whole simulation is deterministic in (config, spec,
/// seed), the WAL is not needed to reconstruct state — recovery
/// re-executes from the newest snapshot. Its records are instead the
/// *audit trail* of the pre-crash execution: replay verifies every
/// re-executed churn op and probe outcome against them, so any
/// divergence (config drift, nondeterminism, corruption that slipped
/// past a checksum) is detected rather than silently absorbed.
enum class WalRecordType : std::uint8_t {
  kChrononStart = 1,
  kChurnOp = 2,
  kProbe = 3,
  kChrononCommit = 4,
};

/// One churn operation as applied by the runner loop. kind follows
/// ChurnEvent::Kind (0 cancel, 1 edit, 2 unregister) with 3 for an
/// arrival submit; `accepted` records whether the monitor took it.
struct WalChurnRecord {
  std::uint8_t kind = 0;
  ProfileId profile = 0;
  int submission = 0;
  std::uint8_t accepted = 0;

  bool operator==(const WalChurnRecord& other) const = default;
};

/// One probe attempt outcome.
struct WalProbeRecord {
  ResourceId resource = 0;
  std::uint8_t success = 0;

  bool operator==(const WalProbeRecord& other) const = default;
};

/// Buffered writer; one instance per WAL file. All Log* calls stage
/// into memory; CommitChronon() appends the staged records plus the
/// commit marker to storage in a single group flush.
class WalWriter {
 public:
  /// `storage` must outlive the writer.
  WalWriter(StableStorage* storage, std::string name);

  void LogChrononStart(Chronon chronon);
  void LogChurn(const WalChurnRecord& record);
  void LogProbe(const WalProbeRecord& record);

  /// Group flush: appends everything staged since the last commit plus
  /// the kChrononCommit record for `chronon`.
  Status CommitChronon(Chronon chronon);

  /// Records staged or flushed over the writer's lifetime.
  std::size_t records_logged() const { return records_logged_; }
  /// Bytes successfully appended to storage so far.
  std::size_t bytes_flushed() const { return bytes_flushed_; }

 private:
  StableStorage* storage_;
  std::string name_;
  std::string buffer_;
  // Reused per-record payload staging: Log* runs tens of thousands of
  // times per epoch, and a fresh std::string each call is pure
  // allocator traffic.
  std::string payload_scratch_;
  std::size_t records_logged_ = 0;
  std::size_t bytes_flushed_ = 0;
};

/// One committed chronon read back from a WAL.
struct WalChronon {
  Chronon chronon = 0;
  std::vector<WalChurnRecord> churn;
  std::vector<WalProbeRecord> probes;
};

/// Result of reading a WAL under the torn-tail rule: records decode in
/// order until the first invalid (truncated or checksum-failing) frame,
/// and only chronons closed by an intact kChrononCommit count. Anything
/// after the last commit — a torn group flush, a bit-flipped record and
/// everything behind it — is the torn tail.
struct WalReadResult {
  std::vector<WalChronon> chronons;
  /// Bytes of the intact committed prefix (truncate the file to this).
  std::size_t valid_bytes = 0;
  /// Bytes past the committed prefix (torn tail; 0 on a clean log).
  std::size_t torn_bytes = 0;
  /// Records in the committed prefix (including starts and commits).
  std::size_t committed_records = 0;
};

/// Decodes a WAL byte stream under the torn-tail rule. Corruption never
/// fails the read — it terminates it: the result covers the longest
/// intact committed prefix. ParseError only for structural nonsense
/// *inside* intact frames (e.g. a commit for a chronon that never
/// started), which no torn write can produce.
Result<WalReadResult> ReadWal(std::string_view bytes);

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_WAL_H_
