#include "recovery/wal.h"

#include <utility>

#include "recovery/recovery_codec.h"
#include "trace/page_codec.h"

namespace pullmon {

WalWriter::WalWriter(StableStorage* storage, std::string name)
    : storage_(storage), name_(std::move(name)) {}

void WalWriter::LogChrononStart(Chronon chronon) {
  std::string& payload = payload_scratch_;
  payload.clear();
  AppendSigned(chronon, &payload);
  AppendRecord(static_cast<std::uint64_t>(WalRecordType::kChrononStart),
               payload, &buffer_);
  ++records_logged_;
}

void WalWriter::LogChurn(const WalChurnRecord& record) {
  std::string& payload = payload_scratch_;
  payload.clear();
  payload.push_back(static_cast<char>(record.kind));
  AppendSigned(record.profile, &payload);
  AppendSigned(record.submission, &payload);
  payload.push_back(static_cast<char>(record.accepted));
  AppendRecord(static_cast<std::uint64_t>(WalRecordType::kChurnOp), payload,
               &buffer_);
  ++records_logged_;
}

void WalWriter::LogProbe(const WalProbeRecord& record) {
  std::string& payload = payload_scratch_;
  payload.clear();
  AppendSigned(record.resource, &payload);
  payload.push_back(static_cast<char>(record.success));
  AppendRecord(static_cast<std::uint64_t>(WalRecordType::kProbe), payload,
               &buffer_);
  ++records_logged_;
}

Status WalWriter::CommitChronon(Chronon chronon) {
  std::string& payload = payload_scratch_;
  payload.clear();
  AppendSigned(chronon, &payload);
  AppendRecord(static_cast<std::uint64_t>(WalRecordType::kChrononCommit),
               payload, &buffer_);
  ++records_logged_;
  PULLMON_RETURN_NOT_OK(storage_->AppendFile(name_, buffer_));
  bytes_flushed_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Result<WalReadResult> ReadWal(std::string_view bytes) {
  WalReadResult result;
  std::size_t offset = 0;
  std::size_t records_since_commit = 0;
  // The chronon being accumulated (not yet committed).
  WalChronon pending;
  bool in_chronon = false;

  while (offset < bytes.size()) {
    auto record = DecodeRecord(bytes.substr(offset));
    if (!record.ok()) break;  // torn tail: stop at the first bad frame
    ByteReader r(record->payload);
    bool intact = true;
    switch (static_cast<WalRecordType>(record->type)) {
      case WalRecordType::kChrononStart: {
        if (in_chronon) {
          return Status::ParseError(
              "WAL chronon started before the previous one committed");
        }
        std::int64_t chronon = 0;
        if (!r.ReadSigned(&chronon).ok() || !r.AtEnd()) {
          intact = false;
          break;
        }
        pending = WalChronon{};
        pending.chronon = static_cast<Chronon>(chronon);
        in_chronon = true;
        break;
      }
      case WalRecordType::kChurnOp: {
        if (!in_chronon) {
          return Status::ParseError("WAL churn op outside a chronon");
        }
        WalChurnRecord churn;
        std::int64_t profile = 0, submission = 0;
        if (!r.ReadByte(&churn.kind).ok() ||
            !r.ReadSigned(&profile).ok() ||
            !r.ReadSigned(&submission).ok() ||
            !r.ReadByte(&churn.accepted).ok() || !r.AtEnd()) {
          intact = false;
          break;
        }
        churn.profile = static_cast<ProfileId>(profile);
        churn.submission = static_cast<int>(submission);
        pending.churn.push_back(churn);
        break;
      }
      case WalRecordType::kProbe: {
        if (!in_chronon) {
          return Status::ParseError("WAL probe outside a chronon");
        }
        WalProbeRecord probe;
        std::int64_t resource = 0;
        if (!r.ReadSigned(&resource).ok() ||
            !r.ReadByte(&probe.success).ok() || !r.AtEnd()) {
          intact = false;
          break;
        }
        probe.resource = static_cast<ResourceId>(resource);
        pending.probes.push_back(probe);
        break;
      }
      case WalRecordType::kChrononCommit: {
        std::int64_t chronon = 0;
        if (!r.ReadSigned(&chronon).ok() || !r.AtEnd()) {
          intact = false;
          break;
        }
        if (!in_chronon ||
            static_cast<Chronon>(chronon) != pending.chronon) {
          return Status::ParseError(
              "WAL commit does not match the open chronon");
        }
        result.chronons.push_back(std::move(pending));
        in_chronon = false;
        // The commit seals the group: everything up to and including
        // this record is durable prefix.
        result.valid_bytes = offset + record->record_bytes;
        result.committed_records += records_since_commit + 2;
        records_since_commit = 0;
        break;
      }
      default:
        intact = false;  // unknown type: treat as tail corruption
        break;
    }
    if (!intact) break;
    if (static_cast<WalRecordType>(record->type) !=
            WalRecordType::kChrononCommit &&
        static_cast<WalRecordType>(record->type) !=
            WalRecordType::kChrononStart) {
      ++records_since_commit;
    }
    offset += record->record_bytes;
  }
  result.torn_bytes = bytes.size() - result.valid_bytes;
  return result;
}

}  // namespace pullmon
