#ifndef PULLMON_RECOVERY_CHECKPOINT_H_
#define PULLMON_RECOVERY_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/chronon.h"
#include "recovery/recovery_codec.h"
#include "recovery/stable_storage.h"
#include "recovery/wal.h"
#include "util/status.h"

namespace pullmon {

/// Naming of one checkpoint generation: a snapshot taken at chronon t
/// is `snap-<t padded to 8 digits>.pmsnap`, and the WAL of the chronons
/// executed after it is `wal-<t>.pmwal`. Zero padding keeps the
/// lexicographic order of ListFiles() equal to chronon order.
std::string SnapshotFileName(Chronon chronon);
std::string WalFileName(Chronon chronon);

/// Parses the chronon out of a snapshot file name; -1 when `name` is
/// not a snapshot file.
Chronon ParseSnapshotFileName(const std::string& name);

/// Writes one snapshot file (its WAL starts empty).
Status WriteSnapshotFile(StableStorage* storage,
                         const ProxySnapshot& snapshot);

/// The outcome of scanning a checkpoint directory for the newest
/// resumable state.
struct LoadedCheckpoint {
  /// False when no snapshot file validated: either the directory holds
  /// no snapshots at all (`snapshots_seen == 0`, nothing to recover) or
  /// every generation was torn/corrupt (crash before the first snapshot
  /// became durable — the caller starts fresh, never replays garbage).
  bool found = false;
  ProxySnapshot snapshot;
  /// The committed chronons of the snapshot's WAL, for replay
  /// verification (empty when the crash happened before any commit).
  WalReadResult wal;
  /// Snapshot files present in storage.
  std::size_t snapshots_seen = 0;
  /// Snapshot files that failed validation during the scan (torn or
  /// bit-flipped generations that were detected and skipped).
  std::size_t snapshots_rejected = 0;
};

/// Finds the newest valid snapshot in `storage`: scans snapshot files
/// newest-first, rejecting any that fail decoding, reads the winner's
/// WAL under the torn-tail rule, truncates the WAL's torn tail in
/// storage so the resumed run appends to an intact log, and removes the
/// rejected newer generations so they can never shadow the valid one.
/// A snapshot whose fingerprint differs from `fingerprint` is a
/// FailedPrecondition — state from a different config/seed must never
/// seed this run.
Result<LoadedCheckpoint> LoadNewestCheckpoint(StableStorage* storage,
                                              std::uint64_t fingerprint);

/// Removes checkpoint generations older than `keep_from` (the newest
/// snapshot's chronon): once a newer snapshot is durable, earlier
/// generations are dead weight.
Status PruneCheckpoints(StableStorage* storage, Chronon keep_from);

/// Removes every checkpoint file — a fresh (non-recovering) run starts
/// from a clean directory so stale generations from an unrelated run
/// can never be mistaken for this run's state.
Status ClearCheckpoints(StableStorage* storage);

}  // namespace pullmon

#endif  // PULLMON_RECOVERY_CHECKPOINT_H_
