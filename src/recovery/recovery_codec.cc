#include "recovery/recovery_codec.h"

#include <bit>
#include <cstring>

#include "trace/page_codec.h"

namespace pullmon {

namespace {

constexpr char kSnapshotMagic[4] = {'P', 'M', 'S', 'N'};
constexpr std::uint64_t kSnapshotRecordType = 0x51;

std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

void AppendSigned(std::int64_t value, std::string* out) {
  AppendVarint(ZigzagEncode(value), out);
}

void AppendFixed32(std::uint32_t value, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out->append(buf, sizeof(buf));
}

void AppendFixed64(std::uint64_t value, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out->append(buf, sizeof(buf));
}

void AppendDouble(double value, std::string* out) {
  AppendFixed64(std::bit_cast<std::uint64_t>(value), out);
}

void AppendLengthPrefixed(std::string_view bytes, std::string* out) {
  AppendVarint(bytes.size(), out);
  out->append(bytes.data(), bytes.size());
}

Status ByteReader::ReadVarint(std::uint64_t* value) {
  const char* next = DecodeVarint(p_, end_, value);
  if (next == nullptr) return Status::ParseError("truncated varint");
  p_ = next;
  return Status::OK();
}

Status ByteReader::ReadSigned(std::int64_t* value) {
  std::uint64_t raw = 0;
  PULLMON_RETURN_NOT_OK(ReadVarint(&raw));
  *value = ZigzagDecode(raw);
  return Status::OK();
}

Status ByteReader::ReadFixed32(std::uint32_t* value) {
  if (remaining() < 4) return Status::ParseError("truncated fixed32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[i]))
         << (8 * i);
  }
  p_ += 4;
  *value = v;
  return Status::OK();
}

Status ByteReader::ReadFixed64(std::uint64_t* value) {
  if (remaining() < 8) return Status::ParseError("truncated fixed64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
         << (8 * i);
  }
  p_ += 8;
  *value = v;
  return Status::OK();
}

Status ByteReader::ReadDouble(double* value) {
  std::uint64_t bits = 0;
  PULLMON_RETURN_NOT_OK(ReadFixed64(&bits));
  *value = std::bit_cast<double>(bits);
  return Status::OK();
}

Status ByteReader::ReadString(std::string* value) {
  std::uint64_t size = 0;
  PULLMON_RETURN_NOT_OK(ReadVarint(&size));
  if (size > remaining()) return Status::ParseError("truncated string");
  value->assign(p_, static_cast<std::size_t>(size));
  p_ += size;
  return Status::OK();
}

Status ByteReader::ReadByte(std::uint8_t* value) {
  if (remaining() < 1) return Status::ParseError("truncated byte");
  *value = static_cast<std::uint8_t>(*p_++);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

void AppendRecord(std::uint64_t type, std::string_view payload,
                  std::string* out) {
  // Snapshot payloads run to hundreds of kilobytes; one reservation up
  // front keeps the append + checksum pass out of the allocator. WAL
  // payloads are a handful of bytes logged tens of thousands of times
  // per epoch, so skip the call for them.
  if (payload.size() >= 4096) {
    out->reserve(out->size() + payload.size() + 24);
  }
  const std::size_t frame_start = out->size();
  AppendVarint(type, out);
  AppendVarint(payload.size(), out);
  out->append(payload.data(), payload.size());
  const std::uint32_t checksum = PageChecksum(
      std::string_view(out->data() + frame_start, out->size() - frame_start));
  AppendFixed32(checksum, out);
}

Result<RecordView> DecodeRecord(std::string_view bytes) {
  const char* begin = bytes.data();
  const char* end = begin + bytes.size();
  std::uint64_t type = 0;
  const char* p = DecodeVarint(begin, end, &type);
  if (p == nullptr) return Status::ParseError("truncated record type");
  std::uint64_t payload_size = 0;
  p = DecodeVarint(p, end, &payload_size);
  if (p == nullptr) return Status::ParseError("truncated record size");
  const std::size_t body = static_cast<std::size_t>(p - begin);
  if (payload_size > static_cast<std::size_t>(end - p) ||
      static_cast<std::size_t>(end - p) - payload_size < 4) {
    return Status::ParseError("truncated record payload");
  }
  const std::size_t checked_bytes =
      body + static_cast<std::size_t>(payload_size);
  ByteReader tail(
      std::string_view(begin + checked_bytes, 4));
  std::uint32_t stored = 0;
  PULLMON_RETURN_NOT_OK(tail.ReadFixed32(&stored));
  const std::uint32_t computed =
      PageChecksum(std::string_view(begin, checked_bytes));
  if (stored != computed) {
    return Status::ParseError("record checksum mismatch");
  }
  RecordView view;
  view.type = type;
  view.payload = std::string_view(begin + body,
                                  static_cast<std::size_t>(payload_size));
  view.record_bytes = checked_bytes + 4;
  return view;
}

// ---------------------------------------------------------------------
// Snapshot payload pieces
// ---------------------------------------------------------------------

namespace {

// A decoded element count cannot exceed the bytes left to decode from
// (every element costs at least one byte), which bounds allocations on
// adversarial input before the data is even touched.
Status ReadCount(ByteReader* r, std::size_t* count) {
  std::uint64_t raw = 0;
  PULLMON_RETURN_NOT_OK(r->ReadVarint(&raw));
  if (raw > r->remaining()) {
    return Status::ParseError("element count exceeds remaining bytes");
  }
  *count = static_cast<std::size_t>(raw);
  return Status::OK();
}

void AppendByteVec(const std::vector<std::uint8_t>& v, std::string* out) {
  AppendVarint(v.size(), out);
  out->append(reinterpret_cast<const char*>(v.data()), v.size());
}

Status ReadByteVec(ByteReader* r, std::vector<std::uint8_t>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    PULLMON_RETURN_NOT_OK(r->ReadByte(&(*v)[i]));
  }
  return Status::OK();
}

template <typename T>
void AppendSignedVec(const std::vector<T>& v, std::string* out) {
  AppendVarint(v.size(), out);
  for (T value : v) AppendSigned(static_cast<std::int64_t>(value), out);
}

template <typename T>
Status ReadSignedVec(ByteReader* r, std::vector<T>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t value = 0;
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&value));
    (*v)[i] = static_cast<T>(value);
  }
  return Status::OK();
}

void AppendSizeVec(const std::vector<std::size_t>& v, std::string* out) {
  AppendVarint(v.size(), out);
  for (std::size_t value : v) AppendVarint(value, out);
}

Status ReadSizeVec(ByteReader* r, std::vector<std::size_t>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t value = 0;
    PULLMON_RETURN_NOT_OK(r->ReadVarint(&value));
    (*v)[i] = static_cast<std::size_t>(value);
  }
  return Status::OK();
}

void AppendDoubleVec(const std::vector<double>& v, std::string* out) {
  AppendVarint(v.size(), out);
  for (double value : v) AppendDouble(value, out);
}

Status ReadDoubleVec(ByteReader* r, std::vector<double>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    PULLMON_RETURN_NOT_OK(r->ReadDouble(&(*v)[i]));
  }
  return Status::OK();
}

void AppendRngStateVec(const std::vector<std::array<std::uint64_t, 4>>& v,
                       std::string* out) {
  AppendVarint(v.size(), out);
  for (const auto& state : v) {
    for (std::uint64_t word : state) AppendFixed64(word, out);
  }
}

Status ReadRngStateVec(ByteReader* r,
                       std::vector<std::array<std::uint64_t, 4>>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t w = 0; w < 4; ++w) {
      PULLMON_RETURN_NOT_OK(r->ReadFixed64(&(*v)[i][w]));
    }
  }
  return Status::OK();
}

void AppendStringVec(const std::vector<std::string>& v, std::string* out) {
  AppendVarint(v.size(), out);
  for (const std::string& s : v) AppendLengthPrefixed(s, out);
}

Status ReadStringVec(ByteReader* r, std::vector<std::string>* v) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  v->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    PULLMON_RETURN_NOT_OK(r->ReadString(&(*v)[i]));
  }
  return Status::OK();
}

// --- T-intervals. -------------------------------------------------------

void AppendTInterval(const TInterval& t, std::string* out) {
  AppendVarint(t.eis().size(), out);
  for (const ExecutionInterval& ei : t.eis()) {
    AppendSigned(ei.resource, out);
    AppendSigned(ei.start, out);
    AppendSigned(ei.finish, out);
  }
  AppendDouble(t.weight(), out);
  // required() (not the raw field) is stored: the clamped query value is
  // what selection semantics depend on, and round-tripping it through
  // set_required is behaviorally equivalent.
  AppendVarint(t.required(), out);
}

Status ReadTInterval(ByteReader* r, TInterval* t) {
  std::size_t count = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &count));
  std::vector<ExecutionInterval> eis;
  eis.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t resource = 0, start = 0, finish = 0;
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&resource));
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&start));
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&finish));
    eis.emplace_back(static_cast<ResourceId>(resource),
                     static_cast<Chronon>(start),
                     static_cast<Chronon>(finish));
  }
  *t = TInterval(std::move(eis));
  double weight = 1.0;
  PULLMON_RETURN_NOT_OK(r->ReadDouble(&weight));
  t->set_weight(weight);
  std::uint64_t required = 0;
  PULLMON_RETURN_NOT_OK(r->ReadVarint(&required));
  t->set_required(static_cast<std::size_t>(required));
  return Status::OK();
}

// --- Stats blocks. --------------------------------------------------------

void AppendMonitorStats(const MonitorStats& s, std::string* out) {
  AppendVarint(s.probes_used, out);
  AppendVarint(s.probes_failed, out);
  AppendVarint(s.retries_issued, out);
  AppendVarint(s.retry_probes_spent, out);
  AppendVarint(s.candidates_scored, out);
  AppendVarint(s.max_concurrent_candidates, out);
  AppendVarint(s.t_intervals_lost_to_faults, out);
  AppendVarint(s.submitted, out);
  AppendVarint(s.cancelled, out);
  AppendVarint(s.edited, out);
  AppendVarint(s.unregistered_profiles, out);
  AppendVarint(s.orphaned_probes, out);
}

Status ReadMonitorStats(ByteReader* r, MonitorStats* s) {
  std::uint64_t v[12];
  for (auto& value : v) PULLMON_RETURN_NOT_OK(r->ReadVarint(&value));
  s->probes_used = static_cast<std::size_t>(v[0]);
  s->probes_failed = static_cast<std::size_t>(v[1]);
  s->retries_issued = static_cast<std::size_t>(v[2]);
  s->retry_probes_spent = static_cast<std::size_t>(v[3]);
  s->candidates_scored = static_cast<std::size_t>(v[4]);
  s->max_concurrent_candidates = static_cast<std::size_t>(v[5]);
  s->t_intervals_lost_to_faults = static_cast<std::size_t>(v[6]);
  s->submitted = static_cast<std::size_t>(v[7]);
  s->cancelled = static_cast<std::size_t>(v[8]);
  s->edited = static_cast<std::size_t>(v[9]);
  s->unregistered_profiles = static_cast<std::size_t>(v[10]);
  s->orphaned_probes = static_cast<std::size_t>(v[11]);
  return Status::OK();
}

void AppendHealthStats(const HealthStats& s, std::string* out) {
  AppendVarint(s.circuits_opened, out);
  AppendVarint(s.circuits_reopened, out);
  AppendVarint(s.probation_probes, out);
  AppendVarint(s.probation_successes, out);
  AppendVarint(s.probes_suppressed, out);
  AppendVarint(s.budget_reclaimed, out);
  AppendVarint(s.open_chronons_total, out);
}

Status ReadHealthStats(ByteReader* r, HealthStats* s) {
  std::uint64_t v[7];
  for (auto& value : v) PULLMON_RETURN_NOT_OK(r->ReadVarint(&value));
  s->circuits_opened = static_cast<std::size_t>(v[0]);
  s->circuits_reopened = static_cast<std::size_t>(v[1]);
  s->probation_probes = static_cast<std::size_t>(v[2]);
  s->probation_successes = static_cast<std::size_t>(v[3]);
  s->probes_suppressed = static_cast<std::size_t>(v[4]);
  s->budget_reclaimed = static_cast<std::size_t>(v[5]);
  s->open_chronons_total = static_cast<std::size_t>(v[6]);
  return Status::OK();
}

void AppendFaultStats(const FaultStats& s, std::string* out) {
  AppendVarint(s.probes_seen, out);
  AppendVarint(s.timeouts, out);
  AppendVarint(s.server_errors, out);
  AppendVarint(s.truncations, out);
  AppendVarint(s.corruptions, out);
  AppendVarint(s.storms_started, out);
  AppendVarint(s.etag_invalidations, out);
  AppendVarint(s.outage_probes, out);
  AppendVarint(s.outages_entered, out);
  AppendVarint(s.outage_chronons, out);
  AppendDouble(s.latency_total, out);
  AppendDouble(s.latency_max, out);
}

Status ReadFaultStats(ByteReader* r, FaultStats* s) {
  std::uint64_t v[10];
  for (auto& value : v) PULLMON_RETURN_NOT_OK(r->ReadVarint(&value));
  s->probes_seen = static_cast<std::size_t>(v[0]);
  s->timeouts = static_cast<std::size_t>(v[1]);
  s->server_errors = static_cast<std::size_t>(v[2]);
  s->truncations = static_cast<std::size_t>(v[3]);
  s->corruptions = static_cast<std::size_t>(v[4]);
  s->storms_started = static_cast<std::size_t>(v[5]);
  s->etag_invalidations = static_cast<std::size_t>(v[6]);
  s->outage_probes = static_cast<std::size_t>(v[7]);
  s->outages_entered = static_cast<std::size_t>(v[8]);
  s->outage_chronons = static_cast<std::size_t>(v[9]);
  PULLMON_RETURN_NOT_OK(r->ReadDouble(&s->latency_total));
  PULLMON_RETURN_NOT_OK(r->ReadDouble(&s->latency_max));
  return Status::OK();
}

// --- Component images. -----------------------------------------------------

void AppendHealthImage(const HealthImage& h, std::string* out) {
  AppendByteVec(h.state, out);
  AppendSignedVec(h.consecutive_failures, out);
  AppendDoubleVec(h.ewma_failure, out);
  AppendSignedVec(h.cooldown, out);
  AppendSignedVec(h.open_until, out);
  AppendSizeVec(h.open_chronons, out);
  AppendSignedVec(h.open_list, out);
  AppendVarint(h.suppressed_this_chronon, out);
  AppendHealthStats(h.stats, out);
}

Status ReadHealthImage(ByteReader* r, HealthImage* h) {
  PULLMON_RETURN_NOT_OK(ReadByteVec(r, &h->state));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &h->consecutive_failures));
  PULLMON_RETURN_NOT_OK(ReadDoubleVec(r, &h->ewma_failure));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &h->cooldown));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &h->open_until));
  PULLMON_RETURN_NOT_OK(ReadSizeVec(r, &h->open_chronons));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &h->open_list));
  std::uint64_t suppressed = 0;
  PULLMON_RETURN_NOT_OK(r->ReadVarint(&suppressed));
  h->suppressed_this_chronon = static_cast<std::size_t>(suppressed);
  return ReadHealthStats(r, &h->stats);
}

void AppendMonitorImage(const MonitorImage& m, std::string* out) {
  AppendVarint(static_cast<std::uint64_t>(m.now), out);
  AppendStringVec(m.profile_names, out);
  AppendByteVec(m.profile_unregistered, out);
  AppendVarint(m.submissions.size(), out);
  for (const MonitorSubmissionImage& sub : m.submissions) {
    AppendSigned(sub.profile, out);
    AppendTInterval(sub.definition, out);
    AppendByteVec(sub.ei_captured, out);
    AppendSigned(sub.num_expired, out);
    const std::uint8_t flags = static_cast<std::uint8_t>(
        (sub.cancelled ? 1 : 0) | (sub.fault_touched ? 2 : 0) |
        (sub.failed ? 4 : 0) | (sub.completed ? 8 : 0) |
        (sub.selected ? 16 : 0));
    out->push_back(static_cast<char>(flags));
  }
  AppendVarint(m.probes_by_chronon.size(), out);
  for (const std::vector<ResourceId>& probes : m.probes_by_chronon) {
    AppendSignedVec(probes, out);
  }
  AppendMonitorStats(m.stats, out);
  AppendHealthImage(m.health, out);
}

Status ReadMonitorImage(ByteReader* r, MonitorImage* m) {
  std::uint64_t now = 0;
  PULLMON_RETURN_NOT_OK(r->ReadVarint(&now));
  m->now = static_cast<Chronon>(now);
  PULLMON_RETURN_NOT_OK(ReadStringVec(r, &m->profile_names));
  PULLMON_RETURN_NOT_OK(ReadByteVec(r, &m->profile_unregistered));
  std::size_t num_subs = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &num_subs));
  m->submissions.resize(num_subs);
  for (MonitorSubmissionImage& sub : m->submissions) {
    std::int64_t profile = 0;
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&profile));
    sub.profile = static_cast<ProfileId>(profile);
    PULLMON_RETURN_NOT_OK(ReadTInterval(r, &sub.definition));
    PULLMON_RETURN_NOT_OK(ReadByteVec(r, &sub.ei_captured));
    std::int64_t num_expired = 0;
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&num_expired));
    sub.num_expired = static_cast<int>(num_expired);
    std::uint8_t flags = 0;
    PULLMON_RETURN_NOT_OK(r->ReadByte(&flags));
    sub.cancelled = (flags & 1) ? 1 : 0;
    sub.fault_touched = (flags & 2) ? 1 : 0;
    sub.failed = (flags & 4) ? 1 : 0;
    sub.completed = (flags & 8) ? 1 : 0;
    sub.selected = (flags & 16) ? 1 : 0;
  }
  std::size_t num_chronons = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &num_chronons));
  m->probes_by_chronon.resize(num_chronons);
  for (std::vector<ResourceId>& probes : m->probes_by_chronon) {
    PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &probes));
  }
  PULLMON_RETURN_NOT_OK(ReadMonitorStats(r, &m->stats));
  return ReadHealthImage(r, &m->health);
}

void AppendFaultPlanImage(const FaultPlanImage& f, std::string* out) {
  AppendRngStateVec(f.stream_states, out);
  AppendByteVec(f.stream_ready, out);
  AppendSignedVec(f.storm_left, out);
  AppendRngStateVec(f.outage_stream_states, out);
  AppendByteVec(f.outage_stream_ready, out);
  AppendByteVec(f.outage_dark, out);
  AppendSignedVec(f.outage_eval_from, out);
  AppendSigned(f.now, out);
  AppendFaultStats(f.stats, out);
}

Status ReadFaultPlanImage(ByteReader* r, FaultPlanImage* f) {
  PULLMON_RETURN_NOT_OK(ReadRngStateVec(r, &f->stream_states));
  PULLMON_RETURN_NOT_OK(ReadByteVec(r, &f->stream_ready));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &f->storm_left));
  PULLMON_RETURN_NOT_OK(ReadRngStateVec(r, &f->outage_stream_states));
  PULLMON_RETURN_NOT_OK(ReadByteVec(r, &f->outage_stream_ready));
  PULLMON_RETURN_NOT_OK(ReadByteVec(r, &f->outage_dark));
  PULLMON_RETURN_NOT_OK(ReadSignedVec(r, &f->outage_eval_from));
  std::int64_t now = 0;
  PULLMON_RETURN_NOT_OK(r->ReadSigned(&now));
  f->now = static_cast<Chronon>(now);
  return ReadFaultStats(r, &f->stats);
}

void AppendFeedDocument(const FeedDocument& doc, std::string* out) {
  AppendLengthPrefixed(doc.title, out);
  AppendLengthPrefixed(doc.link, out);
  AppendLengthPrefixed(doc.description, out);
  AppendVarint(doc.items.size(), out);
  for (const FeedItem& item : doc.items) {
    AppendLengthPrefixed(item.guid, out);
    AppendLengthPrefixed(item.title, out);
    AppendLengthPrefixed(item.link, out);
    AppendLengthPrefixed(item.description, out);
    AppendSigned(item.published, out);
  }
}

Status ReadFeedDocument(ByteReader* r, FeedDocument* doc) {
  PULLMON_RETURN_NOT_OK(r->ReadString(&doc->title));
  PULLMON_RETURN_NOT_OK(r->ReadString(&doc->link));
  PULLMON_RETURN_NOT_OK(r->ReadString(&doc->description));
  std::size_t num_items = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &num_items));
  doc->items.resize(num_items);
  for (FeedItem& item : doc->items) {
    PULLMON_RETURN_NOT_OK(r->ReadString(&item.guid));
    PULLMON_RETURN_NOT_OK(r->ReadString(&item.title));
    PULLMON_RETURN_NOT_OK(r->ReadString(&item.link));
    PULLMON_RETURN_NOT_OK(r->ReadString(&item.description));
    PULLMON_RETURN_NOT_OK(r->ReadSigned(&item.published));
  }
  return Status::OK();
}

void AppendParseCacheImage(const ParseCacheImage& c, std::string* out) {
  AppendVarint(c.entries.size(), out);
  for (const ParseCacheEntryImage& entry : c.entries) {
    out->push_back(entry.valid ? 1 : 0);
    AppendLengthPrefixed(entry.etag, out);
    AppendFixed64(entry.body_hash, out);
    AppendVarint(entry.body_size, out);
    AppendFeedDocument(entry.document, out);
  }
  AppendVarint(c.stats.hits, out);
  AppendVarint(c.stats.misses, out);
  AppendVarint(c.stats.invalidations, out);
  AppendVarint(c.stats.bytes_saved, out);
}

Status ReadParseCacheImage(ByteReader* r, ParseCacheImage* c) {
  std::size_t num_entries = 0;
  PULLMON_RETURN_NOT_OK(ReadCount(r, &num_entries));
  c->entries.resize(num_entries);
  for (ParseCacheEntryImage& entry : c->entries) {
    std::uint8_t valid = 0;
    PULLMON_RETURN_NOT_OK(r->ReadByte(&valid));
    entry.valid = valid != 0;
    PULLMON_RETURN_NOT_OK(r->ReadString(&entry.etag));
    PULLMON_RETURN_NOT_OK(r->ReadFixed64(&entry.body_hash));
    std::uint64_t body_size = 0;
    PULLMON_RETURN_NOT_OK(r->ReadVarint(&body_size));
    entry.body_size = static_cast<std::size_t>(body_size);
    PULLMON_RETURN_NOT_OK(ReadFeedDocument(r, &entry.document));
  }
  std::uint64_t v[4];
  for (auto& value : v) PULLMON_RETURN_NOT_OK(r->ReadVarint(&value));
  c->stats.hits = static_cast<std::size_t>(v[0]);
  c->stats.misses = static_cast<std::size_t>(v[1]);
  c->stats.invalidations = static_cast<std::size_t>(v[2]);
  c->stats.bytes_saved = static_cast<std::size_t>(v[3]);
  return Status::OK();
}

void AppendSessionImage(const PullSessionImage& s, std::string* out) {
  AppendStringVec(s.etags, out);
  out->push_back(s.fault_plan.has_value() ? 1 : 0);
  if (s.fault_plan.has_value()) AppendFaultPlanImage(*s.fault_plan, out);
  out->push_back(s.parse_cache.has_value() ? 1 : 0);
  if (s.parse_cache.has_value()) AppendParseCacheImage(*s.parse_cache, out);
}

Status ReadSessionImage(ByteReader* r, PullSessionImage* s) {
  PULLMON_RETURN_NOT_OK(ReadStringVec(r, &s->etags));
  std::uint8_t has = 0;
  PULLMON_RETURN_NOT_OK(r->ReadByte(&has));
  if (has != 0) {
    s->fault_plan.emplace();
    PULLMON_RETURN_NOT_OK(ReadFaultPlanImage(r, &*s->fault_plan));
  } else {
    s->fault_plan.reset();
  }
  PULLMON_RETURN_NOT_OK(r->ReadByte(&has));
  if (has != 0) {
    s->parse_cache.emplace();
    PULLMON_RETURN_NOT_OK(ReadParseCacheImage(r, &*s->parse_cache));
  } else {
    s->parse_cache.reset();
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------
// Snapshot file
// ---------------------------------------------------------------------

std::string EncodeSnapshot(const ProxySnapshot& snapshot) {
  std::string payload;
  // Submissions dominate the payload (a few dozen bytes each); one
  // generous reservation keeps the encode pass realloc-free.
  payload.reserve(4096 + snapshot.monitor.submissions.size() * 48 +
                  snapshot.monitor.probes_by_chronon.size() * 16);
  AppendFixed64(snapshot.fingerprint, &payload);
  AppendVarint(static_cast<std::uint64_t>(snapshot.chronon), &payload);
  AppendMonitorImage(snapshot.monitor, &payload);
  AppendSessionImage(snapshot.session, &payload);
  AppendVarint(snapshot.feeds_fetched, &payload);
  AppendVarint(snapshot.not_modified, &payload);
  AppendVarint(snapshot.feed_bytes, &payload);
  AppendVarint(snapshot.items_parsed, &payload);
  AppendVarint(snapshot.parse_failures, &payload);
  AppendVarint(snapshot.corrupt_bodies, &payload);
  AppendVarint(snapshot.timeouts, &payload);
  AppendVarint(snapshot.server_errors, &payload);
  AppendVarint(snapshot.outage_probes, &payload);
  AppendVarint(snapshot.notifications_delivered, &payload);
  AppendVarint(snapshot.churn_rejected_ops, &payload);

  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendVarint(kSnapshotVersion, &out);
  AppendRecord(kSnapshotRecordType, payload, &out);
  return out;
}

Result<ProxySnapshot> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::ParseError("snapshot magic mismatch");
  }
  const char* p = bytes.data() + sizeof(kSnapshotMagic);
  const char* end = bytes.data() + bytes.size();
  std::uint64_t version = 0;
  p = DecodeVarint(p, end, &version);
  if (p == nullptr) return Status::ParseError("truncated snapshot version");
  if (version != kSnapshotVersion) {
    return Status::ParseError("unsupported snapshot version");
  }
  PULLMON_ASSIGN_OR_RETURN(
      RecordView record,
      DecodeRecord(std::string_view(p, static_cast<std::size_t>(end - p))));
  if (record.type != kSnapshotRecordType) {
    return Status::ParseError("unexpected snapshot record type");
  }
  if (record.record_bytes != static_cast<std::size_t>(end - p)) {
    return Status::ParseError("trailing bytes after snapshot record");
  }

  ProxySnapshot snapshot;
  ByteReader r(record.payload);
  PULLMON_RETURN_NOT_OK(r.ReadFixed64(&snapshot.fingerprint));
  std::uint64_t chronon = 0;
  PULLMON_RETURN_NOT_OK(r.ReadVarint(&chronon));
  snapshot.chronon = static_cast<Chronon>(chronon);
  PULLMON_RETURN_NOT_OK(ReadMonitorImage(&r, &snapshot.monitor));
  PULLMON_RETURN_NOT_OK(ReadSessionImage(&r, &snapshot.session));
  std::uint64_t v[11];
  for (auto& value : v) PULLMON_RETURN_NOT_OK(r.ReadVarint(&value));
  snapshot.feeds_fetched = static_cast<std::size_t>(v[0]);
  snapshot.not_modified = static_cast<std::size_t>(v[1]);
  snapshot.feed_bytes = static_cast<std::size_t>(v[2]);
  snapshot.items_parsed = static_cast<std::size_t>(v[3]);
  snapshot.parse_failures = static_cast<std::size_t>(v[4]);
  snapshot.corrupt_bodies = static_cast<std::size_t>(v[5]);
  snapshot.timeouts = static_cast<std::size_t>(v[6]);
  snapshot.server_errors = static_cast<std::size_t>(v[7]);
  snapshot.outage_probes = static_cast<std::size_t>(v[8]);
  snapshot.notifications_delivered = static_cast<std::size_t>(v[9]);
  snapshot.churn_rejected_ops = static_cast<std::size_t>(v[10]);
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot payload");
  }
  return snapshot;
}

}  // namespace pullmon
