#ifndef PULLMON_TRACE_POISSON_GENERATOR_H_
#define PULLMON_TRACE_POISSON_GENERATOR_H_

#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// Parameters of the synthetic Poisson(lambda) update model of
/// Section 5.1: lambda is the *average number of updates per resource
/// over the whole epoch* (the paper's "average updates intensity per
/// resource"; e.g. lambda = 20 or 50 in Figure 5).
struct PoissonTraceOptions {
  int num_resources = 0;
  Chronon epoch_length = 0;
  double lambda = 0.0;
  /// When > 0, per-resource intensities are heterogeneous: resource i's
  /// intensity is drawn log-normally around `lambda` with this sigma,
  /// modelling mixed-activity sources. 0 keeps all resources at lambda.
  double heterogeneity = 0.0;
};

/// Draws a trace: for each resource a Poisson(lambda_i) number of events
/// placed uniformly over the epoch (equivalently, a homogeneous Poisson
/// process conditioned on its count), collapsed to one event per chronon.
Result<UpdateTrace> GeneratePoissonTrace(const PoissonTraceOptions& options,
                                         Rng* rng);

/// Same draw written straight into a sealed paged store: consumes `rng`
/// identically to GeneratePoissonTrace (same seed => same events), but
/// only the resource being generated is ever resident uncompressed.
Result<TraceStore> GeneratePoissonTraceStore(
    const PoissonTraceOptions& options, Rng* rng,
    TraceStoreOptions store_options = TraceStoreOptions{});

}  // namespace pullmon

#endif  // PULLMON_TRACE_POISSON_GENERATOR_H_
