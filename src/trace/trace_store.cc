#include "trace/trace_store.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

namespace {

/// Encoded size of `value` as a LEB128 varint.
std::size_t VarintSize(std::uint64_t value) {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

/// Capacity a doubling-growth vector ends up with after `n` push_backs
/// — the model behind TraceStoreStats::in_memory_bytes.
std::size_t RoundUpPow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return n == 0 ? 0 : c;
}

}  // namespace

const char* TraceBackendToString(TraceBackend backend) {
  switch (backend) {
    case TraceBackend::kInMemory:
      return "in-memory";
    case TraceBackend::kPaged:
      return "paged";
  }
  return "?";
}

Status TraceStoreOptions::Validate() const {
  if (page_size < 16) {
    return Status::InvalidArgument(
        "trace store page_size must be >= 16 bytes");
  }
  if (cache_pages < 1) {
    return Status::InvalidArgument(
        "trace store cache_pages must be >= 1");
  }
  return Status::OK();
}

TraceStore::TraceStore(int num_resources, Chronon epoch_length,
                       TraceStoreOptions options)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      options_(options) {
  PULLMON_CHECK(num_resources_ > 0);
  PULLMON_CHECK(epoch_length_ > 0);
  PULLMON_CHECK(options_.Validate().ok());
  page_offset_.push_back(0);
  first_page_.resize(static_cast<std::size_t>(num_resources_) + 1, 0);
}

Result<TraceStore> TraceStore::FromTrace(const UpdateTrace& trace,
                                         TraceStoreOptions options) {
  TraceStore store(trace.num_resources(), trace.epoch_length(), options);
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    for (Chronon t : trace.EventsFor(r)) {
      PULLMON_RETURN_NOT_OK(store.Append(r, t));
    }
  }
  PULLMON_RETURN_NOT_OK(store.Seal());
  return store;
}

Status TraceStore::Append(ResourceId resource, Chronon t) {
  if (sealed_) {
    return Status::FailedPrecondition(
        "trace store is sealed; no further appends");
  }
  if (resource < 0 || resource >= num_resources_) {
    return Status::InvalidArgument(StringFormat(
        "resource %d outside [0, %d)", resource, num_resources_));
  }
  if (t < 0 || t >= epoch_length_) {
    return Status::OutOfRange(StringFormat(
        "chronon %d outside the epoch [0, %d)", t, epoch_length_));
  }
  if (resource < open_resource_) {
    return Status::FailedPrecondition(StringFormat(
        "appends must be resource-major: resource %d after %d already "
        "closed",
        resource, open_resource_));
  }
  if (resource > open_resource_) {
    PULLMON_RETURN_NOT_OK(FlushOpenResource());
    open_resource_ = resource;
  }
  staging_.push_back(t);
  return Status::OK();
}

Status TraceStore::FlushOpenResource() {
  if (open_resource_ >= 0) {
    // Resources skipped since the last flush own zero pages.
    const auto pages = static_cast<std::int32_t>(page_offset_.size() - 1);
    for (int i = filled_through_; i <= open_resource_; ++i) {
      first_page_[i] = pages;
    }
    filled_through_ = open_resource_ + 1;

    std::sort(staging_.begin(), staging_.end());
    staging_.erase(std::unique(staging_.begin(), staging_.end()),
                   staging_.end());
    const std::size_t n = staging_.size();
    std::size_t i = 0;
    while (i < n) {
      // Grow the page until the delta payload reaches the budget.
      std::size_t j = i + 1;
      std::size_t payload = 0;
      while (j < n) {
        const std::size_t delta_bytes = VarintSize(
            static_cast<std::uint64_t>(staging_[j] - staging_[j - 1]) -
            1);
        if (payload + delta_bytes > options_.page_size) break;
        payload += delta_bytes;
        ++j;
      }
      EncodePage(open_resource_, staging_.data() + i, j - i, &bytes_);
      page_offset_.push_back(bytes_.size());
      i = j;
    }
    stats_.events += n;
    stats_.in_memory_bytes += RoundUpPow2(n) * sizeof(Chronon);
    staging_.clear();
  }
  return Status::OK();
}

Status TraceStore::Seal() {
  if (sealed_) return Status::OK();
  PULLMON_RETURN_NOT_OK(FlushOpenResource());
  const auto pages = static_cast<std::int32_t>(page_offset_.size() - 1);
  for (int i = filled_through_; i <= num_resources_; ++i) {
    first_page_[i] = pages;
  }
  filled_through_ = num_resources_ + 1;
  sealed_ = true;
  bytes_.shrink_to_fit();
  page_offset_.shrink_to_fit();
  stats_.pages_written = static_cast<std::size_t>(pages);
  stats_.bytes_stored = bytes_.size() +
                        page_offset_.size() * sizeof(std::uint64_t) +
                        first_page_.size() * sizeof(std::int32_t);
  // What UpdateTrace would hold for the same events: the outer vector
  // plus one inner vector header per resource, on top of the
  // doubling-growth element storage accumulated at flush time.
  stats_.in_memory_bytes +=
      sizeof(std::vector<std::vector<Chronon>>) +
      static_cast<std::size_t>(num_resources_) *
          sizeof(std::vector<Chronon>);
  return Status::OK();
}

double TraceStore::MeanIntensity() const {
  return static_cast<double>(stats_.events) /
         static_cast<double>(num_resources_);
}

std::string_view TraceStore::PageBytes(int page_id) const {
  const std::uint64_t begin = page_offset_[page_id];
  const std::uint64_t end = page_offset_[page_id + 1];
  return std::string_view(bytes_).substr(
      static_cast<std::size_t>(begin),
      static_cast<std::size_t>(end - begin));
}

Result<std::shared_ptr<const std::vector<Chronon>>> TraceStore::FetchPage(
    int page_id) const {
  PULLMON_CHECK(sealed_);
  auto it = cache_index_.find(page_id);
  if (it != cache_index_.end()) {
    ++stats_.cache_hits;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->events;
  }
  ++stats_.cache_misses;
  auto events = std::make_shared<std::vector<Chronon>>();
  PULLMON_ASSIGN_OR_RETURN(PageHeader header,
                           DecodePage(PageBytes(page_id), events.get()));
  if (header.page_bytes != PageBytes(page_id).size()) {
    return Status::ParseError(
        "trace page corrupt: encoded size disagrees with the page "
        "table");
  }
  cache_lru_.push_front(CacheEntry{
      page_id, std::shared_ptr<const std::vector<Chronon>>(events)});
  cache_index_[page_id] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cache_pages) {
    cache_index_.erase(cache_lru_.back().page_id);
    cache_lru_.pop_back();
    ++stats_.cache_evictions;
  }
  return cache_lru_.front().events;
}

Status TraceStore::ReadResource(ResourceId resource,
                                std::vector<Chronon>* out) const {
  PULLMON_CHECK(sealed_);
  if (resource < 0 || resource >= num_resources_) {
    return Status::InvalidArgument(StringFormat(
        "resource %d outside [0, %d)", resource, num_resources_));
  }
  for (int page = first_page_[resource];
       page < first_page_[resource + 1]; ++page) {
    PULLMON_ASSIGN_OR_RETURN(auto events, FetchPage(page));
    out->insert(out->end(), events->begin(), events->end());
  }
  return Status::OK();
}

TraceStore::EventCursor TraceStore::EventsFor(ResourceId resource) const {
  PULLMON_CHECK(sealed_);
  if (resource < 0 || resource >= num_resources_) {
    return EventCursor(this, 0, 0);
  }
  return EventCursor(this, first_page_[resource],
                     first_page_[resource + 1]);
}

bool TraceStore::EventCursor::Next(Chronon* t) {
  if (!status_.ok()) return false;
  while (true) {
    if (page_ != nullptr && pos_ < page_->size()) {
      *t = (*page_)[pos_++];
      return true;
    }
    if (next_page_ >= end_page_) return false;
    auto page = store_->FetchPage(next_page_);
    if (!page.ok()) {
      status_ = page.status();
      page_.reset();
      return false;
    }
    page_ = *std::move(page);
    pos_ = 0;
    ++next_page_;
  }
}

Status TraceStore::VerifyAllPages() const {
  PULLMON_CHECK(sealed_);
  std::size_t events = 0;
  std::vector<Chronon> scratch;
  for (ResourceId r = 0; r < num_resources_; ++r) {
    Chronon prev = -1;
    for (int page = first_page_[r]; page < first_page_[r + 1]; ++page) {
      scratch.clear();
      PULLMON_ASSIGN_OR_RETURN(PageHeader header,
                               DecodePage(PageBytes(page), &scratch));
      if (header.resource != r) {
        return Status::ParseError(StringFormat(
            "trace page corrupt: page %d claims resource %d but the "
            "page table assigns it to %d",
            page, header.resource, r));
      }
      if (header.page_bytes != PageBytes(page).size()) {
        return Status::ParseError(
            "trace page corrupt: encoded size disagrees with the page "
            "table");
      }
      if (header.first_chronon <= prev) {
        return Status::ParseError(StringFormat(
            "trace page corrupt: page %d of resource %d regresses to "
            "chronon %d",
            page, r, header.first_chronon));
      }
      prev = header.last_chronon;
      events += scratch.size();
    }
  }
  if (events != stats_.events) {
    return Status::ParseError(StringFormat(
        "trace store corrupt: pages hold %zu events, the store "
        "recorded %zu",
        events, stats_.events));
  }
  return Status::OK();
}

StreamingTraceReader::StreamingTraceReader(const TraceStore* store)
    : store_(store) {
  PULLMON_CHECK(store_ != nullptr && store_->sealed());
  const int n = store_->num_resources();
  cursors_.resize(static_cast<std::size_t>(n));
  heap_.reserve(static_cast<std::size_t>(n));
  for (ResourceId r = 0; r < n; ++r) {
    Cursor& cursor = cursors_[r];
    cursor.next_page = store_->first_page_[r];
    cursor.end_page = store_->first_page_[r + 1];
    Chronon t = 0;
    if (Advance(r, &t)) {
      heap_.emplace_back(t, r);
    } else if (!status_.ok()) {
      return;
    }
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 std::greater<std::pair<Chronon, ResourceId>>());
}

bool StreamingTraceReader::OpenNextPage(Cursor* cursor) {
  if (cursor->next_page >= cursor->end_page) return false;
  const std::string_view page = store_->PageBytes(cursor->next_page);
  auto header = DecodePageHeader(page);
  if (!header.ok()) {
    status_ = header.status();
    return false;
  }
  if (header->page_bytes != page.size()) {
    status_ = Status::ParseError(
        "trace page corrupt: encoded size disagrees with the page "
        "table");
    return false;
  }
  if (header->event_count == 1 && header->payload_bytes != 0) {
    status_ = Status::ParseError(
        "trace page corrupt: payload longer than the event count");
    return false;
  }
  cursor->p = page.data() + header->payload_offset;
  cursor->payload_end =
      cursor->p + static_cast<std::size_t>(header->payload_bytes);
  cursor->prev = header->first_chronon;
  cursor->last = header->last_chronon;
  cursor->remaining = header->event_count - 1;
  ++cursor->next_page;
  return true;
}

bool StreamingTraceReader::Advance(ResourceId r, Chronon* t) {
  Cursor& cursor = cursors_[r];
  if (cursor.remaining == 0) {
    if (cursor.p != nullptr && cursor.p != cursor.payload_end) {
      status_ = Status::ParseError(
          "trace page corrupt: payload longer than the event count");
      return false;
    }
    if (!OpenNextPage(&cursor)) return false;
    // The page's first event lives in the header.
    *t = cursor.prev;
    return true;
  }
  std::uint64_t gap_minus_1 = 0;
  const char* p = DecodeVarint(cursor.p, cursor.payload_end,
                               &gap_minus_1);
  if (p == nullptr) {
    status_ = Status::ParseError(
        "trace page corrupt: payload shorter than the event count");
    return false;
  }
  const std::uint64_t next =
      static_cast<std::uint64_t>(cursor.prev) + gap_minus_1 + 1;
  if (next > static_cast<std::uint64_t>(cursor.last)) {
    status_ = Status::ParseError(
        "trace page corrupt: event past the header's last chronon");
    return false;
  }
  cursor.p = p;
  cursor.prev = static_cast<Chronon>(next);
  if (--cursor.remaining == 0 && cursor.prev != cursor.last) {
    status_ = Status::ParseError(
        "trace page corrupt: final event disagrees with the header");
    return false;
  }
  *t = cursor.prev;
  return true;
}

bool StreamingTraceReader::Next(UpdateEvent* out) {
  if (!status_.ok() || heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                std::greater<std::pair<Chronon, ResourceId>>());
  const auto [t, r] = heap_.back();
  heap_.pop_back();
  out->resource = r;
  out->chronon = t;
  Chronon next = 0;
  if (Advance(r, &next)) {
    heap_.emplace_back(next, r);
    std::push_heap(heap_.begin(), heap_.end(),
                   std::greater<std::pair<Chronon, ResourceId>>());
  }
  return status_.ok();
}

}  // namespace pullmon
