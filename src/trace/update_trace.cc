#include "trace/update_trace.h"

#include <algorithm>

#include "util/string_util.h"

namespace pullmon {

UpdateTrace::UpdateTrace(int num_resources, Chronon epoch_length)
    : num_resources_(num_resources),
      epoch_length_(epoch_length),
      events_by_resource_(
          static_cast<std::size_t>(num_resources < 0 ? 0 : num_resources)) {}

Status UpdateTrace::AddEvent(ResourceId resource, Chronon t) {
  if (resource < 0 || resource >= num_resources_) {
    return Status::InvalidArgument(
        StringFormat("resource %d outside [0,%d)", resource, num_resources_));
  }
  if (t < 0 || t >= epoch_length_) {
    return Status::OutOfRange(
        StringFormat("event chronon %d outside epoch [0,%d)", t,
                     epoch_length_));
  }
  auto& events = events_by_resource_[static_cast<std::size_t>(resource)];
  auto it = std::lower_bound(events.begin(), events.end(), t);
  if (it != events.end() && *it == t) return Status::OK();  // collapse
  events.insert(it, t);
  ++total_events_;
  return Status::OK();
}

const std::vector<Chronon>& UpdateTrace::EventsFor(
    ResourceId resource) const {
  static const std::vector<Chronon>& empty = *new std::vector<Chronon>();
  if (resource < 0 || resource >= num_resources_) return empty;
  return events_by_resource_[static_cast<std::size_t>(resource)];
}

std::size_t UpdateTrace::ApproxMemoryBytes() const {
  std::size_t bytes = sizeof(events_by_resource_) +
                      events_by_resource_.capacity() *
                          sizeof(std::vector<Chronon>);
  for (const auto& events : events_by_resource_) {
    bytes += events.capacity() * sizeof(Chronon);
  }
  return bytes;
}

double UpdateTrace::MeanIntensity() const {
  if (num_resources_ == 0) return 0.0;
  return static_cast<double>(total_events_) /
         static_cast<double>(num_resources_);
}

std::vector<UpdateEvent> UpdateTrace::ChronologicalEvents() const {
  std::vector<UpdateEvent> out;
  out.reserve(total_events_);
  for (ResourceId r = 0; r < num_resources_; ++r) {
    for (Chronon t : events_by_resource_[static_cast<std::size_t>(r)]) {
      out.push_back(UpdateEvent{r, t});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UpdateEvent& a, const UpdateEvent& b) {
              if (a.chronon != b.chronon) return a.chronon < b.chronon;
              return a.resource < b.resource;
            });
  return out;
}

}  // namespace pullmon
