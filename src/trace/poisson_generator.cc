#include "trace/poisson_generator.h"

#include <cmath>

namespace pullmon {

namespace {

/// The draw itself, parameterized over the event sink so the
/// UpdateTrace and TraceStore variants consume `rng` identically.
template <typename AddEvent>
Status GeneratePoissonInto(const PoissonTraceOptions& options, Rng* rng,
                           AddEvent&& add_event) {
  for (ResourceId r = 0; r < options.num_resources; ++r) {
    double intensity = options.lambda;
    if (options.heterogeneity > 0.0) {
      // Log-normal multiplier with unit mean:
      // exp(N(-(sigma^2)/2, sigma)) has expectation 1.
      double sigma = options.heterogeneity;
      intensity *= std::exp(rng->NextGaussian() * sigma -
                            0.5 * sigma * sigma);
    }
    int64_t count = rng->NextPoisson(intensity);
    for (int64_t i = 0; i < count; ++i) {
      Chronon t = static_cast<Chronon>(rng->NextBounded(
          static_cast<uint64_t>(options.epoch_length)));
      PULLMON_RETURN_NOT_OK(add_event(r, t));
    }
  }
  return Status::OK();
}

Status ValidatePoissonOptions(const PoissonTraceOptions& options) {
  if (options.num_resources <= 0) {
    return Status::InvalidArgument("num_resources must be positive");
  }
  if (options.epoch_length <= 0) {
    return Status::InvalidArgument("epoch_length must be positive");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  return Status::OK();
}

}  // namespace

Result<UpdateTrace> GeneratePoissonTrace(const PoissonTraceOptions& options,
                                         Rng* rng) {
  PULLMON_RETURN_NOT_OK(ValidatePoissonOptions(options));
  UpdateTrace trace(options.num_resources, options.epoch_length);
  PULLMON_RETURN_NOT_OK(GeneratePoissonInto(
      options, rng,
      [&trace](ResourceId r, Chronon t) { return trace.AddEvent(r, t); }));
  return trace;
}

Result<TraceStore> GeneratePoissonTraceStore(
    const PoissonTraceOptions& options, Rng* rng,
    TraceStoreOptions store_options) {
  PULLMON_RETURN_NOT_OK(ValidatePoissonOptions(options));
  PULLMON_RETURN_NOT_OK(store_options.Validate());
  TraceStore store(options.num_resources, options.epoch_length,
                   store_options);
  PULLMON_RETURN_NOT_OK(GeneratePoissonInto(
      options, rng,
      [&store](ResourceId r, Chronon t) { return store.Append(r, t); }));
  PULLMON_RETURN_NOT_OK(store.Seal());
  return store;
}

}  // namespace pullmon
