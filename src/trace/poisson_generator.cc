#include "trace/poisson_generator.h"

#include <cmath>

namespace pullmon {

Result<UpdateTrace> GeneratePoissonTrace(const PoissonTraceOptions& options,
                                         Rng* rng) {
  if (options.num_resources <= 0) {
    return Status::InvalidArgument("num_resources must be positive");
  }
  if (options.epoch_length <= 0) {
    return Status::InvalidArgument("epoch_length must be positive");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  UpdateTrace trace(options.num_resources, options.epoch_length);
  for (ResourceId r = 0; r < options.num_resources; ++r) {
    double intensity = options.lambda;
    if (options.heterogeneity > 0.0) {
      // Log-normal multiplier with unit mean:
      // exp(N(-(sigma^2)/2, sigma)) has expectation 1.
      double sigma = options.heterogeneity;
      intensity *= std::exp(rng->NextGaussian() * sigma -
                            0.5 * sigma * sigma);
    }
    int64_t count = rng->NextPoisson(intensity);
    for (int64_t i = 0; i < count; ++i) {
      Chronon t = static_cast<Chronon>(rng->NextBounded(
          static_cast<uint64_t>(options.epoch_length)));
      PULLMON_RETURN_NOT_OK(trace.AddEvent(r, t));
    }
  }
  return trace;
}

}  // namespace pullmon
