#ifndef PULLMON_TRACE_FEED_WORKLOAD_H_
#define PULLMON_TRACE_FEED_WORKLOAD_H_

#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// A Web-feed-shaped update workload following the measurement study the
/// paper cites as [10]: a majority of feeds publish on a near-hourly
/// schedule, activity across feeds is heavily skewed (Zipf ~1.37), and
/// the rest update irregularly. Complements the Poisson and auction
/// generators with a third, more structured source model.
struct FeedWorkloadOptions {
  int num_feeds = 400;
  Chronon epoch_length = 1000;
  /// Wall-clock anchoring of the chronon grid; "hourly" feeds post every
  /// `chronons_per_hour` chronons.
  Chronon chronons_per_hour = 60;
  /// Fraction of feeds with a (jittered) periodic posting schedule —
  /// 0.55 per [10].
  double periodic_fraction = 0.55;
  /// Gaussian jitter (chronons) applied to each periodic posting.
  double period_jitter = 2.0;
  /// Spread of periods around an hour: each periodic feed's period is
  /// chronons_per_hour times a log-normal factor with this sigma.
  double period_spread = 0.35;
  /// Mean epoch-level posting count of an *average* aperiodic feed.
  double aperiodic_lambda = 10.0;
  /// Zipf skew of activity across aperiodic feeds (alpha of [10]).
  double popularity_alpha = 1.37;
};

/// Draws a feed workload trace. Deterministic given `rng`.
Result<UpdateTrace> GenerateFeedWorkload(const FeedWorkloadOptions& options,
                                         Rng* rng);

/// Same draw written straight into a sealed paged store: consumes `rng`
/// identically to GenerateFeedWorkload (same seed => same events), but
/// only the feed being generated is ever resident uncompressed.
Result<TraceStore> GenerateFeedWorkloadStore(
    const FeedWorkloadOptions& options, Rng* rng,
    TraceStoreOptions store_options = TraceStoreOptions{});

}  // namespace pullmon

#endif  // PULLMON_TRACE_FEED_WORKLOAD_H_
