#ifndef PULLMON_TRACE_TRACE_IO_H_
#define PULLMON_TRACE_TRACE_IO_H_

#include <string>

#include "trace/auction_generator.h"
#include "trace/update_trace.h"
#include "util/status.h"

namespace pullmon {

/// Serializes an update trace as CSV with header "resource,chronon"
/// (one row per event, chronological per resource).
std::string UpdateTraceToCsv(const UpdateTrace& trace);

/// Parses the UpdateTraceToCsv format. `num_resources`/`epoch_length`
/// bound validation; events outside them fail with OutOfRange.
Result<UpdateTrace> UpdateTraceFromCsv(const std::string& csv,
                                       int num_resources,
                                       Chronon epoch_length);

Status WriteUpdateTraceFile(const UpdateTrace& trace,
                            const std::string& path);
Result<UpdateTrace> ReadUpdateTraceFile(const std::string& path,
                                        int num_resources,
                                        Chronon epoch_length);

/// Serializes a full auction trace (listings + bids) as two-section CSV:
/// an "auction" section and a "bid" section, distinguished by the first
/// column. Round-trips through AuctionTraceFromCsv.
std::string AuctionTraceToCsv(const AuctionTrace& trace);
Result<AuctionTrace> AuctionTraceFromCsv(const std::string& csv);

Status WriteAuctionTraceFile(const AuctionTrace& trace,
                             const std::string& path);
Result<AuctionTrace> ReadAuctionTraceFile(const std::string& path);

}  // namespace pullmon

#endif  // PULLMON_TRACE_TRACE_IO_H_
