#include "trace/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace pullmon {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return buffer.str();
}

}  // namespace

std::string UpdateTraceToCsv(const UpdateTrace& trace) {
  std::string out = "resource,chronon\n";
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    for (Chronon t : trace.EventsFor(r)) {
      out += StringFormat("%d,%d\n", r, t);
    }
  }
  return out;
}

Result<UpdateTrace> UpdateTraceFromCsv(const std::string& csv,
                                       int num_resources,
                                       Chronon epoch_length) {
  PULLMON_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv, /*has_header=*/true));
  PULLMON_ASSIGN_OR_RETURN(std::size_t res_col, doc.ColumnIndex("resource"));
  PULLMON_ASSIGN_OR_RETURN(std::size_t chr_col, doc.ColumnIndex("chronon"));
  UpdateTrace trace(num_resources, epoch_length);
  for (const auto& row : doc.rows) {
    if (row.size() <= std::max(res_col, chr_col)) {
      return Status::ParseError("short row in update trace CSV");
    }
    PULLMON_ASSIGN_OR_RETURN(int64_t resource, ParseInt64(row[res_col]));
    PULLMON_ASSIGN_OR_RETURN(int64_t chronon, ParseInt64(row[chr_col]));
    PULLMON_RETURN_NOT_OK(trace.AddEvent(static_cast<ResourceId>(resource),
                                         static_cast<Chronon>(chronon)));
  }
  return trace;
}

Status WriteUpdateTraceFile(const UpdateTrace& trace,
                            const std::string& path) {
  return WriteFile(path, UpdateTraceToCsv(trace));
}

Result<UpdateTrace> ReadUpdateTraceFile(const std::string& path,
                                        int num_resources,
                                        Chronon epoch_length) {
  PULLMON_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  return UpdateTraceFromCsv(content, num_resources, epoch_length);
}

std::string AuctionTraceToCsv(const AuctionTrace& trace) {
  std::string out =
      "kind,id,chronon,close_or_amount,item_or_bidder,start_price\n";
  out += StringFormat("epoch,%d,,,,\n", trace.epoch_length);
  for (const auto& info : trace.auctions) {
    out += StringFormat("auction,%d,%d,%d,%s,%.2f\n", info.id, info.open,
                        info.close, CsvEscape(info.item).c_str(),
                        info.start_price);
  }
  for (const auto& bid : trace.bids) {
    out += StringFormat("bid,%d,%d,%.2f,%s,\n", bid.auction, bid.chronon,
                        bid.amount, CsvEscape(bid.bidder).c_str());
  }
  return out;
}

Result<AuctionTrace> AuctionTraceFromCsv(const std::string& csv) {
  PULLMON_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv, /*has_header=*/true));
  AuctionTrace trace;
  for (const auto& row : doc.rows) {
    if (row.empty()) continue;
    const std::string& kind = row[0];
    if (kind == "epoch") {
      if (row.size() < 2) return Status::ParseError("short epoch row");
      PULLMON_ASSIGN_OR_RETURN(int64_t k, ParseInt64(row[1]));
      trace.epoch_length = static_cast<Chronon>(k);
    } else if (kind == "auction") {
      if (row.size() < 6) return Status::ParseError("short auction row");
      AuctionInfo info;
      PULLMON_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[1]));
      PULLMON_ASSIGN_OR_RETURN(int64_t open, ParseInt64(row[2]));
      PULLMON_ASSIGN_OR_RETURN(int64_t close, ParseInt64(row[3]));
      PULLMON_ASSIGN_OR_RETURN(double price, ParseDouble(row[5]));
      info.id = static_cast<int>(id);
      info.open = static_cast<Chronon>(open);
      info.close = static_cast<Chronon>(close);
      info.item = row[4];
      info.start_price = price;
      trace.auctions.push_back(std::move(info));
    } else if (kind == "bid") {
      if (row.size() < 5) return Status::ParseError("short bid row");
      AuctionBid bid;
      PULLMON_ASSIGN_OR_RETURN(int64_t auction, ParseInt64(row[1]));
      PULLMON_ASSIGN_OR_RETURN(int64_t chronon, ParseInt64(row[2]));
      PULLMON_ASSIGN_OR_RETURN(double amount, ParseDouble(row[3]));
      bid.auction = static_cast<int>(auction);
      bid.chronon = static_cast<Chronon>(chronon);
      bid.amount = amount;
      bid.bidder = row[4];
      trace.bids.push_back(std::move(bid));
    } else {
      return Status::ParseError("unknown auction CSV row kind: " + kind);
    }
  }
  std::sort(trace.bids.begin(), trace.bids.end(),
            [](const AuctionBid& x, const AuctionBid& y) {
              if (x.auction != y.auction) return x.auction < y.auction;
              return x.chronon < y.chronon;
            });
  return trace;
}

Status WriteAuctionTraceFile(const AuctionTrace& trace,
                             const std::string& path) {
  return WriteFile(path, AuctionTraceToCsv(trace));
}

Result<AuctionTrace> ReadAuctionTraceFile(const std::string& path) {
  PULLMON_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  return AuctionTraceFromCsv(content);
}

}  // namespace pullmon
