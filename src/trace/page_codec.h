#ifndef PULLMON_TRACE_PAGE_CODEC_H_
#define PULLMON_TRACE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/chronon.h"
#include "util/status.h"

namespace pullmon {

/// Codec of one trace page: the sorted update chronons of one resource,
/// delta-encoded with varints behind a checksummed header. A page is
/// self-delimiting, so a resource's pages can be laid out back to back
/// in one byte stream and walked without an external length table.
///
/// Wire format (all integers LEB128 varints unless noted):
///
///   varint resource        owner resource id
///   varint first_chronon   chronon of the first event
///   varint span            last_chronon - first_chronon
///   varint count_minus_1   event_count - 1 (a page holds >= 1 event)
///   varint payload_bytes   length of the delta payload that follows
///   payload                (count - 1) varints of gap-1 between
///                          consecutive chronons (strictly ascending,
///                          so every gap is >= 1)
///   uint32 checksum        FNV-1a over everything above, little-endian
///
/// The first event lives in the header and the deltas are biased by -1,
/// so a dense every-chronon run costs one byte per event and a
/// single-event page has an empty payload. Decoding never trusts the
/// input: truncated, overlong, non-monotone, or checksum-mangled bytes
/// come back as a Status, never a crash (fuzzed under asan).

/// Decoded header of one page.
struct PageHeader {
  ResourceId resource = 0;
  Chronon first_chronon = 0;
  Chronon last_chronon = 0;
  /// Events in the page (>= 1).
  std::int64_t event_count = 0;
  /// Bytes of the delta payload (excludes header and checksum).
  std::uint64_t payload_bytes = 0;
  /// Offset of the payload's first byte within the page.
  std::size_t payload_offset = 0;
  /// Total encoded page size: header + payload + checksum.
  std::size_t page_bytes = 0;
};

/// Appends `value` to `out` as a LEB128 varint (1-10 bytes).
void AppendVarint(std::uint64_t value, std::string* out);

/// Decodes one varint from [p, end). Returns the byte past the varint,
/// or nullptr when the input is truncated or longer than 10 bytes.
const char* DecodeVarint(const char* p, const char* end,
                         std::uint64_t* value);

/// Encodes the strictly ascending chronons [events, events + count) of
/// `resource` into one page appended to `out`; returns the encoded
/// size. PULLMON_CHECKs count >= 1 and ascending order — the encoder
/// runs on trusted in-process data, only the *decoder* faces bytes.
std::size_t EncodePage(ResourceId resource, const Chronon* events,
                       std::size_t count, std::string* out);

/// Parses and validates the header of the page starting at `page[0]`
/// (the buffer may extend past the page; `page_bytes` of the result
/// says where this page ends). Verifies the checksum over the whole
/// page, so a corrupt payload fails here too.
Result<PageHeader> DecodePageHeader(std::string_view page);

/// Full decode: header plus every event chronon appended to `*events`
/// (not cleared). Validates the checksum, the payload length, event
/// monotonicity, and that last_chronon matches the final event.
Result<PageHeader> DecodePage(std::string_view page,
                              std::vector<Chronon>* events);

/// FNV-1a 32-bit over `bytes` — the page checksum primitive, exposed
/// for tests that forge corrupt pages.
std::uint32_t PageChecksum(std::string_view bytes);

}  // namespace pullmon

#endif  // PULLMON_TRACE_PAGE_CODEC_H_
