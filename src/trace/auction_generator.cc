#include "trace/auction_generator.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace pullmon {

namespace {

const char* const kItemCatalog[] = {
    "Intel Core Duo laptop",     "Intel Centrino laptop",
    "IBM ThinkPad T60 laptop",   "IBM ThinkPad X41 laptop",
    "Dell Latitude D620 laptop", "Dell Inspiron 6400 laptop",
};

}  // namespace

std::vector<AuctionBid> AuctionTrace::BidsFor(int auction) const {
  std::vector<AuctionBid> out;
  for (const auto& bid : bids) {
    if (bid.auction == auction) out.push_back(bid);
  }
  return out;
}

Result<UpdateTrace> AuctionTrace::ToUpdateTrace() const {
  UpdateTrace trace(static_cast<int>(auctions.size()), epoch_length);
  for (const auto& bid : bids) {
    PULLMON_RETURN_NOT_OK(trace.AddEvent(bid.auction, bid.chronon));
  }
  return trace;
}

Result<TraceStore> AuctionTrace::ToTraceStore(
    TraceStoreOptions store_options) const {
  PULLMON_RETURN_NOT_OK(store_options.Validate());
  TraceStore store(static_cast<int>(auctions.size()), epoch_length,
                   store_options);
  for (const auto& bid : bids) {
    PULLMON_RETURN_NOT_OK(store.Append(bid.auction, bid.chronon));
  }
  PULLMON_RETURN_NOT_OK(store.Seal());
  return store;
}

Result<AuctionTrace> GenerateAuctionTrace(const AuctionTraceOptions& options,
                                          Rng* rng) {
  if (options.num_auctions <= 0) {
    return Status::InvalidArgument("num_auctions must be positive");
  }
  if (options.epoch_length <= 1) {
    return Status::InvalidArgument("epoch_length must be > 1");
  }
  if (options.base_bid_rate < 0.0 || options.snipe_intensity < 0.0) {
    return Status::InvalidArgument("negative rate parameters");
  }

  AuctionTrace trace;
  trace.epoch_length = options.epoch_length;
  const Chronon epoch = options.epoch_length;
  const std::size_t num_items =
      sizeof(kItemCatalog) / sizeof(kItemCatalog[0]);

  for (int a = 0; a < options.num_auctions; ++a) {
    AuctionInfo info;
    info.id = a;
    info.item = kItemCatalog[rng->NextBounded(num_items)];
    // Duration: exponential around the configured mean, clamped to
    // [3, epoch-1] chronons.
    double mean_duration =
        options.mean_duration_fraction * static_cast<double>(epoch);
    Chronon duration = static_cast<Chronon>(
        std::clamp(rng->NextExponential(1.0 / std::max(1.0, mean_duration)),
                   3.0, static_cast<double>(epoch - 1)));
    info.open = static_cast<Chronon>(
        rng->NextBounded(static_cast<uint64_t>(epoch - duration)));
    info.close = info.open + duration;
    info.start_price =
        options.start_price_min +
        rng->NextDouble() * (options.start_price_max -
                             options.start_price_min);
    trace.auctions.push_back(info);

    double price = info.start_price;
    double tau = std::max(
        1.0, options.snipe_tau_fraction * static_cast<double>(duration));
    auto add_bid = [&](Chronon t) {
      price += rng->NextExponential(1.0 / std::max(0.01,
                                                   options.increment_mean));
      AuctionBid bid;
      bid.auction = a;
      bid.chronon = t;
      bid.amount = price;
      bid.bidder = StringFormat(
          "bidder_%03d",
          static_cast<int>(rng->NextBounded(
              static_cast<uint64_t>(std::max(1, options.num_bidders)))));
      trace.bids.push_back(std::move(bid));
    };

    if (options.seed_opening_bid) add_bid(info.open);
    for (Chronon t = info.open + 1; t <= info.close; ++t) {
      // Non-homogeneous arrival rate with an exponential sniping ramp
      // toward the close, thinned per chronon.
      double ramp = options.snipe_intensity *
                    std::exp(-static_cast<double>(info.close - t) / tau);
      double rate = options.base_bid_rate * (1.0 + ramp);
      double p_bid = 1.0 - std::exp(-rate);
      if (rng->NextBool(p_bid)) add_bid(t);
    }
  }

  std::sort(trace.bids.begin(), trace.bids.end(),
            [](const AuctionBid& x, const AuctionBid& y) {
              if (x.auction != y.auction) return x.auction < y.auction;
              return x.chronon < y.chronon;
            });
  return trace;
}

}  // namespace pullmon
