#ifndef PULLMON_TRACE_UPDATE_TRACE_H_
#define PULLMON_TRACE_UPDATE_TRACE_H_

#include <cstddef>
#include <vector>

#include "core/chronon.h"
#include "util/status.h"

namespace pullmon {

/// A single update event: resource r_i changed state at chronon t.
struct UpdateEvent {
  ResourceId resource = 0;
  Chronon chronon = 0;

  bool operator==(const UpdateEvent& other) const = default;
};

/// A trace of update events over an epoch: the raw volatile-source
/// activity from which execution intervals are derived (Section 5.1).
/// Events are stored per resource in ascending chronon order with at most
/// one event per (resource, chronon) — a chronon is indivisible, so
/// multiple updates within one collapse.
class UpdateTrace {
 public:
  UpdateTrace(int num_resources, Chronon epoch_length);

  int num_resources() const { return num_resources_; }
  Chronon epoch_length() const { return epoch_length_; }

  /// Records an update; duplicates are collapsed. OutOfRange /
  /// InvalidArgument on events outside the epoch or resource range.
  Status AddEvent(ResourceId resource, Chronon t);

  /// Ascending update chronons of one resource.
  const std::vector<Chronon>& EventsFor(ResourceId resource) const;

  /// Total number of events across resources.
  std::size_t TotalEvents() const { return total_events_; }

  /// Measured heap footprint of the event storage: every inner vector's
  /// header plus its actual capacity. The denominator TraceStore's
  /// compression is judged against (bench_trace_store).
  std::size_t ApproxMemoryBytes() const;

  /// Average events per resource (the lambda actually realized).
  double MeanIntensity() const;

  /// All events flattened, ordered by (chronon, resource) — the order a
  /// live monitor would observe them.
  std::vector<UpdateEvent> ChronologicalEvents() const;

 private:
  int num_resources_;
  Chronon epoch_length_;
  std::size_t total_events_ = 0;
  std::vector<std::vector<Chronon>> events_by_resource_;
};

}  // namespace pullmon

#endif  // PULLMON_TRACE_UPDATE_TRACE_H_
