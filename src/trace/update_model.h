#ifndef PULLMON_TRACE_UPDATE_MODEL_H_
#define PULLMON_TRACE_UPDATE_MODEL_H_

#include <vector>

#include "core/execution_interval.h"
#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/status.h"

namespace pullmon {

/// Data delivery restrictions (Section 5.1) that determine the length of
/// the execution interval opened by each update event.
enum class LengthRestriction {
  /// Overwrite: the update must be delivered before the next update to
  /// the same resource overwrites it — EI = [u_i, u_{i+1} - 1] (the last
  /// update's EI extends to the end of the epoch). Models a preference
  /// for data completeness.
  kOverwrite,
  /// Window(W): the update must be delivered within W chronons —
  /// EI = [u, min(u + W, K-1)]. W = 0 yields unit-width EIs (P^[1]).
  /// Models tolerance to staleness.
  kWindow,
};

const char* LengthRestrictionToString(LengthRestriction restriction);

struct EiDerivationOptions {
  LengthRestriction restriction = LengthRestriction::kWindow;
  /// W for LengthRestriction::kWindow; ignored for kOverwrite.
  Chronon window = 0;
};

/// FPN(1) update model ([14] via Section 5.1): assumes perfect knowledge
/// of the real update trace, so every update event deterministically
/// opens one execution interval on its resource per the restriction.
/// Returned EIs are in ascending start order.
std::vector<ExecutionInterval> DeriveExecutionIntervals(
    const UpdateTrace& trace, ResourceId resource,
    const EiDerivationOptions& options);

/// Derivation from a resource's raw ascending update chronons — the
/// shared core both trace backends delegate to.
std::vector<ExecutionInterval> DeriveExecutionIntervalsFromEvents(
    const std::vector<Chronon>& updates, ResourceId resource,
    Chronon epoch_length, const EiDerivationOptions& options);

/// Paged-store derivation: reads the resource's events through the
/// store's page cache. Fails only on a corrupt store.
Result<std::vector<ExecutionInterval>> DeriveExecutionIntervals(
    const TraceStore& trace, ResourceId resource,
    const EiDerivationOptions& options);

/// Derivation over all resources, concatenated in resource order.
std::vector<ExecutionInterval> DeriveAllExecutionIntervals(
    const UpdateTrace& trace, const EiDerivationOptions& options);

}  // namespace pullmon

#endif  // PULLMON_TRACE_UPDATE_MODEL_H_
