#include "trace/update_model.h"

#include <algorithm>

namespace pullmon {

const char* LengthRestrictionToString(LengthRestriction restriction) {
  switch (restriction) {
    case LengthRestriction::kOverwrite:
      return "overwrite";
    case LengthRestriction::kWindow:
      return "window";
  }
  return "?";
}

std::vector<ExecutionInterval> DeriveExecutionIntervals(
    const UpdateTrace& trace, ResourceId resource,
    const EiDerivationOptions& options) {
  return DeriveExecutionIntervalsFromEvents(trace.EventsFor(resource),
                                            resource,
                                            trace.epoch_length(), options);
}

Result<std::vector<ExecutionInterval>> DeriveExecutionIntervals(
    const TraceStore& trace, ResourceId resource,
    const EiDerivationOptions& options) {
  std::vector<Chronon> updates;
  PULLMON_RETURN_NOT_OK(trace.ReadResource(resource, &updates));
  return DeriveExecutionIntervalsFromEvents(updates, resource,
                                            trace.epoch_length(), options);
}

std::vector<ExecutionInterval> DeriveExecutionIntervalsFromEvents(
    const std::vector<Chronon>& updates, ResourceId resource,
    Chronon epoch_length, const EiDerivationOptions& options) {
  std::vector<ExecutionInterval> out;
  const Chronon last_chronon = epoch_length - 1;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    Chronon start = updates[i];
    Chronon finish;
    switch (options.restriction) {
      case LengthRestriction::kOverwrite:
        finish = (i + 1 < updates.size()) ? updates[i + 1] - 1
                                          : last_chronon;
        break;
      case LengthRestriction::kWindow:
        finish = std::min<Chronon>(start + options.window, last_chronon);
        break;
      default:
        finish = start;
        break;
    }
    out.emplace_back(resource, start, finish);
  }
  return out;
}

std::vector<ExecutionInterval> DeriveAllExecutionIntervals(
    const UpdateTrace& trace, const EiDerivationOptions& options) {
  std::vector<ExecutionInterval> out;
  for (ResourceId r = 0; r < trace.num_resources(); ++r) {
    auto eis = DeriveExecutionIntervals(trace, r, options);
    out.insert(out.end(), eis.begin(), eis.end());
  }
  return out;
}

}  // namespace pullmon
