#include "trace/feed_workload.h"

#include <algorithm>
#include <cmath>

#include "util/zipf.h"

namespace pullmon {

namespace {

Status ValidateFeedOptions(const FeedWorkloadOptions& options) {
  if (options.num_feeds <= 0 || options.epoch_length <= 0) {
    return Status::InvalidArgument("feed workload sizes must be positive");
  }
  if (options.chronons_per_hour <= 0) {
    return Status::InvalidArgument("chronons_per_hour must be positive");
  }
  if (options.periodic_fraction < 0.0 || options.periodic_fraction > 1.0) {
    return Status::InvalidArgument("periodic_fraction must be in [0,1]");
  }
  return Status::OK();
}

/// The draw itself, parameterized over the event sink so the
/// UpdateTrace and TraceStore variants consume `rng` identically.
template <typename AddEvent>
Status GenerateFeedsInto(const FeedWorkloadOptions& options, Rng* rng,
                         AddEvent&& add_event) {
  const Chronon last = options.epoch_length - 1;

  // Aperiodic activity skew: feed i gets intensity proportional to the
  // Zipf pmf of rank i+1, normalized to the configured mean.
  ZipfDistribution popularity(options.popularity_alpha,
                              static_cast<uint64_t>(options.num_feeds));
  double mean_pmf = 1.0 / static_cast<double>(options.num_feeds);

  for (ResourceId feed = 0; feed < options.num_feeds; ++feed) {
    bool periodic = rng->NextBool(options.periodic_fraction);
    if (periodic) {
      double factor =
          std::exp(rng->NextGaussian() * options.period_spread -
                   0.5 * options.period_spread * options.period_spread);
      Chronon period = std::max<Chronon>(
          2, static_cast<Chronon>(std::lround(
                 static_cast<double>(options.chronons_per_hour) * factor)));
      Chronon phase = static_cast<Chronon>(
          rng->NextBounded(static_cast<uint64_t>(period)));
      for (Chronon t = phase; t <= last; t += period) {
        double jittered =
            static_cast<double>(t) +
            rng->NextGaussian() * options.period_jitter;
        Chronon when = static_cast<Chronon>(std::lround(
            std::clamp(jittered, 0.0, static_cast<double>(last))));
        PULLMON_RETURN_NOT_OK(add_event(feed, when));
      }
    } else {
      double intensity =
          options.aperiodic_lambda *
          popularity.Pmf(static_cast<uint64_t>(feed) + 1) / mean_pmf;
      int64_t count = rng->NextPoisson(intensity);
      for (int64_t i = 0; i < count; ++i) {
        Chronon t = static_cast<Chronon>(
            rng->NextBounded(static_cast<uint64_t>(last + 1)));
        PULLMON_RETURN_NOT_OK(add_event(feed, t));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<UpdateTrace> GenerateFeedWorkload(const FeedWorkloadOptions& options,
                                         Rng* rng) {
  PULLMON_RETURN_NOT_OK(ValidateFeedOptions(options));
  UpdateTrace trace(options.num_feeds, options.epoch_length);
  PULLMON_RETURN_NOT_OK(GenerateFeedsInto(
      options, rng,
      [&trace](ResourceId r, Chronon t) { return trace.AddEvent(r, t); }));
  return trace;
}

Result<TraceStore> GenerateFeedWorkloadStore(
    const FeedWorkloadOptions& options, Rng* rng,
    TraceStoreOptions store_options) {
  PULLMON_RETURN_NOT_OK(ValidateFeedOptions(options));
  PULLMON_RETURN_NOT_OK(store_options.Validate());
  TraceStore store(options.num_feeds, options.epoch_length,
                   store_options);
  PULLMON_RETURN_NOT_OK(GenerateFeedsInto(
      options, rng,
      [&store](ResourceId r, Chronon t) { return store.Append(r, t); }));
  PULLMON_RETURN_NOT_OK(store.Seal());
  return store;
}

}  // namespace pullmon
