#ifndef PULLMON_TRACE_TRACE_STORE_H_
#define PULLMON_TRACE_TRACE_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/chronon.h"
#include "trace/page_codec.h"
#include "trace/update_trace.h"
#include "util/status.h"

namespace pullmon {

/// Which trace representation the sim layer replays: the in-memory
/// UpdateTrace (the differential oracle) or the paged TraceStore. The
/// two are decision-identical — same ProxyRunReport modulo the store's
/// own telemetry counters.
enum class TraceBackend {
  kInMemory,
  kPaged,
};

const char* TraceBackendToString(TraceBackend backend);

/// Knobs of the paged trace store.
struct TraceStoreOptions {
  /// Target encoded payload bytes per page; a resource's events split
  /// into pages of roughly this many delta bytes each.
  std::size_t page_size = 256;
  /// Decoded pages the LRU cache keeps resident for the per-resource
  /// read path (EventsFor / ReadResource). Streaming replay bypasses
  /// the cache entirely.
  std::size_t cache_pages = 64;

  Status Validate() const;
};

/// Counters of the store: write-side totals are fixed at Seal(); the
/// cache counters accumulate as the read path runs.
struct TraceStoreStats {
  std::size_t pages_written = 0;
  /// Encoded bytes plus the page/resource index overhead — the resident
  /// footprint of holding the sealed trace.
  std::size_t bytes_stored = 0;
  /// What the same events cost in UpdateTrace's representation: one
  /// vector per resource with doubling growth (24-byte header plus
  /// 4 bytes x capacity rounded to a power of two).
  std::size_t in_memory_bytes = 0;
  std::size_t events = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
};

/// Compressed, paged storage of an update trace (DESIGN.md section 14).
/// Per-resource sorted update chronons are delta-encoded with varints
/// into checksummed pages (trace/page_codec.h) laid out back to back in
/// one byte buffer, resource-major. `UpdateTrace` remains the verbatim
/// in-memory oracle; every reader of this store is differentially
/// tested against it (tests/trace_store_differential_test.cc), and the
/// sim layer switches between the two via SimulationConfig's
/// TraceBackend.
///
/// Write protocol: Append() events resource-by-resource (resource ids
/// non-decreasing; chronons within a resource in any order — they are
/// staged, sorted, and duplicate-collapsed when the resource closes),
/// then Seal(). Only the open resource's events are ever staged
/// uncompressed, so generation runs O(resident window).
///
/// Read paths:
///  * EventsFor()/ReadResource(): random access per resource through an
///    LRU cache of decoded pages (hit/miss/eviction counted);
///  * StreamingTraceReader: chronological merge iteration over all
///    resources, decoding varints straight off the compressed bytes
///    with ~32 bytes of cursor state per resource and no cache
///    interaction — the epoch-replay path.
class TraceStore {
 public:
  TraceStore(int num_resources, Chronon epoch_length,
             TraceStoreOptions options = TraceStoreOptions{});

  /// Builds a sealed store holding exactly the oracle's events — the
  /// conversion used when a trace already exists in memory.
  static Result<TraceStore> FromTrace(
      const UpdateTrace& trace,
      TraceStoreOptions options = TraceStoreOptions{});

  int num_resources() const { return num_resources_; }
  Chronon epoch_length() const { return epoch_length_; }
  const TraceStoreOptions& options() const { return options_; }
  bool sealed() const { return sealed_; }

  /// Stages an update of `resource` at chronon `t`. Resources must be
  /// appended in non-decreasing id order (appending to a lower id after
  /// a higher one has opened fails with FailedPrecondition); within the
  /// open resource chronons may arrive in any order and duplicates
  /// collapse, mirroring UpdateTrace::AddEvent.
  Status Append(ResourceId resource, Chronon t);

  /// Flushes the open resource and freezes the store; Append() after
  /// Seal() fails. Idempotent.
  Status Seal();

  /// Total events across resources (sealed stores only).
  std::size_t TotalEvents() const { return stats_.events; }

  /// Average events per resource — UpdateTrace::MeanIntensity.
  double MeanIntensity() const;

  /// Appends the ascending update chronons of `resource` to `*out`
  /// (not cleared), reading through the page cache.
  Status ReadResource(ResourceId resource,
                      std::vector<Chronon>* out) const;

  /// Cursor over one resource's ascending chronons, reading through the
  /// page cache. The cursor pins at most one decoded page at a time (a
  /// shared reference, safe across evictions). On a decode error Next()
  /// returns false and status() carries the corruption — callers must
  /// check it, a checksum failure is never silently skipped.
  class EventCursor {
   public:
    /// False at end of events or on error (see status()).
    bool Next(Chronon* t);
    Status status() const { return status_; }

   private:
    friend class TraceStore;
    EventCursor(const TraceStore* store, int next_page, int end_page)
        : store_(store), next_page_(next_page), end_page_(end_page) {}

    const TraceStore* store_;
    int next_page_;
    int end_page_;
    std::size_t pos_ = 0;
    std::shared_ptr<const std::vector<Chronon>> page_;
    Status status_ = Status::OK();
  };

  /// Per-resource iteration, EventsFor-equivalent. Invalid resources
  /// yield an empty cursor.
  EventCursor EventsFor(ResourceId resource) const;

  const TraceStoreStats& stats() const { return stats_; }

  /// Encoded bytes plus index overhead (= stats().bytes_stored).
  std::size_t StoredBytes() const { return stats_.bytes_stored; }

  /// Decodes and checksums every page — a full-store integrity audit.
  Status VerifyAllPages() const;

  /// Raw encoded bytes (page stream) — telemetry and tests.
  std::string_view raw_bytes() const { return bytes_; }

  /// Test hook: mutable access to the page stream so corruption tests
  /// can flip stored bytes and assert the read paths surface it.
  std::string* mutable_bytes_for_testing() { return &bytes_; }

 private:
  friend class StreamingTraceReader;

  /// Encodes and appends the staged events of the open resource.
  Status FlushOpenResource();

  /// The decoded-page cache: returns a shared reference to page
  /// `page_id`'s events, decoding on miss and evicting LRU beyond the
  /// budget.
  Result<std::shared_ptr<const std::vector<Chronon>>> FetchPage(
      int page_id) const;

  /// [byte offset, byte length) of page `page_id` within bytes_.
  std::string_view PageBytes(int page_id) const;

  int num_resources_;
  Chronon epoch_length_;
  TraceStoreOptions options_;
  bool sealed_ = false;

  /// Encoded pages, back to back, resource-major.
  std::string bytes_;
  /// Byte offset of each page, plus an end sentinel.
  std::vector<std::uint64_t> page_offset_;
  /// First page id of each resource, plus an end sentinel; resource r
  /// owns pages [first_page_[r], first_page_[r + 1]).
  std::vector<std::int32_t> first_page_;

  /// Write-side staging: the open resource's raw chronons. -1 when no
  /// resource has been opened yet.
  ResourceId open_resource_ = -1;
  std::vector<Chronon> staging_;
  /// first_page_ entries below this index are final.
  int filled_through_ = 0;

  mutable TraceStoreStats stats_;

  // LRU cache of decoded pages: most recent at the front. Mutable
  // because reads are logically const.
  struct CacheEntry {
    int page_id = 0;
    std::shared_ptr<const std::vector<Chronon>> events;
  };
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<int, std::list<CacheEntry>::iterator>
      cache_index_;
};

/// Chronological merge iteration over a sealed store: yields every
/// (resource, chronon) event ordered by (chronon, resource) — exactly
/// UpdateTrace::ChronologicalEvents() — while decoding varints straight
/// off the compressed page stream. Holds one ~32-byte cursor per
/// resource and a k-way min-heap; memory is O(num_resources), never
/// O(total events). Page checksums are verified as each cursor enters a
/// page; corruption stops iteration and surfaces through status().
class StreamingTraceReader {
 public:
  /// `store` must be sealed and outlive the reader.
  explicit StreamingTraceReader(const TraceStore* store);

  /// Yields the next event in (chronon, resource) order; false at end
  /// of trace or on error (see status()).
  bool Next(UpdateEvent* out);

  Status status() const { return status_; }

 private:
  /// Raw decode state over one resource's contiguous page range.
  struct Cursor {
    const char* p = nullptr;        // next delta byte
    const char* payload_end = nullptr;
    std::int64_t remaining = 0;     // events left in the open page
    Chronon prev = 0;               // last yielded chronon
    Chronon last = 0;               // last chronon of the open page
    int next_page = 0;              // next page id to open
    int end_page = 0;
  };

  /// Opens the cursor's next page (checksum-verified, first event left
  /// in `prev` for the caller to yield); false when the resource is
  /// exhausted or corrupt.
  bool OpenNextPage(Cursor* cursor);
  /// Advances cursor `r` one event; false when exhausted or corrupt.
  bool Advance(ResourceId r, Chronon* t);

  const TraceStore* store_;
  std::vector<Cursor> cursors_;
  /// Min-heap of (next chronon, resource), std::greater ordered.
  std::vector<std::pair<Chronon, ResourceId>> heap_;
  Status status_ = Status::OK();
};

}  // namespace pullmon

#endif  // PULLMON_TRACE_TRACE_STORE_H_
