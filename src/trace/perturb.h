#ifndef PULLMON_TRACE_PERTURB_H_
#define PULLMON_TRACE_PERTURB_H_

#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// Degradations applied to a true update trace to model an *estimated*
/// update process. The paper's evaluation assumes the FPN(1) model —
/// perfect knowledge of the update trace ([14]); real proxies predict
/// updates from history and err in three ways, each modeled here:
struct TracePerturbationOptions {
  /// Gaussian time error (in chronons) added to each predicted event.
  double jitter_stddev = 0.0;
  /// Probability that a true update is missed entirely.
  double miss_probability = 0.0;
  /// Expected number of spurious (false-positive) predicted events per
  /// resource, placed uniformly over the epoch.
  double spurious_rate = 0.0;
};

/// Produces the estimated trace a predictor with the given error profile
/// would emit for `truth`. Jittered events are clamped to the epoch and
/// collapsed per chronon like any trace. Deterministic given `rng`.
Result<UpdateTrace> PerturbTrace(const UpdateTrace& truth,
                                 const TracePerturbationOptions& options,
                                 Rng* rng);

/// Store-to-store variant: reads `truth` through a streaming cursor and
/// writes the estimate straight into a sealed paged store, consuming
/// `rng` identically to the UpdateTrace overload for the same truth
/// events. Memory stays O(one resource), never O(total events) —
/// jittered chronons can land out of order, so the perturbed resource
/// is staged uncompressed inside the store until it closes.
Result<TraceStore> PerturbTrace(const TraceStore& truth,
                                const TracePerturbationOptions& options,
                                Rng* rng,
                                TraceStoreOptions store_options =
                                    TraceStoreOptions{});

}  // namespace pullmon

#endif  // PULLMON_TRACE_PERTURB_H_
