#include "trace/page_codec.h"

#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace pullmon {

namespace {

constexpr std::size_t kChecksumBytes = 4;
constexpr int kMaxVarintBytes = 10;

/// Writes the little-endian checksum trailer.
void AppendChecksum(std::uint32_t checksum, std::string* out) {
  out->push_back(static_cast<char>(checksum & 0xFF));
  out->push_back(static_cast<char>((checksum >> 8) & 0xFF));
  out->push_back(static_cast<char>((checksum >> 16) & 0xFF));
  out->push_back(static_cast<char>((checksum >> 24) & 0xFF));
}

std::uint32_t ReadChecksum(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

Status Corrupt(const char* what) {
  return Status::ParseError(
      StringFormat("trace page corrupt: %s", what));
}

}  // namespace

std::uint32_t PageChecksum(std::string_view bytes) {
  std::uint32_t h = 2166136261u;  // FNV-1a 32-bit offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

void AppendVarint(std::uint64_t value, std::string* out) {
  // Staged through a stack buffer: one append beats up to ten
  // capacity-checked push_backs on the snapshot-encoding hot path.
  char buf[kMaxVarintBytes];
  std::size_t n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>((value & 0x7F) | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  out->append(buf, n);
}

const char* DecodeVarint(const char* p, const char* end,
                         std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes && p < end; ++i, ++p) {
    std::uint64_t byte = static_cast<unsigned char>(*p);
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return p + 1;
    }
    shift += 7;
  }
  return nullptr;  // truncated or overlong
}

std::size_t EncodePage(ResourceId resource, const Chronon* events,
                       std::size_t count, std::string* out) {
  PULLMON_CHECK(count >= 1);
  PULLMON_CHECK(resource >= 0 && events[0] >= 0);
  const std::size_t start = out->size();
  AppendVarint(static_cast<std::uint64_t>(resource), out);
  AppendVarint(static_cast<std::uint64_t>(events[0]), out);
  AppendVarint(static_cast<std::uint64_t>(events[count - 1] - events[0]),
               out);
  AppendVarint(static_cast<std::uint64_t>(count - 1), out);
  std::string payload;
  for (std::size_t i = 1; i < count; ++i) {
    PULLMON_CHECK(events[i] > events[i - 1]);
    AppendVarint(static_cast<std::uint64_t>(events[i] - events[i - 1] - 1),
                 &payload);
  }
  AppendVarint(payload.size(), out);
  out->append(payload);
  AppendChecksum(
      PageChecksum(std::string_view(*out).substr(start)), out);
  return out->size() - start;
}

Result<PageHeader> DecodePageHeader(std::string_view page) {
  const char* p = page.data();
  const char* end = page.data() + page.size();
  PageHeader header;
  std::uint64_t resource = 0, first = 0, span = 0, count_minus_1 = 0,
                payload_bytes = 0;
  if ((p = DecodeVarint(p, end, &resource)) == nullptr) {
    return Corrupt("truncated resource id");
  }
  if ((p = DecodeVarint(p, end, &first)) == nullptr) {
    return Corrupt("truncated first chronon");
  }
  if ((p = DecodeVarint(p, end, &span)) == nullptr) {
    return Corrupt("truncated chronon span");
  }
  if ((p = DecodeVarint(p, end, &count_minus_1)) == nullptr) {
    return Corrupt("truncated event count");
  }
  if ((p = DecodeVarint(p, end, &payload_bytes)) == nullptr) {
    return Corrupt("truncated payload length");
  }
  const auto max_chronon =
      static_cast<std::uint64_t>(std::numeric_limits<Chronon>::max());
  if (resource > static_cast<std::uint64_t>(
                     std::numeric_limits<ResourceId>::max()) ||
      first > max_chronon || span > max_chronon ||
      first + span > max_chronon) {
    return Corrupt("header value out of range");
  }
  if (count_minus_1 == 0 && span != 0) {
    return Corrupt("single-event page with nonzero span");
  }
  header.resource = static_cast<ResourceId>(resource);
  header.first_chronon = static_cast<Chronon>(first);
  header.last_chronon = static_cast<Chronon>(first + span);
  header.event_count = static_cast<std::int64_t>(count_minus_1) + 1;
  header.payload_bytes = payload_bytes;
  header.payload_offset = static_cast<std::size_t>(p - page.data());
  const std::size_t remaining = static_cast<std::size_t>(end - p);
  if (payload_bytes > remaining ||
      remaining - static_cast<std::size_t>(payload_bytes) <
          kChecksumBytes) {
    return Corrupt("payload extends past the buffer");
  }
  header.page_bytes = header.payload_offset +
                      static_cast<std::size_t>(payload_bytes) +
                      kChecksumBytes;
  const std::size_t checksum_at = header.page_bytes - kChecksumBytes;
  const std::uint32_t expected = ReadChecksum(page.data() + checksum_at);
  const std::uint32_t actual = PageChecksum(page.substr(0, checksum_at));
  if (expected != actual) {
    return Status::ParseError(StringFormat(
        "trace page checksum mismatch: stored %08x, computed %08x",
        expected, actual));
  }
  return header;
}

Result<PageHeader> DecodePage(std::string_view page,
                              std::vector<Chronon>* events) {
  PULLMON_ASSIGN_OR_RETURN(PageHeader header, DecodePageHeader(page));
  const char* p = page.data() + header.payload_offset;
  const char* payload_end =
      p + static_cast<std::size_t>(header.payload_bytes);
  Chronon prev = header.first_chronon;
  events->push_back(prev);
  for (std::int64_t i = 1; i < header.event_count; ++i) {
    std::uint64_t gap_minus_1 = 0;
    if ((p = DecodeVarint(p, payload_end, &gap_minus_1)) == nullptr) {
      return Corrupt("payload shorter than the event count");
    }
    const std::uint64_t next =
        static_cast<std::uint64_t>(prev) + gap_minus_1 + 1;
    if (next > static_cast<std::uint64_t>(header.last_chronon)) {
      return Corrupt("event past the header's last chronon");
    }
    prev = static_cast<Chronon>(next);
    events->push_back(prev);
  }
  if (p != payload_end) {
    return Corrupt("payload longer than the event count");
  }
  if (prev != header.last_chronon) {
    return Corrupt("final event disagrees with the header");
  }
  return header;
}

}  // namespace pullmon
