#ifndef PULLMON_TRACE_AUCTION_GENERATOR_H_
#define PULLMON_TRACE_AUCTION_GENERATOR_H_

#include <string>
#include <vector>

#include "trace/trace_store.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// One bid event in an auction trace. Auction ids double as resource ids.
struct AuctionBid {
  int auction = 0;
  Chronon chronon = 0;
  double amount = 0.0;
  std::string bidder;
};

/// Static description of one simulated auction listing.
struct AuctionInfo {
  int id = 0;
  std::string item;     // e.g. "Intel Core Duo laptop"
  Chronon open = 0;     // first chronon the listing is live
  Chronon close = 0;    // last chronon (auction end)
  double start_price = 0.0;
};

/// A full auction trace: listings plus their chronologically ordered
/// bids. This is the library's stand-in for the paper's real-world eBay
/// trace (three months of Intel/IBM/Dell laptop auctions scraped from
/// eBay Web feeds); see DESIGN.md for the substitution rationale.
struct AuctionTrace {
  Chronon epoch_length = 0;
  std::vector<AuctionInfo> auctions;
  std::vector<AuctionBid> bids;  // sorted by (auction, chronon)

  /// Bids of one auction (contiguous slice of `bids`).
  std::vector<AuctionBid> BidsFor(int auction) const;

  /// Projects bid timestamps into an update-event trace (one resource per
  /// auction) — the input the scheduling layer consumes.
  Result<UpdateTrace> ToUpdateTrace() const;

  /// Same projection into a sealed paged store (bids are already sorted
  /// by (auction, chronon), the store's append order).
  Result<TraceStore> ToTraceStore(
      TraceStoreOptions store_options = TraceStoreOptions{}) const;
};

/// Knobs of the synthetic eBay-style bidding process.
struct AuctionTraceOptions {
  int num_auctions = 400;
  Chronon epoch_length = 1000;
  /// Mean auction duration as a fraction of the epoch.
  double mean_duration_fraction = 0.35;
  /// Baseline bid arrival rate (bids/chronon) early in an auction.
  double base_bid_rate = 0.02;
  /// Peak multiplier of the arrival rate at the auction close, modelling
  /// last-minute "sniping" observed on real auction sites.
  double snipe_intensity = 6.0;
  /// Exponential decay span of the sniping ramp, as a fraction of the
  /// auction duration.
  double snipe_tau_fraction = 0.08;
  double start_price_min = 50.0;
  double start_price_max = 400.0;
  /// Mean bid increment in currency units (exponentially distributed).
  double increment_mean = 12.0;
  int num_bidders = 200;
  /// When true every auction opens with a bid at its first chronon, so
  /// each resource has at least one update.
  bool seed_opening_bid = true;
};

/// Simulates the bidding process: per auction, a non-homogeneous Poisson
/// bid arrival whose rate ramps up exponentially toward the close
/// (thinning via per-chronon Bernoulli draws), monotonically increasing
/// bid amounts, and bidders drawn uniformly from a fixed population.
Result<AuctionTrace> GenerateAuctionTrace(const AuctionTraceOptions& options,
                                          Rng* rng);

}  // namespace pullmon

#endif  // PULLMON_TRACE_AUCTION_GENERATOR_H_
