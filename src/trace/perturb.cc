#include "trace/perturb.h"

#include <algorithm>
#include <cmath>

namespace pullmon {

namespace {

Status ValidatePerturbationOptions(
    const TracePerturbationOptions& options) {
  if (options.jitter_stddev < 0.0 || options.miss_probability < 0.0 ||
      options.miss_probability > 1.0 || options.spurious_rate < 0.0) {
    return Status::InvalidArgument("malformed perturbation options");
  }
  return Status::OK();
}

/// Perturbs one resource's true events, parameterized over the event
/// sink so the UpdateTrace and TraceStore variants consume `rng`
/// identically. `TruthCursor` yields the resource's ascending chronons.
template <typename TruthCursor, typename AddEvent>
Status PerturbResourceInto(ResourceId r, Chronon last,
                           const TracePerturbationOptions& options,
                           Rng* rng, TruthCursor&& next_truth,
                           AddEvent&& add_event) {
  Chronon t = 0;
  while (next_truth(&t)) {
    if (rng->NextBool(options.miss_probability)) continue;
    Chronon predicted = t;
    if (options.jitter_stddev > 0.0) {
      double shifted = static_cast<double>(t) +
                       rng->NextGaussian() * options.jitter_stddev;
      predicted = static_cast<Chronon>(std::lround(
          std::clamp(shifted, 0.0, static_cast<double>(last))));
    }
    PULLMON_RETURN_NOT_OK(add_event(r, predicted));
  }
  if (options.spurious_rate > 0.0) {
    int64_t extras = rng->NextPoisson(options.spurious_rate);
    for (int64_t i = 0; i < extras; ++i) {
      Chronon when = static_cast<Chronon>(
          rng->NextBounded(static_cast<uint64_t>(last + 1)));
      PULLMON_RETURN_NOT_OK(add_event(r, when));
    }
  }
  return Status::OK();
}

}  // namespace

Result<UpdateTrace> PerturbTrace(const UpdateTrace& truth,
                                 const TracePerturbationOptions& options,
                                 Rng* rng) {
  PULLMON_RETURN_NOT_OK(ValidatePerturbationOptions(options));
  UpdateTrace estimated(truth.num_resources(), truth.epoch_length());
  const Chronon last = truth.epoch_length() - 1;
  for (ResourceId r = 0; r < truth.num_resources(); ++r) {
    const auto& events = truth.EventsFor(r);
    std::size_t i = 0;
    PULLMON_RETURN_NOT_OK(PerturbResourceInto(
        r, last, options, rng,
        [&events, &i](Chronon* t) {
          if (i >= events.size()) return false;
          *t = events[i++];
          return true;
        },
        [&estimated](ResourceId resource, Chronon t) {
          return estimated.AddEvent(resource, t);
        }));
  }
  return estimated;
}

Result<TraceStore> PerturbTrace(const TraceStore& truth,
                                const TracePerturbationOptions& options,
                                Rng* rng,
                                TraceStoreOptions store_options) {
  PULLMON_RETURN_NOT_OK(ValidatePerturbationOptions(options));
  PULLMON_RETURN_NOT_OK(store_options.Validate());
  TraceStore estimated(truth.num_resources(), truth.epoch_length(),
                       store_options);
  const Chronon last = truth.epoch_length() - 1;
  for (ResourceId r = 0; r < truth.num_resources(); ++r) {
    auto cursor = truth.EventsFor(r);
    PULLMON_RETURN_NOT_OK(PerturbResourceInto(
        r, last, options, rng,
        [&cursor](Chronon* t) { return cursor.Next(t); },
        [&estimated](ResourceId resource, Chronon t) {
          return estimated.Append(resource, t);
        }));
    PULLMON_RETURN_NOT_OK(cursor.status());
  }
  PULLMON_RETURN_NOT_OK(estimated.Seal());
  return estimated;
}

}  // namespace pullmon
