#include "trace/perturb.h"

#include <algorithm>
#include <cmath>

namespace pullmon {

Result<UpdateTrace> PerturbTrace(const UpdateTrace& truth,
                                 const TracePerturbationOptions& options,
                                 Rng* rng) {
  if (options.jitter_stddev < 0.0 || options.miss_probability < 0.0 ||
      options.miss_probability > 1.0 || options.spurious_rate < 0.0) {
    return Status::InvalidArgument("malformed perturbation options");
  }
  UpdateTrace estimated(truth.num_resources(), truth.epoch_length());
  const Chronon last = truth.epoch_length() - 1;
  for (ResourceId r = 0; r < truth.num_resources(); ++r) {
    for (Chronon t : truth.EventsFor(r)) {
      if (rng->NextBool(options.miss_probability)) continue;
      Chronon predicted = t;
      if (options.jitter_stddev > 0.0) {
        double shifted = static_cast<double>(t) +
                         rng->NextGaussian() * options.jitter_stddev;
        predicted = static_cast<Chronon>(std::lround(
            std::clamp(shifted, 0.0, static_cast<double>(last))));
      }
      PULLMON_RETURN_NOT_OK(estimated.AddEvent(r, predicted));
    }
    if (options.spurious_rate > 0.0) {
      int64_t extras = rng->NextPoisson(options.spurious_rate);
      for (int64_t i = 0; i < extras; ++i) {
        Chronon t = static_cast<Chronon>(
            rng->NextBounded(static_cast<uint64_t>(last + 1)));
        PULLMON_RETURN_NOT_OK(estimated.AddEvent(r, t));
      }
    }
  }
  return estimated;
}

}  // namespace pullmon
