#ifndef PULLMON_ESTIMATION_RATE_ESTIMATOR_H_
#define PULLMON_ESTIMATION_RATE_ESTIMATOR_H_

#include <vector>

#include "core/chronon.h"
#include "trace/update_trace.h"
#include "util/status.h"

namespace pullmon {

/// Maximum-likelihood estimate of a homogeneous Poisson update rate from
/// the events observed in a history window: count / window length, with
/// additive (Laplace-style) smoothing so silent resources keep a small
/// non-zero rate. Rates are per chronon.
class PoissonRateEstimator {
 public:
  /// `smoothing` pseudo-events are spread over the observed window.
  explicit PoissonRateEstimator(double smoothing = 0.5)
      : smoothing_(smoothing) {}

  /// Rate from the events of `resource` within [from, to] (inclusive).
  /// The zero-length window `to == from - 1` is a valid empty window and
  /// yields the smoothing-only rate (pseudo-events over a unit window);
  /// anything shorter is malformed and returns InvalidArgument.
  Result<double> EstimateRate(const UpdateTrace& history,
                              ResourceId resource, Chronon from,
                              Chronon to) const;

  /// Rates for every resource over the full history epoch.
  Result<std::vector<double>> EstimateAllRates(
      const UpdateTrace& history) const;

 private:
  double smoothing_;
};

/// An exponentially-decayed online rate tracker: feed it update events
/// in chronological order and query the current rate estimate at any
/// chronon. Recency weighting adapts to non-stationary sources (e.g.
/// auction sniping ramps) that a flat MLE smears out.
class DecayingRateTracker {
 public:
  /// `half_life` (chronons) controls the decay; must be positive.
  explicit DecayingRateTracker(double half_life);

  /// Observes an update at chronon t (non-decreasing across calls).
  void Observe(Chronon t);

  /// Current events-per-chronon estimate as of chronon `now`.
  double RateAt(Chronon now) const;

  double half_life() const { return half_life_; }

 private:
  double Decay(Chronon from, Chronon to) const;

  double half_life_;
  double mass_ = 0.0;       // decayed event count
  Chronon last_event_ = 0;  // chronon mass_ is anchored at
  bool any_ = false;
};

}  // namespace pullmon

#endif  // PULLMON_ESTIMATION_RATE_ESTIMATOR_H_
