#include "estimation/estimation_session.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pullmon {

EstimationSession::EstimationSession(int num_resources,
                                     Chronon epoch_length,
                                     EstimationOptions options)
    : epoch_length_(epoch_length), options_(options) {
  assert(num_resources >= 0);
  assert(options.half_life > 0.0);
  models_.reserve(static_cast<std::size_t>(num_resources));
  for (int r = 0; r < num_resources; ++r) {
    models_.emplace_back(options.half_life);
  }
}

int EstimationSession::num_resources() const {
  return static_cast<int>(models_.size());
}

void EstimationSession::Ingest(const ProbeObservation& observation) {
  assert(observation.resource >= 0 &&
         observation.resource < num_resources());
  ResourceModel& model =
      models_[static_cast<std::size_t>(observation.resource)];
  ++stats_.probes_observed;
  model.last_probe = std::max(model.last_probe, observation.probed_at);
  if (!observation.success) return;
  if (observation.not_modified) {
    // Censored negative evidence: no update since the last successful
    // fetch. The decaying tracker already encodes it — silence lowers
    // RateAt as time passes without Observe() calls.
    ++stats_.not_modified;
    return;
  }
  bool learned = false;
  for (Chronon u : observation.update_chronons) {
    if (u <= model.last_event) {
      // Feed buffers overlap across probes; the event is already known.
      ++stats_.duplicate_events;
      continue;
    }
    model.events.push_back(u);
    model.last_event = u;
    model.tracker.Observe(u);
    ++stats_.update_events;
    learned = true;
  }
  if (!learned) return;
  // Refresh the periodic hypothesis from everything observed so far.
  // Detection runs on the censored event list, so a pattern only
  // emerges once probe coverage has revealed enough of the grid.
  bool had = model.pattern.has_value();
  model.pattern = DetectPeriodicPattern(model.events, options_.periodic);
  if (model.pattern.has_value() != had) {
    periodic_resources_ += model.pattern.has_value() ? 1 : -1;
  }
}

std::vector<Chronon> EstimationSession::PredictEvents(ResourceId resource,
                                                      Chronon from,
                                                      Chronon to) const {
  std::vector<Chronon> predicted;
  if (resource < 0 || resource >= num_resources() || from >= to) {
    return predicted;
  }
  const ResourceModel& model =
      models_[static_cast<std::size_t>(resource)];
  if (model.pattern.has_value()) {
    // Continue the detected grid through the horizon.
    const Chronon period = model.pattern->period;
    const Chronon phase = model.pattern->phase;
    Chronon first = phase;
    if (first < from) {
      first += ((from - phase) + period - 1) / period * period;
    }
    for (Chronon t = first; t < to; t += period) {
      predicted.push_back(t);
    }
    return predicted;
  }
  // No pattern: deterministic rate-spaced events anchored at the last
  // observed update (a uniform-intensity stand-in for the Poisson
  // fallback that keeps runs bit-identical — no RNG draw).
  const double rate = model.tracker.RateAt(from);
  if (rate < options_.min_rate) return predicted;
  const Chronon spacing = std::max<Chronon>(
      1, static_cast<Chronon>(std::lround(1.0 / rate)));
  Chronon t = model.last_event >= 0 ? model.last_event + spacing : from;
  if (t < from) t += (from - t + spacing - 1) / spacing * spacing;
  for (; t < to; t += spacing) {
    predicted.push_back(t);
  }
  return predicted;
}

double EstimationSession::RateAt(ResourceId resource, Chronon now) const {
  if (resource < 0 || resource >= num_resources()) return 0.0;
  return models_[static_cast<std::size_t>(resource)].tracker.RateAt(now);
}

Chronon EstimationSession::LastProbe(ResourceId resource) const {
  if (resource < 0 || resource >= num_resources()) return -1;
  return models_[static_cast<std::size_t>(resource)].last_probe;
}

const std::optional<PeriodicPattern>& EstimationSession::PatternFor(
    ResourceId resource) const {
  assert(resource >= 0 && resource < num_resources());
  return models_[static_cast<std::size_t>(resource)].pattern;
}

}  // namespace pullmon
