#ifndef PULLMON_ESTIMATION_ESTIMATION_SESSION_H_
#define PULLMON_ESTIMATION_ESTIMATION_SESSION_H_

#include <optional>
#include <vector>

#include "core/chronon.h"
#include "estimation/periodic_detector.h"
#include "estimation/rate_estimator.h"

namespace pullmon {

/// One probe outcome as the proxy observed it. Unlike the full-history
/// traces the offline forecaster consumes, these observations are
/// censored by the probe schedule: the session only learns about the
/// updates whose items were still in the feed buffer when a probe
/// landed, and a not-modified response only says "nothing new since the
/// last successful fetch".
struct ProbeObservation {
  ResourceId resource = 0;
  Chronon probed_at = 0;
  /// Whether the probe attempt succeeded (failed probes deliver no
  /// evidence beyond their timestamp).
  bool success = false;
  /// The probe returned 304-not-modified (success, no new items).
  bool not_modified = false;
  /// Publication chronons of the *new* items this probe delivered,
  /// ascending. Derived from the items' published timestamps via
  /// ChrononClock by the caller.
  std::vector<Chronon> update_chronons;
};

/// Knobs of the closed-loop estimator.
struct EstimationOptions {
  /// Half-life (chronons) of the per-resource DecayingRateTracker.
  double half_life = 32.0;
  /// Below this events-per-chronon rate a pattern-less resource is
  /// predicted silent (mirrors ForecasterOptions::min_rate).
  double min_rate = 1e-4;
  /// Periodic-pattern detection knobs (shared with the offline path).
  PeriodicDetectorOptions periodic;
};

/// Deterministic counters of one estimation session (mirrored into
/// ProxyRunReport's estimation_* block).
struct EstimationStats {
  /// Probe outcomes ingested (successes and failures).
  std::size_t probes_observed = 0;
  /// Distinct update events learned from item diffs.
  std::size_t update_events = 0;
  /// 304-not-modified responses observed.
  std::size_t not_modified = 0;
  /// Item timestamps skipped because the event was already known (feed
  /// buffers overlap across probes).
  std::size_t duplicate_events = 0;
};

/// The closed-loop, per-resource online update model (DESIGN.md
/// section 17). Feed it ProbeObservations as the proxy commits probe
/// outcomes; it maintains a DecayingRateTracker plus periodic-pattern
/// state per resource and answers deterministic event forecasts that
/// the adaptive runner turns into predicted execution intervals.
///
/// Everything here is a pure function of the ingested observation
/// sequence — no RNG, no wall clock — so runs are bit-identical across
/// repeats and thread counts as long as observations are ingested in
/// the canonical serial commit order.
class EstimationSession {
 public:
  EstimationSession(int num_resources, Chronon epoch_length,
                    EstimationOptions options = EstimationOptions{});

  /// Ingests one committed probe outcome. Observations must arrive in
  /// non-decreasing probed_at order per resource (the serial commit
  /// phase guarantees it); update chronons already known are dropped.
  void Ingest(const ProbeObservation& observation);

  /// Predicted update chronons of `resource` within [from, to), in
  /// ascending order. Uses the detected periodic grid when one exists,
  /// else deterministic rate-spaced events from the decaying tracker;
  /// resources whose rate sits below min_rate are predicted silent.
  std::vector<Chronon> PredictEvents(ResourceId resource, Chronon from,
                                     Chronon to) const;

  /// Current events-per-chronon estimate of `resource` as of `now`.
  double RateAt(ResourceId resource, Chronon now) const;

  /// Last chronon a probe of `resource` was ingested; -1 when never
  /// probed (the explore scorer routes epsilon probes to the coldest).
  Chronon LastProbe(ResourceId resource) const;

  /// The detected pattern of `resource`, if any.
  const std::optional<PeriodicPattern>& PatternFor(
      ResourceId resource) const;

  /// Resources currently carrying a detected periodic pattern.
  std::size_t PeriodicResources() const { return periodic_resources_; }

  const EstimationStats& stats() const { return stats_; }
  int num_resources() const;
  Chronon epoch_length() const { return epoch_length_; }

 private:
  struct ResourceModel {
    DecayingRateTracker tracker;
    /// Distinct observed update chronons, ascending.
    std::vector<Chronon> events;
    Chronon last_event = -1;
    Chronon last_probe = -1;
    std::optional<PeriodicPattern> pattern;

    explicit ResourceModel(double half_life) : tracker(half_life) {}
  };

  Chronon epoch_length_;
  EstimationOptions options_;
  std::vector<ResourceModel> models_;
  EstimationStats stats_;
  std::size_t periodic_resources_ = 0;
};

}  // namespace pullmon

#endif  // PULLMON_ESTIMATION_ESTIMATION_SESSION_H_
