#include "estimation/rate_estimator.h"

#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace pullmon {

Result<double> PoissonRateEstimator::EstimateRate(const UpdateTrace& history,
                                                  ResourceId resource,
                                                  Chronon from,
                                                  Chronon to) const {
  if (to < from - 1) {
    return Status::InvalidArgument(
        StringFormat("malformed estimation window [%d,%d]", from, to));
  }
  if (resource < 0 || resource >= history.num_resources()) {
    return Status::InvalidArgument(
        StringFormat("resource %d outside history", resource));
  }
  if (to == from - 1) {
    // Empty window: no observations at all. Report the smoothing
    // pseudo-events over a unit window so an empty-epoch history yields
    // the documented smoothing-only rate instead of an error
    // (EstimateAllRates hits this with [0, -1] when epoch_length == 0).
    return smoothing_;
  }
  const auto& events = history.EventsFor(resource);
  std::size_t count = 0;
  for (Chronon t : events) {
    if (t >= from && t <= to) ++count;
  }
  double window = static_cast<double>(to - from + 1);
  return (static_cast<double>(count) + smoothing_) / window;
}

Result<std::vector<double>> PoissonRateEstimator::EstimateAllRates(
    const UpdateTrace& history) const {
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(history.num_resources()));
  for (ResourceId r = 0; r < history.num_resources(); ++r) {
    PULLMON_ASSIGN_OR_RETURN(
        double rate,
        EstimateRate(history, r, 0, history.epoch_length() - 1));
    rates.push_back(rate);
  }
  return rates;
}

DecayingRateTracker::DecayingRateTracker(double half_life)
    : half_life_(half_life) {
  assert(half_life > 0.0);
}

double DecayingRateTracker::Decay(Chronon from, Chronon to) const {
  if (to <= from) return 1.0;
  return std::exp2(-static_cast<double>(to - from) / half_life_);
}

void DecayingRateTracker::Observe(Chronon t) {
  if (any_) {
    mass_ = mass_ * Decay(last_event_, t) + 1.0;
  } else {
    mass_ = 1.0;
    any_ = true;
  }
  last_event_ = t;
}

double DecayingRateTracker::RateAt(Chronon now) const {
  if (!any_) return 0.0;
  // With decay rate lambda = ln2 / half_life, a steady process of rate r
  // accumulates mass ~ r / lambda; invert to read the rate back.
  double lambda = std::log(2.0) / half_life_;
  return mass_ * Decay(last_event_, now) * lambda;
}

}  // namespace pullmon
