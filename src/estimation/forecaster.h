#ifndef PULLMON_ESTIMATION_FORECASTER_H_
#define PULLMON_ESTIMATION_FORECASTER_H_

#include "estimation/periodic_detector.h"
#include "estimation/rate_estimator.h"
#include "trace/update_model.h"
#include "trace/update_trace.h"
#include "util/random.h"
#include "util/status.h"

namespace pullmon {

/// Knobs of the update forecaster.
struct ForecasterOptions {
  PeriodicDetectorOptions periodic;
  /// Smoothing for the Poisson fallback rate.
  double rate_smoothing = 0.5;
  /// A resource whose estimated rate falls below this is predicted
  /// silent (no EIs generated).
  double min_rate = 1e-4;
};

/// Predicts future update chronons from observed history — the
/// stochastic-modeling route to execution-interval generation ([9],
/// [14]) that replaces the evaluation's FPN(1) hindsight:
///   * resources with a detected near-periodic pattern are forecast on
///     the pattern's grid;
///   * aperiodic resources fall back to a homogeneous Poisson draw at
///     the MLE rate of their history.
/// The output is an *estimated* update trace over the forecast horizon,
/// which plugs into the standard EI-derivation / profile-generation
/// pipeline.
class UpdateForecaster {
 public:
  explicit UpdateForecaster(ForecasterOptions options = {})
      : options_(options) {}

  /// Forecasts updates for chronons [history.epoch_length(),
  /// history.epoch_length() + horizon) given the full observed history.
  /// The returned trace's epoch covers history + horizon; historical
  /// chronons are left empty (only predictions are emitted). The RNG
  /// drives the Poisson fallback draws.
  Result<UpdateTrace> Forecast(const UpdateTrace& history, Chronon horizon,
                               Rng* rng) const;

  /// Convenience: forecast + EI derivation over the horizon, shifted so
  /// chronon 0 of the result is the first forecast chronon.
  Result<UpdateTrace> ForecastWindowed(const UpdateTrace& history,
                                       Chronon horizon, Rng* rng) const;

 private:
  ForecasterOptions options_;
};

}  // namespace pullmon

#endif  // PULLMON_ESTIMATION_FORECASTER_H_
