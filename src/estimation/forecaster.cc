#include "estimation/forecaster.h"

#include <cmath>

namespace pullmon {

Result<UpdateTrace> UpdateForecaster::Forecast(const UpdateTrace& history,
                                               Chronon horizon,
                                               Rng* rng) const {
  if (horizon <= 0) {
    return Status::InvalidArgument("forecast horizon must be positive");
  }
  const Chronon start = history.epoch_length();
  const Chronon end = start + horizon;  // exclusive
  UpdateTrace forecast(history.num_resources(), end);

  PoissonRateEstimator rate_estimator(options_.rate_smoothing);
  for (ResourceId r = 0; r < history.num_resources(); ++r) {
    const auto& events = history.EventsFor(r);
    auto pattern = DetectPeriodicPattern(events, options_.periodic);
    if (pattern.has_value()) {
      // Continue the detected grid into the horizon.
      long long k =
          (static_cast<long long>(start) - pattern->phase +
           pattern->period - 1) /
          pattern->period;
      for (long long t = k * pattern->period + pattern->phase; t < end;
           t += pattern->period) {
        if (t < start) continue;
        PULLMON_RETURN_NOT_OK(
            forecast.AddEvent(r, static_cast<Chronon>(t)));
      }
      continue;
    }
    PULLMON_ASSIGN_OR_RETURN(
        double rate,
        rate_estimator.EstimateRate(
            history, r, 0,
            history.epoch_length() > 0 ? history.epoch_length() - 1 : 0));
    if (rate < options_.min_rate) continue;  // predicted silent
    // Homogeneous Poisson draw over the horizon.
    int64_t count =
        rng->NextPoisson(rate * static_cast<double>(horizon));
    for (int64_t i = 0; i < count; ++i) {
      Chronon t = start + static_cast<Chronon>(rng->NextBounded(
                              static_cast<uint64_t>(horizon)));
      PULLMON_RETURN_NOT_OK(forecast.AddEvent(r, t));
    }
  }
  return forecast;
}

Result<UpdateTrace> UpdateForecaster::ForecastWindowed(
    const UpdateTrace& history, Chronon horizon, Rng* rng) const {
  PULLMON_ASSIGN_OR_RETURN(UpdateTrace full,
                           Forecast(history, horizon, rng));
  const Chronon start = history.epoch_length();
  UpdateTrace shifted(history.num_resources(), horizon);
  for (ResourceId r = 0; r < full.num_resources(); ++r) {
    for (Chronon t : full.EventsFor(r)) {
      if (t >= start) {
        PULLMON_RETURN_NOT_OK(shifted.AddEvent(r, t - start));
      }
    }
  }
  return shifted;
}

}  // namespace pullmon
