#include "estimation/periodic_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace pullmon {

namespace {

/// Distance from `value` to the nearest event (events ascending).
double NearestDistance(const std::vector<Chronon>& events, double value) {
  auto it = std::lower_bound(events.begin(), events.end(),
                             static_cast<Chronon>(std::ceil(value)));
  double best = std::numeric_limits<double>::infinity();
  if (it != events.end()) {
    best = std::min(best, std::abs(static_cast<double>(*it) - value));
  }
  if (it != events.begin()) {
    best = std::min(
        best, std::abs(static_cast<double>(*std::prev(it)) - value));
  }
  return best;
}

}  // namespace

std::optional<PeriodicPattern> DetectPeriodicPattern(
    const std::vector<Chronon>& events,
    const PeriodicDetectorOptions& options) {
  if (events.size() < 3) return std::nullopt;
  const Chronon span = events.back() - events.front();
  if (span < 2) return std::nullopt;
  Chronon max_period =
      options.max_period > 0 ? options.max_period : span / 2;
  if (max_period < options.min_period) return std::nullopt;

  // Candidate periods: the observed inter-arrival gaps +/- 1.
  std::set<Chronon> candidates;
  for (std::size_t i = 1; i < events.size(); ++i) {
    Chronon gap = events[i] - events[i - 1];
    for (Chronon p : {gap - 1, gap, gap + 1}) {
      if (p >= options.min_period && p <= max_period) {
        candidates.insert(p);
      }
    }
  }
  if (candidates.empty()) return std::nullopt;

  // Density of events over the span, for the chance-support screen.
  const double density = static_cast<double>(events.size()) /
                         static_cast<double>(span + 1);

  std::optional<PeriodicPattern> best;
  for (Chronon period : candidates) {
    double tolerance = std::max(
        1.0, options.tolerance_fraction * static_cast<double>(period));
    double phase = static_cast<double>(events.front());
    // Walk the grid across the observed span.
    std::size_t grid_points = 0, matched = 0;
    double jitter_sum = 0.0;
    for (double g = phase; g <= static_cast<double>(events.back()) + 0.5;
         g += static_cast<double>(period)) {
      ++grid_points;
      double distance = NearestDistance(events, g);
      if (distance <= tolerance) {
        ++matched;
        jitter_sum += distance;
      }
    }
    if (grid_points < options.min_grid_points) continue;
    double support =
        static_cast<double>(matched) / static_cast<double>(grid_points);
    if (support < options.min_support) continue;
    // Significance: random events of this density would match a grid
    // point with probability ~ 1 - exp(-density * window).
    double chance =
        1.0 - std::exp(-density * (2.0 * tolerance + 1.0));
    if (support < chance + options.chance_margin) continue;
    // Both-way coverage: the grid must also explain most events.
    std::size_t explained = 0;
    for (Chronon e : events) {
      double offset = std::fmod(
          static_cast<double>(e) - phase, static_cast<double>(period));
      if (offset < 0) offset += static_cast<double>(period);
      double distance =
          std::min(offset, static_cast<double>(period) - offset);
      if (distance <= tolerance) ++explained;
    }
    double event_coverage = static_cast<double>(explained) /
                            static_cast<double>(events.size());
    if (event_coverage < options.min_support) continue;
    PeriodicPattern pattern;
    pattern.period = period;
    pattern.phase = static_cast<Chronon>(
        static_cast<long long>(events.front()) % period);
    pattern.jitter = matched > 0
                         ? jitter_sum / static_cast<double>(matched)
                         : 0.0;
    pattern.support = support;
    if (!best || pattern.support > best->support ||
        (pattern.support == best->support &&
         pattern.jitter < best->jitter)) {
      best = pattern;
    }
  }
  return best;
}

}  // namespace pullmon
