#ifndef PULLMON_ESTIMATION_PERIODIC_DETECTOR_H_
#define PULLMON_ESTIMATION_PERIODIC_DETECTOR_H_

#include <optional>
#include <vector>

#include "core/chronon.h"

namespace pullmon {

/// A detected near-periodic update pattern: events occur roughly every
/// `period` chronons starting near `phase`, with the given tolerance.
struct PeriodicPattern {
  Chronon period = 0;
  Chronon phase = 0;  // first predicted occurrence, in [0, period)
  /// Mean absolute deviation of observed events from the grid.
  double jitter = 0.0;
  /// Fraction of grid points near which an event was observed.
  double support = 0.0;
};

/// Knobs for DetectPeriodicPattern.
struct PeriodicDetectorOptions {
  Chronon min_period = 2;
  Chronon max_period = 0;  // 0: half the observed span
  /// How far (in chronons) an event may sit from the grid and still
  /// count, as a fraction of the candidate period.
  double tolerance_fraction = 0.1;
  /// Minimum fraction of grid points matched by an event AND of events
  /// explained by the grid (both-way coverage defeats the "sparse grid
  /// over dense noise" false positive).
  double min_support = 0.7;
  /// Minimum grid points the pattern must span.
  std::size_t min_grid_points = 4;
  /// The grid support must beat the support random (Poisson) events of
  /// the observed density would produce by at least this margin —
  /// a significance screen against pseudo-periods in noise.
  double chance_margin = 0.2;
};

/// Scans candidate periods over the inter-update interval structure of
/// the event list (ascending chronons) and returns the best-supported
/// periodic pattern, or nullopt when nothing sufficiently periodic is
/// found. This mirrors the stochastic-modeling route ([9]) the paper
/// cites for generating execution intervals: many Web feeds publish on
/// near-hourly schedules (55% of feeds per [10]).
std::optional<PeriodicPattern> DetectPeriodicPattern(
    const std::vector<Chronon>& events,
    const PeriodicDetectorOptions& options = {});

}  // namespace pullmon

#endif  // PULLMON_ESTIMATION_PERIODIC_DETECTOR_H_
