# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/pullmon_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policies "/root/repo/build/tools/pullmon_cli" "policies")
set_tests_properties(cli_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/pullmon_cli" "run" "--profiles=10" "--resources=20" "--chronons=80" "--lambda=5" "--reps=2" "--policy=mrsf,s-edf" "--mode=both")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/pullmon_cli" "sweep" "--param=budget" "--values=1,2" "--profiles=10" "--resources=20" "--chronons=80" "--lambda=5" "--reps=1" "--policy=mrsf" "--markdown")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_trace "/root/repo/build/tools/pullmon_cli" "gen-trace" "--resources=10" "--chronons=60" "--lambda=4" "--out=cli_test_trace.csv")
set_tests_properties(cli_gen_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_feeds "/root/repo/build/tools/pullmon_cli" "gen-feeds" "--resources=5" "--chronons=60" "--outdir=cli_test_feeds")
set_tests_properties(cli_gen_feeds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/pullmon_cli" "frobnicate")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_flag "/root/repo/build/tools/pullmon_cli" "run" "--bogus=1")
set_tests_properties(cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/pullmon_cli" "analyze" "--profiles=20" "--resources=30" "--chronons=100" "--lambda=5")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
