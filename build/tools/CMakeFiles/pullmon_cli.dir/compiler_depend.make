# Empty compiler generated dependencies file for pullmon_cli.
# This may be replaced when dependencies are built.
