file(REMOVE_RECURSE
  "CMakeFiles/pullmon_cli.dir/pullmon_cli.cc.o"
  "CMakeFiles/pullmon_cli.dir/pullmon_cli.cc.o.d"
  "pullmon_cli"
  "pullmon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
