file(REMOVE_RECURSE
  "CMakeFiles/pullmon_profilegen.dir/auction_watch.cc.o"
  "CMakeFiles/pullmon_profilegen.dir/auction_watch.cc.o.d"
  "CMakeFiles/pullmon_profilegen.dir/profile_generator.cc.o"
  "CMakeFiles/pullmon_profilegen.dir/profile_generator.cc.o.d"
  "libpullmon_profilegen.a"
  "libpullmon_profilegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_profilegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
