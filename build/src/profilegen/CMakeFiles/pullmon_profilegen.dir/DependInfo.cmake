
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profilegen/auction_watch.cc" "src/profilegen/CMakeFiles/pullmon_profilegen.dir/auction_watch.cc.o" "gcc" "src/profilegen/CMakeFiles/pullmon_profilegen.dir/auction_watch.cc.o.d"
  "/root/repo/src/profilegen/profile_generator.cc" "src/profilegen/CMakeFiles/pullmon_profilegen.dir/profile_generator.cc.o" "gcc" "src/profilegen/CMakeFiles/pullmon_profilegen.dir/profile_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pullmon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
