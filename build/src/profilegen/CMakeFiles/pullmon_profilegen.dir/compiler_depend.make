# Empty compiler generated dependencies file for pullmon_profilegen.
# This may be replaced when dependencies are built.
