file(REMOVE_RECURSE
  "libpullmon_profilegen.a"
)
