file(REMOVE_RECURSE
  "CMakeFiles/pullmon_estimation.dir/forecaster.cc.o"
  "CMakeFiles/pullmon_estimation.dir/forecaster.cc.o.d"
  "CMakeFiles/pullmon_estimation.dir/periodic_detector.cc.o"
  "CMakeFiles/pullmon_estimation.dir/periodic_detector.cc.o.d"
  "CMakeFiles/pullmon_estimation.dir/rate_estimator.cc.o"
  "CMakeFiles/pullmon_estimation.dir/rate_estimator.cc.o.d"
  "libpullmon_estimation.a"
  "libpullmon_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
