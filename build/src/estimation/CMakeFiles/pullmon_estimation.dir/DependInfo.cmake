
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/forecaster.cc" "src/estimation/CMakeFiles/pullmon_estimation.dir/forecaster.cc.o" "gcc" "src/estimation/CMakeFiles/pullmon_estimation.dir/forecaster.cc.o.d"
  "/root/repo/src/estimation/periodic_detector.cc" "src/estimation/CMakeFiles/pullmon_estimation.dir/periodic_detector.cc.o" "gcc" "src/estimation/CMakeFiles/pullmon_estimation.dir/periodic_detector.cc.o.d"
  "/root/repo/src/estimation/rate_estimator.cc" "src/estimation/CMakeFiles/pullmon_estimation.dir/rate_estimator.cc.o" "gcc" "src/estimation/CMakeFiles/pullmon_estimation.dir/rate_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pullmon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
