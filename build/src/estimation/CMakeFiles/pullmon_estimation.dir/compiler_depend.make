# Empty compiler generated dependencies file for pullmon_estimation.
# This may be replaced when dependencies are built.
