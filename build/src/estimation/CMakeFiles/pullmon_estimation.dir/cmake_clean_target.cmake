file(REMOVE_RECURSE
  "libpullmon_estimation.a"
)
