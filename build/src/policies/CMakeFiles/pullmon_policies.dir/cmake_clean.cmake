file(REMOVE_RECURSE
  "CMakeFiles/pullmon_policies.dir/baselines.cc.o"
  "CMakeFiles/pullmon_policies.dir/baselines.cc.o.d"
  "CMakeFiles/pullmon_policies.dir/m_edf.cc.o"
  "CMakeFiles/pullmon_policies.dir/m_edf.cc.o.d"
  "CMakeFiles/pullmon_policies.dir/mrsf.cc.o"
  "CMakeFiles/pullmon_policies.dir/mrsf.cc.o.d"
  "CMakeFiles/pullmon_policies.dir/policy_factory.cc.o"
  "CMakeFiles/pullmon_policies.dir/policy_factory.cc.o.d"
  "CMakeFiles/pullmon_policies.dir/s_edf.cc.o"
  "CMakeFiles/pullmon_policies.dir/s_edf.cc.o.d"
  "CMakeFiles/pullmon_policies.dir/weighted.cc.o"
  "CMakeFiles/pullmon_policies.dir/weighted.cc.o.d"
  "libpullmon_policies.a"
  "libpullmon_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
