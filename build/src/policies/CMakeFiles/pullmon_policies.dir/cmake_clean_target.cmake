file(REMOVE_RECURSE
  "libpullmon_policies.a"
)
