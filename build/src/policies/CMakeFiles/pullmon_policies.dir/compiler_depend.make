# Empty compiler generated dependencies file for pullmon_policies.
# This may be replaced when dependencies are built.
