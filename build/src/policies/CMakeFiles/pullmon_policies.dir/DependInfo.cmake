
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/baselines.cc" "src/policies/CMakeFiles/pullmon_policies.dir/baselines.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/baselines.cc.o.d"
  "/root/repo/src/policies/m_edf.cc" "src/policies/CMakeFiles/pullmon_policies.dir/m_edf.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/m_edf.cc.o.d"
  "/root/repo/src/policies/mrsf.cc" "src/policies/CMakeFiles/pullmon_policies.dir/mrsf.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/mrsf.cc.o.d"
  "/root/repo/src/policies/policy_factory.cc" "src/policies/CMakeFiles/pullmon_policies.dir/policy_factory.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/policy_factory.cc.o.d"
  "/root/repo/src/policies/s_edf.cc" "src/policies/CMakeFiles/pullmon_policies.dir/s_edf.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/s_edf.cc.o.d"
  "/root/repo/src/policies/weighted.cc" "src/policies/CMakeFiles/pullmon_policies.dir/weighted.cc.o" "gcc" "src/policies/CMakeFiles/pullmon_policies.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
