file(REMOVE_RECURSE
  "CMakeFiles/pullmon_sim.dir/config.cc.o"
  "CMakeFiles/pullmon_sim.dir/config.cc.o.d"
  "CMakeFiles/pullmon_sim.dir/experiment.cc.o"
  "CMakeFiles/pullmon_sim.dir/experiment.cc.o.d"
  "CMakeFiles/pullmon_sim.dir/proxy.cc.o"
  "CMakeFiles/pullmon_sim.dir/proxy.cc.o.d"
  "CMakeFiles/pullmon_sim.dir/report.cc.o"
  "CMakeFiles/pullmon_sim.dir/report.cc.o.d"
  "libpullmon_sim.a"
  "libpullmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
