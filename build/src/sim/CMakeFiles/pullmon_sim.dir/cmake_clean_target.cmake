file(REMOVE_RECURSE
  "libpullmon_sim.a"
)
