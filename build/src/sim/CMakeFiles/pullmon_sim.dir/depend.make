# Empty dependencies file for pullmon_sim.
# This may be replaced when dependencies are built.
