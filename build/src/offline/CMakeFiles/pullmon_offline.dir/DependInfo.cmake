
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/exact_solver.cc" "src/offline/CMakeFiles/pullmon_offline.dir/exact_solver.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/exact_solver.cc.o.d"
  "/root/repo/src/offline/greedy_offline.cc" "src/offline/CMakeFiles/pullmon_offline.dir/greedy_offline.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/greedy_offline.cc.o.d"
  "/root/repo/src/offline/local_ratio.cc" "src/offline/CMakeFiles/pullmon_offline.dir/local_ratio.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/local_ratio.cc.o.d"
  "/root/repo/src/offline/probe_assignment.cc" "src/offline/CMakeFiles/pullmon_offline.dir/probe_assignment.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/probe_assignment.cc.o.d"
  "/root/repo/src/offline/simplex.cc" "src/offline/CMakeFiles/pullmon_offline.dir/simplex.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/simplex.cc.o.d"
  "/root/repo/src/offline/transform.cc" "src/offline/CMakeFiles/pullmon_offline.dir/transform.cc.o" "gcc" "src/offline/CMakeFiles/pullmon_offline.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
