file(REMOVE_RECURSE
  "libpullmon_offline.a"
)
