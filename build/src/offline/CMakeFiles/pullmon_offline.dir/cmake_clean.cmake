file(REMOVE_RECURSE
  "CMakeFiles/pullmon_offline.dir/exact_solver.cc.o"
  "CMakeFiles/pullmon_offline.dir/exact_solver.cc.o.d"
  "CMakeFiles/pullmon_offline.dir/greedy_offline.cc.o"
  "CMakeFiles/pullmon_offline.dir/greedy_offline.cc.o.d"
  "CMakeFiles/pullmon_offline.dir/local_ratio.cc.o"
  "CMakeFiles/pullmon_offline.dir/local_ratio.cc.o.d"
  "CMakeFiles/pullmon_offline.dir/probe_assignment.cc.o"
  "CMakeFiles/pullmon_offline.dir/probe_assignment.cc.o.d"
  "CMakeFiles/pullmon_offline.dir/simplex.cc.o"
  "CMakeFiles/pullmon_offline.dir/simplex.cc.o.d"
  "CMakeFiles/pullmon_offline.dir/transform.cc.o"
  "CMakeFiles/pullmon_offline.dir/transform.cc.o.d"
  "libpullmon_offline.a"
  "libpullmon_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
