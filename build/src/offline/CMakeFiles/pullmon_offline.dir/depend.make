# Empty dependencies file for pullmon_offline.
# This may be replaced when dependencies are built.
