# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("feeds")
subdirs("trace")
subdirs("estimation")
subdirs("core")
subdirs("policies")
subdirs("offline")
subdirs("profilegen")
subdirs("sim")
