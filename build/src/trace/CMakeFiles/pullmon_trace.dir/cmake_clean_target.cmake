file(REMOVE_RECURSE
  "libpullmon_trace.a"
)
