# Empty compiler generated dependencies file for pullmon_trace.
# This may be replaced when dependencies are built.
