
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/auction_generator.cc" "src/trace/CMakeFiles/pullmon_trace.dir/auction_generator.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/auction_generator.cc.o.d"
  "/root/repo/src/trace/feed_workload.cc" "src/trace/CMakeFiles/pullmon_trace.dir/feed_workload.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/feed_workload.cc.o.d"
  "/root/repo/src/trace/perturb.cc" "src/trace/CMakeFiles/pullmon_trace.dir/perturb.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/perturb.cc.o.d"
  "/root/repo/src/trace/poisson_generator.cc" "src/trace/CMakeFiles/pullmon_trace.dir/poisson_generator.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/poisson_generator.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/pullmon_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/update_model.cc" "src/trace/CMakeFiles/pullmon_trace.dir/update_model.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/update_model.cc.o.d"
  "/root/repo/src/trace/update_trace.cc" "src/trace/CMakeFiles/pullmon_trace.dir/update_trace.cc.o" "gcc" "src/trace/CMakeFiles/pullmon_trace.dir/update_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
