file(REMOVE_RECURSE
  "CMakeFiles/pullmon_trace.dir/auction_generator.cc.o"
  "CMakeFiles/pullmon_trace.dir/auction_generator.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/feed_workload.cc.o"
  "CMakeFiles/pullmon_trace.dir/feed_workload.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/perturb.cc.o"
  "CMakeFiles/pullmon_trace.dir/perturb.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/poisson_generator.cc.o"
  "CMakeFiles/pullmon_trace.dir/poisson_generator.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/trace_io.cc.o"
  "CMakeFiles/pullmon_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/update_model.cc.o"
  "CMakeFiles/pullmon_trace.dir/update_model.cc.o.d"
  "CMakeFiles/pullmon_trace.dir/update_trace.cc.o"
  "CMakeFiles/pullmon_trace.dir/update_trace.cc.o.d"
  "libpullmon_trace.a"
  "libpullmon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
