file(REMOVE_RECURSE
  "libpullmon_core.a"
)
