# Empty dependencies file for pullmon_core.
# This may be replaced when dependencies are built.
