file(REMOVE_RECURSE
  "CMakeFiles/pullmon_core.dir/completeness.cc.o"
  "CMakeFiles/pullmon_core.dir/completeness.cc.o.d"
  "CMakeFiles/pullmon_core.dir/dynamic_monitor.cc.o"
  "CMakeFiles/pullmon_core.dir/dynamic_monitor.cc.o.d"
  "CMakeFiles/pullmon_core.dir/execution_interval.cc.o"
  "CMakeFiles/pullmon_core.dir/execution_interval.cc.o.d"
  "CMakeFiles/pullmon_core.dir/online_executor.cc.o"
  "CMakeFiles/pullmon_core.dir/online_executor.cc.o.d"
  "CMakeFiles/pullmon_core.dir/overlap_analysis.cc.o"
  "CMakeFiles/pullmon_core.dir/overlap_analysis.cc.o.d"
  "CMakeFiles/pullmon_core.dir/policy.cc.o"
  "CMakeFiles/pullmon_core.dir/policy.cc.o.d"
  "CMakeFiles/pullmon_core.dir/problem.cc.o"
  "CMakeFiles/pullmon_core.dir/problem.cc.o.d"
  "CMakeFiles/pullmon_core.dir/profile.cc.o"
  "CMakeFiles/pullmon_core.dir/profile.cc.o.d"
  "CMakeFiles/pullmon_core.dir/schedule.cc.o"
  "CMakeFiles/pullmon_core.dir/schedule.cc.o.d"
  "CMakeFiles/pullmon_core.dir/schedule_io.cc.o"
  "CMakeFiles/pullmon_core.dir/schedule_io.cc.o.d"
  "CMakeFiles/pullmon_core.dir/t_interval.cc.o"
  "CMakeFiles/pullmon_core.dir/t_interval.cc.o.d"
  "libpullmon_core.a"
  "libpullmon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
