
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/completeness.cc" "src/core/CMakeFiles/pullmon_core.dir/completeness.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/completeness.cc.o.d"
  "/root/repo/src/core/dynamic_monitor.cc" "src/core/CMakeFiles/pullmon_core.dir/dynamic_monitor.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/dynamic_monitor.cc.o.d"
  "/root/repo/src/core/execution_interval.cc" "src/core/CMakeFiles/pullmon_core.dir/execution_interval.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/execution_interval.cc.o.d"
  "/root/repo/src/core/online_executor.cc" "src/core/CMakeFiles/pullmon_core.dir/online_executor.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/online_executor.cc.o.d"
  "/root/repo/src/core/overlap_analysis.cc" "src/core/CMakeFiles/pullmon_core.dir/overlap_analysis.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/overlap_analysis.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/pullmon_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/policy.cc.o.d"
  "/root/repo/src/core/problem.cc" "src/core/CMakeFiles/pullmon_core.dir/problem.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/problem.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/pullmon_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/profile.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/pullmon_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/schedule_io.cc" "src/core/CMakeFiles/pullmon_core.dir/schedule_io.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/schedule_io.cc.o.d"
  "/root/repo/src/core/t_interval.cc" "src/core/CMakeFiles/pullmon_core.dir/t_interval.cc.o" "gcc" "src/core/CMakeFiles/pullmon_core.dir/t_interval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
