file(REMOVE_RECURSE
  "libpullmon_util.a"
)
