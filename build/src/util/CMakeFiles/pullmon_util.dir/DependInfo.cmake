
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/pullmon_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/csv.cc.o.d"
  "/root/repo/src/util/datetime.cc" "src/util/CMakeFiles/pullmon_util.dir/datetime.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/datetime.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/util/CMakeFiles/pullmon_util.dir/flags.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/pullmon_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/pullmon_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/pullmon_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/pullmon_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/util/CMakeFiles/pullmon_util.dir/string_util.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/util/CMakeFiles/pullmon_util.dir/table_printer.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/table_printer.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/util/CMakeFiles/pullmon_util.dir/zipf.cc.o" "gcc" "src/util/CMakeFiles/pullmon_util.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
