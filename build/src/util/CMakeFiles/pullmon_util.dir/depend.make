# Empty dependencies file for pullmon_util.
# This may be replaced when dependencies are built.
