file(REMOVE_RECURSE
  "CMakeFiles/pullmon_util.dir/csv.cc.o"
  "CMakeFiles/pullmon_util.dir/csv.cc.o.d"
  "CMakeFiles/pullmon_util.dir/datetime.cc.o"
  "CMakeFiles/pullmon_util.dir/datetime.cc.o.d"
  "CMakeFiles/pullmon_util.dir/flags.cc.o"
  "CMakeFiles/pullmon_util.dir/flags.cc.o.d"
  "CMakeFiles/pullmon_util.dir/logging.cc.o"
  "CMakeFiles/pullmon_util.dir/logging.cc.o.d"
  "CMakeFiles/pullmon_util.dir/random.cc.o"
  "CMakeFiles/pullmon_util.dir/random.cc.o.d"
  "CMakeFiles/pullmon_util.dir/stats.cc.o"
  "CMakeFiles/pullmon_util.dir/stats.cc.o.d"
  "CMakeFiles/pullmon_util.dir/status.cc.o"
  "CMakeFiles/pullmon_util.dir/status.cc.o.d"
  "CMakeFiles/pullmon_util.dir/string_util.cc.o"
  "CMakeFiles/pullmon_util.dir/string_util.cc.o.d"
  "CMakeFiles/pullmon_util.dir/table_printer.cc.o"
  "CMakeFiles/pullmon_util.dir/table_printer.cc.o.d"
  "CMakeFiles/pullmon_util.dir/zipf.cc.o"
  "CMakeFiles/pullmon_util.dir/zipf.cc.o.d"
  "libpullmon_util.a"
  "libpullmon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
