# Empty dependencies file for pullmon_feeds.
# This may be replaced when dependencies are built.
