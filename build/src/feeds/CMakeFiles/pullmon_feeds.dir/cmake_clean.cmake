file(REMOVE_RECURSE
  "CMakeFiles/pullmon_feeds.dir/atom.cc.o"
  "CMakeFiles/pullmon_feeds.dir/atom.cc.o.d"
  "CMakeFiles/pullmon_feeds.dir/ebay_feed.cc.o"
  "CMakeFiles/pullmon_feeds.dir/ebay_feed.cc.o.d"
  "CMakeFiles/pullmon_feeds.dir/feed_server.cc.o"
  "CMakeFiles/pullmon_feeds.dir/feed_server.cc.o.d"
  "CMakeFiles/pullmon_feeds.dir/rss.cc.o"
  "CMakeFiles/pullmon_feeds.dir/rss.cc.o.d"
  "CMakeFiles/pullmon_feeds.dir/xml.cc.o"
  "CMakeFiles/pullmon_feeds.dir/xml.cc.o.d"
  "libpullmon_feeds.a"
  "libpullmon_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pullmon_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
