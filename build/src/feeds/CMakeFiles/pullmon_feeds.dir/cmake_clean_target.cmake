file(REMOVE_RECURSE
  "libpullmon_feeds.a"
)
