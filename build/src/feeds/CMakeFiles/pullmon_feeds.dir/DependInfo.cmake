
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feeds/atom.cc" "src/feeds/CMakeFiles/pullmon_feeds.dir/atom.cc.o" "gcc" "src/feeds/CMakeFiles/pullmon_feeds.dir/atom.cc.o.d"
  "/root/repo/src/feeds/ebay_feed.cc" "src/feeds/CMakeFiles/pullmon_feeds.dir/ebay_feed.cc.o" "gcc" "src/feeds/CMakeFiles/pullmon_feeds.dir/ebay_feed.cc.o.d"
  "/root/repo/src/feeds/feed_server.cc" "src/feeds/CMakeFiles/pullmon_feeds.dir/feed_server.cc.o" "gcc" "src/feeds/CMakeFiles/pullmon_feeds.dir/feed_server.cc.o.d"
  "/root/repo/src/feeds/rss.cc" "src/feeds/CMakeFiles/pullmon_feeds.dir/rss.cc.o" "gcc" "src/feeds/CMakeFiles/pullmon_feeds.dir/rss.cc.o.d"
  "/root/repo/src/feeds/xml.cc" "src/feeds/CMakeFiles/pullmon_feeds.dir/xml.cc.o" "gcc" "src/feeds/CMakeFiles/pullmon_feeds.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/pullmon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
