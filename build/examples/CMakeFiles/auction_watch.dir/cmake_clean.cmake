file(REMOVE_RECURSE
  "CMakeFiles/auction_watch.dir/auction_watch.cpp.o"
  "CMakeFiles/auction_watch.dir/auction_watch.cpp.o.d"
  "auction_watch"
  "auction_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
