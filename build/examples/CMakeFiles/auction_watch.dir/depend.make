# Empty dependencies file for auction_watch.
# This may be replaced when dependencies are built.
