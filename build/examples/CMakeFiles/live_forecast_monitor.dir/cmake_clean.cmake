file(REMOVE_RECURSE
  "CMakeFiles/live_forecast_monitor.dir/live_forecast_monitor.cpp.o"
  "CMakeFiles/live_forecast_monitor.dir/live_forecast_monitor.cpp.o.d"
  "live_forecast_monitor"
  "live_forecast_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_forecast_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
