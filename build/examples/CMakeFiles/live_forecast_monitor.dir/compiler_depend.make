# Empty compiler generated dependencies file for live_forecast_monitor.
# This may be replaced when dependencies are built.
