# Empty dependencies file for arbitrage_monitor.
# This may be replaced when dependencies are built.
