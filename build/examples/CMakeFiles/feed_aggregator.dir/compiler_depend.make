# Empty compiler generated dependencies file for feed_aggregator.
# This may be replaced when dependencies are built.
