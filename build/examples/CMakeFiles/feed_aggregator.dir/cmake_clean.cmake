file(REMOVE_RECURSE
  "CMakeFiles/feed_aggregator.dir/feed_aggregator.cpp.o"
  "CMakeFiles/feed_aggregator.dir/feed_aggregator.cpp.o.d"
  "feed_aggregator"
  "feed_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
