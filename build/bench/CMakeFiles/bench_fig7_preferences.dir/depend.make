# Empty dependencies file for bench_fig7_preferences.
# This may be replaced when dependencies are built.
