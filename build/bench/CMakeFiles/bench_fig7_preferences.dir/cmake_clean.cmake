file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_preferences.dir/bench_fig7_preferences.cc.o"
  "CMakeFiles/bench_fig7_preferences.dir/bench_fig7_preferences.cc.o.d"
  "bench_fig7_preferences"
  "bench_fig7_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
