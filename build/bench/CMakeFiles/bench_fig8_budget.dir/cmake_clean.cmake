file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_budget.dir/bench_fig8_budget.cc.o"
  "CMakeFiles/bench_fig8_budget.dir/bench_fig8_budget.cc.o.d"
  "bench_fig8_budget"
  "bench_fig8_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
