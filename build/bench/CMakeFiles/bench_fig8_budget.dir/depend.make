# Empty dependencies file for bench_fig8_budget.
# This may be replaced when dependencies are built.
