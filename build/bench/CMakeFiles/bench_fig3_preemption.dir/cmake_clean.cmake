file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_preemption.dir/bench_fig3_preemption.cc.o"
  "CMakeFiles/bench_fig3_preemption.dir/bench_fig3_preemption.cc.o.d"
  "bench_fig3_preemption"
  "bench_fig3_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
