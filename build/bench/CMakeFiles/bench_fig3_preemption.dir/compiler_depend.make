# Empty compiler generated dependencies file for bench_fig3_preemption.
# This may be replaced when dependencies are built.
