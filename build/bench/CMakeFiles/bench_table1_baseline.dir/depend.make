# Empty dependencies file for bench_table1_baseline.
# This may be replaced when dependencies are built.
