file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_baseline.dir/bench_table1_baseline.cc.o"
  "CMakeFiles/bench_table1_baseline.dir/bench_table1_baseline.cc.o.d"
  "bench_table1_baseline"
  "bench_table1_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
