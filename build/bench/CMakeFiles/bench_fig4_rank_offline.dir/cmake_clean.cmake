file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rank_offline.dir/bench_fig4_rank_offline.cc.o"
  "CMakeFiles/bench_fig4_rank_offline.dir/bench_fig4_rank_offline.cc.o.d"
  "bench_fig4_rank_offline"
  "bench_fig4_rank_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rank_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
