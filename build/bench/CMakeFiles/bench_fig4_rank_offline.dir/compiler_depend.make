# Empty compiler generated dependencies file for bench_fig4_rank_offline.
# This may be replaced when dependencies are built.
