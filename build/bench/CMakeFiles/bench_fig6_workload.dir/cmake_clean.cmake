file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_workload.dir/bench_fig6_workload.cc.o"
  "CMakeFiles/bench_fig6_workload.dir/bench_fig6_workload.cc.o.d"
  "bench_fig6_workload"
  "bench_fig6_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
