# Empty compiler generated dependencies file for bench_ablation_knowledge.
# This may be replaced when dependencies are built.
