file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knowledge.dir/bench_ablation_knowledge.cc.o"
  "CMakeFiles/bench_ablation_knowledge.dir/bench_ablation_knowledge.cc.o.d"
  "bench_ablation_knowledge"
  "bench_ablation_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
