# Empty dependencies file for local_ratio_test.
# This may be replaced when dependencies are built.
