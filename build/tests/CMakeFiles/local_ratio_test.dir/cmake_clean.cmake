file(REMOVE_RECURSE
  "CMakeFiles/local_ratio_test.dir/local_ratio_test.cc.o"
  "CMakeFiles/local_ratio_test.dir/local_ratio_test.cc.o.d"
  "local_ratio_test"
  "local_ratio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
