file(REMOVE_RECURSE
  "CMakeFiles/estimation_test.dir/estimation_test.cc.o"
  "CMakeFiles/estimation_test.dir/estimation_test.cc.o.d"
  "estimation_test"
  "estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
