# Empty compiler generated dependencies file for profilegen_test.
# This may be replaced when dependencies are built.
