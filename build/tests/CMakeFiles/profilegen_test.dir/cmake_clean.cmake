file(REMOVE_RECURSE
  "CMakeFiles/profilegen_test.dir/profilegen_test.cc.o"
  "CMakeFiles/profilegen_test.dir/profilegen_test.cc.o.d"
  "profilegen_test"
  "profilegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profilegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
