# Empty dependencies file for problem_test.
# This may be replaced when dependencies are built.
