# Empty dependencies file for feed_formats_test.
# This may be replaced when dependencies are built.
