file(REMOVE_RECURSE
  "CMakeFiles/feed_formats_test.dir/feed_formats_test.cc.o"
  "CMakeFiles/feed_formats_test.dir/feed_formats_test.cc.o.d"
  "feed_formats_test"
  "feed_formats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
