file(REMOVE_RECURSE
  "CMakeFiles/overlap_analysis_test.dir/overlap_analysis_test.cc.o"
  "CMakeFiles/overlap_analysis_test.dir/overlap_analysis_test.cc.o.d"
  "overlap_analysis_test"
  "overlap_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
