# Empty compiler generated dependencies file for overlap_analysis_test.
# This may be replaced when dependencies are built.
