# Empty compiler generated dependencies file for online_executor_test.
# This may be replaced when dependencies are built.
