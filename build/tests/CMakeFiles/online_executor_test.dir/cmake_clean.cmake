file(REMOVE_RECURSE
  "CMakeFiles/online_executor_test.dir/online_executor_test.cc.o"
  "CMakeFiles/online_executor_test.dir/online_executor_test.cc.o.d"
  "online_executor_test"
  "online_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
