file(REMOVE_RECURSE
  "CMakeFiles/update_trace_test.dir/update_trace_test.cc.o"
  "CMakeFiles/update_trace_test.dir/update_trace_test.cc.o.d"
  "update_trace_test"
  "update_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
