file(REMOVE_RECURSE
  "CMakeFiles/greedy_offline_test.dir/greedy_offline_test.cc.o"
  "CMakeFiles/greedy_offline_test.dir/greedy_offline_test.cc.o.d"
  "greedy_offline_test"
  "greedy_offline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
