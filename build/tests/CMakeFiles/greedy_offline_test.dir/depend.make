# Empty dependencies file for greedy_offline_test.
# This may be replaced when dependencies are built.
