file(REMOVE_RECURSE
  "CMakeFiles/exact_solver_test.dir/exact_solver_test.cc.o"
  "CMakeFiles/exact_solver_test.dir/exact_solver_test.cc.o.d"
  "exact_solver_test"
  "exact_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
