# Empty dependencies file for exact_solver_test.
# This may be replaced when dependencies are built.
