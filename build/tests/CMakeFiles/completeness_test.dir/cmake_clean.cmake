file(REMOVE_RECURSE
  "CMakeFiles/completeness_test.dir/completeness_test.cc.o"
  "CMakeFiles/completeness_test.dir/completeness_test.cc.o.d"
  "completeness_test"
  "completeness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completeness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
