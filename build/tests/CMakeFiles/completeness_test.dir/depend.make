# Empty dependencies file for completeness_test.
# This may be replaced when dependencies are built.
