
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/completeness_test.cc" "tests/CMakeFiles/completeness_test.dir/completeness_test.cc.o" "gcc" "tests/CMakeFiles/completeness_test.dir/completeness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pullmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/pullmon_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/pullmon_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/profilegen/CMakeFiles/pullmon_profilegen.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/pullmon_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/feeds/CMakeFiles/pullmon_feeds.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pullmon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pullmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pullmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
