# Empty compiler generated dependencies file for proxy_test.
# This may be replaced when dependencies are built.
