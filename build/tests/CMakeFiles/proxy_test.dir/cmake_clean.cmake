file(REMOVE_RECURSE
  "CMakeFiles/proxy_test.dir/proxy_test.cc.o"
  "CMakeFiles/proxy_test.dir/proxy_test.cc.o.d"
  "proxy_test"
  "proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
