file(REMOVE_RECURSE
  "CMakeFiles/zipf_test.dir/zipf_test.cc.o"
  "CMakeFiles/zipf_test.dir/zipf_test.cc.o.d"
  "zipf_test"
  "zipf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
