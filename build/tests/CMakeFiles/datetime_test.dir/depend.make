# Empty dependencies file for datetime_test.
# This may be replaced when dependencies are built.
