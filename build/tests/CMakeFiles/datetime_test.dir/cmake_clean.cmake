file(REMOVE_RECURSE
  "CMakeFiles/datetime_test.dir/datetime_test.cc.o"
  "CMakeFiles/datetime_test.dir/datetime_test.cc.o.d"
  "datetime_test"
  "datetime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
