file(REMOVE_RECURSE
  "CMakeFiles/dynamic_monitor_test.dir/dynamic_monitor_test.cc.o"
  "CMakeFiles/dynamic_monitor_test.dir/dynamic_monitor_test.cc.o.d"
  "dynamic_monitor_test"
  "dynamic_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
