# Empty dependencies file for dynamic_monitor_test.
# This may be replaced when dependencies are built.
