# Empty compiler generated dependencies file for ebay_feed_test.
# This may be replaced when dependencies are built.
