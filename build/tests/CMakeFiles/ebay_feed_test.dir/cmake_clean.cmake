file(REMOVE_RECURSE
  "CMakeFiles/ebay_feed_test.dir/ebay_feed_test.cc.o"
  "CMakeFiles/ebay_feed_test.dir/ebay_feed_test.cc.o.d"
  "ebay_feed_test"
  "ebay_feed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebay_feed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
