file(REMOVE_RECURSE
  "CMakeFiles/update_model_test.dir/update_model_test.cc.o"
  "CMakeFiles/update_model_test.dir/update_model_test.cc.o.d"
  "update_model_test"
  "update_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
