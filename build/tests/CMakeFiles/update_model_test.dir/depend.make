# Empty dependencies file for update_model_test.
# This may be replaced when dependencies are built.
