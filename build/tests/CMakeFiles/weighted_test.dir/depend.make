# Empty dependencies file for weighted_test.
# This may be replaced when dependencies are built.
