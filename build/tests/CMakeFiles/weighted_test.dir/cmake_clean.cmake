file(REMOVE_RECURSE
  "CMakeFiles/weighted_test.dir/weighted_test.cc.o"
  "CMakeFiles/weighted_test.dir/weighted_test.cc.o.d"
  "weighted_test"
  "weighted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
