# Empty compiler generated dependencies file for feed_roundtrip_property_test.
# This may be replaced when dependencies are built.
