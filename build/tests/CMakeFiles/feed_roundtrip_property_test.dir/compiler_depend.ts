# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for feed_roundtrip_property_test.
