file(REMOVE_RECURSE
  "CMakeFiles/feed_roundtrip_property_test.dir/feed_roundtrip_property_test.cc.o"
  "CMakeFiles/feed_roundtrip_property_test.dir/feed_roundtrip_property_test.cc.o.d"
  "feed_roundtrip_property_test"
  "feed_roundtrip_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_roundtrip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
