file(REMOVE_RECURSE
  "CMakeFiles/feed_server_test.dir/feed_server_test.cc.o"
  "CMakeFiles/feed_server_test.dir/feed_server_test.cc.o.d"
  "feed_server_test"
  "feed_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
