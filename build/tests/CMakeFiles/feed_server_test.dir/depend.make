# Empty dependencies file for feed_server_test.
# This may be replaced when dependencies are built.
