# Empty dependencies file for policies_test.
# This may be replaced when dependencies are built.
