file(REMOVE_RECURSE
  "CMakeFiles/policies_test.dir/policies_test.cc.o"
  "CMakeFiles/policies_test.dir/policies_test.cc.o.d"
  "policies_test"
  "policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
