# Empty dependencies file for reference_executor_test.
# This may be replaced when dependencies are built.
