file(REMOVE_RECURSE
  "CMakeFiles/reference_executor_test.dir/reference_executor_test.cc.o"
  "CMakeFiles/reference_executor_test.dir/reference_executor_test.cc.o.d"
  "reference_executor_test"
  "reference_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
