// Graceful degradation — gained completeness under correlated source
// outages, with and without the circuit breaker.
//
// The fault-tolerance harness measures i.i.d. per-probe failures; real
// Web sources die in correlated bursts instead. Here each resource runs
// a Gilbert-Elliott outage chain (a dark resource fails every probe
// until it recovers), which is the failure mode that actually starves
// the per-chronon budget C_j: a policy keeps electing the dark
// resource's most urgent candidates, every probe fails, and healthy
// t-intervals expire unserved. The resource-health subsystem (DESIGN.md
// section 10) is supposed to stop exactly that — after
// `failure_threshold` consecutive failures the breaker suppresses the
// resource for a cool-down, and the reclaimed budget flows to the
// next-ranked candidates.
//
// Measured at the Figure-5 scalability point (n=400, K=1000, lambda=50,
// W=20, C=1, m=500), sweeping outage severity with three arms per
// point:
//   * breaker-off  — the PR-1 behaviour: failures waste budget;
//   * breaker-on   — circuits open, suppressed budget is reclaimed;
//   * health-only  — no breaker, but the health:mrsf expected-gain
//     discount steers scores away from flaky resources.
//
// Expected shape (checked explicitly below):
//   * breaker-on GC strictly above breaker-off GC at every non-zero
//     severity;
//   * at the most severe point the breaker recovers >= 15% of the GC
//     the outages cost (fault-lost GC = clean GC - breaker-off GC).

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "util/stats.h"

namespace pullmon {
namespace {

struct Arm {
  const char* label;
  const char* policy;
  bool breaker;
};

struct SweepPoint {
  double enter_rate = 0.0;
  RunningStats gc;
  RunningStats outage_probes;
  RunningStats circuits_opened;
  RunningStats probes_suppressed;
  RunningStats budget_reclaimed;
};

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Graceful degradation: GC under correlated outages, breaker on/off",
      "the circuit breaker recovers a significant share of the GC that "
      "correlated source outages cost an unprotected proxy");

  // The Figure-5 scalability point.
  SimulationConfig config = BaselineConfig();
  config.num_resources = 400;
  config.epoch_length = 1000;
  config.num_profiles = 500;
  config.lambda = 50.0;
  config.window = 20;
  config.budget = 1;
  // Long correlated outages: mean length 1/exit = 200 chronons. Rare
  // but long episodes are the regime the breaker is for — with short
  // scattered outages the loss is mostly intrinsic (the data is simply
  // unavailable) and nothing can reclaim it, while a long-dark resource
  // keeps its urgent candidates at the top of every chronon's ranking
  // and bleeds the C=1 budget until something suppresses it.
  config.faults.outage_exit_rate = 0.005;
  // Trip after two consecutive failures and back off far: at C=1 every
  // discovery probe is a whole chronon's budget, and probing a
  // 200-chronon outage more than a handful of times is pure waste.
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_base = 16;
  config.breaker.max_cooldown = 256;

  const int repetitions = options.reps;
  bench::PrintConfig(config, repetitions);

  const std::vector<double> severities = {0.0005, 0.002, 0.004};
  const std::vector<Arm> arms = {
      {"breaker-off", "mrsf", false},
      {"breaker-on", "mrsf", true},
      {"health-only", "health:mrsf", false},
  };
  const PolicySpec clean_spec{"mrsf", ExecutionMode::kPreemptive};

  // Clean baseline: the same instances with no outages at all.
  RunningStats clean_gc;
  for (int rep = 0; rep < repetitions; ++rep) {
    uint64_t seed = options.seed + static_cast<uint64_t>(rep) * 7919;
    auto report = RunProxyOnce(config, clean_spec, seed);
    if (!report.ok()) {
      std::cerr << "clean run failed: " << report.status().ToString()
                << "\n";
      return 1;
    }
    clean_gc.Add(report->run.completeness.GainedCompleteness());
  }

  // sweep[arm index][severity index]
  std::vector<std::vector<SweepPoint>> sweep(arms.size());
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (double enter : severities) {
      SimulationConfig point = config;
      point.faults.outage_enter_rate = enter;
      point.breaker.enabled = arms[a].breaker;
      PolicySpec spec{arms[a].policy, ExecutionMode::kPreemptive};
      SweepPoint stats;
      stats.enter_rate = enter;
      for (int rep = 0; rep < repetitions; ++rep) {
        uint64_t seed = options.seed + static_cast<uint64_t>(rep) * 7919;
        auto report = RunProxyOnce(point, spec, seed);
        if (!report.ok()) {
          std::cerr << "proxy run failed: "
                    << report.status().ToString() << "\n";
          return 1;
        }
        stats.gc.Add(report->run.completeness.GainedCompleteness());
        stats.outage_probes.Add(
            static_cast<double>(report->outage_probes));
        stats.circuits_opened.Add(
            static_cast<double>(report->circuits_opened));
        stats.probes_suppressed.Add(
            static_cast<double>(report->probes_suppressed));
        stats.budget_reclaimed.Add(
            static_cast<double>(report->budget_reclaimed));
      }
      sweep[a].push_back(stats);
    }
  }

  std::cout << "Clean baseline (no outages): GC = "
            << bench::MeanCi(clean_gc) << "\n\n";
  TablePrinter table({"arm", "outage enter", "GC", "outage probes",
                      "opened", "suppressed", "reclaimed"});
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (const SweepPoint& point : sweep[a]) {
      table.AddRow(
          {arms[a].label, TablePrinter::FormatDouble(point.enter_rate, 4),
           bench::MeanCi(point.gc),
           TablePrinter::FormatDouble(point.outage_probes.mean(), 0),
           TablePrinter::FormatDouble(point.circuits_opened.mean(), 1),
           TablePrinter::FormatDouble(point.probes_suppressed.mean(), 0),
           TablePrinter::FormatDouble(point.budget_reclaimed.mean(), 0)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape checks:\n";
  bool pass = true;
  for (std::size_t i = 0; i < severities.size(); ++i) {
    double off = sweep[0][i].gc.mean();
    double on = sweep[1][i].gc.mean();
    bool above = on > off;
    std::cout << "  enter=" << TablePrinter::FormatDouble(severities[i], 4)
              << ": breaker-on GC " << TablePrinter::FormatDouble(on, 4)
              << (above ? " > " : " <= ")
              << TablePrinter::FormatDouble(off, 4) << " breaker-off: "
              << (above ? "yes" : "NO") << "\n";
    pass = pass && above;
  }
  {
    std::size_t last = severities.size() - 1;
    double off = sweep[0][last].gc.mean();
    double on = sweep[1][last].gc.mean();
    double lost = clean_gc.mean() - off;
    double recovered = lost > 0.0 ? (on - off) / lost : 0.0;
    bool enough = recovered >= 0.15;
    std::cout << "  most severe point: fault-lost GC = "
              << TablePrinter::FormatDouble(lost, 4) << ", recovered "
              << TablePrinter::FormatDouble(recovered * 100.0, 1)
              << "% (target >= 15%): " << (enough ? "yes" : "NO") << "\n";
    pass = pass && enough;
  }

  bench::JsonBenchWriter json("bench_degradation", options);
  json.Add({"clean_baseline",
            {{"policy", "MRSF(P)"}},
            {{"gc", clean_gc.mean()},
             {"gc_ci95", clean_gc.ci95_halfwidth()}}});
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (const SweepPoint& point : sweep[a]) {
      json.Add(
          {"outage_sweep",
           {{"arm", arms[a].label},
            {"policy", arms[a].policy},
            {"outage_enter_rate",
             TablePrinter::FormatDouble(point.enter_rate, 4)}},
           {{"gc", point.gc.mean()},
            {"gc_ci95", point.gc.ci95_halfwidth()},
            {"outage_probes", point.outage_probes.mean()},
            {"circuits_opened", point.circuits_opened.mean()},
            {"probes_suppressed", point.probes_suppressed.mean()},
            {"budget_reclaimed", point.budget_reclaimed.mean()}}});
    }
  }
  if (!json.WriteIfRequested(options)) return 1;
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_degradation",
      "GC under correlated outages with the circuit breaker on/off",
      /*default_seed=*/20080415, /*default_reps=*/3);
  return pullmon::RunBench(options);
}
