// Churn-maintenance regression bench: incremental candidate-index
// delete (DynamicMonitor's default) against the from-scratch rebuild
// oracle, under a Zipf-activity cancel/edit/unregister stream at
// Figure-5 scale (n=400, K=1000, lambda=50, W=20, C=1, m=500). Both
// arms replay the identical submission and churn op sequence; the bench
// cross-checks schedule equality probe for probe at every timing point,
// so a speedup obtained by diverging from the rebuild semantics cannot
// go unnoticed.
//
// The acceptance gate: at the Figure-5 point the incremental arm must
// complete the churn-heavy epoch at least 5x faster than the rebuild
// arm, and the binary fails (exit 1) if it does not. Results land in
// BENCH_churn.json by default so CI can archive them.

#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/dynamic_monitor.h"
#include "policies/policy_factory.h"
#include "sim/churn.h"
#include "util/stats.h"

namespace pullmon {
namespace {

struct ArmResult {
  bool ok = false;
  double seconds = 0.0;
  Schedule schedule{0};
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t edited = 0;
  std::size_t rejected = 0;
  double gc = 0.0;
};

/// One full churn-heavy epoch against a DynamicMonitor in the given
/// maintenance mode. Mirrors RunChurnOnce's op replay but drives the
/// monitor directly (always-successful probes) so the timing isolates
/// index maintenance from the feed path.
ArmResult RunArm(const MonitoringProblem& problem,
                 const ChurnWorkload& workload, const std::string& policy,
                 uint64_t seed, MonitorIndexMode mode) {
  ArmResult out;
  PolicyOptions po;
  po.random_seed = seed ^ 0x5bf03635ULL;
  po.num_resources = problem.num_resources;
  auto made = MakePolicy(policy, po);
  if (!made.ok()) {
    std::cerr << made.status().ToString() << "\n";
    return out;
  }
  MonitorOptions options;
  options.maintenance = mode;
  DynamicMonitor monitor(problem.num_resources, problem.epoch.length,
                         problem.budget, made->get(),
                         ExecutionMode::kPreemptive, options);

  const Chronon epoch_length = problem.epoch.length;
  std::vector<std::vector<std::pair<ProfileId, const TInterval*>>> arrivals(
      static_cast<std::size_t>(epoch_length));
  for (const Profile& p : problem.profiles) {
    ProfileId pid = monitor.RegisterProfile(p.name());
    for (const TInterval& eta : p.t_intervals()) {
      if (eta.empty()) continue;
      Chronon at = eta.EarliestStart();
      if (at < 0 || at >= epoch_length) continue;
      arrivals[static_cast<std::size_t>(at)].emplace_back(pid, &eta);
    }
  }
  std::vector<std::vector<TInterval>> defs(problem.profiles.size());

  const auto start = std::chrono::steady_clock::now();
  std::size_t next_event = 0;
  for (Chronon now = 0; now < epoch_length; ++now) {
    for (const auto& [pid, eta] :
         arrivals[static_cast<std::size_t>(now)]) {
      if (monitor.Submit(pid, *eta).ok()) {
        defs[static_cast<std::size_t>(pid)].push_back(*eta);
      } else {
        ++out.rejected;
      }
    }
    while (next_event < workload.events.size() &&
           workload.events[next_event].chronon == now) {
      const ChurnEvent& event = workload.events[next_event++];
      auto pid = static_cast<std::size_t>(event.profile);
      int count = static_cast<int>(defs[pid].size());
      int sub = count > 0 ? static_cast<int>(
                                event.pick % static_cast<uint64_t>(count))
                          : 0;
      switch (event.kind) {
        case ChurnEvent::Kind::kCancel:
          if (!monitor.Cancel(event.profile, sub).ok()) ++out.rejected;
          break;
        case ChurnEvent::Kind::kEdit: {
          TInterval replacement;
          if (count > 0) {
            const TInterval& current =
                defs[pid][static_cast<std::size_t>(sub)];
            for (const ExecutionInterval& ei : current.eis()) {
              if (ei.start < now) continue;
              ExecutionInterval moved = ei;
              moved.finish = std::min<Chronon>(
                  ei.finish + event.deadline_delta, epoch_length - 1);
              replacement.AddEi(moved);
            }
            replacement.set_weight(current.weight() *
                                   event.weight_factor);
          }
          auto edited = monitor.Edit(event.profile, sub, replacement);
          if (edited.ok()) {
            defs[pid].push_back(std::move(replacement));
          } else {
            ++out.rejected;
          }
          break;
        }
        case ChurnEvent::Kind::kUnregister:
          if (!monitor.Unregister(event.profile).ok()) ++out.rejected;
          break;
      }
    }
    auto step = monitor.Step();
    if (!step.ok()) {
      std::cerr << step.status().ToString() << "\n";
      return out;
    }
  }
  const auto end = std::chrono::steady_clock::now();

  out.seconds = std::chrono::duration<double>(end - start).count();
  out.schedule = monitor.schedule();
  out.completed = monitor.t_intervals_completed();
  out.cancelled = monitor.t_intervals_cancelled();
  out.edited = monitor.stats().edited;
  out.gc = monitor.Completeness().GainedCompleteness();
  out.ok = true;
  return out;
}

struct PointResult {
  bool ok = false;
  double incremental_seconds = 0.0;
  double rebuild_seconds = 0.0;
  double speedup = 0.0;
  double churn_ops = 0.0;
  double cancelled = 0.0;
  double edited = 0.0;
  double gc = 0.0;
};

PointResult MeasurePoint(const SimulationConfig& config,
                         const bench::BenchOptions& options) {
  PointResult out;
  RunningStats incremental_seconds, rebuild_seconds, ops, cancelled,
      edited;
  for (int rep = 0; rep < options.reps; ++rep) {
    uint64_t seed = options.seed + static_cast<uint64_t>(rep) * 7919;
    auto problem = BuildProblem(config, seed);
    if (!problem.ok()) {
      std::cerr << "problem generation failed: "
                << problem.status().ToString() << "\n";
      return out;
    }
    ChurnWorkload workload = GenerateChurnWorkload(
        config.churn, static_cast<int>(problem->profiles.size()),
        problem->epoch.length,
        config.churn.seed ^ (seed * 0x9E3779B97F4A7C15ULL));

    ArmResult incremental = RunArm(*problem, workload, "mrsf", seed,
                                   MonitorIndexMode::kIncremental);
    if (!incremental.ok) return out;
    ArmResult rebuild = RunArm(*problem, workload, "mrsf", seed,
                               MonitorIndexMode::kRebuild);
    if (!rebuild.ok) return out;

    // Semantic cross-check at every timing point: probe for probe.
    if (incremental.schedule.TotalProbes() !=
            rebuild.schedule.TotalProbes() ||
        incremental.completed != rebuild.completed ||
        incremental.cancelled != rebuild.cancelled ||
        incremental.edited != rebuild.edited ||
        incremental.rejected != rebuild.rejected ||
        incremental.gc != rebuild.gc) {
      std::cerr << "MAINTENANCE DIVERGENCE at seed " << seed
                << ": incremental probes="
                << incremental.schedule.TotalProbes()
                << " GC=" << incremental.gc << " vs rebuild probes="
                << rebuild.schedule.TotalProbes()
                << " GC=" << rebuild.gc << "\n";
      return out;
    }
    for (Chronon t = 0; t < problem->epoch.length; ++t) {
      if (incremental.schedule.ProbesAt(t) !=
          rebuild.schedule.ProbesAt(t)) {
        std::cerr << "MAINTENANCE DIVERGENCE at seed " << seed
                  << " chronon " << t << "\n";
        return out;
      }
    }

    incremental_seconds.Add(incremental.seconds);
    rebuild_seconds.Add(rebuild.seconds);
    ops.Add(static_cast<double>(workload.events.size()));
    cancelled.Add(static_cast<double>(incremental.cancelled));
    edited.Add(static_cast<double>(incremental.edited));
    out.gc = incremental.gc;
  }
  out.incremental_seconds = incremental_seconds.mean();
  out.rebuild_seconds = rebuild_seconds.mean();
  out.speedup = out.incremental_seconds > 0.0
                    ? out.rebuild_seconds / out.incremental_seconds
                    : 0.0;
  out.churn_ops = ops.mean();
  out.cancelled = cancelled.mean();
  out.edited = edited.mean();
  out.ok = true;
  return out;
}

SimulationConfig Fig5ChurnConfig() {
  SimulationConfig config = BaselineConfig();
  config.num_resources = 400;
  config.epoch_length = 1000;
  config.lambda = 50.0;
  config.max_rank = 3;
  config.restriction = LengthRestriction::kWindow;
  config.window = 20;
  config.budget = 1;
  config.num_profiles = 500;
  config.churn.enabled = true;
  // The gate point is churn-heavy on purpose: at low rates both arms
  // are dominated by the shared per-chronon probe loop and the
  // maintenance difference washes out (the sweep below shows it).
  config.churn.ops_per_chronon = 8.0;
  return config;
}

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Profile churn: incremental index delete vs from-scratch rebuild",
      "cancel/edit/unregister without rebuild is decision-identical and "
      ">= 5x faster at Figure-5 scale");

  struct Point {
    std::string name;
    std::string axis;
    std::string value;
    SimulationConfig config;
  };
  std::vector<Point> points;
  points.push_back({"fig5_gate", "churn_rate", "8", Fig5ChurnConfig()});
  for (double rate : {0.5, 2.0}) {
    SimulationConfig config = Fig5ChurnConfig();
    config.churn.ops_per_chronon = rate;
    points.push_back({"churn_rate_sweep", "churn_rate",
                      TablePrinter::FormatDouble(rate, 1), config});
  }
  {
    SimulationConfig config = Fig5ChurnConfig();
    config.num_profiles = 1000;
    points.push_back({"profiles_sweep", "profiles", "1000", config});
  }

  bench::JsonBenchWriter json("bench_churn", options);
  TablePrinter table({"point", "axis", "value", "incremental ms",
                      "rebuild ms", "speedup", "churn ops", "cancelled",
                      "GC"});
  double gate_speedup = 0.0;
  for (const Point& point : points) {
    PointResult result = MeasurePoint(point.config, options);
    if (!result.ok) return 1;
    table.AddRow(
        {point.name, point.axis, point.value,
         TablePrinter::FormatDouble(result.incremental_seconds * 1e3, 2),
         TablePrinter::FormatDouble(result.rebuild_seconds * 1e3, 2),
         TablePrinter::FormatDouble(result.speedup, 2),
         TablePrinter::FormatDouble(result.churn_ops, 0),
         TablePrinter::FormatDouble(result.cancelled, 0),
         TablePrinter::FormatDouble(result.gc, 4)});
    json.Add({point.name,
              {{"axis", point.axis}, {"value", point.value}},
              {{"incremental_seconds", result.incremental_seconds},
               {"rebuild_seconds", result.rebuild_seconds},
               {"speedup", result.speedup},
               {"churn_ops", result.churn_ops},
               {"cancelled", result.cancelled},
               {"edited", result.edited},
               {"gc", result.gc}}});
    if (point.name == "fig5_gate") gate_speedup = result.speedup;
  }
  table.Print(std::cout);

  std::cout << "\nAcceptance gate (Figure-5 point, n=400 K=1000 "
               "lambda=50 W=20 C=1 m=500, 8 churn ops/chronon):\n  "
               "incremental vs rebuild speedup = "
            << TablePrinter::FormatDouble(gate_speedup, 2)
            << "x (required: >= 5x)\n";
  if (!json.WriteIfRequested(options)) return 1;
  if (gate_speedup < 5.0) {
    std::cerr << "FAIL: incremental churn maintenance below the 5x bar "
                 "at the Figure-5 point\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_churn",
      "Incremental vs rebuild churn maintenance regression bench",
      /*default_seed=*/9090, /*default_reps=*/3,
      /*default_json=*/"BENCH_churn.json");
  return pullmon::RunBench(options);
}
