// Parallel-executor throughput bench: the sharded multi-threaded
// pipeline (ExecutorBackend::kParallel) against the serial indexed
// executor on the Figure-5 proxy substrate (n=400, lambda=50, W=20,
// m=500), with the probe budget raised so every chronon carries a
// batch of concurrent fetch+parse work — the phase the worker pool
// actually parallelizes. Two arms: clean, and the full fault surface
// (timeouts, corruption, ETag storms, retries, breaker), each measured
// at 1/2/4/8 worker threads.
//
// Every timing point first proves itself: the parallel report must be
// field-identical to the serial one (all scheduling, transport, fault,
// health and cache counters; the shard_* block is parallel-only and
// excluded). Any divergence is fatal — a speedup obtained by diverging
// from the semantics cannot go unnoticed.
//
// The acceptance gate scales with the hardware the bench actually
// runs on, because wall-clock speedup cannot exceed the cores present:
//   >= 8 hardware threads: speedup(8 workers vs serial) >= 3.0x
//   >= 4:                  >= 2.0x
//   >= 2:                  >= 1.2x
//   1 (uniprocessor):      >= 0.6x — an overhead bound: the sharded
//       pipeline plus thread handoff must stay within ~1.7x of serial
//       even with nothing to win.
// The emitted JSON records hardware_threads and the applied bar, so
// archived results are interpretable.

#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/config.h"
#include "sim/experiment.h"
#include "sim/proxy.h"
#include "util/stats.h"

namespace pullmon {
namespace {

/// Field-level equality of the deterministic report surface (mirrors
/// tests/report_equality.h with shard_stats=false; benches cannot use
/// gtest). Prints the first divergent field and returns false.
bool ReportsEqual(const ProxyRunReport& a, const ProxyRunReport& b,
                  Chronon epoch_length, const std::string& label) {
#define PULLMON_BENCH_FIELD_EQ(field)                                    \
  do {                                                                   \
    if (!(a.field == b.field)) {                                         \
      std::cerr << "REPORT DIVERGENCE [" << label << "] field " #field   \
                << "\n";                                                 \
      return false;                                                      \
    }                                                                    \
  } while (0)
  for (Chronon t = 0; t < epoch_length; ++t) {
    if (a.run.schedule.ProbesAt(t) != b.run.schedule.ProbesAt(t)) {
      std::cerr << "REPORT DIVERGENCE [" << label
                << "] run.schedule at chronon " << t << "\n";
      return false;
    }
  }
  PULLMON_BENCH_FIELD_EQ(run.completeness.GainedCompleteness());
  PULLMON_BENCH_FIELD_EQ(run.probes_used);
  PULLMON_BENCH_FIELD_EQ(run.t_intervals_completed);
  PULLMON_BENCH_FIELD_EQ(run.t_intervals_failed);
  PULLMON_BENCH_FIELD_EQ(run.candidates_scored);
  PULLMON_BENCH_FIELD_EQ(run.max_concurrent_candidates);
  PULLMON_BENCH_FIELD_EQ(run.probes_failed);
  PULLMON_BENCH_FIELD_EQ(run.retries_issued);
  PULLMON_BENCH_FIELD_EQ(run.retry_probes_spent);
  PULLMON_BENCH_FIELD_EQ(run.t_intervals_lost_to_faults);
  PULLMON_BENCH_FIELD_EQ(run.open_chronons_total);
  PULLMON_BENCH_FIELD_EQ(run.open_chronons_by_resource);
  PULLMON_BENCH_FIELD_EQ(feeds_fetched);
  PULLMON_BENCH_FIELD_EQ(not_modified);
  PULLMON_BENCH_FIELD_EQ(feed_bytes);
  PULLMON_BENCH_FIELD_EQ(items_parsed);
  PULLMON_BENCH_FIELD_EQ(parse_failures);
  PULLMON_BENCH_FIELD_EQ(notifications_delivered);
  PULLMON_BENCH_FIELD_EQ(probes_failed);
  PULLMON_BENCH_FIELD_EQ(retries_issued);
  PULLMON_BENCH_FIELD_EQ(retry_probes_spent);
  PULLMON_BENCH_FIELD_EQ(corrupt_bodies);
  PULLMON_BENCH_FIELD_EQ(timeouts);
  PULLMON_BENCH_FIELD_EQ(server_errors);
  PULLMON_BENCH_FIELD_EQ(etag_invalidations);
  PULLMON_BENCH_FIELD_EQ(outage_probes);
  PULLMON_BENCH_FIELD_EQ(latency_chronons);
  PULLMON_BENCH_FIELD_EQ(gc_lost_to_faults);
  if (!(a.fault_stats == b.fault_stats)) {
    std::cerr << "REPORT DIVERGENCE [" << label << "] fault_stats\n";
    return false;
  }
  PULLMON_BENCH_FIELD_EQ(circuits_opened);
  PULLMON_BENCH_FIELD_EQ(circuits_reopened);
  PULLMON_BENCH_FIELD_EQ(probation_probes);
  PULLMON_BENCH_FIELD_EQ(probation_successes);
  PULLMON_BENCH_FIELD_EQ(probes_suppressed);
  PULLMON_BENCH_FIELD_EQ(budget_reclaimed);
  PULLMON_BENCH_FIELD_EQ(parse_cache_hits);
  PULLMON_BENCH_FIELD_EQ(parse_cache_misses);
  PULLMON_BENCH_FIELD_EQ(parse_cache_invalidations);
  PULLMON_BENCH_FIELD_EQ(parse_cache_bytes_saved);
  PULLMON_BENCH_FIELD_EQ(churn_submitted);
  PULLMON_BENCH_FIELD_EQ(churn_cancelled);
  PULLMON_BENCH_FIELD_EQ(churn_edited);
  PULLMON_BENCH_FIELD_EQ(churn_unregistered_profiles);
  PULLMON_BENCH_FIELD_EQ(churn_rejected_ops);
  PULLMON_BENCH_FIELD_EQ(orphaned_probes);
#undef PULLMON_BENCH_FIELD_EQ
  return true;
}

/// The Figure-5 scalability substrate, adapted for the physical probe
/// path: the budget carries 8 probes per chronon (a batch the worker
/// pool can spread) and large feed buffers make every fetched body a
/// real parse workload.
SimulationConfig SubstrateConfig() {
  SimulationConfig config = BaselineConfig();
  config.num_resources = 400;
  config.epoch_length = 400;
  config.lambda = 50.0;
  config.max_rank = 3;
  config.restriction = LengthRestriction::kWindow;
  config.window = 20;
  config.num_profiles = 500;
  config.budget = 8;
  config.feed_buffer_capacity = 48;
  return config;
}

SimulationConfig FaultyConfig() {
  SimulationConfig config = SubstrateConfig();
  config.faults.timeout_rate = 0.05;
  config.faults.truncation_rate = 0.03;
  config.faults.corruption_rate = 0.03;
  config.faults.etag_storm_rate = 0.05;
  config.retry.max_retries = 2;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 4;
  return config;
}

struct ArmResult {
  bool ok = false;
  double serial_seconds = 0.0;
  /// Indexed by position in kThreadCounts.
  std::vector<double> parallel_seconds;
  /// Workload fingerprint summed over reps; derives only from the
  /// seed, so bench_diff can pin it against the committed baseline.
  double probes_total = 0.0;
  double gc_total = 0.0;
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};

ArmResult MeasureArm(const SimulationConfig& base,
                     const bench::BenchOptions& options,
                     const std::string& label) {
  ArmResult out;
  PolicySpec spec{"MRSF", ExecutionMode::kPreemptive};
  RunningStats serial_seconds;
  std::vector<RunningStats> parallel_seconds(std::size(kThreadCounts));
  for (int rep = 0; rep < options.reps; ++rep) {
    uint64_t seed = options.seed + static_cast<uint64_t>(rep) * 7919;
    SimulationConfig config = base;
    config.executor_backend = ExecutorBackend::kIndexed;
    auto serial = RunProxyOnce(config, spec, seed);
    if (!serial.ok()) {
      std::cerr << serial.status().ToString() << "\n";
      return out;
    }
    serial_seconds.Add(serial->run.elapsed_seconds);
    out.probes_total += static_cast<double>(serial->run.probes_used);
    out.gc_total += serial->run.completeness.GainedCompleteness();
    config.executor_backend = ExecutorBackend::kParallel;
    for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
      config.threads = kThreadCounts[i];
      auto parallel = RunProxyOnce(config, spec, seed);
      if (!parallel.ok()) {
        std::cerr << parallel.status().ToString() << "\n";
        return out;
      }
      if (!ReportsEqual(*serial, *parallel, config.epoch_length,
                        label + " seed " + std::to_string(seed) +
                            " threads " +
                            std::to_string(kThreadCounts[i]))) {
        return out;  // always fatal
      }
      parallel_seconds[i].Add(parallel->run.elapsed_seconds);
    }
  }
  out.serial_seconds = serial_seconds.mean();
  out.parallel_seconds.reserve(std::size(kThreadCounts));
  for (const RunningStats& stats : parallel_seconds) {
    out.parallel_seconds.push_back(stats.mean());
  }
  out.ok = true;
  return out;
}

/// The wall-clock bar speedup(8 workers) must clear, given the cores
/// actually present.
double RequiredSpeedup(unsigned hardware_threads) {
  if (hardware_threads >= 8) return 3.0;
  if (hardware_threads >= 4) return 2.0;
  if (hardware_threads >= 2) return 1.2;
  return 0.6;
}

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Parallel sharded pipeline vs serial indexed executor (proxy "
      "path, Figure-5 substrate)",
      "reports are field-identical at every thread count; the 8-worker "
      "speedup gate scales with the cores present");

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const double required = RequiredSpeedup(hardware_threads);

  struct Arm {
    std::string name;
    SimulationConfig config;
  };
  std::vector<Arm> arms;
  arms.push_back({"clean", SubstrateConfig()});
  arms.push_back({"faulty", FaultyConfig()});

  bench::JsonBenchWriter json("bench_parallel", options);
  TablePrinter table({"arm", "threads", "serial ms", "parallel ms",
                      "speedup", "chronons/s"});
  double gate_speedup = 0.0;
  for (const Arm& arm : arms) {
    ArmResult result = MeasureArm(arm.config, options, arm.name);
    if (!result.ok) return 1;
    double chronons = static_cast<double>(arm.config.epoch_length);
    for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
      double seconds = result.parallel_seconds[i];
      double speedup =
          seconds > 0.0 ? result.serial_seconds / seconds : 0.0;
      table.AddRow(
          {arm.name, std::to_string(kThreadCounts[i]),
           TablePrinter::FormatDouble(result.serial_seconds * 1e3, 2),
           TablePrinter::FormatDouble(seconds * 1e3, 2),
           TablePrinter::FormatDouble(speedup, 2),
           TablePrinter::FormatDouble(
               seconds > 0.0 ? chronons / seconds : 0.0, 0)});
      json.Add({arm.name + "_t" + std::to_string(kThreadCounts[i]),
                {{"arm", arm.name},
                 {"threads", std::to_string(kThreadCounts[i])}},
                {{"serial_seconds", result.serial_seconds},
                 {"parallel_seconds", seconds},
                 {"speedup_vs_serial", speedup},
                 {"chronons_per_sec",
                  seconds > 0.0 ? chronons / seconds : 0.0},
                 {"probes", result.probes_total},
                 {"gc", result.gc_total}}});
      if (arm.name == "clean" && kThreadCounts[i] == 8) {
        gate_speedup = speedup;
      }
    }
  }
  table.Print(std::cout);

  json.Add({"gate",
            {{"arm", "clean"}, {"threads", "8"}},
            {{"hardware_threads", static_cast<double>(hardware_threads)},
             {"required_speedup", required},
             {"achieved_speedup", gate_speedup}}});

  std::cout << "\nAcceptance gate (clean arm, 8 workers vs serial "
               "indexed):\n  speedup = "
            << TablePrinter::FormatDouble(gate_speedup, 2)
            << "x; required >= "
            << TablePrinter::FormatDouble(required, 2) << "x on "
            << hardware_threads << " hardware thread(s)\n";
  if (!json.WriteIfRequested(options)) return 1;
  if (gate_speedup < required) {
    std::cerr << "FAIL: 8-worker speedup below the hardware-scaled "
                 "bar\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_parallel",
      "Parallel sharded pipeline vs serial indexed executor",
      /*default_seed=*/6161, /*default_reps=*/3,
      /*default_json=*/"BENCH_parallel.json");
  return pullmon::RunBench(options);
}
