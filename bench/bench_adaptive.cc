// Closed-loop estimation vs FPN(1) hindsight (DESIGN.md section 17):
// the adaptive proxy derives execution intervals from its own
// (schedule-censored) probe observations instead of reading the update
// trace ahead of time, spending epsilon explore probes plus leftover
// monitor budget on cold resources. This harness measures the price of
// giving up the oracle across three regimes:
//
//   steady       the periodic Web-feed workload ([10] statistics) the
//                estimator is designed to learn. GATED: the estimated
//                arm must recover >= 0.5x the oracle's gained
//                completeness (disable with --gate=false).
//   bursty       the auction workload: non-stationary sniping ramps
//                where most updates arrive in a closing burst the
//                censored observer has little time to learn. Reported,
//                ungated.
//   regime_shift the feed workload with drifting, heavily jittered
//                periods (period_jitter=8, period_spread=0.8) and a
//                short estimator half-life, so learned structure keeps
//                going stale. Reported, ungated.
//
// Every regime also cross-checks that the estimated arm's report is
// identical on the serial and parallel backends — always fatal, gate
// or no gate.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/config.h"
#include "sim/experiment.h"
#include "sim/proxy.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace pullmon {
namespace {

struct AdaptiveOptions {
  bench::BenchOptions common;
  bool gate = true;
};

AdaptiveOptions ParseAdaptiveFlags(int argc, char** argv) {
  FlagParser flags("bench_adaptive",
                   "Closed-loop estimated EIs vs FPN(1) oracle EIs "
                   "across steady / bursty / regime-shift workloads");
  flags.AddInt64("seed", 181818, "base random seed of the repetitions");
  flags.AddInt64("reps", 3, "repetitions per regime");
  flags.AddString("json", "BENCH_adaptive.json",
                  "write machine-readable results (BENCH_pullmon.json "
                  "schema; empty = disabled)");
  flags.AddBool("gate", true,
                "fail (exit 1) when the steady-regime GC ratio falls "
                "below 0.5");
  Status status = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::cout << flags.Usage();
    std::exit(0);
  }
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Usage();
    std::exit(2);
  }
  AdaptiveOptions options;
  options.common.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.common.reps = static_cast<int>(flags.GetInt64("reps"));
  options.common.json_path = flags.GetString("json");
  options.gate = flags.GetBool("gate");
  if (options.common.reps < 1) {
    std::cerr << "--reps must be >= 1\n";
    std::exit(2);
  }
  return options;
}

SimulationConfig BaseConfig() {
  SimulationConfig config = BaselineConfig();
  config.num_resources = 50;
  config.num_profiles = 50;
  config.epoch_length = 1000;
  config.budget = 2;
  return config;
}

struct Regime {
  std::string name;
  bool gated;
  SimulationConfig config;
};

std::vector<Regime> Regimes() {
  std::vector<Regime> regimes;

  Regime steady{"steady", true, BaseConfig()};
  steady.config.dataset = DatasetKind::kFeedWorkload;
  regimes.push_back(steady);

  Regime bursty{"bursty", false, BaseConfig()};
  bursty.config.dataset = DatasetKind::kAuction;
  regimes.push_back(bursty);

  Regime shift{"regime_shift", false, BaseConfig()};
  shift.config.dataset = DatasetKind::kFeedWorkload;
  shift.config.feed_workload.period_jitter = 8.0;
  shift.config.feed_workload.period_spread = 0.8;
  shift.config.estimator_half_life = 16.0;
  regimes.push_back(shift);

  return regimes;
}

int RunBench(const AdaptiveOptions& options,
             bench::JsonBenchWriter* json) {
  bench::PrintHeader(
      "Adaptive probing without perfect knowledge (closed loop)",
      "how much gained completeness survives when the proxy must learn "
      "the update\nmodel from its own probe diffs instead of the FPN(1) "
      "oracle");

  const PolicySpec spec{"MRSF", ExecutionMode::kPreemptive};
  TablePrinter table({"regime", "oracle GC", "estimated GC", "ratio",
                      "explore probes", "periodic resources", "gate"});
  double steady_ratio = -1.0;

  for (const Regime& regime : Regimes()) {
    RunningStats oracle_gc, estimated_gc, explore, periodic;
    for (int rep = 0; rep < options.common.reps; ++rep) {
      const uint64_t seed =
          options.common.seed + static_cast<uint64_t>(rep) * 7919;
      SimulationConfig config = regime.config;
      config.knowledge = KnowledgeModel::kOracle;
      auto oracle = RunProxyOnce(config, spec, seed);
      config.knowledge = KnowledgeModel::kEstimated;
      auto estimated = RunProxyOnce(config, spec, seed);
      if (!oracle.ok() || !estimated.ok()) {
        std::cerr << (oracle.ok() ? estimated.status() : oracle.status())
                         .ToString()
                  << "\n";
        return 1;
      }
      oracle_gc.Add(oracle->run.completeness.GainedCompleteness());
      estimated_gc.Add(estimated->run.completeness.GainedCompleteness());
      explore.Add(static_cast<double>(estimated->estimation_explore_probes));
      periodic.Add(
          static_cast<double>(estimated->estimation_periodic_resources));

      if (rep == 0) {
        // Cross-backend equality of the estimated arm: the closed loop
        // must not depend on which executor runs it. Always fatal.
        config.executor_backend = ExecutorBackend::kParallel;
        config.threads = 4;
        auto parallel = RunProxyOnce(config, spec, seed);
        if (!parallel.ok()) {
          std::cerr << parallel.status().ToString() << "\n";
          return 1;
        }
        if (parallel->run.probes_used != estimated->run.probes_used ||
            parallel->run.completeness.GainedCompleteness() !=
                estimated->run.completeness.GainedCompleteness() ||
            parallel->estimation_update_events !=
                estimated->estimation_update_events) {
          std::cerr << "FATAL: estimated-knowledge reports diverge "
                       "between serial and parallel backends (regime "
                    << regime.name << ")\n";
          return 1;
        }
      }
    }

    const double ratio =
        oracle_gc.mean() > 0.0 ? estimated_gc.mean() / oracle_gc.mean()
                               : 0.0;
    if (regime.gated) steady_ratio = ratio;
    json->Add({"adaptive",
               {{"regime", regime.name},
                {"gated", regime.gated ? "true" : "false"}},
               {{"oracle_gc", oracle_gc.mean()},
                {"estimated_gc", estimated_gc.mean()},
                {"gc_ratio", ratio},
                {"explore_probes", explore.mean()},
                {"periodic_resources", periodic.mean()}}});
    table.AddRow({regime.name, bench::MeanCi(oracle_gc),
                  bench::MeanCi(estimated_gc),
                  TablePrinter::FormatDouble(ratio, 3),
                  TablePrinter::FormatDouble(explore.mean(), 0),
                  TablePrinter::FormatDouble(periodic.mean(), 0),
                  regime.gated ? ">= 0.5" : "-"});
  }
  table.Print(std::cout);
  std::cout
      << "\nReading: the loop recovers a substantial fraction of "
         "hindsight in every regime,\nbut different mechanisms carry "
         "it. On the steady feed workload the periodic\ndetector locks "
         "onto real grids (around half the feeds) and the monitor "
         "schedules\nagainst them. The auction regime shows no "
         "periodicity at all — there the decaying\nrate tracker plus "
         "work-conserving exploration chase the sniping ramps, and\n"
         "because a burst packs many updates into few chronons, the "
         "probes that land\nduring one capture whole windows at once. "
         "Drifting periods defeat most grid\nlocks, so the tracker "
         "again carries the load. Only the steady regime is gated:\n"
         "it is the stationary workload the estimator is designed for, "
         "while the burst-\ndriven ratios ride on workload luck and "
         "stay informational.\n";

  std::cout << "\nAcceptance gate (steady regime): estimated/oracle GC "
            << TablePrinter::FormatDouble(steady_ratio, 3)
            << " (required >= 0.5)\n";
  if (options.gate && steady_ratio < 0.5) {
    std::cout << "GATE FAILED\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::AdaptiveOptions options =
      pullmon::ParseAdaptiveFlags(argc, argv);
  pullmon::bench::JsonBenchWriter json("bench_adaptive", options.common);
  int rc = pullmon::RunBench(options, &json);
  if (rc != 0) return rc;
  return json.WriteIfRequested(options.common) ? 0 : 1;
}
