// Executor-backend regression bench: the incremental candidate index
// (OnlineExecutor's default backend) against the scan-based
// ReferenceExecutor oracle, swept over the four size axes that drive
// per-chronon cost — resources (n), profiles (m), epoch length (K) and
// profile rank. Every point also cross-checks that both backends
// produce the same schedule size and gained completeness, so a speedup
// obtained by diverging from the semantics cannot go unnoticed.
//
// The Figure-5 scalability point (n=400, K=1000, lambda=50, W=20, C=1,
// m=500) is the acceptance gate: the indexed backend must sustain at
// least 2x the reference's chronons/sec there, and the binary fails
// (exit 1) if it does not. Results land in BENCH_pullmon.json by
// default so CI can archive them.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/online_executor.h"
#include "policies/policy_factory.h"
#include "util/stats.h"

namespace pullmon {
namespace {

struct PointResult {
  bool ok = false;
  double indexed_seconds = 0.0;
  double reference_seconds = 0.0;
  double speedup = 0.0;
  double indexed_chronons_per_sec = 0.0;
  double reference_chronons_per_sec = 0.0;
  double probes_per_sec = 0.0;
  double gc = 0.0;
};

PointResult MeasurePoint(const SimulationConfig& config,
                         const bench::BenchOptions& options) {
  PointResult out;
  RunningStats indexed_seconds, reference_seconds, probes;
  for (int rep = 0; rep < options.reps; ++rep) {
    uint64_t seed = options.seed + static_cast<uint64_t>(rep) * 7919;
    auto problem = BuildProblem(config, seed);
    if (!problem.ok()) {
      std::cerr << "problem generation failed: "
                << problem.status().ToString() << "\n";
      return out;
    }
    PolicyOptions po;
    po.random_seed = seed ^ 0x5bf03635ULL;
    po.num_resources = problem->num_resources;
    auto policy = MakePolicy("mrsf", po);
    if (!policy.ok()) {
      std::cerr << policy.status().ToString() << "\n";
      return out;
    }

    OnlineExecutor indexed(&*problem, policy->get(),
                           ExecutionMode::kPreemptive);
    indexed.set_backend(ExecutorBackend::kIndexed);
    auto indexed_run = indexed.Run();
    if (!indexed_run.ok()) {
      std::cerr << indexed_run.status().ToString() << "\n";
      return out;
    }

    OnlineExecutor reference(&*problem, policy->get(),
                             ExecutionMode::kPreemptive);
    reference.set_backend(ExecutorBackend::kReference);
    auto reference_run = reference.Run();
    if (!reference_run.ok()) {
      std::cerr << reference_run.status().ToString() << "\n";
      return out;
    }

    // Semantic cross-check at every timing point.
    if (indexed_run->completeness.GainedCompleteness() !=
            reference_run->completeness.GainedCompleteness() ||
        indexed_run->schedule.TotalProbes() !=
            reference_run->schedule.TotalProbes()) {
      std::cerr << "BACKEND DIVERGENCE at seed " << seed
                << ": indexed GC="
                << indexed_run->completeness.GainedCompleteness()
                << " probes=" << indexed_run->schedule.TotalProbes()
                << " vs reference GC="
                << reference_run->completeness.GainedCompleteness()
                << " probes=" << reference_run->schedule.TotalProbes()
                << "\n";
      return out;
    }

    indexed_seconds.Add(indexed_run->elapsed_seconds);
    reference_seconds.Add(reference_run->elapsed_seconds);
    probes.Add(static_cast<double>(indexed_run->schedule.TotalProbes()));
    out.gc = indexed_run->completeness.GainedCompleteness();
  }
  out.indexed_seconds = indexed_seconds.mean();
  out.reference_seconds = reference_seconds.mean();
  out.speedup = out.indexed_seconds > 0.0
                    ? out.reference_seconds / out.indexed_seconds
                    : 0.0;
  double chronons = static_cast<double>(config.epoch_length);
  out.indexed_chronons_per_sec =
      out.indexed_seconds > 0.0 ? chronons / out.indexed_seconds : 0.0;
  out.reference_chronons_per_sec =
      out.reference_seconds > 0.0 ? chronons / out.reference_seconds
                                  : 0.0;
  out.probes_per_sec =
      out.indexed_seconds > 0.0 ? probes.mean() / out.indexed_seconds
                                : 0.0;
  out.ok = true;
  return out;
}

SimulationConfig Fig5Config() {
  SimulationConfig config = BaselineConfig();
  config.num_resources = 400;
  config.epoch_length = 1000;
  config.lambda = 50.0;
  config.max_rank = 3;
  config.restriction = LengthRestriction::kWindow;
  config.window = 20;
  config.budget = 1;
  config.num_profiles = 500;
  return config;
}

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Executor backends: incremental candidate index vs scan-based "
      "reference",
      "the indexed backend is decision-identical and >= 2x faster at "
      "Figure-5 scale");

  struct Point {
    std::string name;
    std::string axis;
    std::string value;
    SimulationConfig config;
  };
  std::vector<Point> points;
  // The acceptance-gate point first, then one axis varied at a time.
  points.push_back({"fig5_gate", "profiles", "500", Fig5Config()});
  for (int m : {1000, 2500}) {
    SimulationConfig config = Fig5Config();
    config.num_profiles = m;
    points.push_back(
        {"profiles_sweep", "profiles", std::to_string(m), config});
  }
  for (int n : {100, 1600}) {
    SimulationConfig config = Fig5Config();
    config.num_resources = n;
    points.push_back(
        {"resources_sweep", "resources", std::to_string(n), config});
  }
  for (Chronon k : {500, 2000}) {
    SimulationConfig config = Fig5Config();
    config.epoch_length = k;
    points.push_back(
        {"epoch_sweep", "epoch_length", std::to_string(k), config});
  }
  for (int rank : {1, 5}) {
    SimulationConfig config = Fig5Config();
    config.max_rank = rank;
    points.push_back({"rank_sweep", "rank", std::to_string(rank), config});
  }

  bench::JsonBenchWriter json("bench_executor_index", options);
  TablePrinter table({"point", "axis", "value", "indexed ms",
                      "reference ms", "speedup", "idx chronons/s", "GC"});
  double gate_speedup = 0.0;
  for (const Point& point : points) {
    PointResult result = MeasurePoint(point.config, options);
    if (!result.ok) return 1;
    table.AddRow({point.name, point.axis, point.value,
                  TablePrinter::FormatDouble(
                      result.indexed_seconds * 1e3, 2),
                  TablePrinter::FormatDouble(
                      result.reference_seconds * 1e3, 2),
                  TablePrinter::FormatDouble(result.speedup, 2),
                  TablePrinter::FormatDouble(
                      result.indexed_chronons_per_sec, 0),
                  TablePrinter::FormatDouble(result.gc, 4)});
    json.Add({point.name,
              {{"axis", point.axis}, {"value", point.value}},
              {{"indexed_seconds", result.indexed_seconds},
               {"reference_seconds", result.reference_seconds},
               {"speedup", result.speedup},
               {"indexed_chronons_per_sec",
                result.indexed_chronons_per_sec},
               {"reference_chronons_per_sec",
                result.reference_chronons_per_sec},
               {"probes_per_sec", result.probes_per_sec},
               {"gc", result.gc}}});
    if (point.name == "fig5_gate") gate_speedup = result.speedup;
  }
  table.Print(std::cout);

  std::cout << "\nAcceptance gate (Figure-5 scalability point, n=400 "
               "K=1000 lambda=50 W=20 C=1 m=500):\n  indexed vs "
               "reference speedup = "
            << TablePrinter::FormatDouble(gate_speedup, 2)
            << "x (required: >= 2x)\n";
  if (!json.WriteIfRequested(options)) return 1;
  if (gate_speedup < 2.0) {
    std::cerr << "FAIL: indexed backend below the 2x bar at the "
                 "Figure-5 point\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_executor_index",
      "Indexed vs reference executor backend regression bench",
      /*default_seed=*/9090, /*default_reps=*/3,
      /*default_json=*/"BENCH_pullmon.json");
  return pullmon::RunBench(options);
}
