// Figure 6 — workload analysis: gained completeness of the online
// policies as (1) the average update intensity per resource (lambda) and
// (2) the number of profiles (m) grow.
//
// Paper findings to reproduce:
//   * GC decreases with lambda and with m (more t-intervals to capture);
//   * MRSF(P) and M-EDF(P) clearly dominate S-EDF in all settings;
//   * M-EDF(P) tracks MRSF(P) closely, slightly below;
//   * with strict budget C = 1, S-EDF(NP) >= S-EDF(P).

#include <iostream>

#include "bench_util.h"

namespace pullmon {
namespace {

int SweepLambda(const bench::BenchOptions& options,
                bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 6(1): GC vs average update intensity "
               "(lambda) ---\n";
  SimulationConfig config = BaselineConfig();
  std::vector<PolicySpec> specs = StandardPolicySpecs();
  TablePrinter table({"lambda", "S-EDF(NP)", "S-EDF(P)", "M-EDF(P)",
                      "MRSF(P)"});
  for (double lambda : {5.0, 10.0, 20.0, 30.0, 40.0}) {
    SimulationConfig point = config;
    point.lambda = lambda;
    ExperimentRunner runner(options.reps,
                            options.seed + static_cast<uint64_t>(lambda));
    auto result = runner.Run(point, specs);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    table.AddRow({TablePrinter::FormatDouble(lambda, 0),
                  bench::MeanCi(result->policies[0].gc),
                  bench::MeanCi(result->policies[1].gc),
                  bench::MeanCi(result->policies[2].gc),
                  bench::MeanCi(result->policies[3].gc)});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      json->Add({"lambda_sweep",
                 {{"lambda", TablePrinter::FormatDouble(lambda, 0)},
                  {"policy", specs[s].Label()}},
                 {{"gc", result->policies[s].gc.mean()},
                  {"gc_ci95", result->policies[s].gc.ci95_halfwidth()}}});
    }
  }
  table.Print(std::cout);
  return 0;
}

int SweepProfiles(const bench::BenchOptions& options,
                  bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 6(2): GC vs number of profiles (m) ---\n";
  SimulationConfig config = BaselineConfig();
  std::vector<PolicySpec> specs = StandardPolicySpecs();
  TablePrinter table({"profiles", "S-EDF(NP)", "S-EDF(P)", "M-EDF(P)",
                      "MRSF(P)"});
  for (int m : {100, 250, 500, 1000, 2000}) {
    SimulationConfig point = config;
    point.num_profiles = m;
    // Historical base seed 6060 + m = default --seed + 54 + m.
    ExperimentRunner runner(options.reps,
                            options.seed + 54 + static_cast<uint64_t>(m));
    auto result = runner.Run(point, specs);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    table.AddRow({std::to_string(m),
                  bench::MeanCi(result->policies[0].gc),
                  bench::MeanCi(result->policies[1].gc),
                  bench::MeanCi(result->policies[2].gc),
                  bench::MeanCi(result->policies[3].gc)});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      json->Add({"profiles_sweep",
                 {{"profiles", std::to_string(m)},
                  {"policy", specs[s].Label()}},
                 {{"gc", result->policies[s].gc.mean()},
                  {"gc_ci95", result->policies[s].gc.ci95_halfwidth()}}});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_fig6_workload",
      "Figure 6: workload analysis (lambda; profiles)",
      /*default_seed=*/6006, /*default_reps=*/5);
  pullmon::bench::PrintHeader(
      "Figure 6: workload analysis (update intensity; number of profiles)",
      "GC decreases with workload; MRSF(P)/M-EDF(P) dominate S-EDF");
  {
    pullmon::SimulationConfig config = pullmon::BaselineConfig();
    pullmon::bench::PrintConfig(config, options.reps);
  }
  pullmon::bench::JsonBenchWriter json("bench_fig6_workload", options);
  int rc = pullmon::SweepLambda(options, &json);
  if (rc != 0) return rc;
  rc = pullmon::SweepProfiles(options, &json);
  if (rc != 0) return rc;
  return json.WriteIfRequested(options) ? 0 : 1;
}
