// Ablations of the design choices called out in DESIGN.md:
//   (a) residual direction — MRSF against its inversion (LRSF) and the
//       uninformed baselines, validating the "minimal residual stub"
//       intuition of Section 4.2.2;
//   (b) offline Local-Ratio variants — the faithful [2] reduction vs
//       probe-sharing-aware conflicts vs greedy augmentation;
//   (c) client utilities (Section 6 extension) — utility-blind MRSF vs
//       U-MRSF on instances with Zipf-skewed utilities, scored by
//       weighted completeness.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "core/online_executor.h"
#include "offline/local_ratio.h"
#include "policies/policy_factory.h"
#include "util/zipf.h"

namespace pullmon {
namespace {

int AblationResidualDirection(const bench::BenchOptions& options,
                              bench::JsonBenchWriter* json) {
  std::cout << "\n--- (a) Residual direction: MRSF vs inverted and "
               "uninformed orders ---\n";
  SimulationConfig config = BaselineConfig();
  std::vector<PolicySpec> specs = {
      {"MRSF", ExecutionMode::kPreemptive},
      {"LRSF", ExecutionMode::kPreemptive},
      {"FCFS", ExecutionMode::kPreemptive},
      {"Random", ExecutionMode::kPreemptive},
      {"RoundRobin", ExecutionMode::kPreemptive},
  };
  ExperimentRunner runner(options.reps, options.seed);
  auto result = runner.Run(config, specs);
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status().ToString()
              << "\n";
    return 1;
  }
  TablePrinter table({"policy", "GC"});
  for (const auto& outcome : result->policies) {
    table.AddRow({outcome.spec.Label(), bench::MeanCi(outcome.gc)});
    json->Add({"residual_direction",
               {{"policy", outcome.spec.Label()}},
               {{"gc", outcome.gc.mean()}}});
  }
  table.Print(std::cout);
  std::cout << "(expected: MRSF > uninformed baselines > LRSF)\n";
  return 0;
}

int AblationLocalRatioVariants(const bench::BenchOptions& options,
                               bench::JsonBenchWriter* json) {
  std::cout << "\n--- (b) Offline Local-Ratio variants (fig. 4 sized "
               "instance, W=0, C=1) ---\n";
  SimulationConfig config = BaselineConfig();
  config.num_resources = 40;
  config.epoch_length = 200;
  config.num_profiles = 25;
  config.lambda = 15.0;
  config.window = 0;
  config.budget = 1;

  struct Variant {
    const char* name;
    bool sharing_aware;
    bool augmentation;
  };
  const Variant variants[] = {
      {"faithful [2]", false, false},
      {"+ sharing-aware conflicts", true, false},
      {"+ greedy augmentation", false, true},
      {"+ both", true, true},
  };
  TablePrinter table({"variant", "GC", "runtime(ms)"});
  for (const auto& variant : variants) {
    RunningStats gc, runtime;
    // Base seed 12012 = default --seed + 1001; the LP variants are slow,
    // so this section caps itself at 3 repetitions.
    for (int rep = 0; rep < std::min(options.reps, 3); ++rep) {
      auto problem =
          BuildProblem(config, options.seed + 1001 +
                                   static_cast<uint64_t>(rep));
      if (!problem.ok()) {
        std::cerr << problem.status().ToString() << "\n";
        return 1;
      }
      LocalRatioOptions options;
      options.sharing_aware_conflicts = variant.sharing_aware;
      options.greedy_augmentation = variant.augmentation;
      LocalRatioScheduler scheduler(&*problem, options);
      auto solution = scheduler.Solve();
      if (!solution.ok()) {
        std::cerr << solution.status().ToString() << "\n";
        return 1;
      }
      gc.Add(solution->gained_completeness);
      runtime.Add(solution->elapsed_seconds);
    }
    table.AddRow({variant.name, bench::MeanCi(gc),
                  bench::Millis(runtime)});
    json->Add({"local_ratio_variants",
               {{"variant", variant.name}},
               {{"gc", gc.mean()}, {"runtime_seconds", runtime.mean()}}});
  }
  table.Print(std::cout);
  std::cout << "(the paper's comparisons use the faithful variant; the "
               "others are strictly stronger)\n";
  return 0;
}

int AblationUtilities(const bench::BenchOptions& options,
                      bench::JsonBenchWriter* json) {
  std::cout << "\n--- (c) Utility-aware scheduling (Section 6 extension) "
               "---\n";
  SimulationConfig config = BaselineConfig();
  config.num_profiles = 800;
  config.lambda = 30.0;  // probe-constrained so prioritization matters

  RunningStats plain_weighted_gc, utility_weighted_gc, plain_gc,
      utility_gc;
  // Base seed 13013 = default --seed + 2002.
  for (int rep = 0; rep < options.reps; ++rep) {
    auto problem =
        BuildProblem(config, options.seed + 2002 +
                                 static_cast<uint64_t>(rep));
    if (!problem.ok()) {
      std::cerr << problem.status().ToString() << "\n";
      return 1;
    }
    // Zipf-skewed client utilities: a few clients value their
    // t-intervals far more than the rest.
    Rng rng(777 + static_cast<uint64_t>(rep));
    ZipfDistribution zipf(1.2, 16);
    for (auto& profile : problem->profiles) {
      double utility =
          static_cast<double>(17 - static_cast<int>(zipf.Sample(&rng)));
      std::vector<TInterval> reweighted = profile.t_intervals();
      for (auto& eta : reweighted) eta.set_weight(utility);
      std::string name = profile.name();
      profile = Profile(std::move(name), std::move(reweighted));
    }

    for (bool utility_aware : {false, true}) {
      auto policy = MakePolicy(utility_aware ? "u-mrsf" : "mrsf");
      if (!policy.ok()) return 1;
      OnlineExecutor executor(&*problem, policy->get(),
                              ExecutionMode::kPreemptive);
      auto result = executor.Run();
      if (!result.ok()) {
        std::cerr << result.status().ToString() << "\n";
        return 1;
      }
      double wgc = result->completeness.WeightedGainedCompleteness();
      double gc = result->completeness.GainedCompleteness();
      if (utility_aware) {
        utility_weighted_gc.Add(wgc);
        utility_gc.Add(gc);
      } else {
        plain_weighted_gc.Add(wgc);
        plain_gc.Add(gc);
      }
    }
  }
  TablePrinter table({"policy", "weighted GC", "plain GC"});
  table.AddRow({"MRSF(P) (utility-blind)",
                bench::MeanCi(plain_weighted_gc),
                bench::MeanCi(plain_gc)});
  table.AddRow({"U-MRSF(P) (utility-aware)",
                bench::MeanCi(utility_weighted_gc),
                bench::MeanCi(utility_gc)});
  table.Print(std::cout);
  std::cout << "(utility-awareness should buy weighted completeness, "
               "possibly at a small plain-GC cost)\n";
  json->Add({"utilities",
             {{"policy", "MRSF(P)"}},
             {{"weighted_gc", plain_weighted_gc.mean()},
              {"gc", plain_gc.mean()}}});
  json->Add({"utilities",
             {{"policy", "U-MRSF(P)"}},
             {{"weighted_gc", utility_weighted_gc.mean()},
              {"gc", utility_gc.mean()}}});
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_ablation_design",
      "Ablations: residual direction, Local-Ratio variants, utilities",
      /*default_seed=*/11011, /*default_reps=*/5);
  pullmon::bench::PrintHeader(
      "Ablations: residual direction, Local-Ratio variants, utilities",
      "design-choice sensitivity beyond the paper's own figures");
  pullmon::bench::JsonBenchWriter json("bench_ablation_design", options);
  int rc = pullmon::AblationResidualDirection(options, &json);
  if (rc != 0) return rc;
  rc = pullmon::AblationLocalRatioVariants(options, &json);
  if (rc != 0) return rc;
  rc = pullmon::AblationUtilities(options, &json);
  if (rc != 0) return rc;
  return json.WriteIfRequested(options) ? 0 : 1;
}
