// Figure 4 — online policies vs the offline Local-Ratio approximation as
// profile complexity (rank) grows, under W = 0 (P^[1] instances) and
// C = 1, where the 2k offline guarantee is the best known.
//
// Paper findings to reproduce:
//   * completeness decreases with rank;
//   * MRSF(P) beats the offline approximation (by 11–23% in the paper);
//   * S-EDF(NP) is dominated by the offline approximation for rank > 2;
//   * rank = 1 completeness is optimal (EDF-optimality);
//   * (Prop. 5) M-EDF(P) behaves like MRSF(P) here, so it is omitted.
//
// Scale note: the offline approximation solves an LP via dense simplex;
// the paper's Java prototype had the same scalability wall (Figure 5).
// This harness therefore runs a proportionally reduced instance
// (documented in EXPERIMENTS.md); the comparison shape is unaffected.

#include <iostream>

#include "bench_util.h"

namespace pullmon {
namespace {

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Figure 4: gained completeness vs rank(P), online vs offline approx",
      "MRSF(P) dominates the offline 2k-approximation; S-EDF(NP) does not");

  SimulationConfig config = BaselineConfig();
  config.num_resources = 40;
  config.epoch_length = 200;
  config.num_profiles = 25;
  config.lambda = 15.0;
  config.restriction = LengthRestriction::kWindow;
  config.window = 0;  // P^[1]
  config.budget = 1;

  bench::PrintConfig(config, options.reps);

  std::vector<PolicySpec> specs = {
      {"S-EDF", ExecutionMode::kNonPreemptive},
      {"MRSF", ExecutionMode::kPreemptive},
  };

  TablePrinter table({"rank(P)", "S-EDF(NP)", "MRSF(P)", "offline LR",
                      "MRSF(P)/LR", "LR factor"});
  bench::JsonBenchWriter json("bench_fig4_rank_offline", options);
  double min_ratio = 1e9, max_ratio = 0.0;
  for (int rank = 1; rank <= 5; ++rank) {
    SimulationConfig point = config;
    point.max_rank = rank;
    ExperimentRunner runner(options.reps,
                            options.seed + static_cast<uint64_t>(rank));
    auto result = runner.Run(point, specs, /*include_offline=*/true);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    double sedf = result->policies[0].gc.mean();
    double mrsf = result->policies[1].gc.mean();
    double lr = result->offline->gc.mean();
    double ratio = lr > 0 ? mrsf / lr : 0.0;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    json.Add({"rank_sweep",
              {{"rank", std::to_string(rank)}},
              {{"sedf_np_gc", sedf},
               {"mrsf_p_gc", mrsf},
               {"offline_lr_gc", lr},
               {"mrsf_over_lr", ratio}}});
    table.AddRow({std::to_string(rank),
                  TablePrinter::FormatDouble(sedf, 3),
                  TablePrinter::FormatDouble(mrsf, 3),
                  TablePrinter::FormatDouble(lr, 3),
                  TablePrinter::FormatDouble(ratio, 3),
                  TablePrinter::FormatDouble(
                      result->offline->guaranteed_factor, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nMRSF(P) vs offline-approximation ratio range: "
            << TablePrinter::FormatDouble(min_ratio, 3) << " – "
            << TablePrinter::FormatDouble(max_ratio, 3)
            << "  (paper reports gains of 11%–23%)\n";
  return json.WriteIfRequested(options) ? 0 : 1;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_fig4_rank_offline",
      "Figure 4: online vs offline approximation across rank(P)",
      /*default_seed=*/4004, /*default_reps=*/3);
  return pullmon::RunBench(options);
}
