// Figure 7 — impact of user preferences:
//   (1) inter-user preference alpha: larger alpha concentrates profiles
//       on popular resources, creating intra-resource overlap that
//       shared probes exploit — GC rises; S-EDF(NP) exploits the
//       overlaps better than S-EDF(P);
//   (2) intra-user preference beta: larger beta prefers less complex
//       profiles — GC rises; MRSF(P)/M-EDF(P) keep dominating S-EDF.
//
// alpha = 1.37 is the Web-feed popularity skew reported by [10].

#include <iostream>

#include "bench_util.h"
#include "core/overlap_analysis.h"

namespace pullmon {
namespace {

int SweepAlpha(const bench::BenchOptions& options,
               bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 7(1): GC vs inter-user preference alpha ---\n";
  SimulationConfig config = BaselineConfig();
  std::vector<PolicySpec> specs = StandardPolicySpecs();
  TablePrinter table({"alpha", "S-EDF(NP)", "S-EDF(P)", "M-EDF(P)",
                      "MRSF(P)", "sharing potential"});
  for (double alpha : {0.0, 0.5, 1.0, 1.37, 2.0}) {
    SimulationConfig point = config;
    point.alpha = alpha;
    ExperimentRunner runner(
        options.reps,
        options.seed + static_cast<uint64_t>(alpha * 100));
    auto result = runner.Run(point, specs);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    // The structural driver: how much probe work intra-resource overlap
    // can save at this skew.
    auto probe_instance = BuildProblem(point, options.seed);
    double sharing = 0.0;
    if (probe_instance.ok()) {
      sharing = AnalyzeOverlap(probe_instance->profiles,
                               probe_instance->num_resources,
                               probe_instance->epoch.length)
                    .sharing_potential;
    }
    table.AddRow({TablePrinter::FormatDouble(alpha, 2),
                  bench::MeanCi(result->policies[0].gc),
                  bench::MeanCi(result->policies[1].gc),
                  bench::MeanCi(result->policies[2].gc),
                  bench::MeanCi(result->policies[3].gc),
                  TablePrinter::FormatDouble(sharing, 3)});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      json->Add({"alpha_sweep",
                 {{"alpha", TablePrinter::FormatDouble(alpha, 2)},
                  {"policy", specs[s].Label()}},
                 {{"gc", result->policies[s].gc.mean()},
                  {"sharing_potential", sharing}}});
    }
  }
  table.Print(std::cout);
  std::cout << "(paper: GC increases with alpha via intra-resource "
               "overlap; the sharing-potential\ncolumn measures that "
               "overlap directly. Paper also reports S-EDF(NP) > "
               "S-EDF(P); here\nthat holds for alpha <= 0.5 and flips "
               "at heavy skew — see EXPERIMENTS.md.)\n";
  return 0;
}

int SweepBeta(const bench::BenchOptions& options,
              bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 7(2): GC vs intra-user preference beta ---\n";
  SimulationConfig config = BaselineConfig();
  std::vector<PolicySpec> specs = StandardPolicySpecs();
  TablePrinter table({"beta", "S-EDF(NP)", "S-EDF(P)", "M-EDF(P)",
                      "MRSF(P)"});
  for (double beta : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    SimulationConfig point = config;
    point.beta = beta;
    // Historical base seed 7070 + 100*beta = default --seed + 63 + ...
    ExperimentRunner runner(
        options.reps,
        options.seed + 63 + static_cast<uint64_t>(beta * 100));
    auto result = runner.Run(point, specs);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    table.AddRow({TablePrinter::FormatDouble(beta, 2),
                  bench::MeanCi(result->policies[0].gc),
                  bench::MeanCi(result->policies[1].gc),
                  bench::MeanCi(result->policies[2].gc),
                  bench::MeanCi(result->policies[3].gc)});
    for (std::size_t s = 0; s < specs.size(); ++s) {
      json->Add({"beta_sweep",
                 {{"beta", TablePrinter::FormatDouble(beta, 2)},
                  {"policy", specs[s].Label()}},
                 {{"gc", result->policies[s].gc.mean()}}});
    }
  }
  table.Print(std::cout);
  std::cout << "(paper: GC increases as users prefer simpler profiles; "
               "MRSF(P)/M-EDF(P) still dominate)\n";
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_fig7_preferences",
      "Figure 7: impact of user preferences (alpha, beta)",
      /*default_seed=*/7007, /*default_reps=*/5);
  pullmon::bench::PrintHeader(
      "Figure 7: impact of user preferences (alpha inter-user, beta "
      "intra-user)",
      "popularity skew and simpler profiles both raise completeness");
  pullmon::bench::JsonBenchWriter json("bench_fig7_preferences", options);
  int rc = pullmon::SweepAlpha(options, &json);
  if (rc != 0) return rc;
  rc = pullmon::SweepBeta(options, &json);
  if (rc != 0) return rc;
  return json.WriteIfRequested(options) ? 0 : 1;
}
