// Figure 5 — runtime scalability, aggregated over a full epoch:
//   (1) offline Local-Ratio approximation vs online policies on small
//       workloads — the offline runtime explodes while online stays flat;
//   (2) online policies alone on much larger workloads (2.5x update
//       intensity, up to 5x the profiles) — runtime grows linearly.
//
// Scale note: sub-experiment (1) is run at a proportionally reduced size
// so the LP-based approximation terminates (see EXPERIMENTS.md); the
// paper's qualitative result — offline orders of magnitude slower and
// growing super-linearly, online linear — is scale-invariant.

#include <iostream>

#include "bench_util.h"
#include "offline/greedy_offline.h"
#include "util/stats.h"

namespace pullmon {
namespace {

int RunPart1(const bench::BenchOptions& options,
             bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 5(1): offline approximation vs online "
               "policies ---\n";
  SimulationConfig config = BaselineConfig();
  config.num_resources = 40;
  config.epoch_length = 200;
  config.lambda = 5.0;  // paper: lambda = 20 at full scale
  config.max_rank = 3;
  config.window = 0;
  config.budget = 1;

  const int repetitions = options.reps;
  std::vector<PolicySpec> specs = StandardPolicySpecs();

  TablePrinter table({"profiles", "t-intervals", "S-EDF(NP) ms",
                      "S-EDF(P) ms", "M-EDF(P) ms", "MRSF(P) ms",
                      "offline LR ms", "offline greedy ms"});
  std::vector<double> sizes, offline_ms, online_ms;
  for (int m : {10, 20, 30, 40, 50}) {
    SimulationConfig point = config;
    point.num_profiles = m;
    ExperimentRunner runner(repetitions,
                            options.seed + static_cast<uint64_t>(m));
    auto result = runner.Run(point, specs, /*include_offline=*/true);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    // The scalable combinatorial offline baseline, for contrast with
    // the LP-based approximation.
    RunningStats greedy_runtime;
    for (int rep = 0; rep < repetitions; ++rep) {
      auto problem =
          BuildProblem(point, options.seed + static_cast<uint64_t>(m) +
                                  static_cast<uint64_t>(rep) * 7919);
      if (!problem.ok()) return 1;
      GreedyOfflineScheduler greedy(&*problem);
      auto solution = greedy.Solve();
      if (!solution.ok()) return 1;
      greedy_runtime.Add(solution->elapsed_seconds);
    }
    table.AddRow(
        {std::to_string(m),
         TablePrinter::FormatDouble(result->t_intervals.mean(), 0),
         bench::Millis(result->policies[0].runtime_seconds),
         bench::Millis(result->policies[1].runtime_seconds),
         bench::Millis(result->policies[2].runtime_seconds),
         bench::Millis(result->policies[3].runtime_seconds),
         bench::Millis(result->offline->runtime_seconds),
         bench::Millis(greedy_runtime)});
    sizes.push_back(static_cast<double>(m));
    offline_ms.push_back(result->offline->runtime_seconds.mean() * 1e3);
    online_ms.push_back(
        result->policies[3].runtime_seconds.mean() * 1e3);
    json->Add({"offline_vs_online",
               {{"profiles", std::to_string(m)}},
               {{"mrsf_p_seconds",
                 result->policies[3].runtime_seconds.mean()},
                {"offline_lr_seconds",
                 result->offline->runtime_seconds.mean()},
                {"offline_greedy_seconds", greedy_runtime.mean()}}});
  }
  table.Print(std::cout);
  double slowdown = online_ms.back() > 0
                        ? offline_ms.back() / online_ms.back()
                        : 0.0;
  std::cout << "\nAt the largest workload the offline approximation is "
            << TablePrinter::FormatDouble(slowdown, 0)
            << "x slower than MRSF(P) (paper: \"much worse runtime\").\n";
  return 0;
}

int RunPart2(const bench::BenchOptions& options,
             bench::JsonBenchWriter* json) {
  std::cout << "\n--- Figure 5(2): online policies on large workloads "
               "(offline omitted) ---\n";
  SimulationConfig config = BaselineConfig();
  config.num_resources = 400;
  config.epoch_length = 1000;
  config.lambda = 50.0;  // 2.5x the baseline intensity, as in the paper
  config.max_rank = 3;
  config.window = 20;
  config.budget = 1;

  const int repetitions = options.reps;
  std::vector<PolicySpec> specs = StandardPolicySpecs();

  TablePrinter table({"profiles", "t-intervals", "S-EDF(NP) ms",
                      "S-EDF(P) ms", "M-EDF(P) ms", "MRSF(P) ms"});
  std::vector<double> sizes;
  std::vector<std::vector<double>> runtimes(specs.size());
  for (int m : {500, 1000, 1500, 2000, 2500}) {
    SimulationConfig point = config;
    point.num_profiles = m;
    // Historical base seed 5050 + m = default --seed + 45 + m.
    ExperimentRunner runner(
        repetitions, options.seed + 45 + static_cast<uint64_t>(m));
    auto result = runner.Run(point, specs);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status().ToString()
                << "\n";
      return 1;
    }
    std::vector<std::string> row{
        std::to_string(m),
        TablePrinter::FormatDouble(result->t_intervals.mean(), 0)};
    for (std::size_t s = 0; s < specs.size(); ++s) {
      row.push_back(bench::Millis(result->policies[s].runtime_seconds));
      runtimes[s].push_back(
          result->policies[s].runtime_seconds.mean() * 1e3);
      json->Add({"online_large",
                 {{"profiles", std::to_string(m)},
                  {"policy", specs[s].Label()}},
                 {{"runtime_seconds",
                   result->policies[s].runtime_seconds.mean()}}});
    }
    table.AddRow(row);
    sizes.push_back(static_cast<double>(m));
  }
  table.Print(std::cout);

  std::cout << "\nLinear-trend check (Pearson correlation of runtime vs "
               "#profiles):\n";
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::cout << "  " << specs[s].Label() << ": "
              << TablePrinter::FormatDouble(
                     PearsonCorrelation(sizes, runtimes[s]), 3)
              << "\n";
  }
  std::cout << "(paper: \"there is still a linear trend in the policies' "
               "runtime behavior\")\n";
  return 0;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_fig5_scalability",
      "Figure 5: runtime scalability, offline vs online",
      /*default_seed=*/5005, /*default_reps=*/2);
  pullmon::bench::PrintHeader(
      "Figure 5: runtime scalability, offline approximation vs online "
      "policies",
      "offline does not scale; online policies scale linearly");
  pullmon::bench::JsonBenchWriter json("bench_fig5_scalability", options);
  int rc = pullmon::RunPart1(options, &json);
  if (rc != 0) return rc;
  rc = pullmon::RunPart2(options, &json);
  if (rc != 0) return rc;
  return json.WriteIfRequested(options) ? 0 : 1;
}
