// Table 1 — controlled parameters and baseline settings, plus a baseline
// run of the standard policy line-up under those settings.

#include <iostream>

#include "bench_util.h"

namespace pullmon {
namespace {

int RunBench() {
  bench::PrintHeader(
      "Table 1: controlled parameters and baseline settings",
      "the baseline parameter grid of Section 5.1, exercised end-to-end");

  SimulationConfig config = BaselineConfig();
  const int repetitions = 10;
  bench::PrintConfig(config, repetitions);

  ExperimentRunner runner(repetitions, /*base_seed=*/20080407);
  auto result = runner.Run(config, StandardPolicySpecs());
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status().ToString()
              << "\n";
    return 1;
  }

  std::cout << "Baseline gained completeness (mean over " << repetitions
            << " repetitions):\n";
  TablePrinter table(
      {"policy", "GC", "probes used", "runtime(ms)"});
  for (const auto& outcome : result->policies) {
    table.AddRow({outcome.spec.Label(), bench::MeanCi(outcome.gc),
                  TablePrinter::FormatDouble(outcome.probes_used.mean(), 0),
                  bench::Millis(outcome.runtime_seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nInstance size: " << result->t_intervals.mean()
            << " t-intervals / " << result->eis.mean()
            << " EIs on average per repetition.\n";
  return 0;
}

}  // namespace
}  // namespace pullmon

int main() { return pullmon::RunBench(); }
