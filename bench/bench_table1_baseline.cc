// Table 1 — controlled parameters and baseline settings, plus a baseline
// run of the standard policy line-up under those settings.

#include <iostream>

#include "bench_util.h"

namespace pullmon {
namespace {

int RunBench(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "Table 1: controlled parameters and baseline settings",
      "the baseline parameter grid of Section 5.1, exercised end-to-end");

  SimulationConfig config = BaselineConfig();
  bench::PrintConfig(config, options.reps);

  ExperimentRunner runner(options.reps, options.seed);
  auto result = runner.Run(config, StandardPolicySpecs());
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status().ToString()
              << "\n";
    return 1;
  }

  std::cout << "Baseline gained completeness (mean over " << options.reps
            << " repetitions):\n";
  TablePrinter table(
      {"policy", "GC", "probes used", "runtime(ms)"});
  bench::JsonBenchWriter json("bench_table1_baseline", options);
  for (const auto& outcome : result->policies) {
    table.AddRow({outcome.spec.Label(), bench::MeanCi(outcome.gc),
                  TablePrinter::FormatDouble(outcome.probes_used.mean(), 0),
                  bench::Millis(outcome.runtime_seconds)});
    json.Add({"baseline",
              {{"policy", outcome.spec.Label()}},
              {{"gc", outcome.gc.mean()},
               {"gc_ci95", outcome.gc.ci95_halfwidth()},
               {"probes_used", outcome.probes_used.mean()},
               {"runtime_seconds", outcome.runtime_seconds.mean()}}});
  }
  table.Print(std::cout);
  std::cout << "\nInstance size: " << result->t_intervals.mean()
            << " t-intervals / " << result->eis.mean()
            << " EIs on average per repetition.\n";
  return json.WriteIfRequested(options) ? 0 : 1;
}

}  // namespace
}  // namespace pullmon

int main(int argc, char** argv) {
  pullmon::bench::BenchOptions options = pullmon::bench::ParseBenchFlags(
      argc, argv, "bench_table1_baseline",
      "Table 1 baseline parameter grid, end-to-end",
      /*default_seed=*/20080407, /*default_reps=*/10);
  return pullmon::RunBench(options);
}
